// Ablation: generation budget (the paper fixes 50M per run — "large
// enough to capture longer-term trends"). Sweeps the scaled budget and
// reports hits/ASes per TGA, showing where returns diminish and where
// rankings stabilize.
#include <iostream>

#include "bench_common.h"

using v6::metrics::fmt_count;

int main() {
  v6::experiment::Workbench bench;
  const auto& seeds = bench.all_active();

  const std::vector<std::uint64_t> budgets = {50'000, 100'000, 200'000,
                                              400'000, 800'000};
  const std::vector<v6::tga::TgaKind> tgas = {
      v6::tga::TgaKind::kSixSense, v6::tga::TgaKind::kSixTree,
      v6::tga::TgaKind::kDet, v6::tga::TgaKind::kSixGen};

  std::cout << "=== Ablation: budget sweep (ICMP, All Active seeds) ===\n";
  for (const bool hits : {true, false}) {
    std::cout << (hits ? "-- Hits --\n" : "-- ASes --\n");
    std::vector<std::string> header{"Budget"};
    for (const auto kind : tgas) {
      header.emplace_back(v6::tga::to_string(kind));
    }
    v6::metrics::TextTable table(std::move(header));
    // Cache outcomes so the hits and ASes tables share one set of runs.
    static std::vector<std::vector<v6::metrics::ScanOutcome>> cache;
    if (cache.empty()) {
      for (const std::uint64_t budget : budgets) {
        std::vector<v6::metrics::ScanOutcome> row;
        for (const auto kind : tgas) {
          v6::experiment::PipelineConfig config;
          config.budget = budget;
          std::cerr << "running " << v6::tga::to_string(kind) << " @ "
                    << budget << "\n";
          auto generator = v6::tga::make_generator(kind);
          row.push_back(v6::experiment::run_tga(bench.universe(), *generator,
                                                seeds, bench.alias_list(),
                                                config));
        }
        cache.push_back(std::move(row));
      }
    }
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      std::vector<std::string> row{fmt_count(budgets[b])};
      for (const auto& outcome : cache[b]) {
        row.push_back(fmt_count(hits ? outcome.hits() : outcome.ases()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: hits grow sublinearly (the responsive "
               "population saturates); AS counts flatten earlier; and the "
               "6Sense/6Tree hit ranking crosses over as the budget grows "
               "- offline enumeration wins when budget is scarce, online "
               "adaptation wins at the paper's large-budget regime.\n";
  return 0;
}
