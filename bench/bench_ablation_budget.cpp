// Ablation: generation budget (the paper fixes 50M per run — "large
// enough to capture longer-term trends"). Sweeps the scaled budget and
// reports hits/ASes per TGA, showing where returns diminish and where
// rankings stabilize.
#include <iostream>

#include "bench_common.h"

using v6::metrics::fmt_count;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::bench::BenchTimer timer("ablation_budget", args);

  v6::experiment::Workbench bench;
  const auto& seeds = bench.all_active();

  const std::vector<std::uint64_t> budgets = {50'000, 100'000, 200'000,
                                              400'000, 800'000};
  const std::vector<v6::tga::TgaKind> tgas = {
      v6::tga::TgaKind::kSixSense, v6::tga::TgaKind::kSixTree,
      v6::tga::TgaKind::kDet, v6::tga::TgaKind::kSixGen};

  // One sweep feeds both the hits and the ASes table.
  std::vector<std::vector<v6::bench::TgaRun>> sweep;
  sweep.reserve(budgets.size());
  for (const std::uint64_t budget : budgets) {
    std::cerr << "running " << tgas.size() << " TGAs @ " << budget << "\n";
    sweep.push_back(
        v6::bench::ScanSession(bench.universe(), bench.alias_list())
            .with_kinds(tgas)
            .with_seeds(seeds)
            .with_config(v6::experiment::PipelineConfig{}.with_budget(budget))
            .with_jobs(args.jobs)
            .sweep());
    timer.record("budget_" + std::to_string(budget), sweep.back());
  }

  std::cout << "=== Ablation: budget sweep (ICMP, All Active seeds) ===\n";
  for (const bool hits : {true, false}) {
    std::cout << (hits ? "-- Hits --\n" : "-- ASes --\n");
    std::vector<std::string> header{"Budget"};
    for (const auto kind : tgas) {
      header.emplace_back(v6::tga::to_string(kind));
    }
    v6::metrics::TextTable table(std::move(header));
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      std::vector<std::string> row{fmt_count(budgets[b])};
      for (const auto& run : sweep[b]) {
        row.push_back(
            fmt_count(hits ? run.outcome.hits() : run.outcome.ases()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: hits grow sublinearly (the responsive "
               "population saturates); AS counts flatten earlier; and the "
               "6Sense/6Tree hit ranking crosses over as the budget grows "
               "- offline enumeration wins when budget is scarce, online "
               "adaptation wins at the paper's large-budget regime.\n";
  return 0;
}
