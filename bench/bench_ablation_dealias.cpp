// Ablation: online dealiaser design space (paper §11: "even current
// online dealiasing approaches are not perfect, and future work is
// needed to determine the optimal approach").
//
// Sweeps the 6Gen-style dealiaser's probe count, threshold, and test
// granularity against ground truth: detection rate on true aliased
// regions (split by rate-limited or not), false-positive rate on regular
// host space, and packet cost per tested prefix.
#include <iostream>

#include "bench_common.h"
#include "dealias/online_dealiaser.h"
#include "dealias/sprt_dealiaser.h"
#include "probe/transport.h"

using v6::metrics::fmt_count;
using v6::metrics::fmt_percent;
using v6::net::Ipv6Addr;
using v6::net::ProbeType;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::bench::BenchTimer timer("ablation_dealias", args);

  v6::experiment::Workbench bench;
  const auto& universe = bench.universe();

  struct Variant {
    const char* name;
    v6::dealias::OnlineDealiaserOptions options;
  };
  const std::vector<Variant> variants = {
      {"1 probe, >=1", {.probes = 1, .retries = 3, .threshold = 1}},
      {"2 probes, >=2", {.probes = 2, .retries = 3, .threshold = 2}},
      {"3 probes, >=2 (paper)", {.probes = 3, .retries = 3, .threshold = 2}},
      {"5 probes, >=3", {.probes = 5, .retries = 3, .threshold = 3}},
      {"3 probes, >=2, no retries",
       {.probes = 3, .retries = 0, .threshold = 2}},
      {"3 probes, >=2, /64",
       {.probes = 3, .retries = 3, .threshold = 2, .prefix_len = 64}},
      {"3 probes, >=2, /80",
       {.probes = 3, .retries = 3, .threshold = 2, .prefix_len = 80}},
  };

  std::cout << "=== Ablation: online dealiaser design (ICMP) ===\n";
  v6::metrics::TextTable table({"Variant", "Detect (plain)",
                                "Detect (rate-limited)", "False positive",
                                "Pkts/prefix"});

  for (const Variant& variant : variants) {
    const auto section = timer.section(variant.name);
    std::size_t plain_hits = 0;
    std::size_t plain_total = 0;
    std::size_t limited_hits = 0;
    std::size_t limited_total = 0;

    v6::probe::SimTransport transport(universe, 1234);
    v6::dealias::OnlineDealiaser dealiaser(transport, 1234, variant.options);
    v6::net::Rng rng(99);

    for (const auto& region : universe.alias_regions()) {
      if (!v6::net::has_service(region.services, ProbeType::kIcmp)) continue;
      // One representative address per region; each /96 verdict is
      // independent because the regions are disjoint.
      const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
      const bool flagged = dealiaser.is_aliased(addr, ProbeType::kIcmp);
      if (region.rate_limited) {
        ++limited_total;
        limited_hits += flagged;
      } else {
        ++plain_total;
        plain_hits += flagged;
      }
    }

    // False positives over regular (non-aliased) host space.
    std::size_t fp = 0;
    std::size_t fp_total = 0;
    for (const auto& host : universe.hosts()) {
      if (universe.is_aliased(host.addr) || host.services == 0) continue;
      if (dealiaser.is_aliased(host.addr, ProbeType::kIcmp)) ++fp;
      if (++fp_total >= 2000) break;
    }

    const double pkts_per_prefix =
        dealiaser.prefixes_tested() == 0
            ? 0.0
            : static_cast<double>(dealiaser.probes_sent()) /
                  static_cast<double>(dealiaser.prefixes_tested());
    char pkts[32];
    std::snprintf(pkts, sizeof pkts, "%.1f", pkts_per_prefix);
    table.add_row(
        {variant.name,
         fmt_percent(plain_total ? static_cast<double>(plain_hits) /
                                       static_cast<double>(plain_total)
                                 : 0.0),
         fmt_percent(limited_total ? static_cast<double>(limited_hits) /
                                         static_cast<double>(limited_total)
                                   : 0.0),
         fmt_percent(fp_total ? static_cast<double>(fp) /
                                    static_cast<double>(fp_total)
                              : 0.0),
         pkts});
  }
  // ---- SPRT variant (this repo's proposed improvement) -----------------
  {
    const auto section = timer.section("SPRT (adaptive, ours)");
    std::size_t plain_hits = 0;
    std::size_t plain_total = 0;
    std::size_t limited_hits = 0;
    std::size_t limited_total = 0;
    v6::probe::SimTransport transport(universe, 4321);
    v6::dealias::SprtDealiaser dealiaser(transport, 4321);
    v6::net::Rng rng(98);
    for (const auto& region : universe.alias_regions()) {
      if (!v6::net::has_service(region.services, ProbeType::kIcmp)) continue;
      const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
      const bool flagged = dealiaser.is_aliased(addr, ProbeType::kIcmp);
      if (region.rate_limited) {
        ++limited_total;
        limited_hits += flagged;
      } else {
        ++plain_total;
        plain_hits += flagged;
      }
    }
    std::size_t fp = 0;
    std::size_t fp_total = 0;
    for (const auto& host : universe.hosts()) {
      if (universe.is_aliased(host.addr) || host.services == 0) continue;
      if (dealiaser.is_aliased(host.addr, ProbeType::kIcmp)) ++fp;
      if (++fp_total >= 2000) break;
    }
    const double pkts_per_prefix =
        dealiaser.prefixes_tested() == 0
            ? 0.0
            : static_cast<double>(dealiaser.probes_sent()) /
                  static_cast<double>(dealiaser.prefixes_tested());
    char pkts[32];
    std::snprintf(pkts, sizeof pkts, "%.1f", pkts_per_prefix);
    table.add_row(
        {"SPRT (adaptive, ours)",
         fmt_percent(plain_total ? static_cast<double>(plain_hits) /
                                       static_cast<double>(plain_total)
                                 : 0.0),
         fmt_percent(limited_total ? static_cast<double>(limited_hits) /
                                         static_cast<double>(limited_total)
                                   : 0.0),
         fmt_percent(fp_total ? static_cast<double>(fp) /
                                    static_cast<double>(fp_total)
                              : 0.0),
         pkts});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: the paper's 3-probe/threshold-2 design "
               "detects essentially all plain aliases with no false "
               "positives; rate-limited regions evade every variant to "
               "some degree — more probes help but cost packets.\n";
  return 0;
}
