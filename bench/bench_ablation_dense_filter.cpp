// Ablation: the AS12322-analogue filter (paper §4.1). The paper filters
// a single ISP's trivially-enumerable ICMP pattern from all ICMP metrics
// because it otherwise dominates and biases generator comparison. This
// bench quantifies that: per TGA, ICMP hits with and without the filter,
// and how much of the unfiltered count is just the dense pattern.
#include <iostream>

#include "bench_common.h"

using v6::metrics::fmt_count;
using v6::metrics::fmt_percent;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv, 200'000);
  v6::experiment::PipelineConfig config;
  config.budget = args.budget;

  v6::bench::BenchTimer timer("ablation_dense_filter", args);

  v6::experiment::Workbench bench;
  const auto& seeds = bench.all_active();

  std::cout << "=== Ablation: AS12322-analogue filter (ICMP, budget "
            << fmt_count(config.budget) << ") ===\n";
  v6::metrics::TextTable table({"TGA", "Hits (filtered)",
                                "Hits (unfiltered)", "Dense share",
                                "ASes (filtered)", "ASes (unfiltered)"});

  for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
    v6::experiment::PipelineConfig filtered = config;
    filtered.filter_dense = true;
    const auto filtered_run = v6::bench::run_one_tga(
        bench.universe(), kind, seeds, bench.alias_list(), filtered);
    timer.record(std::string(v6::tga::to_string(kind)) + "/filtered",
                 {filtered_run});
    const auto& with_filter = filtered_run.outcome;

    v6::experiment::PipelineConfig unfiltered = config;
    unfiltered.filter_dense = false;
    const auto unfiltered_run = v6::bench::run_one_tga(
        bench.universe(), kind, seeds, bench.alias_list(), unfiltered);
    timer.record(std::string(v6::tga::to_string(kind)) + "/unfiltered",
                 {unfiltered_run});
    const auto& without_filter = unfiltered_run.outcome;

    const double dense_share =
        without_filter.hits() == 0
            ? 0.0
            : static_cast<double>(without_filter.hits() -
                                  with_filter.hits()) /
                  static_cast<double>(without_filter.hits());
    table.add_row({std::string(v6::tga::to_string(kind)),
                   fmt_count(with_filter.hits()),
                   fmt_count(without_filter.hits()),
                   fmt_percent(dense_share),
                   fmt_count(with_filter.ases()),
                   fmt_count(without_filter.ases())});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: without the filter, the dense pattern "
               "inflates hit counts for pattern-hungry generators and "
               "would distort any cross-TGA comparison — the reason the "
               "paper removes AS12322 from ICMP metrics.\n";
  return 0;
}
