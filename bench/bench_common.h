// Shared helpers for the bench harnesses that regenerate the paper's
// tables and figures.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "metrics/reporter.h"
#include "metrics/scan_outcome.h"
#include "tga/registry.h"

namespace v6::bench {

/// Every bench accepts an optional budget argument:
///   ./bench_xxx [budget-per-run]
/// Default 400K — the scaled analogue of the paper's 50M budget.
inline std::uint64_t budget_from_argv(int argc, char** argv,
                                      std::uint64_t fallback = 400'000) {
  if (argc > 1) {
    const std::uint64_t v = std::strtoull(argv[1], nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

struct TgaRun {
  v6::tga::TgaKind kind;
  v6::metrics::ScanOutcome outcome;
};

/// Runs all eight TGAs over one seed dataset / probe type.
inline std::vector<TgaRun> run_all_tgas(
    const v6::simnet::Universe& universe,
    const std::vector<v6::net::Ipv6Addr>& seeds,
    const v6::dealias::AliasList& alias_list,
    const v6::experiment::PipelineConfig& config) {
  std::vector<TgaRun> runs;
  runs.reserve(v6::tga::kNumTgas);
  for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
    auto generator = v6::tga::make_generator(kind);
    runs.push_back(
        {kind, v6::experiment::run_tga(universe, *generator, seeds,
                                       alias_list, config)});
  }
  return runs;
}

/// Header row "TGA | 6Sense | DET | ..." used by the ratio figures.
inline std::vector<std::string> tga_header(const std::string& first) {
  std::vector<std::string> h{first};
  for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
    h.emplace_back(v6::tga::to_string(kind));
  }
  return h;
}

}  // namespace v6::bench
