// Shared helpers for the bench harnesses that regenerate the paper's
// tables and figures: argument parsing (budget + --jobs), the parallel
// TGA sweep (the ScanSession builder, src/experiment/session.h), and a
// timing harness that writes BENCH_<name>.json so the perf trajectory
// of every bench is machine-readable across revisions.
#pragma once

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "experiment/pipeline.h"
#include "experiment/session.h"
#include "experiment/workbench.h"
#include "metrics/reporter.h"
#include "metrics/scan_outcome.h"
#include "obs/quantiles.h"
#include "runtime/thread_pool.h"
#include "tga/registry.h"

namespace v6::bench {

/// Build flavor baked in by CMake (V6_BUILD_TAG compile definition, set
/// by the sanitizer presets). Instrumented builds write their timing
/// records to BENCH_<name>.<tag>.json so sanitizer overhead tracks as
/// its own trajectory instead of polluting the Release numbers.
#if defined(V6_BUILD_TAG)
inline constexpr const char* kBuildTag = V6_BUILD_TAG;
#else
inline constexpr const char* kBuildTag = "release";
#endif

using v6::experiment::ScanSession;
using v6::experiment::TgaRun;

struct BenchArgs {
  /// Generation budget per run. Default 400K — the scaled analogue of
  /// the paper's 50M budget.
  std::uint64_t budget = 400'000;
  /// Concurrent TGA runs / variant computations (--jobs N, default
  /// V6_JOBS env or hardware_concurrency).
  unsigned jobs = 1;
  /// Measurement repeats per timed configuration (--repeat N). Benches
  /// that honor it run each timed section N times and report the min and
  /// median wall time (record_samples), which tames scheduler noise.
  unsigned repeat = 1;
  /// CI smoke mode (--smoke): benches shrink their workloads and skip
  /// host-sensitive perf assertions, keeping only correctness checks.
  bool smoke = false;
};

[[noreturn]] inline void usage(const char* argv0, const std::string& error) {
  std::cerr << "error: " << error << "\n"
            << "usage: " << argv0
            << " [budget-per-run] [--jobs N] [--repeat N] [--smoke]\n"
            << "  budget-per-run  positive integer (default varies by bench)\n"
            << "  --jobs N        concurrent runs (default: V6_JOBS or "
               "hardware threads)\n"
            << "  --repeat N      timed repeats per configuration "
               "(default 1; min/median reported)\n"
            << "  --smoke         tiny-workload CI mode; perf assertions "
               "are skipped\n";
  std::exit(2);
}

/// Strict positive-integer parse: rejects empty input, trailing garbage,
/// overflow, and zero.
inline bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  const std::string owned(text);  // strtoull needs a terminated buffer
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(owned.c_str(), &end, 10);
  if (end != owned.c_str() + owned.size() || errno == ERANGE || v == 0) {
    return false;
  }
  *out = v;
  return true;
}

/// Every bench accepts `[budget-per-run] [--jobs N]`. Malformed input is
/// a usage error, never a silent fallback.
inline BenchArgs parse_args(int argc, char** argv,
                            std::uint64_t fallback_budget = 400'000) {
  BenchArgs args;
  args.budget = fallback_budget;
  args.jobs = v6::runtime::default_jobs();
  bool have_budget = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::uint64_t v = 0;
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc || !parse_u64(argv[i + 1], &v) || v > 4096) {
        usage(argv[0], "--jobs needs a positive integer");
      }
      args.jobs = static_cast<unsigned>(v);
      ++i;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_u64(arg.substr(7), &v) || v > 4096) {
        usage(argv[0], "--jobs needs a positive integer");
      }
      args.jobs = static_cast<unsigned>(v);
    } else if (arg == "--repeat") {
      if (i + 1 >= argc || !parse_u64(argv[i + 1], &v) || v > 1000) {
        usage(argv[0], "--repeat needs a positive integer");
      }
      args.repeat = static_cast<unsigned>(v);
      ++i;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      if (!parse_u64(arg.substr(9), &v) || v > 1000) {
        usage(argv[0], "--repeat needs a positive integer");
      }
      args.repeat = static_cast<unsigned>(v);
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (!have_budget && arg.rfind("-", 0) != 0) {
      if (!parse_u64(arg, &v)) {
        usage(argv[0], "budget must be a positive integer, got '" +
                           std::string(arg) + "'");
      }
      args.budget = v;
      have_budget = true;
    } else {
      usage(argv[0], "unexpected argument '" + std::string(arg) + "'");
    }
  }
  return args;
}

/// Backwards-compatible budget-only accessor, now hardened: garbage or
/// out-of-range input aborts with a usage message.
inline std::uint64_t budget_from_argv(int argc, char** argv,
                                      std::uint64_t fallback = 400'000) {
  return parse_args(argc, argv, fallback).budget;
}

/// Wall-clock timing harness. Collects one entry per recorded run (or
/// coarse phase) and writes them as BENCH_<name>.json in the working
/// directory — the machine-readable perf trajectory of the bench suite.
///
/// JSON schema (docs/ALGORITHMS.md has the full description):
///   { "bench": str, "budget": int, "jobs": int,
///     "total_wall_seconds": float,
///     "runs": [ { "label": str, "wall_seconds": float,
///                 // record_samples entries (repeated timings) add:
///                 // "wall_seconds_median": float, "repeats": int, and
///                 // bench-specific numeric fields (probes_per_second),
///                 // with wall_seconds then being the min over repeats.
///                 // TGA runs additionally carry:
///                 "tga": str, "generated": int, "responsive": int,
///                 "hits": int, "ases": int, "aliases": int,
///                 "dense_filtered": int, "packets": int,
///                 "virtual_seconds": float,
///                 // per-phase breakdown from the run's obs report
///                 // (pipeline.* span totals, "pipeline." stripped):
///                 "phases": { "run": float, "generate": float,
///                             "scan": float, "dealias": float, ... },
///                 // distribution summaries of every histogram the run
///                 // recorded (obs/quantiles.h schema):
///                 "quantiles": { "<metric>": { "count": int,
///                     "mean": float, "p50": float, "p90": float,
///                     "p99": float, "max": float }, ... } } ] }
class BenchTimer {
  using Clock = std::chrono::steady_clock;

 public:
  BenchTimer(std::string name, const BenchArgs& args)
      : name_(std::move(name)),
        budget_(args.budget),
        jobs_(args.jobs),
        start_(Clock::now()) {}

  ~BenchTimer() {
    if (!written_) write();
  }

  /// Records every TGA run of one labelled sweep, including the
  /// per-phase wall-time breakdown from the run's obs report.
  void record(const std::string& label, const std::vector<TgaRun>& runs) {
    for (const TgaRun& run : runs) {
      Entry e;
      e.label = label;
      e.tga = std::string(v6::tga::to_string(run.kind));
      e.wall_seconds = run.wall_seconds;
      e.generated = run.outcome.generated;
      e.responsive = run.outcome.responsive;
      e.hits = run.outcome.hits();
      e.ases = run.outcome.ases();
      e.aliases = run.outcome.aliases;
      e.dense_filtered = run.outcome.dense_filtered;
      e.packets = run.outcome.packets;
      e.virtual_seconds = run.outcome.virtual_seconds;
      e.has_outcome = true;
      for (const auto& [name, total] : run.report.timers) {
        constexpr std::string_view kPrefix = "pipeline.";
        if (name.rfind(kPrefix, 0) == 0) {
          e.phases.emplace_back(name.substr(kPrefix.size()),
                                total.seconds());
        }
      }
      if (!run.report.histograms.empty()) {
        e.quantiles = v6::obs::quantiles_json(run.report.histograms);
      }
      entries_.push_back(std::move(e));
    }
  }

  /// Records a coarse non-TGA phase (setup, analysis, a table pass).
  void record_phase(const std::string& label, double wall_seconds) {
    Entry e;
    e.label = label;
    e.wall_seconds = wall_seconds;
    entries_.push_back(std::move(e));
  }

  /// Records a repeated timed configuration (--repeat N): `samples` are
  /// the per-repeat wall times. The entry's wall_seconds is the MINIMUM
  /// (the standard low-noise estimator for repeated benchmarks), with
  /// "wall_seconds_median" and "repeats" alongside; `extras` are emitted
  /// as additional top-level numeric fields (e.g. probes_per_second).
  void record_samples(const std::string& label, std::vector<double> samples,
                      std::vector<std::pair<std::string, double>> extras = {}) {
    if (samples.empty()) return;
    std::sort(samples.begin(), samples.end());
    Entry e;
    e.label = label;
    e.wall_seconds = samples.front();
    e.wall_seconds_median = samples[samples.size() / 2];
    e.repeats = samples.size();
    e.extras = std::move(extras);
    entries_.push_back(std::move(e));
  }

  /// RAII phase timer: records on destruction.
  class Section {
   public:
    Section(BenchTimer& timer, std::string label)
        : timer_(&timer), label_(std::move(label)), start_(Clock::now()) {}
    ~Section() { timer_->record_phase(label_, seconds_since(start_)); }
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    BenchTimer* timer_;
    std::string label_;
    Clock::time_point start_;
  };

  Section section(std::string label) {
    return Section(*this, std::move(label));
  }

  /// Writes BENCH_<name>.json — or BENCH_<name>.<tag>.json from a
  /// tagged (sanitizer) build. Also triggered by the destructor.
  void write() {
    written_ = true;
    const std::string tag = kBuildTag;
    const std::string path = tag == "release"
                                 ? "BENCH_" + name_ + ".json"
                                 : "BENCH_" + name_ + "." + tag + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    out << "{\n"
        << "  \"bench\": \"" << escape(name_) << "\",\n"
        << "  \"build\": \"" << escape(tag) << "\",\n"
        << "  \"budget\": " << budget_ << ",\n"
        << "  \"jobs\": " << jobs_ << ",\n"
        << "  \"total_wall_seconds\": " << seconds_since(start_) << ",\n"
        << "  \"runs\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"label\": \"" << escape(e.label) << "\", "
          << "\"wall_seconds\": " << e.wall_seconds;
      if (e.repeats > 0) {
        out << ", \"wall_seconds_median\": " << e.wall_seconds_median
            << ", \"repeats\": " << e.repeats;
      }
      for (const auto& [key, value] : e.extras) {
        out << ", \"" << escape(key) << "\": " << value;
      }
      if (e.has_outcome) {
        out << ", \"tga\": \"" << escape(e.tga) << "\""
            << ", \"generated\": " << e.generated
            << ", \"responsive\": " << e.responsive
            << ", \"hits\": " << e.hits << ", \"ases\": " << e.ases
            << ", \"aliases\": " << e.aliases
            << ", \"dense_filtered\": " << e.dense_filtered
            << ", \"packets\": " << e.packets
            << ", \"virtual_seconds\": " << e.virtual_seconds;
      }
      if (!e.phases.empty()) {
        out << ", \"phases\": {";
        for (std::size_t p = 0; p < e.phases.size(); ++p) {
          out << (p == 0 ? "" : ", ") << "\"" << escape(e.phases[p].first)
              << "\": " << e.phases[p].second;
        }
        out << "}";
      }
      if (!e.quantiles.empty()) {
        out << ", \"quantiles\": " << e.quantiles;  // pre-rendered JSON
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::cerr << "wrote " << path << " (" << entries_.size() << " runs, jobs="
              << jobs_ << ")\n";
  }

 private:
  struct Entry {
    std::string label;
    std::string tga;
    double wall_seconds = 0.0;
    /// record_samples extensions (repeats == 0 on single-shot entries).
    double wall_seconds_median = 0.0;
    std::size_t repeats = 0;
    std::vector<std::pair<std::string, double>> extras;
    bool has_outcome = false;
    std::uint64_t generated = 0, responsive = 0, hits = 0, ases = 0,
                  aliases = 0, dense_filtered = 0, packets = 0;
    double virtual_seconds = 0.0;
    /// (phase name, seconds), already sorted: report timers are a map.
    std::vector<std::pair<std::string, double>> phases;
    /// Pre-rendered quantiles JSON object (empty when the run recorded
    /// no histograms).
    std::string quantiles;
  };

  static double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::uint64_t budget_;
  unsigned jobs_;
  Clock::time_point start_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

/// Wall-timed single-TGA pipeline run (benches that sweep configs rather
/// than TGA sets).
inline TgaRun run_one_tga(const v6::simnet::Universe& universe,
                          v6::tga::TgaKind kind,
                          std::span<const v6::net::Ipv6Addr> seeds,
                          const v6::dealias::AliasList& alias_list,
                          const v6::experiment::PipelineConfig& config) {
  return ScanSession(universe, alias_list)
      .with_kind(kind)
      .with_seeds(seeds)
      .with_config(config)
      .sweep()
      .front();
}

/// Header row "TGA | 6Sense | DET | ..." used by the ratio figures.
inline std::vector<std::string> tga_header(const std::string& first) {
  std::vector<std::string> h{first};
  for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
    h.emplace_back(v6::tga::to_string(kind));
  }
  return h;
}

}  // namespace v6::bench
