// Extension bench: hitlist aging. The paper's RQ1.b shows stale seeds
// hurt generation and cites hitlist-decay work ("Rusty Clusters"); this
// bench makes the temporal dimension explicit: age the simulated
// Internet epoch by epoch, track how a day-0 hitlist decays, and compare
// a TGA fed the stale day-0 hitlist against one fed a re-verified
// (re-scanned) seed set at each epoch.
#include <iostream>

#include "bench_common.h"
#include "dealias/online_dealiaser.h"
#include "probe/scanner.h"
#include "probe/transport.h"
#include "seeds/preprocess.h"
#include "simnet/universe_builder.h"

using v6::metrics::fmt_count;
using v6::metrics::fmt_percent;
using v6::net::Ipv6Addr;
using v6::net::ProbeType;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv, 150'000);
  const std::uint64_t budget = args.budget;

  v6::bench::BenchTimer timer("ext_aging", args);

  // A private universe: this bench mutates it across epochs.
  v6::simnet::UniverseConfig universe_config;
  universe_config.seed = 42;
  universe_config.num_ases = 2000;
  universe_config.host_scale = 0.12;
  auto universe = v6::simnet::UniverseBuilder::build(universe_config);

  // Day-0 hitlist: responsive seeds, jointly dealiased (offline list +
  // online probing) per the paper's RQ1 best practice.
  v6::seeds::SeedCollector collector(universe, 42);
  v6::dealias::AliasList alias_list =
      v6::dealias::AliasList::published_from(universe);
  std::vector<Ipv6Addr> day0;
  {
    const auto collected = collector.collect_all();
    std::vector<Ipv6Addr> all(collected.addrs().begin(),
                              collected.addrs().end());
    v6::probe::SimTransport transport(universe, 42);
    v6::probe::Scanner scanner(transport, nullptr, {.seed = 42});
    const auto activity = v6::seeds::scan_activity(all, scanner);
    v6::dealias::OnlineDealiaser online(transport, 42);
    v6::dealias::Dealiaser joint(v6::dealias::DealiasMode::kJoint,
                                 &alias_list, &online);
    for (const Ipv6Addr& addr : all) {
      if (activity.active_any(addr) &&
          !joint.is_aliased(addr, ProbeType::kIcmp)) {
        day0.push_back(addr);
      }
    }
  }
  std::cout << "day-0 hitlist: " << fmt_count(day0.size())
            << " responsive seeds\n\n";

  v6::metrics::TextTable table({"Epoch", "Hitlist still alive",
                                "Stale-seed hits", "Re-verified hits",
                                "Re-verified seeds"});

  for (int epoch = 0; epoch <= 4; ++epoch) {
    if (epoch > 0) {
      v6::simnet::AgingConfig aging;
      aging.seed = 1000 + static_cast<std::uint64_t>(epoch);
      v6::simnet::UniverseBuilder::age(universe, aging);
    }

    // How much of the day-0 hitlist still answers?
    v6::probe::SimTransport check_transport(universe, 7 + epoch);
    v6::probe::Scanner check_scanner(check_transport, nullptr,
                                     {.seed = 7ull + epoch});
    const auto activity = v6::seeds::scan_activity(day0, check_scanner);
    std::vector<Ipv6Addr> verified;
    for (const Ipv6Addr& addr : day0) {
      if (activity.active_any(addr)) verified.push_back(addr);
    }

    // TGA runs: stale day-0 seeds vs the re-verified subset.
    v6::experiment::PipelineConfig config;
    config.budget = budget;
    config.seed = 42 + static_cast<std::uint64_t>(epoch);
    const auto stale_run = v6::bench::run_one_tga(
        universe, v6::tga::TgaKind::kDet, day0, alias_list, config);
    timer.record("epoch_" + std::to_string(epoch) + "/stale", {stale_run});
    const auto& stale = stale_run.outcome;
    const auto fresh_run = v6::bench::run_one_tga(
        universe, v6::tga::TgaKind::kDet, verified, alias_list, config);
    timer.record("epoch_" + std::to_string(epoch) + "/reverified",
                 {fresh_run});
    const auto& fresh = fresh_run.outcome;

    table.add_row({std::to_string(epoch),
                   fmt_percent(static_cast<double>(verified.size()) /
                               static_cast<double>(day0.size())),
                   fmt_count(stale.hits()), fmt_count(fresh.hits()),
                   fmt_count(verified.size())});
    std::cerr << "epoch " << epoch << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the day-0 hitlist decays every epoch; "
               "re-verifying seeds before generation recovers an "
               "increasing share of the lost hits (the paper's "
               "pre-scan-your-seeds recommendation, extended in time).\n";
  return 0;
}
