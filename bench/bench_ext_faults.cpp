// Extension bench: fault injection. The paper's scans assume a
// cooperative network; this bench reruns the Fig-3-style TGA sweep (all
// eight generators on the All Active dataset) across a loss x
// rate-limit grid, with and without the robust-scanner retry path, and
// reports the degradation curves:
//   - how total hits decay as loss rises / rate limits tighten,
//   - whether the retry-enabled scanner dominates the retry-free one at
//     every faulty grid point (it must at every nonzero loss point —
//     the bench exits nonzero if not),
//   - whether the paper's TGA *ranking* survives the faults (relative
//     conclusions should be robust even when absolute hits drop).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"

using v6::metrics::fmt_count;
using v6::metrics::fmt_percent;

namespace {

struct LossPoint {
  const char* name;
  double prob;
};

struct RateLimitPoint {
  const char* name;
  /// Replies per second per /32 bucket; 0 = no rate limiting.
  double rate;
};

struct Policy {
  const char* name;
  bool robust;
};

std::string cell_label(const LossPoint& loss, const RateLimitPoint& rl,
                       const Policy& policy) {
  return std::string(loss.name) + "/" + rl.name + "/" + policy.name;
}

/// TGA names ordered by descending hits — the ranking whose stability
/// under faults the bench reports.
std::vector<std::string> ranking(const std::vector<v6::bench::TgaRun>& runs) {
  std::vector<const v6::bench::TgaRun*> sorted;
  for (const auto& run : runs) sorted.push_back(&run);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto* a, const auto* b) {
                     return a->outcome.hits() > b->outcome.hits();
                   });
  std::vector<std::string> names;
  for (const auto* run : sorted) {
    names.emplace_back(v6::tga::to_string(run->kind));
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv, 60'000);

  v6::bench::BenchTimer timer("ext_faults", args);

  v6::experiment::Workbench bench;
  {
    const auto section = timer.section("workbench_precompute");
    bench.precompute(args.jobs);
  }
  const auto& seeds = bench.all_active();
  std::cout << "All Active seeds: " << fmt_count(seeds.size()) << ", budget "
            << fmt_count(args.budget) << " per TGA run\n\n";

  const std::vector<LossPoint> losses = {
      {"loss0", 0.0}, {"loss0.10", 0.10}, {"loss0.30", 0.30}};
  const std::vector<RateLimitPoint> rate_limits = {
      {"rl-off", 0.0}, {"rl5", 5.0}, {"rl1", 1.0}};
  const std::vector<Policy> policies = {{"retry-free", false},
                                        {"robust", true}};

  // Total hits per grid cell, indexed [loss][rlimit][policy], plus the
  // fault-free TGA ranking for the stability report.
  std::vector<std::vector<std::vector<std::uint64_t>>> totals(
      losses.size(),
      std::vector<std::vector<std::uint64_t>>(
          rate_limits.size(), std::vector<std::uint64_t>(policies.size(), 0)));
  std::vector<std::string> baseline_ranking;
  std::vector<std::string> ranking_notes;

  for (std::size_t li = 0; li < losses.size(); ++li) {
    for (std::size_t ri = 0; ri < rate_limits.size(); ++ri) {
      // The plan must outlive the runs below: PipelineConfig borrows it.
      v6::fault::FaultPlan plan;
      if (losses[li].prob > 0.0) plan.with_base_loss(losses[li].prob);
      if (rate_limits[ri].rate > 0.0) {
        plan.with_rate_limit(v6::net::Prefix{}, rate_limits[ri].rate,
                             /*burst=*/50.0, /*bucket_prefix_len=*/32);
      }
      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        v6::experiment::PipelineConfig config;
        config.budget = args.budget;
        config.faults = &plan;
        if (policies[pi].robust) {
          config.with_scan_retries(3)
              .with_probe_timeout(0.05)
              .with_retry_backoff(0.1, /*jitter=*/0.25)
              .with_adaptive_backoff(/*threshold=*/16, /*wait_s=*/1.0);
        }
        const std::string label =
            cell_label(losses[li], rate_limits[ri], policies[pi]);
        const auto runs = v6::bench::ScanSession(bench.universe(), bench.alias_list())
                              .with_kinds(v6::tga::kAllTgas)
                              .with_seeds(seeds)
                              .with_config(config)
                              .with_jobs(args.jobs)
                              .sweep();
        timer.record(label, runs);
        for (const auto& run : runs) {
          totals[li][ri][pi] += run.outcome.hits();
        }
        if (li == 0 && ri == 0 && !policies[pi].robust) {
          baseline_ranking = ranking(runs);
        } else {
          const auto here = ranking(runs);
          if (!baseline_ranking.empty() && here != baseline_ranking) {
            std::string note = label + ":";
            for (const auto& name : here) note += " " + name;
            ranking_notes.push_back(std::move(note));
          }
        }
        std::cerr << label << " done: "
                  << fmt_count(totals[li][ri][pi]) << " total hits\n";
      }
    }
  }

  // ---- Degradation curves -------------------------------------------------
  v6::metrics::TextTable table(
      {"Loss", "Rate limit", "Retry-free hits", "Robust hits", "Robust/free",
       "vs fault-free"});
  const double fault_free = static_cast<double>(totals[0][0][0]);
  for (std::size_t li = 0; li < losses.size(); ++li) {
    for (std::size_t ri = 0; ri < rate_limits.size(); ++ri) {
      const double free_hits = static_cast<double>(totals[li][ri][0]);
      const double robust_hits = static_cast<double>(totals[li][ri][1]);
      table.add_row({losses[li].name, rate_limits[ri].name,
                     fmt_count(totals[li][ri][0]),
                     fmt_count(totals[li][ri][1]),
                     v6::metrics::fmt_ratio(robust_hits / free_hits),
                     fmt_percent(free_hits / fault_free)});
    }
  }
  table.print(std::cout);

  // ---- Retry dominance ----------------------------------------------------
  // At every nonzero loss point the robust scanner must recover strictly
  // more hits than the retry-free one; this is the bench's acceptance
  // criterion, so violations are fatal.
  bool dominated = true;
  for (std::size_t li = 1; li < losses.size(); ++li) {
    for (std::size_t ri = 0; ri < rate_limits.size(); ++ri) {
      if (totals[li][ri][1] <= totals[li][ri][0]) {
        std::cout << "\nDOMINANCE VIOLATION at " << losses[li].name << "/"
                  << rate_limits[ri].name << ": robust "
                  << fmt_count(totals[li][ri][1]) << " <= retry-free "
                  << fmt_count(totals[li][ri][0]) << "\n";
        dominated = false;
      }
    }
  }
  std::cout << "\nRetry dominance at nonzero loss: "
            << (dominated ? "holds at every grid point" : "VIOLATED") << "\n";

  // ---- Ranking stability --------------------------------------------------
  std::cout << "\nFault-free TGA ranking (by hits):";
  for (const auto& name : baseline_ranking) std::cout << " " << name;
  std::cout << "\n";
  if (ranking_notes.empty()) {
    std::cout << "TGA ranking is identical at every grid point: the "
                 "paper's relative conclusions survive these faults.\n";
  } else {
    std::cout << "Grid points where the ranking shifts ("
              << ranking_notes.size() << "):\n";
    for (const auto& note : ranking_notes) {
      std::cout << "  " << note << "\n";
    }
  }
  return dominated ? 0 : 1;
}
