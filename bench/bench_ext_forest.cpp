// Extension bench: 6Forest (excluded from the paper's core comparison)
// against its tree-family relatives on the All Active dataset, across
// all four probe types — the comparison the paper could not run at
// scale with the public implementation.
#include <iostream>

#include "bench_common.h"

using v6::metrics::fmt_count;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv, 200'000);
  v6::experiment::PipelineConfig config;
  config.budget = args.budget;

  v6::bench::BenchTimer timer("ext_forest", args);

  v6::experiment::Workbench bench;
  const auto& seeds = bench.all_active();

  const std::vector<v6::tga::TgaKind> contenders = {
      v6::tga::TgaKind::kSixForest, v6::tga::TgaKind::kSixTree,
      v6::tga::TgaKind::kSixGraph, v6::tga::TgaKind::kDet};

  std::cout << "=== Extension: 6Forest vs tree-family TGAs (budget "
            << fmt_count(config.budget) << ") ===\n";
  for (const v6::net::ProbeType port : v6::net::kAllProbeTypes) {
    v6::metrics::TextTable table(
        {std::string(v6::net::to_string(port)), "Hits", "ASes", "Aliases"});
    const auto run_config = v6::experiment::PipelineConfig(config).with_type(port);
    std::cerr << "running " << contenders.size() << " contenders on "
              << v6::net::to_string(port) << "\n";
    const auto runs = v6::bench::ScanSession(bench.universe(), bench.alias_list())
                          .with_kinds(contenders)
                          .with_seeds(seeds)
                          .with_config(run_config)
                          .with_jobs(args.jobs)
                          .sweep();
    timer.record(std::string(v6::net::to_string(port)), runs);
    for (const auto& run : runs) {
      table.add_row({std::string(v6::tga::to_string(run.kind)),
                     fmt_count(run.outcome.hits()),
                     fmt_count(run.outcome.ases()),
                     fmt_count(run.outcome.aliases)});
    }
    table.print(std::cout);
  }
  std::cout << "\nContext: prior comparisons (cited by the paper) found "
               "6Forest unable to scale; with the same substrate and "
               "budget accounting as the core eight, its ensemble + "
               "outlier isolation can be evaluated on equal footing.\n";
  return 0;
}
