// Regenerates paper Figures 1 and 2: pairwise seed-source overlap by IP
// and by AS, for the full dataset (Fig 1) and for responsive addresses
// only (Fig 2). The far-right column is the share of the source present
// in at least one other source.
#include <iostream>

#include "bench_common.h"
#include "seeds/overlap.h"

using v6::metrics::fmt_percent;

namespace {

void print_matrix(const char* title, const v6::seeds::OverlapMatrix& m) {
  std::cout << title << "\n";
  std::vector<std::string> header{"Source"};
  for (const auto source : v6::seeds::kAllSeedSources) {
    header.emplace_back(v6::seeds::to_string(source).substr(0, 7));
  }
  header.emplace_back("Overlap");
  header.emplace_back("Total");
  v6::metrics::TextTable table(std::move(header));
  for (int a = 0; a < v6::seeds::kNumSeedSources; ++a) {
    std::vector<std::string> row{
        std::string(v6::seeds::to_string(v6::seeds::kAllSeedSources[
            static_cast<std::size_t>(a)]))};
    for (int b = 0; b < v6::seeds::kNumSeedSources; ++b) {
      row.push_back(a == b ? "-"
                           : fmt_percent(m.cell[static_cast<std::size_t>(a)]
                                               [static_cast<std::size_t>(b)],
                                         0));
    }
    row.push_back(fmt_percent(m.any_other[static_cast<std::size_t>(a)], 1));
    row.push_back(
        v6::metrics::fmt_count(m.total[static_cast<std::size_t>(a)]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::bench::BenchTimer timer("fig12_overlap", args);

  v6::experiment::Workbench bench;
  const auto& dataset = bench.seeds();
  const auto asn_of = [&](const v6::net::Ipv6Addr& a) {
    return bench.universe().asn_of(a);
  };
  const auto responsive = [&](const v6::net::Ipv6Addr& a) {
    return bench.activity().active_any(a);
  };

  {
    const auto section = timer.section("full_dataset");
    std::cout << "=== Figure 1: seed source overlap (full dataset) ===\n\n";
    print_matrix("-- by IP --", v6::seeds::ip_overlap(dataset));
    print_matrix("-- by AS --", v6::seeds::as_overlap(dataset, asn_of));
  }

  {
    const auto section = timer.section("responsive_only");
    std::cout << "=== Figure 2: overlap of responsive addresses ===\n\n";
    print_matrix("-- by IP --", v6::seeds::ip_overlap(dataset, responsive));
    print_matrix("-- by AS --",
                 v6::seeds::as_overlap(dataset, asn_of, responsive));
  }
  return 0;
}
