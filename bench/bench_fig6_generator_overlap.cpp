// Regenerates paper Figure 6: cumulative unique addresses and ASes
// contributed by each generator on the All Active dataset, per probe
// type, ordered greedily by marginal contribution.
#include <iostream>

#include "bench_common.h"
#include "metrics/coverage.h"

using v6::metrics::fmt_count;
using v6::metrics::fmt_percent;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::experiment::PipelineConfig base_config;
  base_config.budget = args.budget;

  v6::bench::BenchTimer timer("fig6_generator_overlap", args);

  v6::experiment::Workbench bench;
  const auto& seeds = bench.all_active();

  std::cout << "=== Figure 6: cumulative unique contribution by generator "
               "(All Active seeds, budget "
            << fmt_count(base_config.budget) << ") ===\n";

  for (const v6::net::ProbeType port : v6::net::kAllProbeTypes) {
    const auto config = v6::experiment::PipelineConfig(base_config).with_type(port);
    std::cerr << "running " << v6::net::to_string(port) << "\n";
    const auto runs = v6::bench::ScanSession(bench.universe(), bench.alias_list())
                          .with_seeds(seeds)
                          .with_config(config)
                          .with_jobs(args.jobs)
                          .sweep();
    timer.record(std::string(v6::net::to_string(port)), runs);

    std::vector<std::pair<std::string,
                          const std::unordered_set<v6::net::Ipv6Addr>*>>
        hit_sets;
    std::vector<std::pair<std::string,
                          const std::unordered_set<std::uint32_t>*>>
        as_sets;
    for (const auto& run : runs) {
      hit_sets.emplace_back(std::string(v6::tga::to_string(run.kind)),
                            &run.outcome.hit_set);
      as_sets.emplace_back(std::string(v6::tga::to_string(run.kind)),
                           &run.outcome.as_set);
    }

    std::cout << "\n-- " << v6::net::to_string(port) << " hits --\n";
    for (const auto& step : v6::metrics::cumulative_contribution(hit_sets)) {
      std::cout << "  +" << step.name << ": " << fmt_count(step.cumulative)
                << " (" << fmt_percent(step.cumulative_fraction) << ", +"
                << fmt_count(step.marginal) << ")\n";
    }
    std::cout << "-- " << v6::net::to_string(port) << " ASes --\n";
    for (const auto& step :
         v6::metrics::cumulative_as_contribution(as_sets)) {
      std::cout << "  +" << step.name << ": " << fmt_count(step.cumulative)
                << " (" << fmt_percent(step.cumulative_fraction) << ", +"
                << fmt_count(step.marginal) << ")\n";
    }
  }
  std::cout << "\nExpected shape (paper): a small number of generators "
               "yields a supermajority of coverage; top hit contributors "
               "include 6Sense/6Tree/DET, top AS contributors DET/6Sense/"
               "6Graph; 6Scan contributes almost nothing beyond 6Tree.\n";
  return 0;
}
