// Regenerates paper Figure 7 (Appendix D): hits when generating from a
// seed dataset active on port X and scanning on port Y, for all X, Y —
// including the All Active dataset as a fifth input row.
#include <iostream>

#include "bench_common.h"

using v6::metrics::fmt_count;
using v6::net::ProbeType;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::experiment::PipelineConfig base_config;
  base_config.budget = args.budget;

  v6::bench::BenchTimer timer("fig7_cross_port", args);

  v6::experiment::Workbench bench;
  {
    const auto section = timer.section("workbench_precompute");
    bench.precompute(args.jobs);
  }

  struct InputRow {
    std::string name;
    const std::vector<v6::net::Ipv6Addr>* seeds;
  };
  std::vector<InputRow> inputs;
  for (const ProbeType t : v6::net::kAllProbeTypes) {
    inputs.push_back({std::string(v6::net::to_string(t)) + " seeds",
                      &bench.port_specific(t)});
  }
  inputs.push_back({"All Active", &bench.all_active()});

  std::cout << "=== Figure 7: scanning port Y from seeds active on port X "
               "(combined hits of all 8 TGAs, budget "
            << fmt_count(base_config.budget) << " each) ===\n";

  for (const ProbeType scan_port : v6::net::kAllProbeTypes) {
    std::cout << "\n-- scan target: " << v6::net::to_string(scan_port)
              << " --\n";
    v6::metrics::TextTable table(v6::bench::tga_header("Input dataset"));
    for (const InputRow& input : inputs) {
      const auto config =
          v6::experiment::PipelineConfig(base_config).with_type(scan_port);
      std::cerr << "running " << v6::net::to_string(scan_port) << " from "
                << input.name << " (" << input.seeds->size() << " seeds)\n";
      const auto runs = v6::bench::ScanSession(bench.universe(), bench.alias_list())
                            .with_seeds(*input.seeds)
                            .with_config(config)
                            .with_jobs(args.jobs)
                            .sweep();
      timer.record(std::string(v6::net::to_string(scan_port)) + "/" +
                       input.name,
                   runs);
      std::vector<std::string> row{input.name};
      for (const auto& run : runs) {
        row.push_back(fmt_count(run.outcome.hits()));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape (paper): each scan target is served best "
               "by its own port-specific dataset; ICMP scans do roughly as "
               "well from All Active; TCP/UDP yields from mismatched "
               "datasets are lower but same order of magnitude.\n";
  return 0;
}
