// Microbenchmarks (google-benchmark): throughput of the primitives the
// experiment pipeline is built from — address parse/format, LPM trie,
// universe probing, space-tree construction, per-TGA generation, and the
// scanner loop.
#include <benchmark/benchmark.h>

#include <vector>

#include "dealias/online_dealiaser.h"
#include "experiment/workbench.h"
#include "net/addr_index.h"
#include "net/ipv6.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "obs/telemetry.h"
#include "probe/instrumented_transport.h"
#include "probe/scanner.h"
#include "probe/transport.h"
#include "simnet/universe_builder.h"
#include "tga/registry.h"
#include "tga/space_tree.h"

namespace {

using v6::net::Ipv6Addr;

/// Small, fast-to-build universe shared across benchmarks.
const v6::simnet::Universe& small_universe() {
  static const v6::simnet::Universe universe = [] {
    v6::simnet::UniverseConfig config;
    config.seed = 7;
    config.num_ases = 300;
    config.host_scale = 0.1;
    return v6::simnet::UniverseBuilder::build(config);
  }();
  return universe;
}

std::vector<Ipv6Addr> sample_seeds(std::size_t n) {
  const auto hosts = small_universe().hosts();
  std::vector<Ipv6Addr> seeds;
  seeds.reserve(n);
  const std::size_t stride = std::max<std::size_t>(1, hosts.size() / n);
  for (std::size_t i = 0; i < hosts.size() && seeds.size() < n; i += stride) {
    seeds.push_back(hosts[i].addr);
  }
  return seeds;
}

void BM_Ipv6Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Ipv6Addr::parse("2001:db8:85a3::8a2e:370:7334"));
  }
}
BENCHMARK(BM_Ipv6Parse);

void BM_Ipv6Format(benchmark::State& state) {
  const Ipv6Addr addr = Ipv6Addr::must_parse("2001:db8:85a3::8a2e:370:7334");
  for (auto _ : state) {
    benchmark::DoNotOptimize(addr.to_string());
  }
}
BENCHMARK(BM_Ipv6Format);

void BM_TrieLongestMatch(benchmark::State& state) {
  v6::net::PrefixTrie<std::uint32_t> trie;
  v6::net::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const Ipv6Addr a(rng(), 0);
    trie.insert(v6::net::Prefix(a, 32 + static_cast<int>(rng() % 17)),
                static_cast<std::uint32_t>(i));
  }
  Ipv6Addr probe(rng(), rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(probe));
    probe = Ipv6Addr(probe.hi() + 0x100000000ULL, probe.lo());
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_AddrIndexFind(benchmark::State& state) {
  // The lookup behind Universe::probe: half the queries hit, half miss.
  v6::net::AddrIndexMap map;
  v6::net::Rng rng(5);
  std::vector<Ipv6Addr> queries;
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    const Ipv6Addr addr(rng(), rng());
    map.insert(addr, i);
    queries.push_back((i % 2) == 0 ? addr : Ipv6Addr(rng(), rng()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(queries[i % queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_AddrIndexFind);

void BM_UniverseProbe(benchmark::State& state) {
  const auto& universe = small_universe();
  v6::net::Rng rng(2);
  const auto hosts = universe.hosts();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(universe.probe(
        hosts[i % hosts.size()].addr, v6::net::ProbeType::kIcmp, rng));
    ++i;
  }
}
BENCHMARK(BM_UniverseProbe);

void BM_SpaceTreeBuild(benchmark::State& state) {
  const auto seeds = sample_seeds(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    v6::tga::SpaceTree tree(
        seeds, {.policy = v6::tga::SplitPolicy::kLeftmost});
    benchmark::DoNotOptimize(tree.regions().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(BM_SpaceTreeBuild)->Arg(1000)->Arg(10000);

void BM_TgaGenerate(benchmark::State& state) {
  const auto kind =
      v6::tga::kAllTgas[static_cast<std::size_t>(state.range(0))];
  const auto seeds = sample_seeds(5000);
  auto generator = v6::tga::make_generator(kind);
  generator->prepare(seeds, 11);
  state.SetLabel(std::string(v6::tga::to_string(kind)));
  for (auto _ : state) {
    auto batch = generator->next_batch(1024);
    benchmark::DoNotOptimize(batch.size());
    if (batch.empty()) {
      state.PauseTiming();
      generator->prepare(seeds, 11);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_TgaGenerate)->DenseRange(0, v6::tga::kNumTgas - 1);

void BM_ScannerScan(benchmark::State& state) {
  const auto& universe = small_universe();
  const auto targets = sample_seeds(4096);
  v6::probe::SimTransport transport(universe, 3);
  v6::probe::Scanner scanner(transport, nullptr, {.seed = 3});
  for (auto _ : state) {
    auto result = scanner.scan_hits(targets, v6::net::ProbeType::kIcmp);
    benchmark::DoNotOptimize(result.hits.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(targets.size()));
}
BENCHMARK(BM_ScannerScan);

// The instrumented-but-unsinked hot path: CountingTransport in the
// chain, scanner telemetry attached, no event sink. The delta vs
// BM_ScannerScan is the per-packet observability overhead. Two tiers
// (docs/OBSERVABILITY.md, "Cost model"): sinkless spans + scalar
// counter tallies stay under the <2% bar; this bench additionally pays
// full per-reply wire accounting (RTT hash + histogram record) on every
// packet, because seed targets nearly all reply — that upper-bounds the
// wire-accounting cost at ~18ns/reply (~8% here). Timeout-heavy real
// scans pay it only on the replying fraction. Measure with
// --benchmark_repetitions and compare minima: shared-box noise (±15%)
// swamps single runs.
void BM_ScannerScanInstrumented(benchmark::State& state) {
  const auto& universe = small_universe();
  const auto targets = sample_seeds(4096);
  v6::obs::Telemetry telemetry;
  v6::probe::SimTransport sim_transport(universe, 3);
  v6::probe::CountingTransport transport(sim_transport,
                                         telemetry.registry());
  v6::probe::Scanner scanner(transport, nullptr,
                             {.seed = 3, .telemetry = &telemetry});
  for (auto _ : state) {
    auto result = scanner.scan_hits(targets, v6::net::ProbeType::kIcmp);
    benchmark::DoNotOptimize(result.hits.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(targets.size()));
}
BENCHMARK(BM_ScannerScanInstrumented);

void BM_OnlineDealiaser(benchmark::State& state) {
  const auto& universe = small_universe();
  v6::probe::SimTransport transport(universe, 4);
  const auto targets = sample_seeds(4096);
  std::size_t i = 0;
  v6::dealias::OnlineDealiaser dealiaser(transport, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dealiaser.is_aliased(
        targets[i % targets.size()], v6::net::ProbeType::kIcmp));
    ++i;
  }
}
BENCHMARK(BM_OnlineDealiaser);

}  // namespace

BENCHMARK_MAIN();
