// Regenerates the paper's RQ1/RQ2 artifacts from one set of runs:
//   - Tables 9-12: raw Hits and ASes for every seed-dataset variant
//     (All / Offline Dealiased / Online Dealiased / Active-Inactive /
//     All Active / ICMP / TCP80 / TCP443 / UDP53) on each probe type.
//   - Figure 3: performance ratio of joint-dealiased seeds vs the full
//     dataset (hits, ASes, aliases).
//   - Figure 4: performance ratio of responsive-only seeds vs the
//     dealiased (active+inactive) dataset.
//   - Figure 5: performance ratio of port-specific seeds vs All Active.
#include <array>
#include <iostream>
#include <map>

#include "bench_common.h"

using v6::metrics::fmt_count;
using v6::metrics::fmt_ratio;
using v6::metrics::performance_ratio;
using v6::net::ProbeType;

namespace {

enum DatasetRow {
  kAll = 0,
  kOffline,
  kOnline,
  kActiveInactive,  // joint-dealiased (contains active + inactive seeds)
  kAllActive,
  kPortIcmp,
  kPortTcp80,
  kPortTcp443,
  kPortUdp53,
  kNumRows,
};

constexpr std::array<const char*, kNumRows> kRowNames = {
    "All",     "Offline Dealiased", "Online Dealiased",
    "Active-Inactive", "All Active", "ICMP", "TCP80", "TCP443", "UDP53"};

}  // namespace

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::experiment::PipelineConfig base_config;
  base_config.budget = args.budget;

  v6::bench::BenchTimer timer("rq1_rq2", args);

  v6::experiment::Workbench bench;
  {
    const auto section = timer.section("workbench_precompute");
    bench.precompute(args.jobs);
  }

  const std::array<const std::vector<v6::net::Ipv6Addr>*, kNumRows> datasets =
      {&bench.full(),
       &bench.dealiased(v6::dealias::DealiasMode::kOffline),
       &bench.dealiased(v6::dealias::DealiasMode::kOnline),
       &bench.dealiased(v6::dealias::DealiasMode::kJoint),
       &bench.all_active(),
       &bench.port_specific(ProbeType::kIcmp),
       &bench.port_specific(ProbeType::kTcp80),
       &bench.port_specific(ProbeType::kTcp443),
       &bench.port_specific(ProbeType::kUdp53)};

  // outcome[port][row][tga]
  std::array<std::array<std::vector<v6::bench::TgaRun>, kNumRows>, 4> all;

  for (const ProbeType port : v6::net::kAllProbeTypes) {
    for (int row = 0; row < kNumRows; ++row) {
      v6::experiment::PipelineConfig config = base_config;
      config.type = port;
      std::cerr << "running " << v6::net::to_string(port) << " / "
                << kRowNames[static_cast<std::size_t>(row)] << " ("
                << datasets[static_cast<std::size_t>(row)]->size()
                << " seeds)\n";
      auto& slot = all[static_cast<std::size_t>(static_cast<int>(port))]
                      [static_cast<std::size_t>(row)];
      slot = v6::bench::ScanSession(bench.universe(), bench.alias_list())
                 .with_seeds(*datasets[static_cast<std::size_t>(row)])
                 .with_config(config)
                 .with_jobs(args.jobs)
                 .sweep();
      timer.record(std::string(v6::net::to_string(port)) + "/" +
                       kRowNames[static_cast<std::size_t>(row)],
                   slot);
    }
  }

  // ---- Tables 9-12 -------------------------------------------------------
  for (const ProbeType port : v6::net::kAllProbeTypes) {
    const auto& per_port =
        all[static_cast<std::size_t>(static_cast<int>(port))];
    std::cout << "\n=== Table " << (9 + static_cast<int>(port)) << ": raw "
              << v6::net::to_string(port) << " results (RQ1-RQ2, budget "
              << fmt_count(base_config.budget) << ") ===\n";
    for (const bool hits : {true, false}) {
      std::cout << (hits ? "-- Hits --\n" : "-- ASes --\n");
      v6::metrics::TextTable table(v6::bench::tga_header("Dataset"));
      for (int row = 0; row < kNumRows; ++row) {
        std::vector<std::string> cells{
            kRowNames[static_cast<std::size_t>(row)]};
        for (const auto& run : per_port[static_cast<std::size_t>(row)]) {
          cells.push_back(fmt_count(hits ? run.outcome.hits()
                                         : run.outcome.ases()));
        }
        table.add_row(std::move(cells));
      }
      table.print(std::cout);
    }
  }

  // ---- Figure 3: dealiased (joint) vs full -------------------------------
  std::cout << "\n=== Figure 3: performance ratio, Dealiased vs Full ===\n";
  for (const ProbeType port : v6::net::kAllProbeTypes) {
    const auto& per_port =
        all[static_cast<std::size_t>(static_cast<int>(port))];
    v6::metrics::TextTable table(v6::bench::tga_header(
        std::string(v6::net::to_string(port)) + " metric"));
    for (const auto metric : {0, 1, 2}) {  // hits, ases, aliases
      std::vector<std::string> cells{metric == 0   ? "Hits"
                                     : metric == 1 ? "ASes"
                                                   : "Aliases"};
      for (int t = 0; t < v6::tga::kNumTgas; ++t) {
        const auto& changed =
            per_port[kActiveInactive][static_cast<std::size_t>(t)].outcome;
        const auto& original =
            per_port[kAll][static_cast<std::size_t>(t)].outcome;
        const double c = metric == 0   ? static_cast<double>(changed.hits())
                         : metric == 1 ? static_cast<double>(changed.ases())
                                       : static_cast<double>(changed.aliases);
        const double o = metric == 0   ? static_cast<double>(original.hits())
                         : metric == 1 ? static_cast<double>(original.ases())
                                       : static_cast<double>(original.aliases);
        cells.push_back(fmt_ratio(performance_ratio(c, o)));
      }
      table.add_row(std::move(cells));
    }
    table.print(std::cout);
  }

  // ---- Figure 4: all-active vs active+inactive ----------------------------
  std::cout << "\n=== Figure 4: performance ratio, Only Active vs "
               "Active+Inactive ===\n";
  for (const ProbeType port : v6::net::kAllProbeTypes) {
    const auto& per_port =
        all[static_cast<std::size_t>(static_cast<int>(port))];
    v6::metrics::TextTable table(v6::bench::tga_header(
        std::string(v6::net::to_string(port)) + " metric"));
    for (const bool hits : {true, false}) {
      std::vector<std::string> cells{hits ? "Hits" : "ASes"};
      for (int t = 0; t < v6::tga::kNumTgas; ++t) {
        const auto& changed =
            per_port[kAllActive][static_cast<std::size_t>(t)].outcome;
        const auto& original =
            per_port[kActiveInactive][static_cast<std::size_t>(t)].outcome;
        cells.push_back(fmt_ratio(performance_ratio(
            static_cast<double>(hits ? changed.hits() : changed.ases()),
            static_cast<double>(hits ? original.hits() : original.ases()))));
      }
      table.add_row(std::move(cells));
    }
    table.print(std::cout);
  }

  // ---- Figure 5: port-specific vs all-active -------------------------------
  std::cout << "\n=== Figure 5: performance ratio, Port-Specific vs "
               "All Active ===\n";
  for (const ProbeType port : v6::net::kAllProbeTypes) {
    const auto& per_port =
        all[static_cast<std::size_t>(static_cast<int>(port))];
    const int port_row = kPortIcmp + static_cast<int>(port);
    v6::metrics::TextTable table(v6::bench::tga_header(
        std::string(v6::net::to_string(port)) + " metric"));
    for (const bool hits : {true, false}) {
      std::vector<std::string> cells{hits ? "Hits" : "ASes"};
      for (int t = 0; t < v6::tga::kNumTgas; ++t) {
        const auto& changed =
            per_port[static_cast<std::size_t>(port_row)]
                    [static_cast<std::size_t>(t)].outcome;
        const auto& original =
            per_port[kAllActive][static_cast<std::size_t>(t)].outcome;
        cells.push_back(fmt_ratio(performance_ratio(
            static_cast<double>(hits ? changed.hits() : changed.ases()),
            static_cast<double>(hits ? original.hits() : original.ases()))));
      }
      table.add_row(std::move(cells));
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shapes (paper): Fig3 hits/ASes ratios positive, "
               "aliases strongly negative; Fig4 mostly positive; Fig5 hits "
               "positive on TCP/UDP with ASes often negative.\n";
  return 0;
}
