// Regenerates the paper's RQ3 artifacts from one sweep:
//   - Tables 13-15: raw Hits and ASes per seed source per TGA per port.
//   - Table 5: combined source-specific ICMP output vs a single 12x-budget
//     run on All Active.
//   - Table 6: top-3 ASes (with org classification) per source per port
//     over the combined output of all eight TGAs.
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "metrics/as_top.h"

using v6::metrics::fmt_count;
using v6::net::Ipv6Addr;
using v6::net::ProbeType;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::experiment::PipelineConfig base_config;
  base_config.budget = args.budget;

  v6::bench::BenchTimer timer("rq3_sources", args);

  v6::experiment::Workbench bench;
  {
    const auto section = timer.section("workbench_precompute");
    bench.precompute(args.jobs);
  }
  const auto& universe = bench.universe();

  // combined[source][port] = union of all TGAs' hit sets (for Table 6).
  std::array<std::array<std::unordered_set<Ipv6Addr>,
                        v6::net::kNumProbeTypes>,
             v6::seeds::kNumSeedSources>
      combined;
  // For Table 5: per-TGA union across sources (ICMP).
  std::array<std::unordered_set<Ipv6Addr>, v6::tga::kNumTgas> icmp_union;
  std::array<std::unordered_set<std::uint32_t>, v6::tga::kNumTgas>
      icmp_as_union;

  // ---- Tables 13-15: the 12-source sweep --------------------------------
  for (const ProbeType port : v6::net::kAllProbeTypes) {
    std::cout << "\n=== "
              << (port == ProbeType::kIcmp ? "Table 13" : "Tables 14/15")
              << " slice: source-specific " << v6::net::to_string(port)
              << " (budget " << fmt_count(base_config.budget) << ") ===\n";
    v6::metrics::TextTable hits_table(v6::bench::tga_header("Dataset"));
    v6::metrics::TextTable as_table(v6::bench::tga_header("Dataset"));
    for (const v6::seeds::SeedSource source : v6::seeds::kAllSeedSources) {
      const auto& seeds = bench.source_active(source);
      const auto config = v6::experiment::PipelineConfig(base_config).with_type(port);
      std::cerr << "running " << v6::net::to_string(port) << " / "
                << v6::seeds::to_string(source) << " (" << seeds.size()
                << " seeds)\n";
      const auto runs = v6::bench::ScanSession(universe, bench.alias_list())
                            .with_seeds(seeds)
                            .with_config(config)
                            .with_jobs(args.jobs)
                            .sweep();
      timer.record(std::string(v6::net::to_string(port)) + "/" +
                       std::string(v6::seeds::to_string(source)),
                   runs);
      std::vector<std::string> h{std::string(v6::seeds::to_string(source))};
      std::vector<std::string> a{std::string(v6::seeds::to_string(source))};
      for (std::size_t t = 0; t < runs.size(); ++t) {
        const auto& outcome = runs[t].outcome;
        h.push_back(fmt_count(outcome.hits()));
        a.push_back(fmt_count(outcome.ases()));
        auto& pool = combined[static_cast<std::size_t>(source)]
                             [static_cast<std::size_t>(
                                 static_cast<int>(port))];
        pool.insert(outcome.hit_set.begin(), outcome.hit_set.end());
        if (port == ProbeType::kIcmp) {
          icmp_union[t].insert(outcome.hit_set.begin(),
                               outcome.hit_set.end());
          icmp_as_union[t].insert(outcome.as_set.begin(),
                                  outcome.as_set.end());
        }
      }
      hits_table.add_row(std::move(h));
      as_table.add_row(std::move(a));
    }
    std::cout << "-- Hits --\n";
    hits_table.print(std::cout);
    std::cout << "-- ASes --\n";
    as_table.print(std::cout);
  }

  // ---- Table 5: combined vs one 12x-budget run (ICMP) --------------------
  std::cout << "\n=== Table 5: combined 12-source output vs a single "
            << fmt_count(base_config.budget * 12)
            << "-budget All Active run (ICMP) ===\n";
  v6::metrics::TextTable t5({"TGA", "Combined Hits", "Big Hits",
                             "Combined ASes", "Big ASes"});
  {
    const auto config = v6::experiment::PipelineConfig(base_config)
                            .with_type(ProbeType::kIcmp)
                            .with_budget(base_config.budget * 12);
    std::cerr << "running big-budget sweep over all TGAs\n";
    const auto big_runs = v6::bench::ScanSession(universe, bench.alias_list())
                              .with_seeds(bench.all_active())
                              .with_config(config)
                              .with_jobs(args.jobs)
                              .sweep();
    timer.record("big_budget/ICMP", big_runs);
    for (std::size_t t = 0; t < v6::tga::kNumTgas; ++t) {
      const auto& big = big_runs[t].outcome;
      t5.add_row({std::string(v6::tga::to_string(v6::tga::kAllTgas[t])),
                  fmt_count(icmp_union[t].size()), fmt_count(big.hits()),
                  fmt_count(icmp_as_union[t].size()), fmt_count(big.ases())});
    }
  }
  t5.print(std::cout);
  std::cout << "Expected shape (paper): the big run wins on hits; combined "
               "source-specific runs win on ASes for most TGAs.\n";

  // ---- Table 6: AS characterization --------------------------------------
  std::cout << "\n=== Table 6: top ASes of combined discoveries per source "
               "per port ===\n";
  const auto asn_of = [&](const Ipv6Addr& a) { return universe.asn_of(a); };
  for (const ProbeType port : v6::net::kAllProbeTypes) {
    std::cout << "-- " << v6::net::to_string(port) << " --\n";
    v6::metrics::TextTable table(
        {"Source", "1st", "2nd", "3rd", "Total ASes"});
    for (const v6::seeds::SeedSource source : v6::seeds::kAllSeedSources) {
      const auto& pool = combined[static_cast<std::size_t>(source)]
                                 [static_cast<std::size_t>(
                                     static_cast<int>(port))];
      const auto chara =
          v6::metrics::characterize(pool, asn_of, universe.asdb(), 3);
      std::vector<std::string> row{
          std::string(v6::seeds::to_string(source))};
      for (std::size_t k = 0; k < 3; ++k) {
        if (k < chara.top.size()) {
          row.push_back(v6::metrics::fmt_percent(chara.top[k].share, 0) +
                        " " + chara.top[k].name);
        } else {
          row.push_back("-");
        }
      }
      row.push_back(fmt_count(chara.total_ases));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
}
