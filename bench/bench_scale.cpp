// Memory/throughput scaling curve of the procedural universe
// (docs/SCALE.md): builds the default 2,500-AS universe at host_scale
// 1 / 12 / 140 (~1M / ~12M / ~140M hosts), measures build wall time,
// full-enumeration wall time, probe throughput, and resident set size
// at each point, and writes the curve to BENCH_scale.json.
//
// The bench is exit-code-gated on the paper-level claim: the top scale
// must hold at least 100M hosts, at least 100x the base population,
// inside roughly flat memory (RSS within 2x of the base build — the
// footprint is the routing table, not the hosts). A materialized
// universe at the top scale would need tens of GB; the procedural one
// stays in the tens of MB.
//
// Modes:
//   bench_scale                  full curve, 100M+ gate (committed run)
//   bench_scale --smoke          1M vs 12M, RSS + equivalence gates only
//                                (the `bench_scale_smoke` ctest)
// The optional budget argument sets the probe-workload size per scale.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/rng.h"
#include "simnet/universe.h"
#include "simnet/universe_builder.h"

namespace {

using Clock = std::chrono::steady_clock;
using v6::net::Ipv6Addr;
using v6::net::ProbeType;
using v6::simnet::Universe;
using v6::simnet::UniverseBuilder;
using v6::simnet::UniverseConfig;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Current resident set in MiB from /proc/self/status (VmRSS). Returns
/// 0 when the file is unavailable (non-Linux), which disables the
/// memory gates rather than failing them.
double rss_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      double kb = 0.0;
      fields >> kb;
      return kb / 1024.0;
    }
  }
  return 0.0;
}

struct ScalePoint {
  double host_scale = 1.0;
  double build_seconds = 0.0;
  double enumerate_seconds = 0.0;
  double probe_seconds = 0.0;
  std::uint64_t hosts = 0;
  std::uint64_t active_any = 0;
  std::uint64_t probes = 0;
  std::uint64_t positive = 0;
  double rss_after_mib = 0.0;
};

UniverseConfig config_at(double host_scale) {
  UniverseConfig config;  // default: 2,500 ASes, the paper-scale analogue
  config.seed = 42;
  config.host_scale = host_scale;
  config.procedural = true;
  return config;
}

/// Builds one scale point, runs the counting enumeration and a random
/// probe workload, and releases the universe before returning so each
/// point's RSS reading reflects steady state, not accumulation.
ScalePoint measure(double host_scale, std::uint64_t probe_budget) {
  ScalePoint point;
  point.host_scale = host_scale;

  const Clock::time_point build_start = Clock::now();
  const Universe universe = UniverseBuilder::build(config_at(host_scale));
  point.build_seconds = seconds_since(build_start);

  // Two full enumerations, each O(hosts) time in O(1) memory — the
  // passes that would OOM a materialized build at the top scale: the
  // counting pass (host_count/active caches), then a sampling pass that
  // keeps every k-th host address so the probe workload below can mix
  // real hits with misses.
  const Clock::time_point enum_start = Clock::now();
  point.hosts = universe.host_count();
  point.active_any = universe.active_host_count_any();
  std::vector<Ipv6Addr> pool;
  const std::uint64_t stride = point.hosts / 32'768 + 1;
  std::uint64_t ordinal = 0;
  universe.for_each_host([&](const v6::simnet::HostRecord& host) {
    if (ordinal++ % stride == 0) pool.push_back(host.addr);
  });
  point.enumerate_seconds = seconds_since(enum_start);

  // Probe workload: the O(1) lookup hot path, with per-probe stateless
  // engines exactly as the streaming scanner keys them. Even probes are
  // scanner-realistic misses (random addresses in announced space); odd
  // probes replay sampled real hosts so the full site derivation and
  // reply model run too.
  const auto& announcements = universe.routes().announcements();
  v6::net::Rng rng = v6::net::make_rng(42, /*tag=*/0x5CA1E);
  const Clock::time_point probe_start = Clock::now();
  for (std::uint64_t i = 0; i < probe_budget; ++i) {
    Ipv6Addr addr;
    if (i % 2 == 0 || pool.empty()) {
      const auto& [prefix, asn] = announcements[v6::net::uniform_int<
          std::size_t>(rng, 0, announcements.size() - 1)];
      (void)asn;
      addr = v6::net::random_in_prefix(rng, prefix);
    } else {
      addr = pool[v6::net::uniform_int<std::size_t>(rng, 0,
                                                    pool.size() - 1)];
    }
    v6::net::SplitMixRng probe_rng(
        v6::net::splitmix64(addr.hi() ^ addr.lo() ^ 42));
    const ProbeType type =
        v6::net::kAllProbeTypes[i % v6::net::kAllProbeTypes.size()];
    const v6::net::ProbeReply reply = universe.probe(addr, type, probe_rng);
    ++point.probes;
    if (v6::net::is_hit(type, reply)) ++point.positive;
  }
  point.probe_seconds = seconds_since(probe_start);
  point.rss_after_mib = rss_mib();
  return point;
}

/// Smoke-mode correctness anchor: the procedural build and its
/// materialized twin agree on population and spot lookups (the full
/// battery lives in tests/simnet/procedural_equivalence_test.cc).
bool equivalence_spot_check() {
  UniverseConfig config = config_at(0.05);
  config.num_ases = 150;
  const Universe proc = UniverseBuilder::build(config);
  const Universe mat = UniverseBuilder::materialize(config);
  if (proc.host_count() != mat.host_count() ||
      proc.active_host_count_any() != mat.active_host_count_any()) {
    std::cerr << "FAIL: procedural/materialized population mismatch\n";
    return false;
  }
  std::size_t mismatches = 0;
  mat.for_each_host([&](const v6::simnet::HostRecord& expected) {
    v6::simnet::HostRecord got;
    if (!proc.lookup_host(expected.addr, got) ||
        got.services != expected.services || got.kind != expected.kind) {
      ++mismatches;
    }
  });
  if (mismatches != 0) {
    std::cerr << "FAIL: " << mismatches << " lookup mismatches\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args =
      v6::bench::parse_args(argc, argv, /*fallback_budget=*/2'000'000);
  const std::uint64_t probe_budget = args.smoke ? 100'000 : args.budget;

  // host_scale 1 ~= the legacy 1M-host default; 12 ~= 12M; 140 clears
  // 100M responsive-slot hosts with the default 2,500-AS topology.
  std::vector<double> scales = {1.0, 12.0};
  if (!args.smoke) scales.push_back(140.0);

  v6::bench::BenchTimer timer("scale", args);
  std::vector<ScalePoint> points;
  for (const double scale : scales) {
    ScalePoint point = measure(scale, probe_budget);
    points.push_back(point);
    const double pps =
        point.probe_seconds > 0
            ? static_cast<double>(point.probes) / point.probe_seconds
            : 0.0;
    timer.record_samples(
        "scale_" + std::to_string(static_cast<int>(scale)),
        {point.build_seconds},
        {{"host_scale", scale},
         {"hosts", static_cast<double>(point.hosts)},
         {"active_any", static_cast<double>(point.active_any)},
         {"enumerate_seconds", point.enumerate_seconds},
         {"probes_per_second", pps},
         {"positive_replies", static_cast<double>(point.positive)},
         {"rss_mib", point.rss_after_mib}});
    std::cerr << "scale " << scale << ": " << point.hosts << " hosts, build "
              << point.build_seconds << "s, enumerate "
              << point.enumerate_seconds << "s, " << pps
              << " probes/s, rss " << point.rss_after_mib << " MiB\n";
  }
  timer.write();

  // ---- Gates -----------------------------------------------------------
  bool ok = true;
  const ScalePoint& base = points.front();
  const ScalePoint& top = points.back();

  if (args.smoke && !equivalence_spot_check()) ok = false;

  const double growth =
      static_cast<double>(top.hosts) / static_cast<double>(base.hosts);
  if (args.smoke) {
    if (growth < 5.0) {
      std::cerr << "FAIL: 12x scale grew hosts only " << growth << "x\n";
      ok = false;
    }
  } else {
    if (top.hosts < 100'000'000) {
      std::cerr << "FAIL: top scale holds " << top.hosts
                << " hosts, need >= 100M\n";
      ok = false;
    }
    if (growth < 100.0) {
      std::cerr << "FAIL: top/base host ratio " << growth
                << ", need >= 100x\n";
      ok = false;
    }
  }

  // Flat-memory gate: RSS at the top scale within 2x of the base scale
  // (with a small floor so allocator noise on tiny baselines cannot
  // flake the ratio). Skipped when /proc is unavailable.
  if (base.rss_after_mib > 0.0 && top.rss_after_mib > 0.0) {
    const double rss_floor =
        base.rss_after_mib < 64.0 ? 64.0 : base.rss_after_mib;
    if (top.rss_after_mib > 2.0 * rss_floor) {
      std::cerr << "FAIL: rss grew from " << base.rss_after_mib << " to "
                << top.rss_after_mib << " MiB (limit "
                << 2.0 * rss_floor << ")\n";
      ok = false;
    }
  }

  if (!ok) return 1;
  std::cerr << "bench_scale: " << (args.smoke ? "smoke " : "") << "gates ok ("
            << top.hosts << " hosts at top scale, " << growth
            << "x base, rss " << top.rss_after_mib << " MiB)\n";
  return 0;
}
