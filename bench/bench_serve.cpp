// Query-throughput bench for the continuous hitlist service
// (docs/SERVICE.md): how fast the HitlistService facade answers
// lookup() — solo, and while a writer thread keeps publishing fresh
// epochs underneath the readers.
//
// Two timed configurations:
//
//   * lookup_solo        — single-threaded lookups against a settled
//                          snapshot,
//   * lookup_concurrent  — the same lookup loop racing a refresh loop
//                          that ages the universe and publishes one
//                          epoch per cycle.
//
// Correctness checks run on every pass, smoke or full:
//
//   * every snapshot's fingerprint re-verifies (no torn epoch reads),
//   * epoch versions observed by the reader are monotonic,
//   * lookup(addr) agrees with snapshot().contains(addr).
//
// A full (non --smoke) run asserts both configurations clear 1M
// lookups/second — the service must stay queryable at line rate while
// it refreshes.
//
// Usage: bench_serve [lookups] [--jobs N] [--repeat N] [--smoke]
// The positional budget is reinterpreted as lookups per timed pass.
// Writes BENCH_serve.json (see bench_common.h for the schema); entries
// carry lookups_per_second, plus cycles_during for the concurrent pass.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/ipv6.h"
#include "net/rng.h"
#include "runtime/worker_group.h"
#include "service/hitlist_service.h"
#include "service/hitlist_store.h"
#include "simnet/universe.h"
#include "simnet/universe_builder.h"
#include "simnet/universe_config.h"

namespace {

using Clock = std::chrono::steady_clock;
using v6::net::Ipv6Addr;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "bench_serve: FAIL: " << message << "\n";
  std::exit(1);
}

/// Deterministic query mix over one settled epoch: alternating present
/// addresses (drawn pseudo-randomly from the epoch) and near-certain
/// misses (present addresses with flipped interface-identifier bits).
std::vector<Ipv6Addr> make_queries(const v6::service::HitlistEpoch& epoch,
                                   std::size_t count) {
  if (epoch.addrs.empty()) fail("warmup epochs published an empty hitlist");
  std::vector<Ipv6Addr> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = static_cast<std::size_t>(
        v6::net::splitmix64(0x9E1D'0000ULL + i) % epoch.addrs.size());
    const Ipv6Addr base = epoch.addrs[pick];
    if (i % 2 == 0) {
      queries.push_back(base);
    } else {
      queries.emplace_back(base.hi(), base.lo() ^ 0xDEAD'BEEF'0000'0000ULL);
    }
  }
  return queries;
}

struct LookupPass {
  double wall_seconds = 0.0;
  std::uint64_t lookups = 0;
  std::uint64_t present = 0;
};

/// Runs `total` lookups cycling the query list; spot-checks the
/// snapshot invariants (fingerprint, monotonic version, agreement with
/// lookup) every `kAuditStride` queries so the checks don't dominate
/// the measured cost.
LookupPass run_lookups(const v6::service::HitlistService& service,
                       const std::vector<Ipv6Addr>& queries,
                       std::uint64_t total) {
  constexpr std::uint64_t kAuditStride = 1024;
  LookupPass pass;
  std::uint64_t last_version = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    const Ipv6Addr& addr = queries[i % queries.size()];
    const bool hit = service.lookup(addr);
    pass.present += hit ? 1 : 0;
    if (i % kAuditStride == 0) {
      const v6::service::HitlistEpoch& snap = service.snapshot();
      if (v6::service::epoch_fingerprint(snap.version, snap.addrs) !=
          snap.fingerprint) {
        fail("snapshot fingerprint mismatch at version " +
             std::to_string(snap.version));
      }
      if (snap.version < last_version) {
        fail("epoch version went backwards: " + std::to_string(snap.version) +
             " after " + std::to_string(last_version));
      }
      last_version = snap.version;
    }
  }
  pass.wall_seconds = seconds_since(start);
  pass.lookups = total;
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv, 2'000'000);
  std::uint64_t lookups = args.budget;
  if (args.smoke && lookups > 200'000) lookups = 200'000;

  v6::bench::BenchTimer timer("serve", args);

  // Same small universe as bench_throughput: cheap to build, still has
  // aliased and rate-limited hosts plus the default dense region.
  v6::simnet::UniverseConfig universe_config;
  universe_config.num_ases = 300;
  universe_config.host_scale = 0.3;
  const auto setup_start = Clock::now();
  v6::simnet::Universe universe =
      v6::simnet::UniverseBuilder::build(universe_config);

  // Seed the service from a deterministic host sample (every third
  // address): enough signal for the generators without handing the
  // service the full answer.
  std::vector<Ipv6Addr> seeds;
  const auto& hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 3) {
    seeds.push_back(hosts[i].addr);
  }

  v6::service::ServiceConfig config;
  config.budget_per_cycle = args.smoke ? 5'000 : 20'000;
  config.max_pps = 1e6;
  config.age_universe = true;  // default churn model
  v6::service::HitlistService service(universe, seeds, config);

  // Warm cycles settle the hitlist before anything is timed.
  const unsigned warm_cycles = args.smoke ? 2 : 3;
  for (unsigned c = 0; c < warm_cycles; ++c) service.refresh_once();
  timer.record_phase("setup", seconds_since(setup_start));

  const std::vector<Ipv6Addr> queries =
      make_queries(service.snapshot(), 4096);

  // --- Solo lookups -------------------------------------------------------
  std::vector<double> solo_samples;
  LookupPass solo;
  for (unsigned r = 0; r < args.repeat; ++r) {
    solo = run_lookups(service, queries, lookups);
    solo_samples.push_back(solo.wall_seconds);
  }
  const auto min_of = [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  };
  const double solo_rate = static_cast<double>(lookups) / min_of(solo_samples);
  timer.record_samples(
      "lookup_solo", solo_samples,
      {{"lookups_per_second", solo_rate},
       {"present", static_cast<double>(solo.present)},
       {"hitlist_size", static_cast<double>(service.snapshot().size())}});

  // Present/absent agreement: lookup must be exactly snapshot search.
  const v6::service::HitlistEpoch& settled = service.snapshot();
  for (const Ipv6Addr& addr : queries) {
    if (service.lookup(addr) != settled.contains(addr)) {
      fail("lookup() disagrees with snapshot().contains()");
    }
  }

  // --- Lookups under concurrent refresh -----------------------------------
  // A writer thread runs the real refresh loop (aging universe, rescans,
  // bandit discovery, epoch publication) until the reader finishes its
  // pass; the reader's audits catch any torn epoch along the way.
  std::vector<double> concurrent_samples;
  std::uint64_t cycles_during = 0;
  LookupPass concurrent;
  for (unsigned r = 0; r < args.repeat; ++r) {
    std::atomic<bool> stop{false};
    const std::uint64_t cycles_before = service.stats().cycles;
    v6::runtime::WorkerGroup writer;
    writer.spawn([&service, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        service.refresh_once();
      }
    });
    concurrent = run_lookups(service, queries, lookups);
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    concurrent_samples.push_back(concurrent.wall_seconds);
    cycles_during += service.stats().cycles - cycles_before;
  }
  const double concurrent_rate =
      static_cast<double>(lookups) / min_of(concurrent_samples);
  timer.record_samples(
      "lookup_concurrent", concurrent_samples,
      {{"lookups_per_second", concurrent_rate},
       {"present", static_cast<double>(concurrent.present)},
       {"cycles_during", static_cast<double>(cycles_during)}});

  if (cycles_during == 0) {
    fail("writer thread published no epochs during the concurrent pass");
  }

  std::cerr << "lookups/sec: solo " << static_cast<std::uint64_t>(solo_rate)
            << ", concurrent " << static_cast<std::uint64_t>(concurrent_rate)
            << " (" << cycles_during << " refresh cycles during)\n";

  // Perf gate: the facade must stay queryable at line rate, refresh or
  // not. Smoke runs keep only the correctness checks above.
  constexpr double kMinLookupsPerSecond = 1e6;
  if (!args.smoke) {
    if (solo_rate < kMinLookupsPerSecond) {
      timer.write();
      fail("solo lookup rate below 1M/s: " + std::to_string(solo_rate));
    }
    if (concurrent_rate < kMinLookupsPerSecond) {
      timer.write();
      fail("concurrent lookup rate below 1M/s: " +
           std::to_string(concurrent_rate));
    }
    std::cerr << "perf gate: OK (limit 1M lookups/s)\n";
  } else {
    std::cerr << "perf gate skipped (--smoke)\n";
  }

  std::cerr << "bench_serve: OK (" << lookups << " lookups/pass, hitlist "
            << service.snapshot().size() << ")\n";
  return 0;
}
