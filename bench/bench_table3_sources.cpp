// Regenerates paper Table 3 (full summary of seed data sources: unique
// population, ASes, dealiased size, per-port responsiveness) plus the
// Appendix C volume breakdown (Table 8 analogue).
#include <array>
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "dealias/online_dealiaser.h"
#include "probe/transport.h"
#include "dns/domain_lists.h"
#include "dns/resolver.h"
#include "seeds/collector.h"
#include "seeds/preprocess.h"

using v6::metrics::fmt_count;
using v6::net::Ipv6Addr;
using v6::net::ProbeType;

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::bench::BenchTimer timer("table3_sources", args);

  v6::experiment::Workbench bench;
  const auto& universe = bench.universe();
  const auto& dataset = bench.seeds();
  const auto& activity = bench.activity();

  // One shared joint dealiaser so /96 verdicts are probed once.
  v6::probe::SimTransport transport(universe, bench.seed() + 7);
  v6::dealias::OnlineDealiaser online(transport, bench.seed() + 7);
  v6::dealias::Dealiaser joint(v6::dealias::DealiasMode::kJoint,
                               &bench.alias_list(), &online);

  v6::metrics::TextTable table({"Source", "Pop.", "Unique", "ASes",
                                "Dealiased", "ICMP", "TCP80", "TCP443",
                                "UDP53", "Active", "Active ASes"});

  struct Totals {
    std::unordered_set<Ipv6Addr> unique;
    std::unordered_set<std::uint32_t> ases;
    std::uint64_t dealiased = 0;
    std::array<std::uint64_t, 4> per_port{};
    std::uint64_t active = 0;
    std::unordered_set<std::uint32_t> active_ases;
  };

  auto row_for = [&](const std::string& label, const std::string& pop,
                     const std::vector<Ipv6Addr>& addrs, Totals* fold) {
    std::unordered_set<std::uint32_t> ases;
    std::unordered_set<std::uint32_t> active_ases;
    std::uint64_t dealiased = 0;
    std::array<std::uint64_t, 4> per_port{};
    std::uint64_t active = 0;
    for (const Ipv6Addr& addr : addrs) {
      const auto asn = universe.asn_of(addr);
      if (asn) ases.insert(*asn);
      const bool aliased = joint.is_aliased(addr, ProbeType::kIcmp);
      if (!aliased) ++dealiased;
      const v6::net::ServiceMask m = activity.of(addr);
      if (aliased || m == 0) continue;
      ++active;
      if (asn) active_ases.insert(*asn);
      for (const ProbeType t : v6::net::kAllProbeTypes) {
        if (v6::net::has_service(m, t)) {
          ++per_port[static_cast<std::size_t>(t)];
        }
      }
    }
    if (fold != nullptr) {
      fold->unique.insert(addrs.begin(), addrs.end());
      fold->ases.insert(ases.begin(), ases.end());
      fold->active_ases.insert(active_ases.begin(), active_ases.end());
    }
    table.add_row({label, pop, fmt_count(addrs.size()),
                   fmt_count(ases.size()), fmt_count(dealiased),
                   fmt_count(per_port[0]), fmt_count(per_port[1]),
                   fmt_count(per_port[2]), fmt_count(per_port[3]),
                   fmt_count(active), fmt_count(active_ases.size())});
  };

  {
    const auto section = timer.section("source_summary");
    for (const v6::seeds::SeedSource source : v6::seeds::kAllSeedSources) {
      const auto addrs = dataset.from_source(source);
      row_for(std::string(v6::seeds::to_string(source)),
              std::string(v6::seeds::to_string(v6::seeds::category(source))),
              addrs, nullptr);
    }
    table.add_rule();
    row_for("All Sources", "Both", bench.full(), nullptr);
  }

  std::cout << "=== Table 3: seed data source summary ===\n";
  table.print(std::cout);

  std::cout << "\n=== Appendix C analogue (Table 8): domain feeds "
               "resolution funnel ===\n";
  {
    const auto section = timer.section("dns_funnel");
    v6::seeds::SeedCollector collector(universe, bench.seed());
    v6::metrics::TextTable volume(
        {"Source", "Domains", "AAAAs", "NXDOMAIN", "Unique IPv6 IPs"});
    const std::vector<std::pair<v6::seeds::SeedSource,
                                v6::dns::DomainListKind>> domain_feeds = {
        {v6::seeds::SeedSource::kCensys, v6::dns::DomainListKind::kCensysCt},
        {v6::seeds::SeedSource::kRapid7, v6::dns::DomainListKind::kRapid7Fdns},
        {v6::seeds::SeedSource::kUmbrella, v6::dns::DomainListKind::kUmbrella},
        {v6::seeds::SeedSource::kMajestic, v6::dns::DomainListKind::kMajestic},
        {v6::seeds::SeedSource::kTranco, v6::dns::DomainListKind::kTranco},
        {v6::seeds::SeedSource::kSecrank, v6::dns::DomainListKind::kSecrank},
        {v6::seeds::SeedSource::kRadar, v6::dns::DomainListKind::kRadar},
        {v6::seeds::SeedSource::kCaidaDns, v6::dns::DomainListKind::kCaidaDns},
    };
    for (const auto& [source, kind] : domain_feeds) {
      const auto names = v6::dns::make_domain_list(collector.zone(), universe,
                                                   kind, bench.seed());
      v6::dns::Resolver resolver(
          collector.zone(),
          {.seed = v6::net::derive_seed(bench.seed(),
                                        static_cast<std::uint64_t>(source))});
      const auto addrs = resolver.resolve_all(names);
      const std::unordered_set<Ipv6Addr> unique(addrs.begin(), addrs.end());
      volume.add_row({std::string(v6::seeds::to_string(source)),
                      fmt_count(names.size()),
                      fmt_count(resolver.stats().addresses),
                      fmt_count(resolver.stats().nxdomain),
                      fmt_count(unique.size())});
    }
    volume.print(std::cout);
  }
  return 0;
}
