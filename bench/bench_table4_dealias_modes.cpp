// Regenerates paper Table 4: aliased addresses discovered by each TGA on
// an ICMP scan when the *seed* dataset is dealiased with: nothing
// (D_All), the published list only (D_offline), online probing only
// (D_online), and both (D_joint).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  const v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv);
  v6::experiment::PipelineConfig config;
  config.budget = args.budget;
  config.type = v6::net::ProbeType::kIcmp;

  v6::bench::BenchTimer timer("table4_dealias_modes", args);

  v6::experiment::Workbench bench;
  {
    const auto section = timer.section("workbench_precompute");
    bench.precompute(args.jobs);
  }

  const std::vector<std::pair<std::string, v6::dealias::DealiasMode>> modes = {
      {"D_All", v6::dealias::DealiasMode::kNone},
      {"D_offline", v6::dealias::DealiasMode::kOffline},
      {"D_online", v6::dealias::DealiasMode::kOnline},
      {"D_joint", v6::dealias::DealiasMode::kJoint},
  };

  // rows[tga][mode] = aliases discovered
  std::vector<std::array<std::uint64_t, 4>> aliases(
      v6::tga::kNumTgas, std::array<std::uint64_t, 4>{});

  for (std::size_t m = 0; m < modes.size(); ++m) {
    const auto& seeds = bench.dealiased(modes[m].second);
    std::cerr << "seed mode " << modes[m].first << ": " << seeds.size()
              << " seeds\n";
    const auto runs = v6::bench::ScanSession(bench.universe(), bench.alias_list())
                          .with_seeds(seeds)
                          .with_config(config)
                          .with_jobs(args.jobs)
                          .sweep();
    timer.record(modes[m].first, runs);
    for (std::size_t t = 0; t < runs.size(); ++t) {
      aliases[t][m] = runs[t].outcome.aliases;
    }
  }

  std::cout << "=== Table 4: aliases discovered vs seed dealias mode "
               "(ICMP, budget "
            << v6::metrics::fmt_count(config.budget) << ") ===\n";
  v6::metrics::TextTable table(
      {"Model", "D_All", "D_offline", "D_online", "D_joint"});
  for (std::size_t t = 0; t < v6::tga::kNumTgas; ++t) {
    table.add_row({std::string(v6::tga::to_string(
                       v6::tga::kAllTgas[t])),
                   v6::metrics::fmt_count(aliases[t][0]),
                   v6::metrics::fmt_count(aliases[t][1]),
                   v6::metrics::fmt_count(aliases[t][2]),
                   v6::metrics::fmt_count(aliases[t][3])});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): aliases shrink left-to-right; "
               "joint is lowest almost universally.\n";
  return 0;
}
