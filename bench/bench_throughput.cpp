// Throughput bench for the scan engines: batch Scanner vs the streaming
// StreamScanner pipeline (docs/SCANNER.md) across shard counts.
//
// Measures probes/second over a deterministic target mix (hits, misses,
// duplicates) drawn from a small simulated universe, and enforces the
// engine contracts on every run — smoke or full:
//
//   * the streaming engine is bit-identical across shard counts
//     (hits vector and every ScanStats field),
//   * batch and stream agree on the deterministic pre-wire counters
//     (targets / deduped / blocked / probed) — hit counts are NOT
//     compared because the engines use different reply-RNG models,
//   * no reply ever fails stateless validation.
//
// On a single-core host a full (non --smoke) run additionally asserts
// the 1-shard streaming per-probe cost stays within 5% of the batch
// engine — the pipeline must not tax the sequential case. Multi-core
// hosts skip that assertion (the bench then measures scaling, where
// wall time depends on the scheduler).
//
// The run also measures the live introspection plane's cost: a 1-shard
// stream pass with telemetry + flight recorder + armed watchdog attached
// is interleaved against a plain pass and must stay bit-identical; the
// overhead ratio lands in the JSON (entry `stream_instrumented`, design
// bar <2%, gated at the same 1.05 noise floor on single-core hosts).
//
// Usage: bench_throughput [targets] [--jobs N] [--repeat N] [--smoke]
// The positional budget is reinterpreted as the target-list length.
// Writes BENCH_throughput.json (see bench_common.h for the schema);
// entries carry probes_per_second and shards as extra fields.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/ipv6.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"
#include "probe/scanner.h"
#include "probe/stream_scanner.h"
#include "probe/transport.h"
#include "simnet/universe.h"
#include "simnet/universe_builder.h"
#include "simnet/universe_config.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic target mix: cycle the universe's host list, every third
/// entry perturbed into a (near-certain) miss, every fifth a duplicate of
/// an earlier target. Exercises dedup, misses, and hits in one list.
std::vector<v6::net::Ipv6Addr> make_targets(
    const v6::simnet::Universe& universe, std::uint64_t count) {
  const auto hosts = universe.hosts();
  std::vector<v6::net::Ipv6Addr> targets;
  targets.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (i % 5 == 4 && !targets.empty()) {
      targets.push_back(targets[i / 2]);
      continue;
    }
    const v6::net::Ipv6Addr base = hosts[i % hosts.size()].addr;
    if (i % 3 == 2) {
      // Flip high interface-identifier bits: overwhelmingly a timeout.
      targets.emplace_back(base.hi(), base.lo() ^ 0xDEAD'BEEF'0000'0000ULL);
    } else {
      targets.push_back(base);
    }
  }
  return targets;
}

bool stats_equal(const v6::probe::ScanStats& a, const v6::probe::ScanStats& b) {
  return a.targets == b.targets && a.deduped == b.deduped &&
         a.blocked == b.blocked && a.probed == b.probed &&
         a.packets == b.packets && a.hits == b.hits && a.rsts == b.rsts &&
         a.unreachables == b.unreachables && a.timeouts == b.timeouts &&
         a.virtual_seconds == b.virtual_seconds &&
         a.retransmissions == b.retransmissions && a.backoffs == b.backoffs &&
         a.backoff_seconds == b.backoff_seconds;
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "bench_throughput: FAIL: " << message << "\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  v6::bench::BenchArgs args = v6::bench::parse_args(argc, argv, 60'000);
  std::uint64_t target_count = args.budget;
  if (args.smoke && target_count > 5'000) target_count = 5'000;

  v6::bench::BenchTimer timer("throughput", args);

  // A small universe keeps setup cheap while still covering aliased and
  // rate-limited host behaviors; the default (seed 42) dense region is in.
  v6::simnet::UniverseConfig config;
  config.num_ases = 300;
  config.host_scale = 0.3;
  const auto setup_start = Clock::now();
  const v6::simnet::Universe universe =
      v6::simnet::UniverseBuilder::build(config);
  const std::vector<v6::net::Ipv6Addr> targets =
      make_targets(universe, target_count);
  timer.record_phase("setup", seconds_since(setup_start));

  const v6::probe::ScanOptions scan_options =
      v6::probe::ScanOptions{}.with_seed(7).with_max_pps(1e6);

  const auto run_stream = [&](unsigned shards, v6::probe::ScanResult* result,
                              double* sample) {
    v6::probe::StreamScanner scanner(
        universe, nullptr,
        v6::probe::StreamScanOptions{}
            .with_shards(shards)
            .with_batch(1024)
            .with_scan(scan_options));
    const auto start = Clock::now();
    *result = scanner.scan_hits(targets, v6::net::ProbeType::kIcmp);
    *sample = seconds_since(start);
    if (scanner.invalid_replies() != 0) {
      fail("stateless validation rejected replies at shards=" +
           std::to_string(shards));
    }
  };

  // --- Batch engine vs 1-shard stream, interleaved ------------------------
  // The two sides of the perf gate alternate within one loop so that the
  // host's slow timing drift (VM clock/frequency wander) hits both
  // equally; back-to-back blocks would bias whichever ran second.
  std::vector<double> batch_samples;
  std::vector<double> stream1_samples;
  v6::probe::ScanResult batch_result;
  v6::probe::ScanResult stream_baseline;
  const auto run_pairs = [&](unsigned pairs) {
    for (unsigned r = 0; r < pairs; ++r) {
      {
        v6::probe::SimTransport wire(universe, scan_options.seed);
        v6::probe::Scanner scanner(wire, nullptr, scan_options);
        const auto start = Clock::now();
        batch_result = scanner.scan_hits(targets, v6::net::ProbeType::kIcmp);
        batch_samples.push_back(seconds_since(start));
      }
      double sample = 0.0;
      run_stream(1, &stream_baseline, &sample);
      stream1_samples.push_back(sample);
    }
  };
  const auto min_of = [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  };
  run_pairs(args.repeat);

  // Wall-clock noise on a shared host is one-sided — interference only
  // ever inflates a sample — so the floor over enough pairs estimates
  // the noise-free cost. Gate runs take up to two extra measurement
  // blocks before concluding the floor really moved.
  constexpr double kGateRatio = 1.05;
  const bool single_core = std::thread::hardware_concurrency() <= 1;
  if (!args.smoke && single_core) {
    for (int block = 1;
         block < 3 && min_of(stream1_samples) > kGateRatio * min_of(batch_samples);
         ++block) {
      run_pairs(args.repeat);
    }
  }
  const double batch_wall = min_of(batch_samples);
  const double stream1_wall = min_of(stream1_samples);
  if (batch_result.stats.probed == 0) fail("batch engine probed nothing");
  timer.record_samples(
      "batch", batch_samples,
      {{"probes_per_second",
        static_cast<double>(batch_result.stats.probed) / batch_wall},
       {"shards", 0.0},
       {"probed", static_cast<double>(batch_result.stats.probed)},
       {"hits", static_cast<double>(batch_result.stats.hits)}});
  timer.record_samples(
      "stream_shards_1", stream1_samples,
      {{"probes_per_second",
        static_cast<double>(stream_baseline.stats.probed) / stream1_wall},
       {"shards", 1.0},
       {"probed", static_cast<double>(stream_baseline.stats.probed)},
       {"hits", static_cast<double>(stream_baseline.stats.hits)}});

  // --- Streaming engine at real shard counts ------------------------------
  for (const unsigned shards : {2u, 4u}) {
    std::vector<double> samples;
    v6::probe::ScanResult result;
    for (unsigned r = 0; r < args.repeat; ++r) {
      double sample = 0.0;
      run_stream(shards, &result, &sample);
      samples.push_back(sample);
    }
    const double wall = *std::min_element(samples.begin(), samples.end());
    // Contract: shard-merged results are bit-identical to 1 shard.
    if (result.hits != stream_baseline.hits) {
      fail("stream hits differ between shards=1 and shards=" +
           std::to_string(shards));
    }
    if (!stats_equal(result.stats, stream_baseline.stats)) {
      fail("stream ScanStats differ between shards=1 and shards=" +
           std::to_string(shards));
    }
    timer.record_samples(
        "stream_shards_" + std::to_string(shards), samples,
        {{"probes_per_second",
          static_cast<double>(result.stats.probed) / wall},
         {"shards", static_cast<double>(shards)},
         {"probed", static_cast<double>(result.stats.probed)},
         {"hits", static_cast<double>(result.stats.hits)}});
  }

  // --- Introspection-plane overhead ---------------------------------------
  // The live plane (telemetry registry + flight-recorder sink + an armed
  // stall watchdog with its monitor thread) rides along a 1-shard stream
  // pass. Design bar: under 2% per-probe overhead (docs/OBSERVABILITY.md
  // "Live introspection"); the enforced gate reuses the engine gate's
  // 1.05 noise floor because shared-host wall noise dwarfs 2%. Pairs are
  // interleaved again so clock drift hits both sides equally.
  std::vector<double> plain_samples;
  std::vector<double> plane_samples;
  v6::probe::ScanResult plane_result;
  const auto run_plane_pairs = [&](unsigned pairs) {
    for (unsigned r = 0; r < pairs; ++r) {
      double sample = 0.0;
      v6::probe::ScanResult plain_result;
      run_stream(1, &plain_result, &sample);
      plain_samples.push_back(sample);

      v6::obs::Telemetry telemetry;
      v6::obs::FlightRecorder recorder;
      telemetry.attach_sink(&recorder);
      v6::obs::StallWatchdog::Options wd;
      wd.deadline_seconds = 30.0;
      wd.registry = &telemetry.registry();
      v6::obs::StallWatchdog watchdog(wd);
      watchdog.start();
      v6::probe::StreamScanner scanner(
          universe, nullptr,
          v6::probe::StreamScanOptions{}
              .with_shards(1)
              .with_batch(1024)
              .with_scan(v6::probe::ScanOptions(scan_options)
                             .with_telemetry(&telemetry))
              .with_watchdog(&watchdog));
      const auto start = Clock::now();
      plane_result = scanner.scan_hits(targets, v6::net::ProbeType::kIcmp);
      plane_samples.push_back(seconds_since(start));
      watchdog.stop();
      if (watchdog.tripped()) {
        fail("watchdog tripped during a healthy bench pass");
      }
    }
  };
  run_plane_pairs(args.repeat);
  if (!args.smoke && single_core) {
    for (int block = 1;
         block < 3 &&
         min_of(plane_samples) > kGateRatio * min_of(plain_samples);
         ++block) {
      run_plane_pairs(args.repeat);
    }
  }
  // Observation must never steer the scan: the instrumented pass is
  // bit-identical to the plain streaming baseline.
  if (plane_result.hits != stream_baseline.hits ||
      !stats_equal(plane_result.stats, stream_baseline.stats)) {
    fail("instrumented stream pass diverged from the plain pass");
  }
  const double plane_ratio = min_of(plane_samples) / min_of(plain_samples);
  timer.record_samples(
      "stream_instrumented", plane_samples,
      {{"probes_per_second",
        static_cast<double>(plane_result.stats.probed) /
            min_of(plane_samples)},
       {"shards", 1.0},
       {"overhead_ratio", plane_ratio}});
  std::cerr << "introspection plane overhead ratio " << plane_ratio
            << " (design bar 1.02, gate 1.05)\n";
  if (!args.smoke && single_core && plane_ratio > kGateRatio) {
    timer.write();  // keep the failing run's trajectory on disk
    fail("introspection plane overhead exceeds the 1.05 gate (ratio " +
         std::to_string(plane_ratio) + "; design bar is 1.02)");
  }

  // Engines share the deterministic pre-wire path: the same dedup,
  // blocklist, and probe admission decisions. (Hit counts legitimately
  // differ: batch draws replies from one sequential mt19937 stream,
  // stream from per-(addr, attempt) splitmix64 streams.)
  const v6::probe::ScanStats& b = batch_result.stats;
  const v6::probe::ScanStats& s = stream_baseline.stats;
  if (b.targets != s.targets || b.deduped != s.deduped ||
      b.blocked != s.blocked || b.probed != s.probed) {
    fail("batch and stream disagree on targets/deduped/blocked/probed");
  }

  // Single-core perf gate: the pipeline must not tax the sequential
  // case. Only meaningful where both engines compete for one core.
  const double batch_per_probe = batch_wall / static_cast<double>(b.probed);
  const double stream_per_probe = stream1_wall / static_cast<double>(s.probed);
  std::cerr << "per-probe: batch " << batch_per_probe * 1e9 << "ns, stream(1) "
            << stream_per_probe * 1e9 << "ns, ratio "
            << stream_per_probe / batch_per_probe << " ("
            << batch_samples.size() << " pairs)\n";
  if (!args.smoke && single_core) {
    if (stream_per_probe > kGateRatio * batch_per_probe) {
      timer.write();  // keep the failing run's trajectory on disk
      fail("1-shard streaming per-probe cost exceeds batch by more than 5% "
           "(ratio " + std::to_string(stream_per_probe / batch_per_probe) +
           ", limit 1.05)");
    }
    std::cerr << "perf gate: OK (limit 1.05)\n";
  } else {
    std::cerr << "perf gate skipped ("
              << (args.smoke ? "--smoke" : "multi-core host") << ")\n";
  }

  std::cerr << "bench_throughput: OK (" << targets.size() << " targets, "
            << b.probed << " probed)\n";
  return 0;
}
