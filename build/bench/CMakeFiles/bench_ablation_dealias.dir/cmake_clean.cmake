file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dealias.dir/bench_ablation_dealias.cpp.o"
  "CMakeFiles/bench_ablation_dealias.dir/bench_ablation_dealias.cpp.o.d"
  "bench_ablation_dealias"
  "bench_ablation_dealias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dealias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
