# Empty compiler generated dependencies file for bench_ablation_dealias.
# This may be replaced when dependencies are built.
