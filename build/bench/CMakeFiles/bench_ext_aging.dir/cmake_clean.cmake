file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_aging.dir/bench_ext_aging.cpp.o"
  "CMakeFiles/bench_ext_aging.dir/bench_ext_aging.cpp.o.d"
  "bench_ext_aging"
  "bench_ext_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
