# Empty dependencies file for bench_ext_aging.
# This may be replaced when dependencies are built.
