file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_forest.dir/bench_ext_forest.cpp.o"
  "CMakeFiles/bench_ext_forest.dir/bench_ext_forest.cpp.o.d"
  "bench_ext_forest"
  "bench_ext_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
