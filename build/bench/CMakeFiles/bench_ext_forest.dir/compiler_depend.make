# Empty compiler generated dependencies file for bench_ext_forest.
# This may be replaced when dependencies are built.
