# Empty dependencies file for bench_fig6_generator_overlap.
# This may be replaced when dependencies are built.
