file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cross_port.dir/bench_fig7_cross_port.cpp.o"
  "CMakeFiles/bench_fig7_cross_port.dir/bench_fig7_cross_port.cpp.o.d"
  "bench_fig7_cross_port"
  "bench_fig7_cross_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cross_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
