# Empty compiler generated dependencies file for bench_fig7_cross_port.
# This may be replaced when dependencies are built.
