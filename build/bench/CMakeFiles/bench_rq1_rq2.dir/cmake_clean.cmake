file(REMOVE_RECURSE
  "CMakeFiles/bench_rq1_rq2.dir/bench_rq1_rq2.cpp.o"
  "CMakeFiles/bench_rq1_rq2.dir/bench_rq1_rq2.cpp.o.d"
  "bench_rq1_rq2"
  "bench_rq1_rq2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq1_rq2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
