# Empty compiler generated dependencies file for bench_rq1_rq2.
# This may be replaced when dependencies are built.
