file(REMOVE_RECURSE
  "CMakeFiles/bench_rq3_sources.dir/bench_rq3_sources.cpp.o"
  "CMakeFiles/bench_rq3_sources.dir/bench_rq3_sources.cpp.o.d"
  "bench_rq3_sources"
  "bench_rq3_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq3_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
