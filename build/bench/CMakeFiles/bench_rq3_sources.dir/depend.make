# Empty dependencies file for bench_rq3_sources.
# This may be replaced when dependencies are built.
