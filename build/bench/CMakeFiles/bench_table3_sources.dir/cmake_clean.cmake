file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sources.dir/bench_table3_sources.cpp.o"
  "CMakeFiles/bench_table3_sources.dir/bench_table3_sources.cpp.o.d"
  "bench_table3_sources"
  "bench_table3_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
