file(REMOVE_RECURSE
  "CMakeFiles/alias_forensics.dir/alias_forensics.cpp.o"
  "CMakeFiles/alias_forensics.dir/alias_forensics.cpp.o.d"
  "alias_forensics"
  "alias_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
