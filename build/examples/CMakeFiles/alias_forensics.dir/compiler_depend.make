# Empty compiler generated dependencies file for alias_forensics.
# This may be replaced when dependencies are built.
