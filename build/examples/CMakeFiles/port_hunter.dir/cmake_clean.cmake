file(REMOVE_RECURSE
  "CMakeFiles/port_hunter.dir/port_hunter.cpp.o"
  "CMakeFiles/port_hunter.dir/port_hunter.cpp.o.d"
  "port_hunter"
  "port_hunter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_hunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
