# Empty compiler generated dependencies file for port_hunter.
# This may be replaced when dependencies are built.
