file(REMOVE_RECURSE
  "CMakeFiles/seed_lab.dir/seed_lab.cpp.o"
  "CMakeFiles/seed_lab.dir/seed_lab.cpp.o.d"
  "seed_lab"
  "seed_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
