# Empty compiler generated dependencies file for seed_lab.
# This may be replaced when dependencies are built.
