# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("net")
subdirs("asdb")
subdirs("simnet")
subdirs("dns")
subdirs("topo")
subdirs("probe")
subdirs("dealias")
subdirs("seeds")
subdirs("tga")
subdirs("metrics")
subdirs("experiment")
subdirs("io")
