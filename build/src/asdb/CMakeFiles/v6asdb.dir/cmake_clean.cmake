file(REMOVE_RECURSE
  "CMakeFiles/v6asdb.dir/as_database.cc.o"
  "CMakeFiles/v6asdb.dir/as_database.cc.o.d"
  "libv6asdb.a"
  "libv6asdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
