file(REMOVE_RECURSE
  "libv6asdb.a"
)
