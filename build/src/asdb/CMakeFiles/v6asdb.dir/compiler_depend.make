# Empty compiler generated dependencies file for v6asdb.
# This may be replaced when dependencies are built.
