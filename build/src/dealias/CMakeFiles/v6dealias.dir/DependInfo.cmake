
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dealias/alias_list.cc" "src/dealias/CMakeFiles/v6dealias.dir/alias_list.cc.o" "gcc" "src/dealias/CMakeFiles/v6dealias.dir/alias_list.cc.o.d"
  "/root/repo/src/dealias/online_dealiaser.cc" "src/dealias/CMakeFiles/v6dealias.dir/online_dealiaser.cc.o" "gcc" "src/dealias/CMakeFiles/v6dealias.dir/online_dealiaser.cc.o.d"
  "/root/repo/src/dealias/sprt_dealiaser.cc" "src/dealias/CMakeFiles/v6dealias.dir/sprt_dealiaser.cc.o" "gcc" "src/dealias/CMakeFiles/v6dealias.dir/sprt_dealiaser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6net.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/v6probe.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/v6simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/v6asdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
