file(REMOVE_RECURSE
  "CMakeFiles/v6dealias.dir/alias_list.cc.o"
  "CMakeFiles/v6dealias.dir/alias_list.cc.o.d"
  "CMakeFiles/v6dealias.dir/online_dealiaser.cc.o"
  "CMakeFiles/v6dealias.dir/online_dealiaser.cc.o.d"
  "CMakeFiles/v6dealias.dir/sprt_dealiaser.cc.o"
  "CMakeFiles/v6dealias.dir/sprt_dealiaser.cc.o.d"
  "libv6dealias.a"
  "libv6dealias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6dealias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
