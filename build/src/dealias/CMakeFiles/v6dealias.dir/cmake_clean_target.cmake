file(REMOVE_RECURSE
  "libv6dealias.a"
)
