# Empty compiler generated dependencies file for v6dealias.
# This may be replaced when dependencies are built.
