file(REMOVE_RECURSE
  "CMakeFiles/v6dns.dir/domain_lists.cc.o"
  "CMakeFiles/v6dns.dir/domain_lists.cc.o.d"
  "CMakeFiles/v6dns.dir/resolver.cc.o"
  "CMakeFiles/v6dns.dir/resolver.cc.o.d"
  "CMakeFiles/v6dns.dir/zone_db.cc.o"
  "CMakeFiles/v6dns.dir/zone_db.cc.o.d"
  "libv6dns.a"
  "libv6dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
