file(REMOVE_RECURSE
  "libv6dns.a"
)
