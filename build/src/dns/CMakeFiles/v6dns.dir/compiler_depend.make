# Empty compiler generated dependencies file for v6dns.
# This may be replaced when dependencies are built.
