# Empty dependencies file for v6dns.
# This may be replaced when dependencies are built.
