file(REMOVE_RECURSE
  "CMakeFiles/v6experiment.dir/combined.cc.o"
  "CMakeFiles/v6experiment.dir/combined.cc.o.d"
  "CMakeFiles/v6experiment.dir/pipeline.cc.o"
  "CMakeFiles/v6experiment.dir/pipeline.cc.o.d"
  "CMakeFiles/v6experiment.dir/workbench.cc.o"
  "CMakeFiles/v6experiment.dir/workbench.cc.o.d"
  "libv6experiment.a"
  "libv6experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
