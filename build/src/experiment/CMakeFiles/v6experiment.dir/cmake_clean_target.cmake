file(REMOVE_RECURSE
  "libv6experiment.a"
)
