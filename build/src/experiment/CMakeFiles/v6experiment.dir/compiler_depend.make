# Empty compiler generated dependencies file for v6experiment.
# This may be replaced when dependencies are built.
