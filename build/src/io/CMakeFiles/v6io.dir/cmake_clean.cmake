file(REMOVE_RECURSE
  "CMakeFiles/v6io.dir/address_file.cc.o"
  "CMakeFiles/v6io.dir/address_file.cc.o.d"
  "CMakeFiles/v6io.dir/csv.cc.o"
  "CMakeFiles/v6io.dir/csv.cc.o.d"
  "libv6io.a"
  "libv6io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
