file(REMOVE_RECURSE
  "libv6io.a"
)
