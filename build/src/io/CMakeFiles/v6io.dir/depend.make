# Empty dependencies file for v6io.
# This may be replaced when dependencies are built.
