file(REMOVE_RECURSE
  "CMakeFiles/v6metrics.dir/as_top.cc.o"
  "CMakeFiles/v6metrics.dir/as_top.cc.o.d"
  "CMakeFiles/v6metrics.dir/coverage.cc.o"
  "CMakeFiles/v6metrics.dir/coverage.cc.o.d"
  "CMakeFiles/v6metrics.dir/reporter.cc.o"
  "CMakeFiles/v6metrics.dir/reporter.cc.o.d"
  "libv6metrics.a"
  "libv6metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
