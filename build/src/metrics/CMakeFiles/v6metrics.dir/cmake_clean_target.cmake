file(REMOVE_RECURSE
  "libv6metrics.a"
)
