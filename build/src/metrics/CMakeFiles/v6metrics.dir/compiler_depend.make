# Empty compiler generated dependencies file for v6metrics.
# This may be replaced when dependencies are built.
