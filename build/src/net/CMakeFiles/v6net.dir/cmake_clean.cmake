file(REMOVE_RECURSE
  "CMakeFiles/v6net.dir/ipv6.cc.o"
  "CMakeFiles/v6net.dir/ipv6.cc.o.d"
  "CMakeFiles/v6net.dir/prefix.cc.o"
  "CMakeFiles/v6net.dir/prefix.cc.o.d"
  "libv6net.a"
  "libv6net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
