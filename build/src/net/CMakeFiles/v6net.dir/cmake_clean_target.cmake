file(REMOVE_RECURSE
  "libv6net.a"
)
