# Empty dependencies file for v6net.
# This may be replaced when dependencies are built.
