
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probe/blocklist.cc" "src/probe/CMakeFiles/v6probe.dir/blocklist.cc.o" "gcc" "src/probe/CMakeFiles/v6probe.dir/blocklist.cc.o.d"
  "/root/repo/src/probe/scanner.cc" "src/probe/CMakeFiles/v6probe.dir/scanner.cc.o" "gcc" "src/probe/CMakeFiles/v6probe.dir/scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6net.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/v6simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/v6asdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
