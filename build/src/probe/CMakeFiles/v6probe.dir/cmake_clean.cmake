file(REMOVE_RECURSE
  "CMakeFiles/v6probe.dir/blocklist.cc.o"
  "CMakeFiles/v6probe.dir/blocklist.cc.o.d"
  "CMakeFiles/v6probe.dir/scanner.cc.o"
  "CMakeFiles/v6probe.dir/scanner.cc.o.d"
  "libv6probe.a"
  "libv6probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
