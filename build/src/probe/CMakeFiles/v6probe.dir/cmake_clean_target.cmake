file(REMOVE_RECURSE
  "libv6probe.a"
)
