# Empty dependencies file for v6probe.
# This may be replaced when dependencies are built.
