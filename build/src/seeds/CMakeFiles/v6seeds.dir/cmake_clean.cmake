file(REMOVE_RECURSE
  "CMakeFiles/v6seeds.dir/collector.cc.o"
  "CMakeFiles/v6seeds.dir/collector.cc.o.d"
  "CMakeFiles/v6seeds.dir/overlap.cc.o"
  "CMakeFiles/v6seeds.dir/overlap.cc.o.d"
  "CMakeFiles/v6seeds.dir/preprocess.cc.o"
  "CMakeFiles/v6seeds.dir/preprocess.cc.o.d"
  "CMakeFiles/v6seeds.dir/seed_dataset.cc.o"
  "CMakeFiles/v6seeds.dir/seed_dataset.cc.o.d"
  "libv6seeds.a"
  "libv6seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
