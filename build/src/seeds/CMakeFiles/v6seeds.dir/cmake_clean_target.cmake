file(REMOVE_RECURSE
  "libv6seeds.a"
)
