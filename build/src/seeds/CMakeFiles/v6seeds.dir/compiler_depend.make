# Empty compiler generated dependencies file for v6seeds.
# This may be replaced when dependencies are built.
