file(REMOVE_RECURSE
  "CMakeFiles/v6simnet.dir/universe.cc.o"
  "CMakeFiles/v6simnet.dir/universe.cc.o.d"
  "CMakeFiles/v6simnet.dir/universe_builder.cc.o"
  "CMakeFiles/v6simnet.dir/universe_builder.cc.o.d"
  "libv6simnet.a"
  "libv6simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
