file(REMOVE_RECURSE
  "libv6simnet.a"
)
