# Empty compiler generated dependencies file for v6simnet.
# This may be replaced when dependencies are built.
