
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tga/det.cc" "src/tga/CMakeFiles/v6tga.dir/det.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/det.cc.o.d"
  "/root/repo/src/tga/entropy_ip.cc" "src/tga/CMakeFiles/v6tga.dir/entropy_ip.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/entropy_ip.cc.o.d"
  "/root/repo/src/tga/nybble_stats.cc" "src/tga/CMakeFiles/v6tga.dir/nybble_stats.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/nybble_stats.cc.o.d"
  "/root/repo/src/tga/registry.cc" "src/tga/CMakeFiles/v6tga.dir/registry.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/registry.cc.o.d"
  "/root/repo/src/tga/six_forest.cc" "src/tga/CMakeFiles/v6tga.dir/six_forest.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/six_forest.cc.o.d"
  "/root/repo/src/tga/six_gen.cc" "src/tga/CMakeFiles/v6tga.dir/six_gen.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/six_gen.cc.o.d"
  "/root/repo/src/tga/six_graph.cc" "src/tga/CMakeFiles/v6tga.dir/six_graph.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/six_graph.cc.o.d"
  "/root/repo/src/tga/six_hit.cc" "src/tga/CMakeFiles/v6tga.dir/six_hit.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/six_hit.cc.o.d"
  "/root/repo/src/tga/six_scan.cc" "src/tga/CMakeFiles/v6tga.dir/six_scan.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/six_scan.cc.o.d"
  "/root/repo/src/tga/six_sense.cc" "src/tga/CMakeFiles/v6tga.dir/six_sense.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/six_sense.cc.o.d"
  "/root/repo/src/tga/six_tree.cc" "src/tga/CMakeFiles/v6tga.dir/six_tree.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/six_tree.cc.o.d"
  "/root/repo/src/tga/space_tree.cc" "src/tga/CMakeFiles/v6tga.dir/space_tree.cc.o" "gcc" "src/tga/CMakeFiles/v6tga.dir/space_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/v6net.dir/DependInfo.cmake"
  "/root/repo/build/src/dealias/CMakeFiles/v6dealias.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/v6probe.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/v6simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/v6asdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
