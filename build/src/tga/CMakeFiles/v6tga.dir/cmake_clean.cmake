file(REMOVE_RECURSE
  "CMakeFiles/v6tga.dir/det.cc.o"
  "CMakeFiles/v6tga.dir/det.cc.o.d"
  "CMakeFiles/v6tga.dir/entropy_ip.cc.o"
  "CMakeFiles/v6tga.dir/entropy_ip.cc.o.d"
  "CMakeFiles/v6tga.dir/nybble_stats.cc.o"
  "CMakeFiles/v6tga.dir/nybble_stats.cc.o.d"
  "CMakeFiles/v6tga.dir/registry.cc.o"
  "CMakeFiles/v6tga.dir/registry.cc.o.d"
  "CMakeFiles/v6tga.dir/six_forest.cc.o"
  "CMakeFiles/v6tga.dir/six_forest.cc.o.d"
  "CMakeFiles/v6tga.dir/six_gen.cc.o"
  "CMakeFiles/v6tga.dir/six_gen.cc.o.d"
  "CMakeFiles/v6tga.dir/six_graph.cc.o"
  "CMakeFiles/v6tga.dir/six_graph.cc.o.d"
  "CMakeFiles/v6tga.dir/six_hit.cc.o"
  "CMakeFiles/v6tga.dir/six_hit.cc.o.d"
  "CMakeFiles/v6tga.dir/six_scan.cc.o"
  "CMakeFiles/v6tga.dir/six_scan.cc.o.d"
  "CMakeFiles/v6tga.dir/six_sense.cc.o"
  "CMakeFiles/v6tga.dir/six_sense.cc.o.d"
  "CMakeFiles/v6tga.dir/six_tree.cc.o"
  "CMakeFiles/v6tga.dir/six_tree.cc.o.d"
  "CMakeFiles/v6tga.dir/space_tree.cc.o"
  "CMakeFiles/v6tga.dir/space_tree.cc.o.d"
  "libv6tga.a"
  "libv6tga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6tga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
