file(REMOVE_RECURSE
  "libv6tga.a"
)
