# Empty compiler generated dependencies file for v6tga.
# This may be replaced when dependencies are built.
