# CMake generated Testfile for 
# Source directory: /root/repo/src/tga
# Build directory: /root/repo/build/src/tga
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
