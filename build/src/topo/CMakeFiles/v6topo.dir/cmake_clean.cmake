file(REMOVE_RECURSE
  "CMakeFiles/v6topo.dir/traceroute.cc.o"
  "CMakeFiles/v6topo.dir/traceroute.cc.o.d"
  "libv6topo.a"
  "libv6topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v6topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
