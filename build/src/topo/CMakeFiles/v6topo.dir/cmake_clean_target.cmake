file(REMOVE_RECURSE
  "libv6topo.a"
)
