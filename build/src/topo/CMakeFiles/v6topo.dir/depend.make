# Empty dependencies file for v6topo.
# This may be replaced when dependencies are built.
