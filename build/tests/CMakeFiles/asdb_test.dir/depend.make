# Empty dependencies file for asdb_test.
# This may be replaced when dependencies are built.
