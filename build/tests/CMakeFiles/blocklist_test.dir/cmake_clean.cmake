file(REMOVE_RECURSE
  "CMakeFiles/blocklist_test.dir/probe/blocklist_test.cc.o"
  "CMakeFiles/blocklist_test.dir/probe/blocklist_test.cc.o.d"
  "blocklist_test"
  "blocklist_test.pdb"
  "blocklist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocklist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
