# Empty dependencies file for blocklist_test.
# This may be replaced when dependencies are built.
