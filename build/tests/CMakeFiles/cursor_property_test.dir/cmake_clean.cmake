file(REMOVE_RECURSE
  "CMakeFiles/cursor_property_test.dir/tga/cursor_property_test.cc.o"
  "CMakeFiles/cursor_property_test.dir/tga/cursor_property_test.cc.o.d"
  "cursor_property_test"
  "cursor_property_test.pdb"
  "cursor_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cursor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
