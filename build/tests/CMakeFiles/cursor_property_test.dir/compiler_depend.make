# Empty compiler generated dependencies file for cursor_property_test.
# This may be replaced when dependencies are built.
