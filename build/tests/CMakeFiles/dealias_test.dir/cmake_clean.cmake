file(REMOVE_RECURSE
  "CMakeFiles/dealias_test.dir/dealias/dealias_test.cc.o"
  "CMakeFiles/dealias_test.dir/dealias/dealias_test.cc.o.d"
  "dealias_test"
  "dealias_test.pdb"
  "dealias_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dealias_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
