# Empty compiler generated dependencies file for dealias_test.
# This may be replaced when dependencies are built.
