file(REMOVE_RECURSE
  "CMakeFiles/generator_behavior_test.dir/tga/generator_behavior_test.cc.o"
  "CMakeFiles/generator_behavior_test.dir/tga/generator_behavior_test.cc.o.d"
  "generator_behavior_test"
  "generator_behavior_test.pdb"
  "generator_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
