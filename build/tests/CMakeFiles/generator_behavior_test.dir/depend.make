# Empty dependencies file for generator_behavior_test.
# This may be replaced when dependencies are built.
