file(REMOVE_RECURSE
  "CMakeFiles/nybble_stats_test.dir/tga/nybble_stats_test.cc.o"
  "CMakeFiles/nybble_stats_test.dir/tga/nybble_stats_test.cc.o.d"
  "nybble_stats_test"
  "nybble_stats_test.pdb"
  "nybble_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nybble_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
