# Empty compiler generated dependencies file for nybble_stats_test.
# This may be replaced when dependencies are built.
