file(REMOVE_RECURSE
  "CMakeFiles/prefix_test.dir/net/prefix_test.cc.o"
  "CMakeFiles/prefix_test.dir/net/prefix_test.cc.o.d"
  "prefix_test"
  "prefix_test.pdb"
  "prefix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
