file(REMOVE_RECURSE
  "CMakeFiles/prefix_trie_test.dir/net/prefix_trie_test.cc.o"
  "CMakeFiles/prefix_trie_test.dir/net/prefix_trie_test.cc.o.d"
  "prefix_trie_test"
  "prefix_trie_test.pdb"
  "prefix_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
