file(REMOVE_RECURSE
  "CMakeFiles/seeds_test.dir/seeds/seeds_test.cc.o"
  "CMakeFiles/seeds_test.dir/seeds/seeds_test.cc.o.d"
  "seeds_test"
  "seeds_test.pdb"
  "seeds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seeds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
