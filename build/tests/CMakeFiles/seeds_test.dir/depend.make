# Empty dependencies file for seeds_test.
# This may be replaced when dependencies are built.
