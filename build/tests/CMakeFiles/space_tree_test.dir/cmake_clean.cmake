file(REMOVE_RECURSE
  "CMakeFiles/space_tree_test.dir/tga/space_tree_test.cc.o"
  "CMakeFiles/space_tree_test.dir/tga/space_tree_test.cc.o.d"
  "space_tree_test"
  "space_tree_test.pdb"
  "space_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
