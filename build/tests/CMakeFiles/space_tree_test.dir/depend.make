# Empty dependencies file for space_tree_test.
# This may be replaced when dependencies are built.
