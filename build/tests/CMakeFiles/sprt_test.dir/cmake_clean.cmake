file(REMOVE_RECURSE
  "CMakeFiles/sprt_test.dir/dealias/sprt_test.cc.o"
  "CMakeFiles/sprt_test.dir/dealias/sprt_test.cc.o.d"
  "sprt_test"
  "sprt_test.pdb"
  "sprt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
