# Empty dependencies file for sprt_test.
# This may be replaced when dependencies are built.
