file(REMOVE_RECURSE
  "CMakeFiles/tga_specifics_test.dir/tga/tga_specifics_test.cc.o"
  "CMakeFiles/tga_specifics_test.dir/tga/tga_specifics_test.cc.o.d"
  "tga_specifics_test"
  "tga_specifics_test.pdb"
  "tga_specifics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tga_specifics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
