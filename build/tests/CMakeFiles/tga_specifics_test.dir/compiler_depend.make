# Empty compiler generated dependencies file for tga_specifics_test.
# This may be replaced when dependencies are built.
