
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simnet/universe_test.cc" "tests/CMakeFiles/universe_test.dir/simnet/universe_test.cc.o" "gcc" "tests/CMakeFiles/universe_test.dir/simnet/universe_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/v6experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/v6metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/v6dns.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/v6topo.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/v6io.dir/DependInfo.cmake"
  "/root/repo/build/src/seeds/CMakeFiles/v6seeds.dir/DependInfo.cmake"
  "/root/repo/build/src/tga/CMakeFiles/v6tga.dir/DependInfo.cmake"
  "/root/repo/build/src/dealias/CMakeFiles/v6dealias.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/v6probe.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/v6simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/v6asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v6net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
