file(REMOVE_RECURSE
  "CMakeFiles/universe_test.dir/simnet/universe_test.cc.o"
  "CMakeFiles/universe_test.dir/simnet/universe_test.cc.o.d"
  "universe_test"
  "universe_test.pdb"
  "universe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
