# Empty compiler generated dependencies file for universe_test.
# This may be replaced when dependencies are built.
