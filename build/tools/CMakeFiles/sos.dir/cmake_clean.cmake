file(REMOVE_RECURSE
  "CMakeFiles/sos.dir/sos_cli.cc.o"
  "CMakeFiles/sos.dir/sos_cli.cc.o.d"
  "sos"
  "sos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
