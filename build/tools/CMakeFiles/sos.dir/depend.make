# Empty dependencies file for sos.
# This may be replaced when dependencies are built.
