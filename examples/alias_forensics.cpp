// Alias forensics: reconstruct the paper's EIP/Amazon anomaly (§6.1) end
// to end. A rate-limited aliased prefix drops most probes, slips past
// online dealiasing, and masquerades as a spectacular pocket of "hits".
// This example finds such regions in the simulated Internet, shows how
// they defeat the standard dealiaser, and how the adaptive SPRT variant
// does better.
#include <iostream>

#include "dealias/online_dealiaser.h"
#include "dealias/sprt_dealiaser.h"
#include "example_env.h"
#include "experiment/workbench.h"
#include "metrics/reporter.h"
#include "probe/scanner.h"
#include "probe/transport.h"

int main() {
  using v6::metrics::fmt_count;
  using v6::metrics::fmt_percent;
  using v6::net::Ipv6Addr;
  using v6::net::ProbeType;

  v6::experiment::Workbench bench(sos_example::workbench_config());
  const auto& universe = bench.universe();

  // 1. Locate a rate-limited aliased region (ground truth — the thing a
  //    real measurement study only discovers after the fact).
  const v6::simnet::AliasRegion* suspect = nullptr;
  for (const auto& region : universe.alias_regions()) {
    if (region.rate_limited &&
        v6::net::has_service(region.services, ProbeType::kIcmp)) {
      suspect = &region;
      break;
    }
  }
  if (suspect == nullptr) {
    std::cout << "universe contains no rate-limited aliases; re-seed\n";
    return 0;
  }
  std::cout << "suspect region: " << suspect->prefix.to_string() << " (AS"
            << suspect->asn << ", answers "
            << fmt_percent(suspect->response_prob)
            << " of probes)\n\n";

  // 2. Scan 2,000 addresses inside it: the hitrate looks like a gold
  //    mine, not like an alias.
  v6::probe::SimTransport transport(universe, 99);
  v6::probe::Scanner scanner(transport, nullptr, {.seed = 99});
  std::vector<Ipv6Addr> targets;
  v6::net::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    targets.push_back(v6::net::random_in_prefix(rng, suspect->prefix));
  }
  const v6::probe::ScanStats stats =
      scanner.scan_hits(targets, ProbeType::kIcmp).stats;
  std::cout << "scan of " << fmt_count(stats.probed)
            << " random addresses inside it: " << fmt_count(stats.hits)
            << " 'hits' ("
            << fmt_percent(static_cast<double>(stats.hits) /
                           static_cast<double>(stats.probed))
            << " hitrate) — every one the same device\n\n";

  // 3. The standard online dealiaser vs the SPRT variant, 40 trials each.
  int fixed_caught = 0;
  int sprt_caught = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Ipv6Addr probe_addr =
        v6::net::random_in_prefix(rng, suspect->prefix);
    {
      v6::probe::SimTransport t(universe, 1000 + trial);
      v6::dealias::OnlineDealiaser d(t, 1000 + trial);
      fixed_caught += d.is_aliased(probe_addr, ProbeType::kIcmp);
    }
    {
      v6::probe::SimTransport t(universe, 1000 + trial);
      v6::dealias::SprtDealiaser d(t, 1000 + trial);
      sprt_caught += d.is_aliased(probe_addr, ProbeType::kIcmp);
    }
  }
  std::cout << "6Gen-style dealiaser (3 probes, >=2): caught "
            << fixed_caught << "/" << kTrials << " trials\n";
  std::cout << "SPRT adaptive dealiaser:              caught "
            << sprt_caught << "/" << kTrials << " trials\n\n";
  std::cout << "This is the paper's Amazon-prefix anomaly in miniature: "
               "rate limiting turns an alias into phantom hits. Sequential "
               "testing closes part of the gap; the paper is right that "
               "optimal dealiasing remains open.\n";
  return 0;
}
