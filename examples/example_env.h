// Shared environment knobs for the example binaries.
//
// The examples default to the full-size workbench so their printed
// numbers match EXPERIMENTS.md. Setting SOS_EXAMPLE_TINY=1 shrinks the
// universe and budgets to smoke-test scale (a few seconds total) — the
// ctest example suite runs every binary this way and only asserts exit
// status and output shape, not the exact numbers.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "experiment/workbench.h"

namespace sos_example {

inline bool tiny() {
  const char* env = std::getenv("SOS_EXAMPLE_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Workbench configuration honoring SOS_EXAMPLE_TINY.
inline v6::experiment::WorkbenchConfig workbench_config() {
  v6::experiment::WorkbenchConfig config;
  if (tiny()) {
    config.universe.num_ases = 150;
    config.universe.host_scale = 0.06;
    config.universe.dense_region_prefix_len = 52;
  }
  return config;
}

/// The probe budget to use: `full` normally, a smoke-test budget under
/// SOS_EXAMPLE_TINY.
inline std::uint64_t budget(std::uint64_t full) {
  return tiny() ? 20'000 : full;
}

}  // namespace sos_example
