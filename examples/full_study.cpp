// The paper in two minutes: a miniature end-to-end rerun of every
// research question at a small budget, printing one summary line per
// finding. Useful as a smoke test of the whole stack and as a guided
// tour of the paper's narrative.
#include <iostream>
#include <unordered_set>

#include "example_env.h"
#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "metrics/coverage.h"
#include "metrics/reporter.h"
#include "tga/registry.h"

using v6::metrics::fmt_count;
using v6::metrics::fmt_ratio;
using v6::metrics::performance_ratio;
using v6::net::ProbeType;

namespace {

v6::metrics::ScanOutcome run(v6::experiment::Workbench& bench,
                             v6::tga::TgaKind kind,
                             const std::vector<v6::net::Ipv6Addr>& seeds,
                             ProbeType port, std::uint64_t budget) {
  auto generator = v6::tga::make_generator(kind);
  v6::experiment::PipelineConfig config;
  config.budget = budget;
  config.type = port;
  return v6::experiment::run_tga(bench.universe(), *generator, seeds,
                                 bench.alias_list(), config);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t budget = argc > 1
                                   ? std::strtoull(argv[1], nullptr, 10)
                                   : sos_example::budget(100'000);

  std::cout << "Building the simulated IPv6 Internet and collecting the "
               "twelve seed feeds...\n";
  v6::experiment::Workbench bench(sos_example::workbench_config());
  std::cout << "  " << fmt_count(bench.universe().hosts().size())
            << " hosts, " << fmt_count(bench.seeds().size())
            << " collected seeds, budget " << fmt_count(budget)
            << " per run\n\n";

  // ---- RQ1.a: dealias your seeds ----------------------------------------
  const auto det_full = run(bench, v6::tga::TgaKind::kDet, bench.full(),
                            ProbeType::kIcmp, budget);
  const auto det_joint =
      run(bench, v6::tga::TgaKind::kDet,
          bench.dealiased(v6::dealias::DealiasMode::kJoint),
          ProbeType::kIcmp, budget);
  std::cout << "RQ1.a  Dealiasing seeds (DET, ICMP): aliases "
            << fmt_count(det_full.aliases) << " -> "
            << fmt_count(det_joint.aliases) << ", hits "
            << fmt_count(det_full.hits()) << " -> "
            << fmt_count(det_joint.hits()) << " ("
            << fmt_ratio(performance_ratio(
                   static_cast<double>(det_joint.hits()),
                   static_cast<double>(det_full.hits())))
            << ")\n";

  // ---- RQ1.b: drop unresponsive seeds ------------------------------------
  const auto det_active = run(bench, v6::tga::TgaKind::kDet,
                              bench.all_active(), ProbeType::kIcmp, budget);
  std::cout << "RQ1.b  Responsive-only seeds (DET, ICMP): hits "
            << fmt_count(det_joint.hits()) << " -> "
            << fmt_count(det_active.hits()) << " ("
            << fmt_ratio(performance_ratio(
                   static_cast<double>(det_active.hits()),
                   static_cast<double>(det_joint.hits())))
            << ")\n";

  // ---- RQ2: port-specific seeds -------------------------------------------
  const auto det_tcp_all = run(bench, v6::tga::TgaKind::kDet,
                               bench.all_active(), ProbeType::kTcp443,
                               budget);
  const auto det_tcp_port =
      run(bench, v6::tga::TgaKind::kDet,
          bench.port_specific(ProbeType::kTcp443), ProbeType::kTcp443,
          budget);
  std::cout << "RQ2    Port-tailored seeds (DET, TCP443): hits "
            << fmt_count(det_tcp_all.hits()) << " -> "
            << fmt_count(det_tcp_port.hits()) << ", ASes "
            << fmt_count(det_tcp_all.ases()) << " -> "
            << fmt_count(det_tcp_port.ases())
            << (det_tcp_port.ases() < det_tcp_all.ases()
                    ? "  (hits up, diversity down)"
                    : "")
            << "\n";

  // ---- RQ3: source-specific seeds -----------------------------------------
  const auto scamper = run(bench, v6::tga::TgaKind::kSixTree,
                           bench.source_active(v6::seeds::SeedSource::kScamper),
                           ProbeType::kIcmp, budget);
  const auto censys = run(bench, v6::tga::TgaKind::kSixTree,
                          bench.source_active(v6::seeds::SeedSource::kCensys),
                          ProbeType::kIcmp, budget);
  std::cout << "RQ3    Seed feed changes what you find (6Tree, ICMP): "
               "Scamper seeds -> "
            << fmt_count(scamper.hits()) << " hits in "
            << fmt_count(scamper.ases()) << " ASes; Censys seeds -> "
            << fmt_count(censys.hits()) << " hits in "
            << fmt_count(censys.ases()) << " ASes\n";

  // ---- RQ4: combine generators ---------------------------------------------
  std::unordered_set<v6::net::Ipv6Addr> combined;
  std::size_t best_single = 0;
  for (const v6::tga::TgaKind kind :
       {v6::tga::TgaKind::kSixSense, v6::tga::TgaKind::kSixTree,
        v6::tga::TgaKind::kDet}) {
    const auto outcome =
        run(bench, kind, bench.all_active(), ProbeType::kIcmp, budget);
    best_single = std::max<std::size_t>(best_single, outcome.hits());
    combined.insert(outcome.hit_set.begin(), outcome.hit_set.end());
  }
  std::cout << "RQ4    Combining 6Sense+6Tree+DET: union "
            << fmt_count(combined.size()) << " hits vs best single "
            << fmt_count(best_single) << "\n";

  std::cout << "\nRQ5    => dealias jointly, pre-scan seeds, tailor to the "
               "target port (mind the diversity tradeoff), and run "
               "multiple TGAs.\n";
  return 0;
}
