// Internet survey: run all eight TGAs on the recommended (All Active)
// seed dataset, compare hits / active ASes / aliases per generator, and
// show what running them *together* buys (the paper's RQ4 best practice).
#include <iostream>
#include <unordered_set>

#include "example_env.h"
#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "metrics/coverage.h"
#include "metrics/reporter.h"
#include "metrics/scan_outcome.h"
#include "tga/registry.h"

int main(int argc, char** argv) {
  using v6::metrics::fmt_count;

  // Optional budget override: ./internet_survey [budget]
  v6::experiment::PipelineConfig config;
  config.budget = sos_example::budget(config.budget);
  if (argc > 1) config.budget = std::strtoull(argv[1], nullptr, 10);

  v6::experiment::Workbench bench(sos_example::workbench_config());
  const auto& seeds = bench.all_active();
  std::cout << "All Active seeds: " << fmt_count(seeds.size())
            << " (full dataset " << fmt_count(bench.seeds().size())
            << "), budget " << fmt_count(config.budget) << " per TGA\n\n";

  v6::metrics::TextTable table(
      {"TGA", "Hits", "ASes", "Aliases", "Responsive", "Packets"});
  std::vector<std::pair<std::string, v6::metrics::ScanOutcome>> results;
  for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
    auto generator = v6::tga::make_generator(kind);
    auto outcome = v6::experiment::run_tga(bench.universe(), *generator,
                                           seeds, bench.alias_list(), config);
    table.add_row({std::string(v6::tga::to_string(kind)),
                   fmt_count(outcome.hits()), fmt_count(outcome.ases()),
                   fmt_count(outcome.aliases), fmt_count(outcome.responsive),
                   fmt_count(outcome.packets)});
    results.emplace_back(std::string(v6::tga::to_string(kind)),
                         std::move(outcome));
  }
  table.print(std::cout);

  // Cumulative unique contribution when combining generators (RQ4).
  std::vector<std::pair<std::string,
                        const std::unordered_set<v6::net::Ipv6Addr>*>>
      hit_sets;
  for (const auto& [name, outcome] : results) {
    hit_sets.emplace_back(name, &outcome.hit_set);
  }
  std::cout << "\nCumulative unique hits when combining generators:\n";
  for (const auto& step : v6::metrics::cumulative_contribution(hit_sets)) {
    std::cout << "  +" << step.name << ": " << fmt_count(step.cumulative)
              << " (" << v6::metrics::fmt_percent(step.cumulative_fraction)
              << " of union, +" << fmt_count(step.marginal) << ")\n";
  }
  return 0;
}
