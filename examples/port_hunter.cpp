// Port hunter: tailor the seed dataset to the scan target (RQ2). For a
// chosen port, compare generating from the All Active dataset against
// the port-specific dataset, and show the hits/AS-diversity tradeoff the
// paper identifies.
#include <cstring>
#include <iostream>

#include "example_env.h"
#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "metrics/reporter.h"
#include "tga/registry.h"

namespace {

v6::net::ProbeType parse_port(const char* text) {
  for (const v6::net::ProbeType t : v6::net::kAllProbeTypes) {
    if (v6::net::to_string(t) == text) return t;
  }
  return v6::net::ProbeType::kTcp443;
}

}  // namespace

int main(int argc, char** argv) {
  using v6::metrics::fmt_count;
  using v6::metrics::fmt_ratio;
  using v6::metrics::performance_ratio;

  const v6::net::ProbeType port =
      argc > 1 ? parse_port(argv[1]) : v6::net::ProbeType::kTcp443;

  v6::experiment::Workbench bench(sos_example::workbench_config());
  v6::experiment::PipelineConfig config;
  config.budget = sos_example::budget(200'000);
  config.type = port;

  const auto& all_active = bench.all_active();
  const auto& port_seeds = bench.port_specific(port);
  std::cout << "Scan target " << v6::net::to_string(port) << ": All Active "
            << fmt_count(all_active.size()) << " seeds vs port-specific "
            << fmt_count(port_seeds.size()) << " seeds\n\n";

  v6::metrics::TextTable table({"TGA", "AllActive hits", "PortSpec hits",
                                "hit ratio", "AllActive ASes",
                                "PortSpec ASes", "AS ratio"});
  for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
    auto generator = v6::tga::make_generator(kind);
    const auto base = v6::experiment::run_tga(
        bench.universe(), *generator, all_active, bench.alias_list(), config);
    const auto tailored = v6::experiment::run_tga(
        bench.universe(), *generator, port_seeds, bench.alias_list(), config);
    table.add_row(
        {std::string(v6::tga::to_string(kind)), fmt_count(base.hits()),
         fmt_count(tailored.hits()),
         fmt_ratio(performance_ratio(static_cast<double>(tailored.hits()),
                                     static_cast<double>(base.hits()))),
         fmt_count(base.ases()), fmt_count(tailored.ases()),
         fmt_ratio(performance_ratio(static_cast<double>(tailored.ases()),
                                     static_cast<double>(base.ases())))});
  }
  table.print(std::cout);
  std::cout << "\nPaper RQ2: port-tailored seeds raise application-layer "
               "hits (especially for online models) at some cost in AS "
               "diversity; include ICMP-active seeds when breadth "
               "matters.\n";
  return 0;
}
