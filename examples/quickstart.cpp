// Quickstart: build a simulated IPv6 Internet, collect seeds, preprocess
// them the way the paper recommends (joint dealiasing + responsive-only),
// run one TGA, and report hits and AS diversity.
//
// This is the minimal end-to-end tour of the library's public API.
#include <cstdio>
#include <iostream>

#include "example_env.h"
#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "metrics/reporter.h"
#include "tga/registry.h"

int main() {
  using v6::metrics::fmt_count;

  std::cout << "== Seeds of Scanning: quickstart ==\n\n";

  // 1. Build the simulated Internet and collect the 12-source seed
  //    dataset. Everything is deterministic in the master seed.
  v6::experiment::Workbench bench(sos_example::workbench_config());
  const auto& universe = bench.universe();
  std::cout << "universe: " << fmt_count(universe.hosts().size())
            << " hosts, " << fmt_count(universe.asdb().size()) << " ASes, "
            << fmt_count(universe.alias_regions().size())
            << " aliased regions\n";
  std::cout << "ICMP-active hosts: "
            << fmt_count(universe.active_host_count(v6::net::ProbeType::kIcmp))
            << "\n";
  std::cout << "collected seeds: " << fmt_count(bench.seeds().size()) << "\n";

  // 2. Preprocess: joint (offline+online) dealiasing, then keep only
  //    addresses responsive on at least one port/protocol (RQ1's best
  //    practice).
  const auto& seeds = bench.all_active();
  std::cout << "All Active seed dataset: " << fmt_count(seeds.size())
            << " addresses\n\n";

  // 3. Run one TGA through the scan pipeline.
  auto generator = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  v6::experiment::PipelineConfig config;
  config.budget = sos_example::budget(config.budget);
  config.type = v6::net::ProbeType::kIcmp;
  const auto outcome = v6::experiment::run_tga(
      universe, *generator, seeds, bench.alias_list(), config);

  std::cout << generator->name() << " on ICMP with a "
            << fmt_count(config.budget) << " budget:\n";
  std::cout << "  generated:  " << fmt_count(outcome.generated) << "\n";
  std::cout << "  responsive: " << fmt_count(outcome.responsive) << "\n";
  std::cout << "  aliases:    " << fmt_count(outcome.aliases) << "\n";
  std::cout << "  hits:       " << fmt_count(outcome.hits()) << "\n";
  std::cout << "  active ASes:" << fmt_count(outcome.ases()) << "\n";
  std::cout << "  packets:    " << fmt_count(outcome.packets) << "\n";
  std::printf("  wire time at 10kpps: %.1f virtual seconds\n",
              outcome.virtual_seconds);
  return 0;
}
