# Smoke-test wrapper for the example binaries (invoked with cmake -P by
# the `example_*_smoke` ctest entries). Runs the binary with
# SOS_EXAMPLE_TINY=1 and asserts BOTH a zero exit status and that stdout
# matches EXPECT — ctest's PASS_REGULAR_EXPRESSION alone would declare
# success on matching output even if the binary then crashed.
#
# Usage:
#   cmake -DEXAMPLE_BIN=<path> -DEXPECT=<regex> [-DEXAMPLE_ARGS=<args>]
#         -P run_example_smoke.cmake
if(NOT DEFINED EXAMPLE_BIN OR NOT DEFINED EXPECT)
  message(FATAL_ERROR
          "usage: cmake -DEXAMPLE_BIN=<path> -DEXPECT=<regex> "
          "[-DEXAMPLE_ARGS=<args>] -P run_example_smoke.cmake")
endif()

set(command ${EXAMPLE_BIN})
if(DEFINED EXAMPLE_ARGS)
  list(APPEND command ${EXAMPLE_ARGS})
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env SOS_EXAMPLE_TINY=1 ${command}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${EXAMPLE_BIN} exited with '${rc}'\n"
                      "stdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "${EXPECT}")
  message(FATAL_ERROR "${EXAMPLE_BIN} output does not match '${EXPECT}'\n"
                      "stdout:\n${out}")
endif()
