// Seed lab: walk one TGA through the paper's seed-preprocessing ladder —
// raw collected seeds, offline-dealiased, online-dealiased, joint, then
// responsive-only — and watch hits, ASes, and wasted (aliased) budget
// change at each rung. This is RQ1 in miniature.
#include <iostream>

#include "example_env.h"
#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "metrics/reporter.h"
#include "tga/registry.h"

int main(int argc, char** argv) {
  using v6::metrics::fmt_count;

  const char* tga_name = argc > 1 ? argv[1] : "DET";
  auto generator = v6::tga::make_generator(tga_name);
  if (generator == nullptr) {
    std::cerr << "unknown TGA '" << tga_name
              << "' (try: 6Sense DET 6Tree 6Scan 6Graph 6Gen 6Hit EIP)\n";
    return 1;
  }

  v6::experiment::Workbench bench(sos_example::workbench_config());
  v6::experiment::PipelineConfig config;
  config.budget = sos_example::budget(200'000);

  struct Rung {
    const char* name;
    const std::vector<v6::net::Ipv6Addr>* seeds;
  };
  const std::vector<Rung> ladder = {
      {"raw collected", &bench.full()},
      {"offline dealiased", &bench.dealiased(v6::dealias::DealiasMode::kOffline)},
      {"online dealiased", &bench.dealiased(v6::dealias::DealiasMode::kOnline)},
      {"joint dealiased", &bench.dealiased(v6::dealias::DealiasMode::kJoint)},
      {"responsive only", &bench.all_active()},
  };

  std::cout << "Preprocessing ladder for " << generator->name()
            << " (ICMP, budget " << fmt_count(config.budget) << "):\n\n";
  v6::metrics::TextTable table(
      {"Seed dataset", "Seeds", "Hits", "ASes", "Aliases"});
  for (const Rung& rung : ladder) {
    const auto outcome = v6::experiment::run_tga(
        bench.universe(), *generator, *rung.seeds, bench.alias_list(),
        config);
    table.add_row({rung.name, fmt_count(rung.seeds->size()),
                   fmt_count(outcome.hits()), fmt_count(outcome.ases()),
                   fmt_count(outcome.aliases)});
  }
  table.print(std::cout);
  std::cout << "\nThe paper's RQ1 best practice: dealias jointly "
               "(offline list + online probing), then keep only seeds "
               "responsive on some port.\n";
  return 0;
}
