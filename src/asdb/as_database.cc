#include "asdb/as_database.h"

namespace v6::asdb {

std::string_view to_string(OrgType t) {
  switch (t) {
    case OrgType::kIsp: return "ISP";
    case OrgType::kMobile: return "Mobile";
    case OrgType::kSatellite: return "Satellite";
    case OrgType::kCloud: return "Cloud";
    case OrgType::kHosting: return "Hosting";
    case OrgType::kCdn: return "CDN";
    case OrgType::kEducation: return "Education";
    case OrgType::kEnterprise: return "Enterprise";
    case OrgType::kGovernment: return "Government";
    case OrgType::kSecurity: return "Security";
    case OrgType::kOther: return "Other";
  }
  return "Other";
}

std::string_view to_string(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return "NA";
    case Region::kSouthAmerica: return "SA";
    case Region::kEurope: return "EU";
    case Region::kAsia: return "AS";
    case Region::kChina: return "CN";
    case Region::kAfrica: return "AF";
    case Region::kOceania: return "OC";
  }
  return "NA";
}

void AsDatabase::add(AsInfo info) {
  const auto it = index_.find(info.asn);
  if (it != index_.end()) {
    infos_[it->second] = std::move(info);
    return;
  }
  index_.emplace(info.asn, infos_.size());
  infos_.push_back(std::move(info));
}

const AsInfo* AsDatabase::find(std::uint32_t asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &infos_[it->second];
}

}  // namespace v6::asdb
