// Autonomous-system metadata: ASN, organization name, organization type,
// and coarse geographic region. Mirrors the information the paper derives
// from PeeringDB / manual classification (Table 6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace v6::asdb {

/// Organization type taxonomy used for AS characterization (paper Table 6
/// groups orgs into ISPs/mobile carriers, cloud/hosting/CDNs, and others).
enum class OrgType : std::uint8_t {
  kIsp,
  kMobile,
  kSatellite,
  kCloud,
  kHosting,
  kCdn,
  kEducation,
  kEnterprise,
  kGovernment,
  kSecurity,
  kOther,
};

/// Human-readable org type label.
std::string_view to_string(OrgType t);

/// Coarse geographic region, used to reproduce the paper's observation that
/// discovered ISPs are scattered globally (Table 6 discussion).
enum class Region : std::uint8_t {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAsia,
  kChina,
  kAfrica,
  kOceania,
};

std::string_view to_string(Region r);

/// Metadata for one autonomous system.
struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
  OrgType org_type = OrgType::kOther;
  Region region = Region::kNorthAmerica;
};

/// In-memory AS metadata database.
class AsDatabase {
 public:
  /// Registers an AS. Overwrites an existing entry with the same ASN.
  void add(AsInfo info);

  /// Looks up an AS by number; nullptr if unknown.
  const AsInfo* find(std::uint32_t asn) const;

  /// All registered ASes in insertion order.
  const std::vector<AsInfo>& all() const { return infos_; }

  std::size_t size() const { return infos_.size(); }

 private:
  std::vector<AsInfo> infos_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

}  // namespace v6::asdb
