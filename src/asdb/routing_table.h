// Prefix -> ASN longest-prefix-match routing table.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace v6::asdb {

/// Maps announced IPv6 prefixes to origin ASNs via longest-prefix match,
/// analogous to resolving scan results against a BGP RIB dump.
class RoutingTable {
 public:
  /// Announces `prefix` as originated by `asn`. More-specific announcements
  /// win on lookup, as in BGP.
  void announce(const v6::net::Prefix& prefix, std::uint32_t asn) {
    trie_.insert(prefix, asn);
    announcements_.emplace_back(prefix, asn);
  }

  /// Origin ASN for `addr`, or nullopt if unrouted.
  std::optional<std::uint32_t> asn_of(const v6::net::Ipv6Addr& addr) const {
    const std::uint32_t* asn = trie_.longest_match(addr);
    if (asn == nullptr) return std::nullopt;
    return *asn;
  }

  /// Number of announced prefixes.
  std::size_t size() const { return trie_.size(); }

  /// All announcements in insertion order.
  const std::vector<std::pair<v6::net::Prefix, std::uint32_t>>& announcements()
      const {
    return announcements_;
  }

 private:
  v6::net::PrefixTrie<std::uint32_t> trie_;
  std::vector<std::pair<v6::net::Prefix, std::uint32_t>> announcements_;
};

}  // namespace v6::asdb
