// Contracts layer: precondition / postcondition / invariant checks for
// the core libraries.
//
// Compiled out by default — several of these sit on per-probe and
// per-nybble hot paths — and compiled in by defining V6_CONTRACTS (the
// CMake option of the same name, ON in the asan-ubsan and tsan presets).
// The sanitizer builds are where contracts earn their keep: a violated
// precondition aborts with file/line/expression *before* the undefined
// behavior it guards against (out-of-range shift, null dereference,
// out-of-bounds index) corrupts anything, which turns a sanitizer
// backtrace hunt into a one-line diagnosis.
//
// Macro vocabulary (all forms take an optional trailing message):
//   V6_REQUIRE(cond)    — caller-facing precondition on entry
//   V6_ENSURE(cond)     — postcondition on the value about to be returned
//   V6_INVARIANT(cond)  — internal consistency mid-function / per-class
//
// All three compile to `((void)0)` when V6_CONTRACTS is off, so
// conditions must be free of side effects. Conditions also must be
// satisfiable by every caller in the tree: a contract is a bug report
// generator, not input validation — parsers still return nullopt on bad
// input, and contracts only fire on programmer error.
//
// The observability layer's V6_OBS_ASSERT (src/obs/obs_assert.h)
// predates this header and is now defined in terms of it: the
// V6_OBS_ASSERTS CMake option still exists for obs-only checking, and
// V6_CONTRACTS implies it.
#pragma once

#if defined(V6_CONTRACTS)

#include <cstdio>
#include <cstdlib>

namespace v6::check {

/// Prints one diagnostic line and aborts. Out-of-line-ish (it is inline
/// but cold) so the macro expansion at each use site stays small.
[[noreturn]] inline void contract_fail(const char* kind, const char* file,
                                       int line, const char* expr,
                                       const char* msg) {
  std::fprintf(stderr, "%s violated at %s:%d: %s%s%s\n", kind, file, line,
               expr, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace v6::check

#define V6_CONTRACT_CHECK_(kind, cond, msg)                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::v6::check::contract_fail(kind, __FILE__, __LINE__, #cond, msg);  \
    }                                                                    \
  } while (0)

#define V6_REQUIRE(cond) V6_CONTRACT_CHECK_("precondition", cond, "")
#define V6_REQUIRE_MSG(cond, msg) V6_CONTRACT_CHECK_("precondition", cond, msg)
#define V6_ENSURE(cond) V6_CONTRACT_CHECK_("postcondition", cond, "")
#define V6_ENSURE_MSG(cond, msg) V6_CONTRACT_CHECK_("postcondition", cond, msg)
#define V6_INVARIANT(cond) V6_CONTRACT_CHECK_("invariant", cond, "")
#define V6_INVARIANT_MSG(cond, msg) V6_CONTRACT_CHECK_("invariant", cond, msg)

#else

#define V6_REQUIRE(cond) ((void)0)
#define V6_REQUIRE_MSG(cond, msg) ((void)0)
#define V6_ENSURE(cond) ((void)0)
#define V6_ENSURE_MSG(cond, msg) ((void)0)
#define V6_INVARIANT(cond) ((void)0)
#define V6_INVARIANT_MSG(cond, msg) ((void)0)

#endif
