// Shared configuration validation (the satellite of the ScanSession /
// service redesign that unified the three hand-rolled bounds checks).
//
// Every public config struct — PipelineConfig, SweepSpec/ScanSession,
// StreamScanOptions, service::ServiceConfig — exposes a `validate()`
// built from the helpers below, so an invalid config fails identically
// everywhere: a ConfigError whose message is always
//
//   <ConfigName>.<field>: <constraint>
//
// regardless of which entry point (run_tga, ScanSession::sweep,
// StreamScanner, HitlistService) first sees the config. Contrast with
// contracts.h: a contract guards against *programmer* error inside the
// library and compiles out by default; validate() guards *caller* input
// at the API boundary and is always armed. The sanitizer builds add
// death tests on top (tests/check/validate_test.cc): validation invoked
// from a noexcept frame must terminate with the same uniform message.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace v6::check {

/// Thrown by every config validate() path. Derives from
/// std::invalid_argument so pre-existing catch sites keep working.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Builds uniformly formatted ConfigErrors for one named config struct.
/// Usage:
///   v6::check::Validator v("PipelineConfig");
///   v.require(batch_size > 0, "batch_size", "must be > 0");
class Validator {
 public:
  explicit Validator(std::string_view config_name) : name_(config_name) {}

  /// Throws ConfigError("<name>.<field>: <constraint>") when !ok.
  void require(bool ok, std::string_view field,
               std::string_view constraint) const {
    if (ok) return;
    std::string message;
    message.reserve(name_.size() + field.size() + constraint.size() + 3);
    message.append(name_).append(".").append(field).append(": ").append(
        constraint);
    throw ConfigError(message);
  }

  // Common constraint spellings, so messages stay byte-identical across
  // the config structs that share a field shape.
  template <typename T>
  void positive(T value, std::string_view field) const {
    require(value > T{0}, field, "must be > 0");
  }
  template <typename T>
  void non_negative(T value, std::string_view field) const {
    require(value >= T{0}, field, "must be >= 0");
  }
  /// Probability-like field: must lie in [0, 1].
  void unit_interval(double value, std::string_view field) const {
    require(value >= 0.0 && value <= 1.0, field, "must be in [0, 1]");
  }
  template <typename T>
  void not_null(const T* pointer, std::string_view field) const {
    require(pointer != nullptr, field, "is required (must not be null)");
  }

 private:
  std::string name_;
};

}  // namespace v6::check
