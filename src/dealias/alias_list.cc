#include "dealias/alias_list.h"

#include "simnet/universe.h"

namespace v6::dealias {

std::size_t AliasList::load(std::string_view text) {
  std::size_t added = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      if (const auto prefix = v6::net::Prefix::parse(line)) {
        add(*prefix);
        ++added;
      }
    }
    if (end == text.size()) break;
  }
  return added;
}

AliasList AliasList::published_from(const v6::simnet::Universe& universe) {
  AliasList list;
  for (const v6::simnet::AliasRegion& region : universe.alias_regions()) {
    if (region.published) list.add(region.prefix);
  }
  return list;
}

}  // namespace v6::dealias
