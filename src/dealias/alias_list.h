// Offline alias list: a published set of known-aliased prefixes, as
// distributed alongside the IPv6 Hitlist. Incomplete by nature — the
// paper's RQ1.a shows relying on it alone misses never-before-seen
// aliases.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace v6::simnet {
class Universe;
}

namespace v6::dealias {

class AliasList {
 public:
  void add(const v6::net::Prefix& prefix) {
    trie_.insert(prefix, true);
    prefixes_.push_back(prefix);
  }

  /// Parses newline-separated CIDR entries ('#' comments allowed).
  /// Returns the number of prefixes added.
  std::size_t load(std::string_view text);

  /// True if `addr` falls inside a listed aliased prefix.
  bool contains(const v6::net::Ipv6Addr& addr) const {
    return trie_.covers(addr);
  }

  std::size_t size() const { return prefixes_.size(); }
  std::span<const v6::net::Prefix> prefixes() const { return prefixes_; }

  /// The published portion of a simulated universe's alias regions — the
  /// analogue of downloading the IPv6 Hitlist alias list. Unpublished
  /// regions are deliberately absent.
  static AliasList published_from(const v6::simnet::Universe& universe);

 private:
  v6::net::PrefixTrie<bool> trie_;
  std::vector<v6::net::Prefix> prefixes_;
};

}  // namespace v6::dealias
