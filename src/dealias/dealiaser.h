// Dealiasing facade combining the offline alias list and the online
// 6Gen-style prober, per the paper's four studied modes (Table 4):
// none, offline only, online only, and joint (offline + online).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "dealias/alias_list.h"
#include "dealias/online_dealiaser.h"
#include "net/ipv6.h"
#include "net/service.h"

namespace v6::dealias {

enum class DealiasMode : std::uint8_t {
  kNone,
  kOffline,
  kOnline,
  kJoint,
};

constexpr std::string_view to_string(DealiasMode m) {
  switch (m) {
    case DealiasMode::kNone: return "none";
    case DealiasMode::kOffline: return "offline";
    case DealiasMode::kOnline: return "online";
    case DealiasMode::kJoint: return "joint";
  }
  return "?";
}

inline constexpr std::array<DealiasMode, 4> kAllDealiasModes = {
    DealiasMode::kNone, DealiasMode::kOffline, DealiasMode::kOnline,
    DealiasMode::kJoint};

/// Applies a DealiasMode. Both underlying components are borrowed; pass
/// nullptr for components a mode does not use.
class Dealiaser {
 public:
  Dealiaser(DealiasMode mode, const AliasList* offline,
            OnlineDealiaser* online)
      : mode_(mode), offline_(offline), online_(online) {}

  DealiasMode mode() const { return mode_; }

  /// True if `addr` is classified aliased under this mode. Online modes
  /// may emit probes for never-before-seen /96s. The offline check runs
  /// first: a listed prefix never costs packets.
  bool is_aliased(const v6::net::Ipv6Addr& addr, v6::net::ProbeType type) {
    if ((mode_ == DealiasMode::kOffline || mode_ == DealiasMode::kJoint) &&
        offline_ != nullptr && offline_->contains(addr)) {
      return true;
    }
    if ((mode_ == DealiasMode::kOnline || mode_ == DealiasMode::kJoint) &&
        online_ != nullptr) {
      return online_->is_aliased(addr, type);
    }
    return false;
  }

  /// Removes aliased addresses from `addrs`, returning survivors in
  /// order. `type` is the probe type used for online verification.
  std::vector<v6::net::Ipv6Addr> filter(
      std::span<const v6::net::Ipv6Addr> addrs, v6::net::ProbeType type) {
    std::vector<v6::net::Ipv6Addr> out;
    out.reserve(addrs.size());
    for (const v6::net::Ipv6Addr& a : addrs) {
      if (!is_aliased(a, type)) out.push_back(a);
    }
    return out;
  }

 private:
  DealiasMode mode_;
  const AliasList* offline_;
  OnlineDealiaser* online_;
};

}  // namespace v6::dealias
