#include "dealias/online_dealiaser.h"

namespace v6::dealias {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

OnlineDealiaser::OnlineDealiaser(v6::probe::ProbeTransport& transport,
                                 std::uint64_t seed,
                                 OnlineDealiaserOptions options)
    : transport_(&transport),
      options_(options),
      rng_(v6::net::make_rng(seed, /*tag=*/0xDEA1)) {}

std::optional<bool> OnlineDealiaser::cached_verdict(
    const Ipv6Addr& addr) const {
  const auto it = verdicts_.find(addr.masked(options_.prefix_len));
  if (it == verdicts_.end()) return std::nullopt;
  return it->second;
}

bool OnlineDealiaser::is_aliased(const Ipv6Addr& addr, ProbeType type) {
  const Ipv6Addr base = addr.masked(options_.prefix_len);
  if (const auto it = verdicts_.find(base); it != verdicts_.end()) {
    return it->second;
  }

  ++tested_;
  const v6::net::Prefix prefix(base, options_.prefix_len);
  int active = 0;
  for (int i = 0; i < options_.probes; ++i) {
    const Ipv6Addr target = v6::net::random_in_prefix(rng_, prefix);
    ProbeReply reply = ProbeReply::kTimeout;
    for (int attempt = 0; attempt <= options_.retries; ++attempt) {
      ++probes_sent_;
      reply = transport_->send(target, type);
      if (reply != ProbeReply::kTimeout) break;
    }
    if (v6::net::is_hit(type, reply)) ++active;
    // Early exit once the verdict cannot change.
    if (active >= options_.threshold) break;
  }

  const bool aliased = active >= options_.threshold;
  if (aliased) ++found_;
  verdicts_.emplace(base, aliased);
  return aliased;
}

}  // namespace v6::dealias
