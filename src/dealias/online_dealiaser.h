// Online (6Gen-style) dealiasing, as deployed by 6Sense and by the paper's
// measurement pipeline (§4.2):
//
//   For every active address, when a new /96 prefix is encountered, probe
//   3 uniformly random addresses inside the /96 (3 packet retries each).
//   If 2 or more respond, the /96 is aliased and every address inside it
//   is classified aliased.
//
// Verdicts are cached per /96, so each prefix costs at most
// `probes * (1 + retries)` packets regardless of how many addresses map
// into it. Rate-limited aliased regions drop probes and can evade this
// check — the failure mode the paper highlights.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ipv6.h"
#include "net/rng.h"
#include "net/service.h"
#include "probe/transport.h"

namespace v6::dealias {

struct OnlineDealiaserOptions {
  int probes = 3;      // random addresses per new /96
  int retries = 3;     // retransmissions per probe on timeout
  int threshold = 2;   // >= this many active => aliased
  int prefix_len = 96; // granularity of the aliasing test
};

class OnlineDealiaser {
 public:
  OnlineDealiaser(v6::probe::ProbeTransport& transport, std::uint64_t seed,
                  OnlineDealiaserOptions options = {});

  /// True if the /96 containing `addr` tests as aliased on `type`.
  /// The first query for a /96 sends probes; later queries hit the cache.
  bool is_aliased(const v6::net::Ipv6Addr& addr, v6::net::ProbeType type);

  /// Cached verdict without probing; nullopt if this /96 was never tested.
  std::optional<bool> cached_verdict(const v6::net::Ipv6Addr& addr) const;

  std::uint64_t prefixes_tested() const { return tested_; }
  std::uint64_t aliases_found() const { return found_; }
  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  v6::probe::ProbeTransport* transport_;
  OnlineDealiaserOptions options_;
  v6::net::Rng rng_;
  // Verdict cache keyed by the masked /96 base address.
  std::unordered_map<v6::net::Ipv6Addr, bool> verdicts_;
  std::uint64_t tested_ = 0;
  std::uint64_t found_ = 0;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace v6::dealias
