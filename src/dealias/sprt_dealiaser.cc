#include "dealias/sprt_dealiaser.h"

#include <cmath>

#include "check/contracts.h"

namespace v6::dealias {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;

SprtDealiaser::SprtDealiaser(v6::probe::ProbeTransport& transport,
                             std::uint64_t seed,
                             SprtDealiaserOptions options)
    : transport_(&transport),
      options_(options),
      rng_(v6::net::make_rng(seed, /*tag=*/0x5947)) {
  // The SPRT thresholds are only meaningful for a discriminating test:
  // degenerate probabilities make the log-likelihood ratios zero, NaN,
  // or infinite and the loop below either never terminates early or
  // decides from no evidence.
  V6_REQUIRE_MSG(options_.p0 > 0.0 && options_.p1 < 1.0 &&
                     options_.p0 < options_.p1,
                 "need 0 < p0 < p1 < 1 for a discriminating SPRT");
  V6_REQUIRE_MSG(options_.alpha > 0.0 && options_.alpha < 1.0 &&
                     options_.beta > 0.0 && options_.beta < 1.0,
                 "error targets must be in (0, 1)");
  V6_REQUIRE(options_.max_probes > 0);
  V6_REQUIRE(options_.prefix_len >= 0 && options_.prefix_len <= 128);
  log_accept_ = std::log(options_.beta / (1.0 - options_.alpha));
  log_reject_ = std::log((1.0 - options_.beta) / options_.alpha);
  llr_hit_ = std::log(options_.p1 / options_.p0);
  llr_miss_ = std::log((1.0 - options_.p1) / (1.0 - options_.p0));
  V6_ENSURE_MSG(log_accept_ < log_reject_,
                "accept threshold must sit below the reject threshold");
}

bool SprtDealiaser::is_aliased(const Ipv6Addr& addr, ProbeType type) {
  const Ipv6Addr base = addr.masked(options_.prefix_len);
  if (const auto it = verdicts_.find(base); it != verdicts_.end()) {
    return it->second;
  }

  ++tested_;
  const v6::net::Prefix prefix(base, options_.prefix_len);
  double llr = 0.0;
  bool aliased = false;
  for (int i = 0; i < options_.max_probes; ++i) {
    const Ipv6Addr target = v6::net::random_in_prefix(rng_, prefix);
    ++probes_sent_;
    const bool responded =
        v6::net::is_hit(type, transport_->send(target, type));
    llr += responded ? llr_hit_ : llr_miss_;
    if (llr >= log_reject_) {
      aliased = true;  // strong evidence for H1
      break;
    }
    if (llr <= log_accept_) {
      break;  // strong evidence for H0
    }
  }
  if (aliased) ++found_;
  verdicts_.emplace(base, aliased);
  V6_INVARIANT_MSG(found_ <= tested_, "more aliases than prefixes tested");
  return aliased;
}

}  // namespace v6::dealias
