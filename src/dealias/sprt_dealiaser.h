// Adaptive online dealiasing via Wald's sequential probability ratio
// test (SPRT) — an answer to the paper's closing call: "future work is
// needed to determine the optimal approach to removing aliases".
//
// The 6Gen method sends a fixed 3 probes per /96 and thresholds at 2.
// That wastes packets on obvious cases and, worse, mistakes rate-limited
// aliased regions (which drop most probes) for ordinary space. The SPRT
// variant instead keeps probing until the evidence discriminates between
// two hypotheses:
//
//   H1 (aliased):      each probe answers with probability p1
//   H0 (not aliased):  each probe answers with probability p0
//
// p0 is near zero (a random address in ordinary space almost never
// answers); p1 is set *below* 1.0 so that heavily rate-limited aliases —
// which answer only a fraction of probes — still accumulate evidence for
// H1 instead of being declared clean after a burst of silence.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ipv6.h"
#include "net/rng.h"
#include "net/service.h"
#include "probe/transport.h"

namespace v6::dealias {

struct SprtDealiaserOptions {
  /// Per-probe response probability under "aliased" (kept low so
  /// rate-limited regions still match H1).
  double p1 = 0.18;
  /// Per-probe response probability under "not aliased" (background
  /// noise / accidental hits on real hosts).
  double p0 = 0.01;
  /// Error targets: alpha = P(flag clean space), beta = P(miss an alias).
  double alpha = 0.01;
  double beta = 0.05;
  /// Hard cap on probes per prefix (forced decision: not aliased).
  int max_probes = 32;
  int prefix_len = 96;
};

class SprtDealiaser {
 public:
  SprtDealiaser(v6::probe::ProbeTransport& transport, std::uint64_t seed,
                SprtDealiaserOptions options = SprtDealiaserOptions());

  /// True if the /96 containing `addr` tests as aliased on `type`.
  /// Probes adaptively on first query; verdicts are cached.
  bool is_aliased(const v6::net::Ipv6Addr& addr, v6::net::ProbeType type);

  std::uint64_t prefixes_tested() const { return tested_; }
  std::uint64_t aliases_found() const { return found_; }
  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  v6::probe::ProbeTransport* transport_;
  SprtDealiaserOptions options_;
  v6::net::Rng rng_;
  double log_accept_;  // log B = log(beta / (1 - alpha))
  double log_reject_;  // log A = log((1 - beta) / alpha)
  double llr_hit_;     // per-response log-likelihood-ratio increment
  double llr_miss_;    // per-timeout log-likelihood-ratio increment
  std::unordered_map<v6::net::Ipv6Addr, bool> verdicts_;
  std::uint64_t tested_ = 0;
  std::uint64_t found_ = 0;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace v6::dealias
