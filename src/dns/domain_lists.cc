#include "dns/domain_lists.h"

#include "net/rng.h"

namespace v6::dns {

using v6::net::Rng;

DomainListProfile default_domain_profile(DomainListKind kind) {
  DomainListProfile p;
  switch (kind) {
    case DomainListKind::kCensysCt:
      p.as_coverage = 0.45;
      p.name_prob = 0.40;
      p.dead_name_fraction = 0.30;  // expired certificates
      p.dns_host_mult = 0.12;
      break;
    case DomainListKind::kRapid7Fdns:
      p.as_coverage = 0.44;
      p.name_prob = 0.36;
      p.dead_name_fraction = 0.45;  // 2021 archival snapshot
      p.dns_host_mult = 0.15;
      break;
    case DomainListKind::kUmbrella:
      p.as_coverage = 1.0;  // rank-based, not AS-based
      p.top_n = 3000;
      p.dead_name_fraction = 0.02;
      break;
    case DomainListKind::kMajestic:
      p.as_coverage = 1.0;
      p.top_n = 1000;
      p.dead_name_fraction = 0.02;
      break;
    case DomainListKind::kTranco:
      p.as_coverage = 1.0;
      p.top_n = 1600;
      p.dead_name_fraction = 0.02;
      break;
    case DomainListKind::kSecrank:
      p.as_coverage = 1.0;
      p.top_n = 2500;
      p.china_only = true;
      p.dead_name_fraction = 0.03;
      break;
    case DomainListKind::kRadar:
      p.as_coverage = 1.0;
      p.top_n = 1500;
      p.dead_name_fraction = 0.02;
      break;
    case DomainListKind::kCaidaDns:
      p.as_coverage = 0.12;
      p.name_prob = 0.03;
      p.dead_name_fraction = 0.05;
      break;
  }
  return p;
}

std::vector<std::string> make_domain_list(const ZoneDb& zone,
                                          const v6::simnet::Universe& universe,
                                          DomainListKind kind,
                                          std::uint64_t seed) {
  const DomainListProfile profile = default_domain_profile(kind);
  Rng rng = v6::net::make_rng(
      seed, /*tag=*/0xD011A0ULL + static_cast<std::uint64_t>(kind));
  std::vector<std::string> names;

  auto as_visible = [&](std::uint32_t asn) {
    if (profile.china_only) {
      const v6::asdb::AsInfo* info = universe.asdb().find(asn);
      if (info == nullptr || info->region != v6::asdb::Region::kChina) {
        return false;
      }
    }
    if (profile.as_coverage >= 1.0) return true;
    const std::uint64_t h = v6::net::splitmix64(
        seed ^ v6::net::splitmix64(
                   (static_cast<std::uint64_t>(kind) << 44) ^ asn));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < profile.as_coverage;
  };

  if (profile.top_n > 0) {
    // Toplist: ranked names in order, with the per-list bias filter.
    std::uint32_t taken = 0;
    for (const std::uint32_t id : zone.ranked()) {
      const DomainRecord& record = zone.records()[id];
      if (!as_visible(record.asn)) continue;
      names.push_back(record.name);
      if (++taken >= profile.top_n) break;
    }
  } else {
    // Breadth feed: sample names across visible ASes.
    for (const DomainRecord& record : zone.records()) {
      if (!as_visible(record.asn)) continue;
      const double p = record.dns_host
                           ? profile.name_prob * profile.dns_host_mult
                           : profile.name_prob;
      if (v6::net::chance(rng, p)) {
        names.push_back(record.name);
      }
    }
  }

  // Dead names: plausible but non-existent (NXDOMAIN on resolution).
  const std::size_t dead = static_cast<std::size_t>(
      static_cast<double>(names.size()) * profile.dead_name_fraction);
  for (std::size_t i = 0; i < dead; ++i) {
    names.push_back("expired" + std::to_string(rng() % 100'000'000) +
                    ".example");
  }
  return names;
}

}  // namespace v6::dns
