// Per-source domain list synthesis: what names each domain-derived seed
// feed would contain before resolution (paper §5.1, Appendix C).
//
// CT logs and FDNS archives contain enormous breadth plus plenty of dead
// names (expired certificates, lapsed registrations); toplists contain
// the top-ranked properties with per-list bias (SecRank is China-heavy);
// CAIDA DNS Names is a small PTR-derived list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/zone_db.h"
#include "simnet/universe.h"

namespace v6::dns {

enum class DomainListKind : std::uint8_t {
  kCensysCt,
  kRapid7Fdns,
  kUmbrella,
  kMajestic,
  kTranco,
  kSecrank,
  kRadar,
  kCaidaDns,
};

struct DomainListProfile {
  /// Probability an AS's names are visible to the feed at all.
  double as_coverage = 0.5;
  /// Per-name inclusion probability within visible ASes (breadth feeds).
  double name_prob = 0.0;
  /// Take the top `top_n` ranked names (toplist feeds); 0 = not a toplist.
  std::uint32_t top_n = 0;
  /// Restrict to China-region ASes (SecRank).
  bool china_only = false;
  /// Fraction of extra dead names appended (expired certs / lapsed
  /// registrations; resolve to NXDOMAIN).
  double dead_name_fraction = 0.0;
  /// Multiplier on name_prob for DNS-server-backed names (CT logs and
  /// toplists rarely list resolver hostnames).
  double dns_host_mult = 1.0;
};

/// The default profile of each feed.
DomainListProfile default_domain_profile(DomainListKind kind);

/// Synthesizes the feed's domain list deterministically.
std::vector<std::string> make_domain_list(const ZoneDb& zone,
                                          const v6::simnet::Universe& universe,
                                          DomainListKind kind,
                                          std::uint64_t seed);

}  // namespace v6::dns
