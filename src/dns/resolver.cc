#include "dns/resolver.h"

namespace v6::dns {

Resolver::Resolver(const ZoneDb& zone, ResolverConfig config)
    : zone_(&zone), config_(config),
      rng_(v6::net::make_rng(config.seed, /*tag=*/0x4E5)) {}

Resolution Resolver::resolve(std::string_view name) {
  ++stats_.queries;
  const std::string key(name);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }

  Resolution result;
  // Transient failures with retries.
  bool answered = false;
  for (int attempt = 0; attempt <= config_.retries; ++attempt) {
    ++stats_.packets;
    if (v6::net::chance(rng_, config_.timeout_prob)) continue;
    if (v6::net::chance(rng_, config_.servfail_prob)) continue;
    answered = true;
    break;
  }
  if (!answered) {
    ++stats_.failed;
    result.rcode = RCode::kTimeout;
    // Transient failures are NOT cached (a retry later may succeed).
    return result;
  }

  const DomainRecord* record = zone_->find(name);
  if (record == nullptr) {
    ++stats_.nxdomain;
    result.rcode = RCode::kNxDomain;
  } else if (v6::net::chance(rng_, config_.no_aaaa_prob)) {
    ++stats_.no_aaaa;
    result.rcode = RCode::kNoAaaa;
  } else {
    ++stats_.noerror;
    result.rcode = RCode::kNoError;
    result.aaaa = record->aaaa;
    stats_.addresses += result.aaaa.size();
  }
  cache_.emplace(key, result);
  return result;
}

std::vector<v6::net::Ipv6Addr> Resolver::resolve_all(
    std::span<const std::string> names) {
  std::vector<v6::net::Ipv6Addr> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    const Resolution r = resolve(name);
    out.insert(out.end(), r.aaaa.begin(), r.aaaa.end());
  }
  return out;
}

}  // namespace v6::dns
