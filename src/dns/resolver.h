// Batch AAAA resolver over the synthetic zone — the ZDNS analogue the
// paper uses to turn domain lists into seed addresses. Models the
// failure modes of a real resolution campaign: NXDOMAIN, no-AAAA,
// transient timeouts and SERVFAILs; caches by name.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/zone_db.h"
#include "net/rng.h"

namespace v6::dns {

enum class RCode : std::uint8_t {
  kNoError,
  kNxDomain,
  kNoAaaa,    // name exists, no AAAA records (v4-only)
  kTimeout,
  kServFail,
};

constexpr std::string_view to_string(RCode r) {
  switch (r) {
    case RCode::kNoError: return "NOERROR";
    case RCode::kNxDomain: return "NXDOMAIN";
    case RCode::kNoAaaa: return "NOAAAA";
    case RCode::kTimeout: return "TIMEOUT";
    case RCode::kServFail: return "SERVFAIL";
  }
  return "?";
}

struct Resolution {
  RCode rcode = RCode::kNxDomain;
  std::vector<v6::net::Ipv6Addr> aaaa;
};

struct ResolverConfig {
  std::uint64_t seed = 42;
  double timeout_prob = 0.015;
  double servfail_prob = 0.005;
  /// Probability a zone name is v4-only at resolution time.
  double no_aaaa_prob = 0.04;
  int retries = 2;  // retransmissions on timeout/servfail
};

struct ResolveStats {
  std::uint64_t queries = 0;      // names submitted
  std::uint64_t packets = 0;      // wire queries incl. retries
  std::uint64_t cache_hits = 0;
  std::uint64_t noerror = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t no_aaaa = 0;
  std::uint64_t failed = 0;       // timeout/servfail after retries
  std::uint64_t addresses = 0;    // AAAA records returned
};

class Resolver {
 public:
  Resolver(const ZoneDb& zone, ResolverConfig config);

  /// Resolves one name (cached after the first query).
  Resolution resolve(std::string_view name);

  /// Resolves a batch; returns the unique-per-call flattened address
  /// list in input order.
  std::vector<v6::net::Ipv6Addr> resolve_all(
      std::span<const std::string> names);

  const ResolveStats& stats() const { return stats_; }

 private:
  const ZoneDb* zone_;
  ResolverConfig config_;
  v6::net::Rng rng_;
  std::unordered_map<std::string, Resolution> cache_;
  ResolveStats stats_;
};

}  // namespace v6::dns
