#include "dns/zone_db.h"

#include <algorithm>

#include "net/rng.h"

namespace v6::dns {

using v6::net::Ipv6Addr;
using v6::net::Rng;
using v6::simnet::HostKind;
using v6::simnet::HostRecord;

namespace {

constexpr std::array<std::string_view, 12> kSecondLevel = {
    "shop", "cloud", "media", "portal", "app",  "mail",
    "data", "home",  "labs",  "store",  "news", "play"};

constexpr std::array<std::string_view, 8> kTld = {
    "com", "net", "org", "io", "de", "jp", "br", "cn"};

constexpr std::array<std::string_view, 5> kSubLabels = {"www", "cdn", "api",
                                                        "mail", "static"};

/// Deterministic, human-plausible name for host `index`.
std::string make_name(Rng& rng, std::uint64_t index) {
  std::string name{kSecondLevel[rng() % kSecondLevel.size()]};
  name += std::to_string(index % 100000);
  name += '.';
  name += kTld[rng() % kTld.size()];
  return name;
}

}  // namespace

ZoneDb ZoneDb::build(const v6::simnet::Universe& universe,
                     const ZoneDbConfig& config) {
  ZoneDb zone;
  Rng rng = v6::net::make_rng(config.seed, /*tag=*/0xD0DB);

  std::vector<std::uint32_t> popular;  // indices of rankable records

  auto add_record = [&](DomainRecord record) -> std::uint32_t {
    const std::uint32_t id = static_cast<std::uint32_t>(zone.records_.size());
    zone.index_.emplace(record.name, id);
    zone.records_.push_back(std::move(record));
    return id;
  };

  // Processes one host with one-host lookahead (`next` is null for the
  // last). The lookahead exists only for the multi-record draw below;
  // everything else — including every RNG draw and its order — matches
  // the historical indexed loop bit for bit.
  auto process = [&](const HostRecord& host, std::uint64_t i,
                     const HostRecord* next) {
    const bool nameable = host.kind == HostKind::kWebServer ||
                          host.kind == HostKind::kDnsServer;
    if (!nameable) return;
    const double p = host.kind == HostKind::kWebServer
                         ? config.web_named_prob
                         : config.dns_named_prob;
    if (!v6::net::chance(rng, p)) return;

    DomainRecord record;
    record.name = make_name(rng, i);
    if (zone.index_.contains(record.name)) return;  // rare collision
    record.asn = host.asn;
    record.dns_host = host.kind == HostKind::kDnsServer;

    if (host.popular && v6::net::chance(rng, config.popular_cdn_prob)) {
      // Popular property fronted by a CDN: the name resolves into
      // aliased space rather than the origin host.
      const auto regions = universe.alias_regions();
      if (!regions.empty()) {
        const auto& region =
            regions[v6::net::uniform_int<std::size_t>(rng, 0,
                                                      regions.size() - 1)];
        record.aaaa.push_back(
            v6::net::random_in_prefix(rng, region.prefix));
        record.asn = region.asn;
      }
    }
    if (record.aaaa.empty()) {
      if (v6::net::chance(rng, config.dangling_prob)) {
        // Dangling record: unused space next to the host's subnet.
        record.aaaa.push_back(Ipv6Addr(
            host.addr.hi(),
            host.addr.lo() ^ (0x1ULL << 60) ^
                v6::net::uniform_int<std::uint64_t>(rng, 1, 0xFFFF)));
      } else {
        record.aaaa.push_back(host.addr);
      }
    }
    // Multi-record names: an extra edge/alternate address in the same
    // network (only for origin-served names; a CDN-fronted record's
    // addresses all live in the CDN's space).
    if (record.aaaa.front() == host.addr &&
        v6::net::chance(rng, 0.12) && next != nullptr &&
        next->asn == host.asn) {
      record.aaaa.push_back(next->addr);
    }

    const bool rankable = host.popular;
    const std::uint32_t id = add_record(std::move(record));
    if (rankable) popular.push_back(id);

    // Label variants under the same zone.
    if (v6::net::chance(rng, config.extra_label_prob)) {
      DomainRecord variant;
      variant.name = std::string(kSubLabels[rng() % kSubLabels.size()]) +
                     "." + zone.records_[id].name;
      variant.aaaa = zone.records_[id].aaaa;
      variant.asn = zone.records_[id].asn;
      variant.dns_host = zone.records_[id].dns_host;
      if (!zone.index_.contains(variant.name)) {
        const std::uint32_t vid = add_record(std::move(variant));
        if (rankable && v6::net::chance(rng, 0.3)) popular.push_back(vid);
      }
    }
  };

  // Stream the population with a one-host pending buffer: works on
  // procedural universes (no materialized span) in O(1) memory.
  bool have_pending = false;
  HostRecord pending_host;
  std::uint64_t next_index = 0;
  universe.for_each_host([&](const HostRecord& host) {
    if (have_pending) process(pending_host, next_index - 1, &host);
    pending_host = host;
    ++next_index;
    have_pending = true;
  });
  if (have_pending) process(pending_host, next_index - 1, nullptr);

  // Assign toplist ranks to popular names in a deterministic shuffle.
  std::shuffle(popular.begin(), popular.end(), rng);
  for (std::uint32_t r = 0; r < popular.size(); ++r) {
    zone.records_[popular[r]].rank = r + 1;
  }
  zone.ranked_ = std::move(popular);

  return zone;
}

const DomainRecord* ZoneDb::find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &records_[it->second];
}

}  // namespace v6::dns
