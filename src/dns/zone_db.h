// Simulated DNS: the zone database mapping domain names to AAAA records.
//
// The paper's domain-derived seed sources (Censys CT, Rapid7 FDNS, the
// five toplists, CAIDA DNS) all reduce to "a list of names, resolved via
// AAAA lookups" (they used ZDNS against Google Public DNS). This module
// synthesizes the DNS side of the simulated Internet: every web/dns host
// may be named by one or more domains, popular properties carry toplist
// rank, and some names are stale (point at churned hosts) or dangling
// (point at unused space) — the failure modes a real resolution campaign
// encounters.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv6.h"
#include "simnet/universe.h"

namespace v6::dns {

/// One zone entry: a name and its AAAA record set.
struct DomainRecord {
  std::string name;
  /// AAAA records (a name may map to several addresses: round-robin,
  /// multi-homing, CDN edges).
  std::vector<v6::net::Ipv6Addr> aaaa;
  /// Toplist popularity rank; 0 = not ranked.
  std::uint32_t rank = 0;
  /// Owning ASN of the first record (denormalized for samplers).
  std::uint32_t asn = 0;
  /// Name backs a DNS server (rarely appears in CT logs or toplists).
  bool dns_host = false;
};

struct ZoneDbConfig {
  std::uint64_t seed = 42;
  /// Probability a web server is named at all (some serve by IP / SNI
  /// fronting only).
  double web_named_prob = 0.75;
  /// Probability a DNS server is named.
  double dns_named_prob = 0.7;
  /// Extra aliases-of-the-name: www./cdn./mail. variants.
  double extra_label_prob = 0.35;
  /// Fraction of names that dangle into unused (junk) space.
  double dangling_prob = 0.05;
  /// Fraction of popular names resolving into aliased (CDN) space.
  double popular_cdn_prob = 0.25;
};

/// The global synthetic zone: built deterministically from a Universe.
class ZoneDb {
 public:
  /// Synthesizes the zone for `universe`.
  static ZoneDb build(const v6::simnet::Universe& universe,
                      const ZoneDbConfig& config);

  /// Looks up a name's AAAA records; nullptr if NXDOMAIN.
  const DomainRecord* find(std::string_view name) const;

  std::span<const DomainRecord> records() const { return records_; }

  /// Records with a toplist rank, ordered by rank (1 = most popular).
  std::span<const std::uint32_t> ranked() const { return ranked_; }

  std::size_t size() const { return records_.size(); }

 private:
  std::vector<DomainRecord> records_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<std::uint32_t> ranked_;  // indices into records_
};

}  // namespace v6::dns
