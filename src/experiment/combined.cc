#include "experiment/combined.h"

#include <optional>
#include <unordered_map>

#include "dealias/dealiaser.h"
#include "dealias/online_dealiaser.h"
#include "probe/instrumented_transport.h"
#include "probe/scanner.h"
#include "probe/transport.h"

namespace v6::experiment {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

CombinedResult run_combined(
    const v6::simnet::Universe& universe,
    std::span<v6::tga::TargetGenerator* const> generators,
    std::span<const Ipv6Addr> seeds,
    const v6::dealias::AliasList& offline_aliases,
    const CombinedConfig& config) {
  CombinedResult result;
  result.per_generator.resize(generators.size());

  v6::obs::Span run_span(config.telemetry, "combined.run");
  v6::probe::SimTransport sim_transport(universe, config.seed);
  v6::probe::ProbeTransport* transport = &sim_transport;
  std::optional<v6::probe::CountingTransport> counting;
  if (config.telemetry != nullptr) {
    counting.emplace(*transport, config.telemetry->registry());
    transport = &*counting;
  }
  v6::probe::Scanner scanner(*transport, /*blocklist=*/nullptr,
                             {.max_retries = config.scan_retries,
                              .randomize_order = true,
                              .max_pps = config.max_pps,
                              .seed = config.seed,
                              .telemetry = config.telemetry});
  v6::dealias::OnlineDealiaser online(*transport, config.seed);
  v6::dealias::Dealiaser dealiaser(v6::dealias::DealiasMode::kJoint,
                                   &offline_aliases, &online);

  for (std::size_t g = 0; g < generators.size(); ++g) {
    generators[g]->prepare(seeds, config.seed + g);
    if (config.attach_online_dealiaser) {
      generators[g]->attach_online_dealiaser(&online, config.type);
    }
  }

  // Addresses already scanned in an earlier round (and their verdicts):
  // combined scanning probes each address at most once per campaign.
  std::unordered_map<Ipv6Addr, bool> scanned;  // addr -> active

  std::vector<std::uint64_t> generated(generators.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;

    // 1. Gather this round's proposals with per-generator attribution.
    // round_order keeps proposers' keys in first-proposal order so step
    // 3 never walks the map itself: hash order would feed the online
    // dealiaser (whose RNG stream is shared across verdicts) and the
    // generators' observe() in a toolchain-dependent sequence.
    std::unordered_map<Ipv6Addr, std::uint32_t> proposers;  // addr -> mask
    std::vector<Ipv6Addr> round_order;
    std::vector<Ipv6Addr> round_targets;
    for (std::size_t g = 0; g < generators.size(); ++g) {
      if (generated[g] >= config.budget_per_generator) continue;
      const std::uint64_t want = std::min<std::uint64_t>(
          config.batch_size, config.budget_per_generator - generated[g]);
      const auto batch =
          generators[g]->next_batch(static_cast<std::size_t>(want));
      if (batch.empty()) continue;
      progress = true;
      generated[g] += batch.size();
      result.per_generator[g].generated += batch.size();
      result.per_generator[g].unique_generated += batch.size();
      result.proposals += batch.size();
      for (const Ipv6Addr& addr : batch) {
        const auto [it, inserted] = proposers.emplace(addr, 0u);
        it->second |= 1u << g;
        if (inserted) {
          round_order.push_back(addr);
          if (!scanned.contains(addr)) round_targets.push_back(addr);
        }
      }
    }
    if (proposers.empty()) break;

    // 2. Scan the union once.
    result.unique_scanned += round_targets.size();
    {
      v6::obs::Span span(config.telemetry, "combined.scan");
      scanner.scan(round_targets, config.type,
                   [&](const Ipv6Addr& addr, ProbeReply reply) {
                     scanned.emplace(addr,
                                     v6::net::is_hit(config.type, reply));
                   });
    }

    // 3. Attribute results back to every proposing generator.
    for (const Ipv6Addr& addr : round_order) {
      const std::uint32_t mask = proposers.find(addr)->second;
      const auto it = scanned.find(addr);
      const bool active = it != scanned.end() && it->second;
      bool is_alias = false;
      bool in_dense = false;
      if (active) {
        is_alias = dealiaser.is_aliased(addr, config.type);
        in_dense = config.filter_dense && config.type == ProbeType::kIcmp &&
                   universe.in_dense_region(addr);
      }
      for (std::size_t g = 0; g < generators.size(); ++g) {
        if (!(mask & (1u << g))) continue;
        generators[g]->observe(addr, active);
        if (!active) continue;
        auto& outcome = result.per_generator[g];
        ++outcome.responsive;
        if (is_alias) {
          ++outcome.aliases;
        } else if (in_dense) {
          ++outcome.dense_filtered;
        } else {
          outcome.hit_set.insert(addr);
          if (const auto asn = universe.asn_of(addr)) {
            outcome.as_set.insert(*asn);
          }
        }
      }
      if (active && !is_alias && !in_dense) {
        result.union_hits.insert(addr);
        if (const auto asn = universe.asn_of(addr)) {
          result.union_ases.insert(*asn);
        }
      }
    }
  }

  result.packets = transport->packets_sent();
  for (auto& outcome : result.per_generator) {
    outcome.packets = result.packets;  // shared scan: same wire cost
    outcome.virtual_seconds = scanner.virtual_seconds();
  }
  return result;
}

}  // namespace v6::experiment
