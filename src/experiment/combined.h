// Combined multi-TGA scanning, as the paper actually conducts its scans
// (§4.2): "We combine all addresses generated between TGAs per dataset
// per port and scan those unique IPs together, for consistency and to
// minimize the times each address is probed."
//
// Each round, every generator contributes a batch; the union is scanned
// once; results are attributed back to every generator that proposed the
// address (feeding the online models), and the per-generator outcomes
// plus the overall union are reported. The packet savings relative to
// scanning each generator's output separately are measured directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dealias/alias_list.h"
#include "metrics/scan_outcome.h"
#include "net/ipv6.h"
#include "net/service.h"
#include "obs/telemetry.h"
#include "simnet/universe.h"
#include "tga/target_generator.h"

namespace v6::experiment {

struct CombinedConfig {
  /// Generation budget per participating generator.
  std::uint64_t budget_per_generator = 100'000;
  std::uint64_t batch_size = 10'000;
  v6::net::ProbeType type = v6::net::ProbeType::kIcmp;
  bool filter_dense = true;
  bool attach_online_dealiaser = true;
  std::uint64_t seed = 42;
  int scan_retries = 1;
  double max_pps = 10'000.0;
  /// Optional instrumentation context (borrowed): `combined.*` phase
  /// spans plus the shared scanner/transport counters. Never alters
  /// results.
  v6::obs::Telemetry* telemetry = nullptr;
};

struct CombinedResult {
  /// Outcome attributed to each generator, index-aligned with the input
  /// span. An address proposed by several generators counts for each.
  std::vector<v6::metrics::ScanOutcome> per_generator;
  /// Union of all dealiased hits across generators.
  std::unordered_set<v6::net::Ipv6Addr> union_hits;
  std::unordered_set<std::uint32_t> union_ases;
  /// Unique addresses scanned vs. the sum of generator proposals —
  /// the probe savings the combined methodology exists for.
  std::uint64_t proposals = 0;
  std::uint64_t unique_scanned = 0;
  std::uint64_t packets = 0;
};

/// Runs all `generators` together over one seed dataset, scanning the
/// per-round union once.
CombinedResult run_combined(
    const v6::simnet::Universe& universe,
    std::span<v6::tga::TargetGenerator* const> generators,
    std::span<const v6::net::Ipv6Addr> seeds,
    const v6::dealias::AliasList& offline_aliases,
    const CombinedConfig& config);

}  // namespace v6::experiment
