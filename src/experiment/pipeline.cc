#include "experiment/pipeline.h"

#include <optional>
#include <vector>

#include "check/contracts.h"
#include "check/validate.h"
#include "dealias/online_dealiaser.h"
#include "fault/faulty_transport.h"
#include "net/rng.h"
#include "probe/instrumented_transport.h"
#include "probe/scanner.h"
#include "probe/stream_scanner.h"
#include "probe/transport.h"

namespace v6::experiment {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

void PipelineConfig::validate() const {
  const v6::check::Validator v("PipelineConfig");
  v.positive(budget, "budget");
  v.positive(batch_size, "batch_size");
  v.non_negative(scan_retries, "scan_retries");
  v.positive(max_pps, "max_pps");
  v.non_negative(probe_timeout_s, "probe_timeout_s");
  v.non_negative(retry_backoff_s, "retry_backoff_s");
  v.unit_interval(retry_jitter, "retry_jitter");
  v.non_negative(adaptive_threshold, "adaptive_threshold");
  v.non_negative(adaptive_backoff_s, "adaptive_backoff_s");
  v.non_negative(shards, "shards");
  v.require(faults == nullptr || faults->valid(), "faults",
            "fault plan failed validation");
}

v6::metrics::ScanOutcome run_tga(const v6::simnet::Universe& universe,
                                 v6::tga::TargetGenerator& generator,
                                 std::span<const Ipv6Addr> seeds,
                                 const v6::dealias::AliasList& offline_aliases,
                                 const PipelineConfig& config) {
  config.validate();
  v6::metrics::ScanOutcome outcome;
  v6::obs::Telemetry* const telemetry = config.telemetry;
  v6::obs::Span run_span(telemetry, "pipeline.run");

  // Transport chain: the simulated wire, optionally wrapped by the fault
  // plane, then decorated with per-probe-type counters and (for --trace
  // runs) a per-packet tracer. The observability decorators are pass-
  // throughs, so every reply and RNG draw is identical whichever chain
  // is active — and the online dealiaser shares the instrumented chain,
  // so its probes are counted (and suffer faults) too.
  v6::probe::SimTransport sim_transport(universe, config.seed);
  v6::probe::ProbeTransport* transport = &sim_transport;
  std::optional<v6::fault::FaultyTransport> faulty;
  std::optional<v6::probe::CountingTransport> counting;
  std::optional<v6::probe::TracingTransport> tracing;
  if (config.faults != nullptr) {
    // Wrapped even when the plan is disabled: a disabled FaultyTransport
    // is a pure pass-through, and keeping it in the chain is exactly
    // what the fault suite's no-decorator equivalence test exercises.
    faulty.emplace(*transport, *config.faults, config.seed);
    transport = &*faulty;
  }
  if (telemetry != nullptr) {
    counting.emplace(*transport, telemetry->registry());
    transport = &*counting;
    if (config.trace_probes && telemetry->tracing()) {
      tracing.emplace(*transport, *telemetry);
      transport = &*tracing;
    }
    telemetry->registry().gauge("pipeline.budget").set(
        static_cast<std::int64_t>(config.budget));
    telemetry->registry().gauge("pipeline.batch_size").set(
        static_cast<std::int64_t>(config.batch_size));
  }

  const v6::probe::ScanOptions scan_options{
      .max_retries = config.scan_retries,
      .randomize_order = true,
      .max_pps = config.max_pps,
      .seed = config.seed,
      .telemetry = telemetry,
      .probe_timeout_s = config.probe_timeout_s,
      .retry_backoff_s = config.retry_backoff_s,
      .retry_jitter = config.retry_jitter,
      .adaptive_threshold = config.adaptive_threshold,
      .adaptive_backoff_s = config.adaptive_backoff_s};
  // Engine selection. Batch (shards == 0): the Scanner probes through
  // the shared sequential chain above. Streaming (shards >= 1): the
  // StreamScanner owns one stateless chain per shard; the sequential
  // chain stays up for the online dealiaser's probes. The fault plan,
  // when present, wraps both — per-shard lanes get independently seeded
  // injectors via the decorator hook (src/probe cannot depend on
  // src/fault, so the pipeline supplies the wrapping).
  std::optional<v6::probe::Scanner> scanner;
  std::optional<v6::probe::StreamScanner> stream;
  std::vector<v6::fault::FaultyTransport*> lane_faults;
  if (config.shards == 0) {
    scanner.emplace(*transport, config.blocklist, scan_options);
  } else {
    v6::probe::StreamScanOptions stream_options;
    stream_options.shards = static_cast<unsigned>(config.shards);
    stream_options.scan = scan_options;
    if (config.faults != nullptr) {
      // Invoked only inside the StreamScanner constructor below, so the
      // by-reference captures cannot dangle.
      stream_options.decorate =
          [&config, &lane_faults](v6::probe::ProbeTransport& inner,
                                  unsigned shard)
          -> std::unique_ptr<v6::probe::ProbeTransport> {
        auto injector = std::make_unique<v6::fault::FaultyTransport>(
            inner, *config.faults,
            v6::net::derive_seed(config.seed, /*tag=*/0x5A00 + shard));
        lane_faults.push_back(injector.get());
        return injector;
      };
    }
    stream.emplace(universe, config.blocklist, std::move(stream_options));
    if (telemetry != nullptr) {
      telemetry->registry().gauge("pipeline.shards").set(config.shards);
    }
  }
  v6::dealias::OnlineDealiaser online(*transport, config.seed);
  v6::dealias::Dealiaser dealiaser(config.output_dealias, &offline_aliases,
                                   &online);

  {
    v6::obs::Span span(telemetry, "pipeline.prepare");
    generator.prepare(seeds, config.seed);
  }
  if (config.attach_online_dealiaser) {
    generator.attach_online_dealiaser(&online, config.type);
  }

  std::vector<Ipv6Addr> actives;
  while (outcome.generated < config.budget) {
    if (telemetry != nullptr) {
      telemetry->registry().counter("pipeline.batches").inc();
    }
    const std::uint64_t want =
        std::min(config.batch_size, config.budget - outcome.generated);
    std::vector<Ipv6Addr> batch;
    {
      v6::obs::Span span(telemetry, "pipeline.generate",
                         v6::obs::Span::WithHistogram{});
      batch = generator.next_batch(static_cast<std::size_t>(want));
    }
    if (batch.empty()) break;  // generator model exhausted
    outcome.generated += batch.size();
    outcome.unique_generated += batch.size();  // generators never repeat

    actives.clear();
    {
      v6::obs::Span span(telemetry, "pipeline.scan",
                         v6::obs::Span::WithHistogram{});
      const auto on_reply = [&](const Ipv6Addr& addr, ProbeReply reply) {
        const bool active = v6::net::is_hit(config.type, reply);
        generator.observe(addr, active);
        if (active) actives.push_back(addr);
      };
      // Either engine delivers final classified replies in a
      // deterministic order (the streaming one replays them in canonical
      // cycle-position order on this thread after the shards join), so
      // generator feedback stays reproducible.
      if (scanner.has_value()) {
        scanner->scan(batch, config.type, on_reply);
      } else {
        stream->scan(batch, config.type, on_reply);
      }
    }
    outcome.responsive += actives.size();

    // Output dealiasing (paper §4.2: applied to all active addresses)
    // and AS12322 filtering (ICMP only, §4.1).
    {
      v6::obs::Span span(telemetry, "pipeline.dealias",
                         v6::obs::Span::WithHistogram{});
      for (const Ipv6Addr& addr : actives) {
        if (dealiaser.is_aliased(addr, config.type)) {
          ++outcome.aliases;
          continue;
        }
        if (config.filter_dense && config.type == ProbeType::kIcmp &&
            universe.in_dense_region(addr)) {
          ++outcome.dense_filtered;
          continue;
        }
        outcome.hit_set.insert(addr);
        if (const auto asn = universe.asn_of(addr)) {
          outcome.as_set.insert(*asn);
        }
      }
    }

    // Deterministic time-series sampler: one point per batch boundary on
    // the virtual-time axis (ev:"sample"). Cumulative values and the
    // virtual timestamp are all derived from deterministic state, so the
    // sample stream is jobs-invariant; gated on tracing() because samples
    // only exist as trace events.
    if (telemetry != nullptr && telemetry->tracing()) {
      const double virtual_now = scanner.has_value()
                                     ? scanner->virtual_seconds()
                                     : stream->virtual_seconds();
      auto sample = [&](const char* name, std::uint64_t value) {
        v6::obs::Event event;
        event.kind = v6::obs::Event::Kind::kSample;
        event.path = name;
        event.at = virtual_now;
        event.value = value;
        telemetry->emit(event);
      };
      sample("sample.generated", outcome.generated);
      sample("sample.responsive", outcome.responsive);
      sample("sample.hits", outcome.hit_set.size());
      // Streaming scan packets flow through per-shard lanes, not the
      // sequential chain, so count both.
      sample("sample.packets",
             transport->packets_sent() +
                 (stream.has_value() ? stream->packets_sent() : 0));
    }
  }

  outcome.packets = transport->packets_sent() +
                    (stream.has_value() ? stream->packets_sent() : 0);
  outcome.virtual_seconds = scanner.has_value() ? scanner->virtual_seconds()
                                                : stream->virtual_seconds();
  // Fault-plane drop/injection tallies, published once per run (summed
  // across the sequential chain's injector and the per-shard lane
  // injectors, in shard order). Only present when a plan is attached, so
  // fault-free reports are unchanged.
  if (telemetry != nullptr && config.faults != nullptr) {
    v6::obs::Registry& registry = telemetry->registry();
    std::uint64_t drop_loss = 0;
    std::uint64_t drop_outage = 0;
    std::uint64_t drop_rate_limit = 0;
    std::uint64_t injected = 0;
    if (faulty.has_value()) {
      drop_loss += faulty->dropped_loss();
      drop_outage += faulty->dropped_outage();
      drop_rate_limit += faulty->dropped_rate_limit();
      injected += faulty->injected_errors();
    }
    for (const v6::fault::FaultyTransport* lane : lane_faults) {
      drop_loss += lane->dropped_loss();
      drop_outage += lane->dropped_outage();
      drop_rate_limit += lane->dropped_rate_limit();
      injected += lane->injected_errors();
    }
    registry.counter("fault.drop.loss").add(drop_loss);
    registry.counter("fault.drop.outage").add(drop_outage);
    registry.counter("fault.drop.rate_limit").add(drop_rate_limit);
    registry.counter("fault.injected.errors").add(injected);
  }
  V6_ENSURE(outcome.generated <= config.budget);
  V6_ENSURE(outcome.responsive <= outcome.generated);
  V6_ENSURE_MSG(outcome.aliases + outcome.dense_filtered <= outcome.responsive,
                "dealias/filter stages saw more addresses than responded");
  return outcome;
}

}  // namespace v6::experiment
