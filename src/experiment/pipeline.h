// The end-to-end TGA measurement pipeline (paper §4): seed a generator,
// generate in batches up to the budget, scan, feed online generators,
// dealias outputs with the joint (offline + online) method, filter the
// AS12322 analogue from ICMP results, and compute metrics.
#pragma once

#include <cstdint>
#include <span>

#include "dealias/alias_list.h"
#include "probe/blocklist.h"
#include "dealias/dealiaser.h"
#include "metrics/scan_outcome.h"
#include "net/ipv6.h"
#include "net/service.h"
#include "simnet/universe.h"
#include "tga/target_generator.h"

namespace v6::experiment {

struct PipelineConfig {
  /// Generation budget (the paper's 50M, scaled to the simulated
  /// universe so the budget:responsive-seed ratio matches the paper's
  /// ~4.5:1 regime).
  std::uint64_t budget = 400'000;
  /// Addresses per generate/scan/feedback round.
  std::uint64_t batch_size = 10'000;
  v6::net::ProbeType type = v6::net::ProbeType::kIcmp;
  /// Remove AS12322-analogue addresses from ICMP metrics (paper §4.1).
  bool filter_dense = true;
  /// Output dealiasing mode; the paper's pipeline always uses joint.
  v6::dealias::DealiasMode output_dealias = v6::dealias::DealiasMode::kJoint;
  /// Give generators with integrated online dealiasing (6Sense) access
  /// to the online dealiaser during generation.
  bool attach_online_dealiaser = true;
  std::uint64_t seed = 42;
  /// Scanner retransmissions after timeout.
  int scan_retries = 1;
  double max_pps = 10'000.0;
  /// Optional do-not-scan list honored by the scanner (the paper had to
  /// retrofit blocklisting into 6Scan's scanner; here it is first-class).
  const v6::probe::Blocklist* blocklist = nullptr;
};

/// Runs one generator against one seed dataset on one probe type.
/// `offline_aliases` is the published alias list used for output
/// dealiasing (and for the joint mode's offline half).
v6::metrics::ScanOutcome run_tga(const v6::simnet::Universe& universe,
                                 v6::tga::TargetGenerator& generator,
                                 std::span<const v6::net::Ipv6Addr> seeds,
                                 const v6::dealias::AliasList& offline_aliases,
                                 const PipelineConfig& config);

}  // namespace v6::experiment
