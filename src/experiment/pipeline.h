// The end-to-end TGA measurement pipeline (paper §4): seed a generator,
// generate in batches up to the budget, scan, feed online generators,
// dealias outputs with the joint (offline + online) method, filter the
// AS12322 analogue from ICMP results, and compute metrics.
#pragma once

#include <cstdint>
#include <span>

#include "dealias/alias_list.h"
#include "fault/fault_plan.h"
#include "probe/blocklist.h"
#include "dealias/dealiaser.h"
#include "metrics/scan_outcome.h"
#include "net/ipv6.h"
#include "net/service.h"
#include "obs/telemetry.h"
#include "simnet/universe.h"
#include "tga/target_generator.h"

namespace v6::experiment {

/// Pipeline configuration. Defaults story: a default-constructed
/// PipelineConfig is the paper's standard ICMP experiment at the scaled
/// 400K budget — every bench starts from it and overrides only what the
/// experiment varies, via the fluent `with_*` chain:
///
///   PipelineConfig{}.with_budget(b).with_type(ProbeType::kTcp443)
///
/// (designated initializers work too; the setters exist so call sites
/// read as a single expression instead of ad-hoc field mutation).
struct PipelineConfig {
  /// Generation budget (the paper's 50M, scaled to the simulated
  /// universe so the budget:responsive-seed ratio matches the paper's
  /// ~4.5:1 regime).
  std::uint64_t budget = 400'000;
  /// Addresses per generate/scan/feedback round.
  std::uint64_t batch_size = 10'000;
  v6::net::ProbeType type = v6::net::ProbeType::kIcmp;
  /// Remove AS12322-analogue addresses from ICMP metrics (paper §4.1).
  bool filter_dense = true;
  /// Output dealiasing mode; the paper's pipeline always uses joint.
  v6::dealias::DealiasMode output_dealias = v6::dealias::DealiasMode::kJoint;
  /// Give generators with integrated online dealiasing (6Sense) access
  /// to the online dealiaser during generation.
  bool attach_online_dealiaser = true;
  std::uint64_t seed = 42;
  /// Scanner retransmissions after timeout.
  int scan_retries = 1;
  double max_pps = 10'000.0;
  /// Scan-engine selector. 0 (default) keeps the batch Scanner — the
  /// golden-locked legacy path. >= 1 routes scans through the streaming
  /// StreamScanner (probe/stream_scanner.h) with that many shard
  /// workers: sharded cyclic iteration, stateless per-probe replies, and
  /// a bounded producer→prober→receiver pipeline. Streaming outcomes
  /// are shard-count-invariant but differ from the batch engine's for
  /// targets whose replies are stochastic (different RNG model; see
  /// docs/SCANNER.md).
  int shards = 0;
  /// Optional do-not-scan list honored by the scanner (the paper had to
  /// retrofit blocklisting into 6Scan's scanner; here it is first-class).
  const v6::probe::Blocklist* blocklist = nullptr;
  /// Optional instrumentation context (borrowed). When set, the run
  /// counts packets per probe type (CountingTransport), opens
  /// `pipeline.*` phase spans per batch, and threads telemetry into the
  /// scanner. Results are byte-identical with or without it.
  v6::obs::Telemetry* telemetry = nullptr;
  /// Additionally emit one event per probe packet to the telemetry sink
  /// (TracingTransport). Only honored when `telemetry` has a sink;
  /// intended for `sos --trace` on small universes.
  bool trace_probes = false;
  /// Optional fault-injection plan (borrowed; see fault/fault_plan.h).
  /// When non-null — even pointing at a disabled FaultPlan{} — probes
  /// route through a FaultyTransport between the simulated wire and the
  /// observability decorators. A disabled plan is byte-identical to
  /// nullptr (ctest-asserted); null keeps the chain exactly as before.
  const v6::fault::FaultPlan* faults = nullptr;
  /// Robust-scanner knobs, forwarded verbatim to ScanOptions (see
  /// probe/scanner.h for semantics). All default off, so fault-free
  /// configs reproduce today's outcomes bit-for-bit.
  double probe_timeout_s = 0.0;
  double retry_backoff_s = 0.0;
  double retry_jitter = 0.0;
  int adaptive_threshold = 0;
  double adaptive_backoff_s = 0.0;

  PipelineConfig& with_budget(std::uint64_t v) { budget = v; return *this; }
  PipelineConfig& with_batch_size(std::uint64_t v) { batch_size = v; return *this; }
  PipelineConfig& with_type(v6::net::ProbeType v) { type = v; return *this; }
  PipelineConfig& with_filter_dense(bool v) { filter_dense = v; return *this; }
  PipelineConfig& with_output_dealias(v6::dealias::DealiasMode v) { output_dealias = v; return *this; }
  PipelineConfig& with_attach_online_dealiaser(bool v) { attach_online_dealiaser = v; return *this; }
  PipelineConfig& with_seed(std::uint64_t v) { seed = v; return *this; }
  PipelineConfig& with_scan_retries(int v) { scan_retries = v; return *this; }
  PipelineConfig& with_max_pps(double v) { max_pps = v; return *this; }
  PipelineConfig& with_shards(int v) { shards = v; return *this; }
  PipelineConfig& with_blocklist(const v6::probe::Blocklist* v) { blocklist = v; return *this; }
  PipelineConfig& with_telemetry(v6::obs::Telemetry* v) { telemetry = v; return *this; }
  PipelineConfig& with_trace_probes(bool v) { trace_probes = v; return *this; }
  PipelineConfig& with_faults(const v6::fault::FaultPlan* v) { faults = v; return *this; }
  PipelineConfig& with_probe_timeout(double seconds) { probe_timeout_s = seconds; return *this; }
  PipelineConfig& with_retry_backoff(double base_s, double jitter = 0.0) {
    retry_backoff_s = base_s;
    retry_jitter = jitter;
    return *this;
  }
  PipelineConfig& with_adaptive_backoff(int threshold, double wait_s) {
    adaptive_threshold = threshold;
    adaptive_backoff_s = wait_s;
    return *this;
  }

  /// Bounds-checks every field through the shared check/validate.h
  /// path; throws check::ConfigError with a uniform
  /// "PipelineConfig.<field>: <constraint>" message. Called by run_tga,
  /// ScanSession::sweep, and the service loop, so an invalid config
  /// fails identically whichever entry point sees it first.
  void validate() const;
};

/// Runs one generator against one seed dataset on one probe type.
/// `offline_aliases` is the published alias list used for output
/// dealiasing (and for the joint mode's offline half).
v6::metrics::ScanOutcome run_tga(const v6::simnet::Universe& universe,
                                 v6::tga::TargetGenerator& generator,
                                 std::span<const v6::net::Ipv6Addr> seeds,
                                 const v6::dealias::AliasList& offline_aliases,
                                 const PipelineConfig& config);

}  // namespace v6::experiment
