#include "experiment/runner.h"

#include "check/validate.h"

namespace v6::experiment {

void SweepSpec::validate() const {
  const v6::check::Validator v("SweepSpec");
  v.not_null(universe, "universe");
  v.not_null(alias_list, "alias_list");
  config.validate();
}

// The definition must not itself warn for touching the deprecated
// declaration it implements.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::vector<TgaRun> run_sweep(const SweepSpec& spec) {
  spec.validate();
  return ScanSession(*spec.universe, *spec.alias_list)
      .with_kinds(spec.kinds)
      .with_seeds(spec.seeds)
      .with_config(spec.config)
      .with_jobs(spec.jobs)
      .with_telemetry(spec.telemetry)
      .sweep();
}
#pragma GCC diagnostic pop

}  // namespace v6::experiment
