#include "experiment/runner.h"

#include <chrono>
#include <stdexcept>
#include <string>

#include "check/contracts.h"
#include "obs/sinks.h"
#include "runtime/thread_pool.h"

namespace v6::experiment {

std::vector<TgaRun> run_sweep(const SweepSpec& spec) {
  if (spec.universe == nullptr) {
    throw std::invalid_argument("run_sweep: SweepSpec.universe is required");
  }
  if (spec.alias_list == nullptr) {
    throw std::invalid_argument("run_sweep: SweepSpec.alias_list is required");
  }
  const std::span<const v6::tga::TgaKind> kinds =
      spec.kinds.empty() ? std::span<const v6::tga::TgaKind>(v6::tga::kAllTgas)
                         : std::span<const v6::tga::TgaKind>(spec.kinds);

  std::vector<TgaRun> runs(kinds.size());
  // Per-run instrumentation, slot-owned: each run gets a private
  // Telemetry (and, when the parent traces, a private event buffer), so
  // worker scheduling can neither interleave two runs' spans nor reorder
  // the merged output below.
  const bool forward_events =
      spec.telemetry != nullptr && spec.telemetry->tracing();
  std::vector<v6::obs::Telemetry> locals(kinds.size());
  std::vector<v6::obs::MemorySink> buffers(forward_events ? kinds.size() : 0);

  v6::obs::Span sweep_span(spec.telemetry, "sweep");
  v6::runtime::parallel_for(spec.jobs, kinds.size(), [&](std::size_t i) {
    // Everything mutable is created inside the task: the generator, the
    // run's telemetry, and (inside run_tga) the transport, scanner, and
    // dealiasers. Only the const Universe and the seed span are shared.
    v6::obs::Telemetry& local = locals[i];
    if (forward_events) local.attach_sink(&buffers[i]);
    PipelineConfig config = spec.config;
    config.telemetry = &local;
    const auto start = std::chrono::steady_clock::now();
    auto generator = v6::tga::make_generator(kinds[i]);
    runs[i].kind = kinds[i];
    {
      v6::obs::Span tga_span(
          &local,
          "tga:" + std::string(v6::tga::to_string(kinds[i])));
      runs[i].outcome = run_tga(*spec.universe, *generator, spec.seeds,
                                *spec.alias_list, config);
    }
    runs[i].wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    runs[i].report = local.registry().snapshot();
    V6_INVARIANT_MSG(runs[i].kind == kinds[i],
                     "run slot filled for a different TGA than assigned");
  });

  // Deterministic merge: slot order, regardless of completion order.
  if (spec.telemetry != nullptr) {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      spec.telemetry->registry().merge_from(locals[i].registry());
    }
    if (forward_events) {
      for (const v6::obs::MemorySink& buffer : buffers) {
        buffer.replay_to(*spec.telemetry->sink());
      }
    }
  }
  return runs;
}

}  // namespace v6::experiment
