#include "experiment/runner.h"

#include <chrono>

#include "runtime/thread_pool.h"

namespace v6::experiment {

std::vector<TgaRun> run_tgas(const v6::simnet::Universe& universe,
                             std::span<const v6::tga::TgaKind> kinds,
                             std::span<const v6::net::Ipv6Addr> seeds,
                             const v6::dealias::AliasList& alias_list,
                             const PipelineConfig& config, unsigned jobs) {
  std::vector<TgaRun> runs(kinds.size());
  v6::runtime::parallel_for(jobs, kinds.size(), [&](std::size_t i) {
    // Everything mutable is created inside the task: the generator, and
    // (inside run_tga) the transport, scanner, and dealiasers. Only the
    // const Universe and the seed span are shared.
    const auto start = std::chrono::steady_clock::now();
    auto generator = v6::tga::make_generator(kinds[i]);
    runs[i].kind = kinds[i];
    runs[i].outcome = run_tga(universe, *generator, seeds, alias_list, config);
    runs[i].wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  });
  return runs;
}

std::vector<TgaRun> run_all_tgas(const v6::simnet::Universe& universe,
                                 std::span<const v6::net::Ipv6Addr> seeds,
                                 const v6::dealias::AliasList& alias_list,
                                 const PipelineConfig& config, unsigned jobs) {
  return run_tgas(universe, v6::tga::kAllTgas, seeds, alias_list, config,
                  jobs);
}

}  // namespace v6::experiment
