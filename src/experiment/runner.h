// The parallel experiment runner: fans independent TGA runs across a
// thread pool with results bit-identical to a sequential sweep.
//
// Why this is safe (docs/ALGORITHMS.md, "Parallel experiment
// execution"): a run_tga call is a pure function of a `const Universe&`
// plus its own freshly-seeded transport/scanner/dealiaser RNG state, so
// runs share nothing mutable and every output slot is pre-assigned —
// scheduling order cannot leak into results.
//
// Observability (docs/OBSERVABILITY.md): every run owns a private
// obs::Telemetry, so per-TGA attribution survives the thread pool.
// After the sweep, per-run registries are folded into the spec's
// telemetry — and per-run event buffers replayed into its sink — in
// slot order, making merged traces deterministic for any jobs count.
#pragma once

#include <span>
#include <vector>

#include "dealias/alias_list.h"
#include "experiment/pipeline.h"
#include "metrics/scan_outcome.h"
#include "net/ipv6.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "simnet/universe.h"
#include "tga/registry.h"

namespace v6::experiment {

/// One TGA's result within a sweep.
struct TgaRun {
  v6::tga::TgaKind kind;
  v6::metrics::ScanOutcome outcome;
  /// Host wall-clock spent inside this run (not virtual wire time).
  double wall_seconds = 0.0;
  /// Snapshot of this run's private metric registry: transport packet /
  /// reply counters, scanner counters, and `pipeline.*` phase timers
  /// (the per-phase breakdown bench_common embeds in BENCH_*.json).
  /// Counters and timer counts are deterministic; timer seconds are
  /// wall-clock measurements.
  v6::obs::Report report;
};

/// Everything a TGA sweep needs (the old six-positional-argument entry
/// points are gone). `universe` and `alias_list` are borrowed
/// and required; `kinds` empty means all eight TGAs; `jobs == 0` means
/// runtime::default_jobs(), `jobs == 1` runs sequentially inline.
/// Output order (and every ScanOutcome field) is identical for every
/// jobs value, with or without telemetry.
struct SweepSpec {
  const v6::simnet::Universe* universe = nullptr;
  std::vector<v6::tga::TgaKind> kinds;
  std::span<const v6::net::Ipv6Addr> seeds;
  const v6::dealias::AliasList* alias_list = nullptr;
  PipelineConfig config;
  unsigned jobs = 1;
  /// Optional parent instrumentation context: receives every run's
  /// merged counters/timers, and (when it has a sink) the runs' trace
  /// events in slot order.
  v6::obs::Telemetry* telemetry = nullptr;

  SweepSpec& with_universe(const v6::simnet::Universe& u) { universe = &u; return *this; }
  SweepSpec& with_kinds(std::span<const v6::tga::TgaKind> k) { kinds.assign(k.begin(), k.end()); return *this; }
  SweepSpec& with_kind(v6::tga::TgaKind k) { kinds.assign(1, k); return *this; }
  SweepSpec& with_seeds(std::span<const v6::net::Ipv6Addr> s) { seeds = s; return *this; }
  SweepSpec& with_alias_list(const v6::dealias::AliasList& a) { alias_list = &a; return *this; }
  SweepSpec& with_config(const PipelineConfig& c) { config = c; return *this; }
  /// Convenience: attaches a fault plan to the sweep's pipeline config.
  /// Same sharing rule as run_tga — the plan is borrowed, and because
  /// every run applies it through its own privately-seeded
  /// FaultyTransport, outcomes stay jobs-invariant.
  SweepSpec& with_faults(const v6::fault::FaultPlan* f) { config.faults = f; return *this; }
  SweepSpec& with_jobs(unsigned j) { jobs = j; return *this; }
  SweepSpec& with_telemetry(v6::obs::Telemetry* t) { telemetry = t; return *this; }
};

/// Runs the sweep described by `spec`, `spec.jobs` runs at a time.
std::vector<TgaRun> run_sweep(const SweepSpec& spec);

}  // namespace v6::experiment
