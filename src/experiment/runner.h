// Legacy sweep entry point, kept as a deprecated forwarder.
//
// The experiment API's object model now lives in experiment/session.h:
// ScanSession binds universe/alias list by reference at construction and
// sweep() runs the fan-out. SweepSpec survives only so out-of-tree
// callers keep compiling through one release; it is the old raw-pointer
// wiring (`spec.universe = &u`) that ScanSession was designed to retire.
//
// In-tree the old spelling has zero callers, and the v6lint
// `deprecated-api` rule keeps it that way (docs/STATIC_ANALYSIS.md):
// any new `run_sweep(` call outside this header/its .cc fails `ctest -L
// lint`.
#pragma once

#include <span>
#include <vector>

#include "experiment/session.h"

namespace v6::experiment {

/// Everything a TGA sweep needs, pointer-wired (deprecated shape; see
/// ScanSession). `universe` and `alias_list` are borrowed and required;
/// `kinds` empty means all eight TGAs; `jobs == 0` means
/// runtime::default_jobs(), `jobs == 1` runs sequentially inline.
struct SweepSpec {
  const v6::simnet::Universe* universe = nullptr;
  std::vector<v6::tga::TgaKind> kinds;
  std::span<const v6::net::Ipv6Addr> seeds;
  const v6::dealias::AliasList* alias_list = nullptr;
  PipelineConfig config;
  unsigned jobs = 1;
  v6::obs::Telemetry* telemetry = nullptr;

  SweepSpec& with_universe(const v6::simnet::Universe& u) { universe = &u; return *this; }
  SweepSpec& with_kinds(std::span<const v6::tga::TgaKind> k) { kinds.assign(k.begin(), k.end()); return *this; }
  SweepSpec& with_kind(v6::tga::TgaKind k) { kinds.assign(1, k); return *this; }
  SweepSpec& with_seeds(std::span<const v6::net::Ipv6Addr> s) { seeds = s; return *this; }
  SweepSpec& with_alias_list(const v6::dealias::AliasList& a) { alias_list = &a; return *this; }
  SweepSpec& with_config(const PipelineConfig& c) { config = c; return *this; }
  SweepSpec& with_faults(const v6::fault::FaultPlan* f) { config.faults = f; return *this; }
  SweepSpec& with_jobs(unsigned j) { jobs = j; return *this; }
  SweepSpec& with_telemetry(v6::obs::Telemetry* t) { telemetry = t; return *this; }

  /// Shared check/validate.h path: the null-pointer wiring checks that
  /// ScanSession makes structurally impossible, plus config.validate().
  void validate() const;
};

/// Runs the sweep described by `spec` — a thin wrapper over
/// ScanSession::sweep().
[[deprecated(
    "use ScanSession(universe, alias_list).with_*(...).sweep() "
    "(experiment/session.h)")]]
std::vector<TgaRun> run_sweep(const SweepSpec& spec);

}  // namespace v6::experiment
