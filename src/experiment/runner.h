// The parallel experiment runner: fans independent TGA runs across a
// thread pool with results bit-identical to a sequential sweep.
//
// Why this is safe (docs/ALGORITHMS.md, "Parallel experiment
// execution"): a run_tga call is a pure function of a `const Universe&`
// plus its own freshly-seeded transport/scanner/dealiaser RNG state, so
// runs share nothing mutable and every output slot is pre-assigned —
// scheduling order cannot leak into results.
#pragma once

#include <span>
#include <vector>

#include "dealias/alias_list.h"
#include "experiment/pipeline.h"
#include "metrics/scan_outcome.h"
#include "net/ipv6.h"
#include "simnet/universe.h"
#include "tga/registry.h"

namespace v6::experiment {

/// One TGA's result within a sweep.
struct TgaRun {
  v6::tga::TgaKind kind;
  v6::metrics::ScanOutcome outcome;
  /// Host wall-clock spent inside this run (not virtual wire time).
  double wall_seconds = 0.0;
};

/// Runs all eight TGAs over one seed dataset / probe type, `jobs` runs at
/// a time. `jobs == 0` means runtime::default_jobs(); `jobs == 1` runs
/// sequentially inline. Output order (and every ScanOutcome field) is
/// identical for every jobs value.
std::vector<TgaRun> run_all_tgas(
    const v6::simnet::Universe& universe,
    std::span<const v6::net::Ipv6Addr> seeds,
    const v6::dealias::AliasList& alias_list, const PipelineConfig& config,
    unsigned jobs = 1);

/// As above for an arbitrary subset of TGAs (ablation/extension benches).
std::vector<TgaRun> run_tgas(const v6::simnet::Universe& universe,
                             std::span<const v6::tga::TgaKind> kinds,
                             std::span<const v6::net::Ipv6Addr> seeds,
                             const v6::dealias::AliasList& alias_list,
                             const PipelineConfig& config, unsigned jobs = 1);

}  // namespace v6::experiment
