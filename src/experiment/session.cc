#include "experiment/session.h"

#include <chrono>
#include <string>

#include "check/contracts.h"
#include "check/validate.h"
#include "obs/sinks.h"
#include "runtime/thread_pool.h"

namespace v6::experiment {

void ScanSession::validate() const {
  // The constructor takes references, so universe/alias list cannot be
  // null here; what can still be wrong is the pipeline config.
  config_.validate();
}

std::vector<TgaRun> ScanSession::sweep() const {
  validate();
  const std::span<const v6::tga::TgaKind> kinds =
      kinds_.empty() ? std::span<const v6::tga::TgaKind>(v6::tga::kAllTgas)
                     : std::span<const v6::tga::TgaKind>(kinds_);

  std::vector<TgaRun> runs(kinds.size());
  // Per-run instrumentation, slot-owned: each run gets a private
  // Telemetry (and, when the parent traces, a private event buffer), so
  // worker scheduling can neither interleave two runs' spans nor reorder
  // the merged output below.
  const bool forward_events = telemetry_ != nullptr && telemetry_->tracing();
  std::vector<v6::obs::Telemetry> locals(kinds.size());
  std::vector<v6::obs::MemorySink> buffers(forward_events ? kinds.size() : 0);

  v6::obs::Span sweep_span(telemetry_, "sweep");
  v6::runtime::parallel_for(jobs_, kinds.size(), [&](std::size_t i) {
    // Everything mutable is created inside the task: the generator, the
    // run's telemetry, and (inside run_tga) the transport, scanner, and
    // dealiasers. Only the const Universe and the seed span are shared.
    v6::obs::Telemetry& local = locals[i];
    if (forward_events) local.attach_sink(&buffers[i]);
    PipelineConfig config = config_;
    config.telemetry = &local;
    const auto start = std::chrono::steady_clock::now();
    auto generator = v6::tga::make_generator(kinds[i]);
    runs[i].kind = kinds[i];
    {
      v6::obs::Span tga_span(
          &local, "tga:" + std::string(v6::tga::to_string(kinds[i])));
      runs[i].outcome =
          run_tga(*universe_, *generator, seeds_, *alias_list_, config);
    }
    runs[i].wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    runs[i].report = local.registry().snapshot();
    V6_INVARIANT_MSG(runs[i].kind == kinds[i],
                     "run slot filled for a different TGA than assigned");
  });

  // Deterministic merge: slot order, regardless of completion order.
  if (telemetry_ != nullptr) {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      telemetry_->registry().merge_from(locals[i].registry());
    }
    if (forward_events) {
      for (const v6::obs::MemorySink& buffer : buffers) {
        buffer.replay_to(*telemetry_->sink());
      }
    }
  }
  return runs;
}

}  // namespace v6::experiment
