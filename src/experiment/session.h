// ScanSession: the experiment API's object model.
//
// A session binds the immutable fixtures of a measurement — the
// simulated Universe, the published AliasList, and an optional parent
// Telemetry — at construction, by reference, so the raw-pointer wiring
// the old SweepSpec needed (`spec.universe = &u` with a runtime null
// check) cannot be mis-assembled. Everything that varies per sweep
// (TGA kinds, seeds, pipeline config, jobs) chains fluently:
//
//   const auto runs = ScanSession(universe, alias_list)
//                         .with_seeds(seeds)
//                         .with_config(config)
//                         .with_jobs(4)
//                         .sweep();
//
// sweep() fans the selected TGAs across a thread pool with results
// bit-identical to a sequential run (docs/ALGORITHMS.md, "Parallel
// experiment execution"): a run is a pure function of the const
// Universe plus its own freshly-seeded state, every output slot is
// pre-assigned, and per-run telemetry is merged in slot order.
//
// The continuous service (src/service) builds on the same object model:
// HitlistService holds a session-shaped binding (universe + alias list
// + telemetry) for the lifetime of the daemon and drives refresh scans
// through it. The legacy spelling `run_sweep(SweepSpec)` survives as a
// [[deprecated]] forwarder in experiment/runner.h with zero in-tree
// callers (v6lint `deprecated-api` enforces that).
#pragma once

#include <span>
#include <vector>

#include "dealias/alias_list.h"
#include "experiment/pipeline.h"
#include "metrics/scan_outcome.h"
#include "net/ipv6.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "simnet/universe.h"
#include "tga/registry.h"

namespace v6::experiment {

/// One TGA's result within a sweep.
struct TgaRun {
  v6::tga::TgaKind kind;
  v6::metrics::ScanOutcome outcome;
  /// Host wall-clock spent inside this run (not virtual wire time).
  double wall_seconds = 0.0;
  /// Snapshot of this run's private metric registry: transport packet /
  /// reply counters, scanner counters, and `pipeline.*` phase timers
  /// (the per-phase breakdown bench_common embeds in BENCH_*.json).
  /// Counters and timer counts are deterministic; timer seconds are
  /// wall-clock measurements.
  v6::obs::Report report;
};

class ScanSession {
 public:
  /// Binds the sweep's immutable fixtures. Both are borrowed and must
  /// outlive the session (the same lifetime rule run_tga always had).
  ScanSession(const v6::simnet::Universe& universe,
              const v6::dealias::AliasList& alias_list)
      : universe_(&universe), alias_list_(&alias_list) {}

  /// TGA selection: empty (the default) means the paper's eight.
  ScanSession& with_kinds(std::span<const v6::tga::TgaKind> k) {
    kinds_.assign(k.begin(), k.end());
    return *this;
  }
  ScanSession& with_kind(v6::tga::TgaKind k) {
    kinds_.assign(1, k);
    return *this;
  }
  /// Seed addresses, borrowed for the duration of sweep().
  ScanSession& with_seeds(std::span<const v6::net::Ipv6Addr> s) {
    seeds_ = s;
    return *this;
  }
  ScanSession& with_config(const PipelineConfig& c) {
    config_ = c;
    return *this;
  }
  /// Convenience: attaches a fault plan to the session's pipeline
  /// config. The plan is borrowed; every run applies it through its own
  /// privately-seeded FaultyTransport, so outcomes stay jobs-invariant.
  ScanSession& with_faults(const v6::fault::FaultPlan* f) {
    config_.faults = f;
    return *this;
  }
  /// Concurrent TGA runs: 0 means runtime::default_jobs(), 1 runs
  /// sequentially inline. Output order (and every ScanOutcome field) is
  /// identical for every jobs value, with or without telemetry.
  ScanSession& with_jobs(unsigned j) {
    jobs_ = j;
    return *this;
  }
  /// Optional parent instrumentation context: receives every run's
  /// merged counters/timers, and (when it has a sink) the runs' trace
  /// events in slot order.
  ScanSession& with_telemetry(v6::obs::Telemetry* t) {
    telemetry_ = t;
    return *this;
  }

  const v6::simnet::Universe& universe() const { return *universe_; }
  const v6::dealias::AliasList& alias_list() const { return *alias_list_; }
  const PipelineConfig& config() const { return config_; }
  std::span<const v6::net::Ipv6Addr> seeds() const { return seeds_; }
  unsigned jobs() const { return jobs_; }
  v6::obs::Telemetry* telemetry() const { return telemetry_; }

  /// Throws check::ConfigError on an invalid pipeline config (the
  /// shared check/validate.h path; sweep() calls this first).
  void validate() const;

  /// Runs the configured sweep, `jobs()` runs at a time.
  std::vector<TgaRun> sweep() const;

 private:
  const v6::simnet::Universe* universe_;
  const v6::dealias::AliasList* alias_list_;
  std::vector<v6::tga::TgaKind> kinds_;
  std::span<const v6::net::Ipv6Addr> seeds_;
  PipelineConfig config_;
  unsigned jobs_ = 1;
  v6::obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace v6::experiment
