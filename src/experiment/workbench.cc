#include "experiment/workbench.h"

#include <unordered_set>

#include "dealias/online_dealiaser.h"
#include "probe/scanner.h"
#include "probe/transport.h"
#include "simnet/universe_builder.h"

namespace v6::experiment {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;

Workbench::Workbench(WorkbenchConfig config)
    : config_(config),
      universe_(v6::simnet::UniverseBuilder::build(config.universe)) {
  v6::seeds::SeedCollector collector(universe_, config_.seed);
  seeds_ = collector.collect_all();
  alias_list_ = v6::dealias::AliasList::published_from(universe_);
  full_.assign(seeds_.addrs().begin(), seeds_.addrs().end());

  // Activity ground scan of the full dataset on all four probe types
  // (paper §5.3).
  v6::probe::SimTransport transport(universe_, config_.seed);
  v6::probe::Scanner scanner(transport, /*blocklist=*/nullptr,
                             {.max_retries = 1, .seed = config_.seed});
  activity_ = v6::seeds::scan_activity(full_, scanner);
}

const std::vector<Ipv6Addr>& Workbench::full() { return full_; }

const std::vector<Ipv6Addr>& Workbench::dealiased(
    v6::dealias::DealiasMode mode) {
  if (mode == v6::dealias::DealiasMode::kNone) return full_;
  auto& cache = dealiased_[static_cast<std::size_t>(mode)];
  if (!cache) {
    v6::probe::SimTransport transport(universe_, config_.seed + 1);
    v6::dealias::OnlineDealiaser online(transport, config_.seed + 1);
    v6::dealias::Dealiaser dealiaser(mode, &alias_list_, &online);
    cache = v6::seeds::dealias_seeds(full_, dealiaser, ProbeType::kIcmp);
  }
  return *cache;
}

const std::vector<Ipv6Addr>& Workbench::all_active() {
  if (!all_active_) {
    all_active_ = v6::seeds::filter_active_any(
        dealiased(v6::dealias::DealiasMode::kJoint), activity_);
  }
  return *all_active_;
}

const std::vector<Ipv6Addr>& Workbench::port_specific(ProbeType type) {
  auto& cache = port_specific_[static_cast<std::size_t>(type)];
  if (!cache) {
    cache = v6::seeds::filter_active_on(all_active(), activity_, type);
  }
  return *cache;
}

const std::vector<Ipv6Addr>& Workbench::source_active(
    v6::seeds::SeedSource source) {
  auto& cache = source_active_[static_cast<std::size_t>(source)];
  if (!cache) {
    const std::uint16_t bit = v6::seeds::source_bit(source);
    std::vector<Ipv6Addr> out;
    for (const Ipv6Addr& addr : all_active()) {
      if (seeds_.sources_of(addr) & bit) out.push_back(addr);
    }
    cache = std::move(out);
  }
  return *cache;
}

}  // namespace v6::experiment
