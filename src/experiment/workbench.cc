#include "experiment/workbench.h"

#include <unordered_set>

#include "dealias/online_dealiaser.h"
#include "probe/instrumented_transport.h"
#include "probe/scanner.h"
#include "probe/transport.h"
#include "runtime/thread_pool.h"
#include "simnet/universe_builder.h"

namespace v6::experiment {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;

namespace {

// Builds the universe under a `workbench.build_universe` span: the
// universe is a member initialized before the constructor body runs, so
// the timing has to wrap the builder call itself.
v6::simnet::Universe build_universe_timed(const WorkbenchConfig& config) {
  v6::obs::Span span(config.telemetry, "workbench.build_universe");
  return v6::simnet::UniverseBuilder::build(config.universe);
}

}  // namespace

Workbench::Workbench(WorkbenchConfig config)
    : config_(config), universe_(build_universe_timed(config)) {
  {
    v6::obs::Span span(config_.telemetry, "workbench.collect");
    v6::seeds::SeedCollector collector(universe_, config_.seed);
    seeds_ = collector.collect_all();
    alias_list_ = v6::dealias::AliasList::published_from(universe_);
    full_.assign(seeds_.addrs().begin(), seeds_.addrs().end());
  }

  // Activity ground scan of the full dataset on all four probe types
  // (paper §5.3).
  v6::obs::Span span(config_.telemetry, "workbench.activity_scan");
  v6::probe::SimTransport sim_transport(universe_, config_.seed);
  v6::probe::ProbeTransport* transport = &sim_transport;
  std::optional<v6::probe::CountingTransport> counting;
  if (config_.telemetry != nullptr) {
    counting.emplace(*transport, config_.telemetry->registry());
    transport = &*counting;
  }
  v6::probe::Scanner scanner(*transport, /*blocklist=*/nullptr,
                             {.max_retries = 1,
                              .seed = config_.seed,
                              .telemetry = config_.telemetry});
  activity_ = v6::seeds::scan_activity(full_, scanner);
}

const std::vector<Ipv6Addr>& Workbench::full() { return full_; }

const std::vector<Ipv6Addr>& Workbench::dealiased(
    v6::dealias::DealiasMode mode) {
  if (mode == v6::dealias::DealiasMode::kNone) return full_;
  const auto slot = static_cast<std::size_t>(mode);
  std::call_once(dealiased_once_[slot], [&] {
    // A private transport per variant: the verdicts are a deterministic
    // function of (universe, seed) regardless of which thread runs this.
    v6::probe::SimTransport transport(universe_, config_.seed + 1);
    v6::dealias::OnlineDealiaser online(transport, config_.seed + 1);
    v6::dealias::Dealiaser dealiaser(mode, &alias_list_, &online);
    dealiased_[slot] =
        v6::seeds::dealias_seeds(full_, dealiaser, ProbeType::kIcmp);
  });
  return *dealiased_[slot];
}

const std::vector<Ipv6Addr>& Workbench::all_active() {
  std::call_once(all_active_once_, [&] {
    all_active_ = v6::seeds::filter_active_any(
        dealiased(v6::dealias::DealiasMode::kJoint), activity_);
  });
  return *all_active_;
}

const std::vector<Ipv6Addr>& Workbench::port_specific(ProbeType type) {
  const auto slot = static_cast<std::size_t>(type);
  std::call_once(port_specific_once_[slot], [&] {
    port_specific_[slot] =
        v6::seeds::filter_active_on(all_active(), activity_, type);
  });
  return *port_specific_[slot];
}

const std::vector<Ipv6Addr>& Workbench::source_active(
    v6::seeds::SeedSource source) {
  const auto slot = static_cast<std::size_t>(source);
  std::call_once(source_active_once_[slot], [&] {
    const std::uint16_t bit = v6::seeds::source_bit(source);
    std::vector<Ipv6Addr> out;
    for (const Ipv6Addr& addr : all_active()) {
      if (seeds_.sources_of(addr) & bit) out.push_back(addr);
    }
    source_active_[slot] = std::move(out);
  });
  return *source_active_[slot];
}

void Workbench::precompute(unsigned jobs) {
  // One span around the whole phase, opened on the calling thread only:
  // spans inside the parallel lambdas would nest differently depending
  // on which thread claimed which variant, making trace paths
  // scheduling-dependent.
  v6::obs::Span span(config_.telemetry, "workbench.precompute");
  // Stage the dependency chain explicitly: the three dealias modes are
  // independent of each other; All Active needs the joint mode; the 4
  // port-specific and 12 source-specific variants all hang off All
  // Active and are mutually independent.
  static constexpr std::array<v6::dealias::DealiasMode, 3> kModes = {
      v6::dealias::DealiasMode::kOffline, v6::dealias::DealiasMode::kOnline,
      v6::dealias::DealiasMode::kJoint};
  v6::runtime::parallel_for(jobs, kModes.size(),
                            [&](std::size_t i) { dealiased(kModes[i]); });
  all_active();
  constexpr std::size_t kNumPorts =
      static_cast<std::size_t>(v6::net::kNumProbeTypes);
  const std::size_t variants =
      kNumPorts + static_cast<std::size_t>(v6::seeds::kNumSeedSources);
  v6::runtime::parallel_for(jobs, variants, [&](std::size_t i) {
    if (i < kNumPorts) {
      port_specific(v6::net::kAllProbeTypes[i]);
    } else {
      source_active(v6::seeds::kAllSeedSources[i - kNumPorts]);
    }
  });
}

}  // namespace v6::experiment
