// Workbench: the shared experiment fixture. Builds the simulated
// Internet, collects the 12-source seed dataset, scans it for activity,
// and materializes every seed-dataset variant studied by the paper
// (Table 2): Full, Offline/Online/Joint-dealiased, All Active,
// port-specific, and source-specific. Variants are computed lazily and
// cached; everything is deterministic in the master seed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "dealias/alias_list.h"
#include "dealias/dealiaser.h"
#include "net/ipv6.h"
#include "net/service.h"
#include "obs/telemetry.h"
#include "seeds/collector.h"
#include "seeds/preprocess.h"
#include "seeds/seed_dataset.h"
#include "simnet/universe.h"
#include "simnet/universe_config.h"

namespace v6::experiment {

struct WorkbenchConfig {
  v6::simnet::UniverseConfig universe;
  std::uint64_t seed = 42;
  /// Optional instrumentation context (borrowed): times the fixture
  /// phases (`workbench.*` spans) and threads into the activity scan.
  v6::obs::Telemetry* telemetry = nullptr;

  WorkbenchConfig& with_telemetry(v6::obs::Telemetry* t) {
    telemetry = t;
    return *this;
  }

  WorkbenchConfig() {
    universe.seed = seed;
    // Scale the universe so that the full experiment suite finishes in
    // minutes while preserving the paper's budget:population regime
    // (generation budget ~4.5x the responsive seed population).
    universe.num_ases = 2000;
    universe.host_scale = 0.12;
    universe.dense_region_prefix_len = 48;
  }
};

class Workbench {
 public:
  explicit Workbench(WorkbenchConfig config = {});

  const v6::simnet::Universe& universe() const { return universe_; }
  const v6::seeds::SeedDataset& seeds() const { return seeds_; }
  const v6::dealias::AliasList& alias_list() const { return alias_list_; }
  const v6::seeds::ActivityMap& activity() const { return activity_; }
  std::uint64_t seed() const { return config_.seed; }

  // ---- Seed dataset variants (paper Table 2) ---------------------------

  /// The full collected dataset ("All").
  const std::vector<v6::net::Ipv6Addr>& full();

  /// Dealiased under `mode` ("Offline Dealiased" / "Online Dealiased" /
  /// the joint "Active-Inactive" baseline). kNone returns full().
  const std::vector<v6::net::Ipv6Addr>& dealiased(v6::dealias::DealiasMode mode);

  /// Joint-dealiased, restricted to addresses responsive on >= 1 probe
  /// type ("All Active").
  const std::vector<v6::net::Ipv6Addr>& all_active();

  /// All Active restricted to addresses responsive on `type`
  /// (port-specific datasets, RQ2).
  const std::vector<v6::net::Ipv6Addr>& port_specific(v6::net::ProbeType type);

  /// All Active restricted to one seed source (RQ3).
  const std::vector<v6::net::Ipv6Addr>& source_active(
      v6::seeds::SeedSource source);

  /// Materializes every Table-2 variant, computing independent ones
  /// `jobs` at a time (0 = runtime::default_jobs()). Afterwards all
  /// accessors above are pure cache reads. Each variant is guarded by a
  /// once_flag, so lazy accessors stay safe (and deterministic) when
  /// called from several threads — with or without a precompute() first.
  void precompute(unsigned jobs = 0);

 private:
  WorkbenchConfig config_;
  v6::simnet::Universe universe_;
  v6::seeds::SeedDataset seeds_;
  v6::dealias::AliasList alias_list_;
  v6::seeds::ActivityMap activity_;

  std::vector<v6::net::Ipv6Addr> full_;
  // Each lazily-computed variant pairs its cache slot with a once_flag;
  // computations are deterministic functions of the master seed, so
  // whichever thread wins call_once produces the same bytes.
  std::array<std::optional<std::vector<v6::net::Ipv6Addr>>, 4> dealiased_;
  std::array<std::once_flag, 4> dealiased_once_;
  std::optional<std::vector<v6::net::Ipv6Addr>> all_active_;
  std::once_flag all_active_once_;
  std::array<std::optional<std::vector<v6::net::Ipv6Addr>>,
             v6::net::kNumProbeTypes>
      port_specific_;
  std::array<std::once_flag, v6::net::kNumProbeTypes> port_specific_once_;
  std::array<std::optional<std::vector<v6::net::Ipv6Addr>>,
             v6::seeds::kNumSeedSources>
      source_active_;
  std::array<std::once_flag, v6::seeds::kNumSeedSources> source_active_once_;
};

}  // namespace v6::experiment
