#include "fault/fault_plan.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <utility>

namespace v6::fault {

namespace {

using v6::net::Prefix;

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string owned(text);  // strtod needs a terminated buffer
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_int(std::string_view text, int* out) {
  if (text.empty()) return false;
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(owned.c_str(), &end, 10);
  if (end != owned.c_str() + owned.size() || errno == ERANGE || v < -1 ||
      v > 128) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

/// Shortest decimal form that parses back to exactly `v` — the property
/// the parse(to_string()) fixpoint fuzz harness leans on.
std::string format_double(double v) {
  for (const int precision : {15, 16, 17}) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    double back = 0.0;
    if (parse_double(os.str(), &back) && back == v) return os.str();
  }
  return "0";  // unreachable for finite v; valid() rejects non-finite
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    if (pos == std::string_view::npos) {
      out.push_back(s);
      return out;
    }
    out.push_back(s.substr(0, pos));
    s.remove_prefix(pos + 1);
  }
}

/// Splits a "PFX:rest" value. PFX is `any` or CIDR notation; because the
/// address itself contains colons, the prefix ends at the first ':'
/// after the mandatory '/'.
std::optional<std::pair<Prefix, std::string_view>> split_scope(
    std::string_view value) {
  if (value.rfind("any:", 0) == 0) {
    return std::make_pair(Prefix{}, value.substr(4));
  }
  const std::size_t slash = value.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::size_t colon = value.find(':', slash);
  if (colon == std::string_view::npos) return std::nullopt;
  const std::optional<Prefix> scope = Prefix::parse(value.substr(0, colon));
  if (!scope) return std::nullopt;
  return std::make_pair(*scope, value.substr(colon + 1));
}

bool prob_ok(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

}  // namespace

bool FaultPlan::valid() const {
  if (!prob_ok(base_loss)) return false;
  if (!std::isfinite(wire_pps) || wire_pps <= 0.0) return false;
  for (const LossRule& r : loss_rules) {
    if (!prob_ok(r.drop_prob)) return false;
  }
  for (const RateLimitRule& r : rate_limits) {
    if (!std::isfinite(r.replies_per_second) || r.replies_per_second <= 0.0) {
      return false;
    }
    if (!std::isfinite(r.burst) || r.burst < 1.0) return false;
    if (r.bucket_prefix_len < -1 || r.bucket_prefix_len > 128) return false;
  }
  for (const OutageRule& r : outages) {
    if (!std::isfinite(r.start_s) || r.start_s < 0.0) return false;
    if (!std::isfinite(r.duration_s) || r.duration_s < 0.0) return false;
    if (!std::isfinite(r.period_s) || r.period_s < 0.0) return false;
  }
  for (const ErrorRule& r : errors) {
    if (!prob_ok(r.error_prob)) return false;
  }
  return true;
}

std::string FaultPlan::to_string() const {
  std::vector<std::string> items;
  if (base_loss > 0.0) {
    items.push_back("loss=" + format_double(base_loss));
  }
  for (const LossRule& r : loss_rules) {
    items.push_back("loss=" + r.scope.to_string() + ":" +
                    format_double(r.drop_prob));
  }
  for (const RateLimitRule& r : rate_limits) {
    std::string item = "rlimit=" + r.scope.to_string() + ":" +
                       format_double(r.replies_per_second) + ":" +
                       format_double(r.burst);
    if (r.bucket_prefix_len >= 0) {
      item += ":" + std::to_string(r.bucket_prefix_len);
    }
    items.push_back(std::move(item));
  }
  for (const OutageRule& r : outages) {
    std::string item = "outage=" + r.scope.to_string() + ":" +
                       format_double(r.start_s) + ":" +
                       format_double(r.duration_s);
    if (r.period_s > 0.0) item += ":" + format_double(r.period_s);
    items.push_back(std::move(item));
  }
  for (const ErrorRule& r : errors) {
    items.push_back("error=" + r.scope.to_string() + ":" +
                    format_double(r.error_prob));
  }
  if (wire_pps != 10'000.0) {
    items.push_back("pps=" + format_double(wire_pps));
  }
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += items[i];
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (std::string_view raw : split(spec, ',')) {
    const std::string_view item = trim(raw);
    if (item.empty()) continue;  // tolerate stray/trailing commas
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "loss") {
      double p = 0.0;
      if (parse_double(value, &p)) {
        plan.base_loss = p;
        continue;
      }
      const auto scoped = split_scope(value);
      if (!scoped || !parse_double(scoped->second, &p)) return std::nullopt;
      plan.loss_rules.push_back({scoped->first, p});
    } else if (key == "rlimit") {
      const auto scoped = split_scope(value);
      if (!scoped) return std::nullopt;
      const std::vector<std::string_view> fields = split(scoped->second, ':');
      if (fields.empty() || fields.size() > 3) return std::nullopt;
      RateLimitRule rule{scoped->first};
      if (!parse_double(fields[0], &rule.replies_per_second)) {
        return std::nullopt;
      }
      if (fields.size() >= 2 && !parse_double(fields[1], &rule.burst)) {
        return std::nullopt;
      }
      if (fields.size() == 3 && !parse_int(fields[2], &rule.bucket_prefix_len)) {
        return std::nullopt;
      }
      plan.rate_limits.push_back(rule);
    } else if (key == "outage") {
      const auto scoped = split_scope(value);
      if (!scoped) return std::nullopt;
      const std::vector<std::string_view> fields = split(scoped->second, ':');
      if (fields.size() < 2 || fields.size() > 3) return std::nullopt;
      OutageRule rule{scoped->first};
      if (!parse_double(fields[0], &rule.start_s) ||
          !parse_double(fields[1], &rule.duration_s)) {
        return std::nullopt;
      }
      if (fields.size() == 3 && !parse_double(fields[2], &rule.period_s)) {
        return std::nullopt;
      }
      plan.outages.push_back(rule);
    } else if (key == "error") {
      const auto scoped = split_scope(value);
      if (!scoped) return std::nullopt;
      double p = 0.0;
      if (!parse_double(scoped->second, &p)) return std::nullopt;
      plan.errors.push_back({scoped->first, p});
    } else if (key == "pps") {
      if (!parse_double(value, &plan.wire_pps)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!plan.valid()) return std::nullopt;
  return plan;
}

}  // namespace v6::fault
