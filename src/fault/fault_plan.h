// Deterministic fault-injection plans for the simulated wire.
//
// A FaultPlan describes network pathologies the idealized SimTransport
// cannot express — probe loss, token-bucket ICMP rate limiting, transient
// outage windows, and spurious ICMPv6 errors — as pure data. The plan is
// applied by FaultyTransport (faulty_transport.h), a ProbeTransport
// decorator, so every fault draw comes from its own seeded RNG stream and
// a fixed (plan, seed) pair replays bit-identically at any --jobs count.
//
// Plans are scoped by prefix: every rule carries a net::Prefix and only
// applies to probes whose destination falls inside it (`::/0`, spelled
// `any` in specs, matches everything). docs/ROBUSTNESS.md describes the
// fault model and its determinism guarantees in full.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/prefix.h"

namespace v6::fault {

/// Drops probes to `scope` with probability `drop_prob`, independently
/// per packet. Multiple overlapping rules compose: a packet survives only
/// if it survives every matching rule (pass probabilities multiply).
struct LossRule {
  v6::net::Prefix scope;
  double drop_prob = 0.0;

  friend bool operator==(const LossRule&, const LossRule&) = default;
};

/// Token-bucket rate limiter guarding `scope`, modeled after per-router
/// ICMP error/echo rate limiting: replies drain a bucket refilled at
/// `replies_per_second` up to `burst` tokens. `bucket_prefix_len` splits
/// the scope into independent buckets, one per distinct /len sub-prefix —
/// a single `any`-scoped rule with bucket_prefix_len=32 models one
/// limiter per routed /32. -1 means one bucket for the whole scope.
struct RateLimitRule {
  v6::net::Prefix scope;
  double replies_per_second = 0.0;
  double burst = 1.0;
  int bucket_prefix_len = -1;

  friend bool operator==(const RateLimitRule&, const RateLimitRule&) = default;
};

/// Blackholes `scope` during [start_s, start_s + duration_s) on the fault
/// plane's virtual clock. `period_s > 0` repeats the window every
/// period_s seconds (flapping link); 0 is a one-shot outage.
struct OutageRule {
  v6::net::Prefix scope;
  double start_s = 0.0;
  double duration_s = 0.0;
  double period_s = 0.0;

  friend bool operator==(const OutageRule&, const OutageRule&) = default;
};

/// Answers probes into `scope` with ICMPv6 Destination Unreachable with
/// probability `error_prob` (an on-path router rejecting traffic), which
/// the scanner classifies as an unreachable, never a hit.
struct ErrorRule {
  v6::net::Prefix scope;
  double error_prob = 0.0;

  friend bool operator==(const ErrorRule&, const ErrorRule&) = default;
};

/// A complete, seedless description of what the network does to probes.
/// Default-constructed plans are disabled: FaultyTransport forwards every
/// packet untouched and consumes zero randomness, so a disabled plan in
/// the chain is byte-identical to no decorator at all (ctest-asserted).
struct FaultPlan {
  /// Scope-free packet loss applied to every probe (composes with
  /// per-prefix LossRules).
  double base_loss = 0.0;
  std::vector<LossRule> loss_rules;
  std::vector<RateLimitRule> rate_limits;
  std::vector<OutageRule> outages;
  std::vector<ErrorRule> errors;
  /// Wire packet rate driving the fault plane's virtual clock: each
  /// probe advances it by 1/wire_pps seconds (plus any explicit
  /// ProbeTransport::advance calls from scanner backoff waits).
  double wire_pps = 10'000.0;

  /// True when any fault can fire. A plan whose rules all have zero
  /// probability still counts as enabled but never draws randomness.
  bool enabled() const {
    return base_loss > 0.0 || !loss_rules.empty() || !rate_limits.empty() ||
           !outages.empty() || !errors.empty();
  }

  /// All probabilities in [0,1], rates/bursts positive, times
  /// non-negative, bucket lengths in [-1, 128].
  bool valid() const;

  /// Canonical spec string; parse(to_string()) reproduces the plan
  /// exactly (fuzz-asserted fixpoint).
  std::string to_string() const;

  /// Parses the `sos --faults` spec grammar: comma-separated items of
  ///   loss=P                      scope-free loss probability
  ///   loss=PFX:P                  per-prefix loss
  ///   rlimit=PFX:RATE[:BURST[:BUCKETLEN]]
  ///   outage=PFX:START:DUR[:PERIOD]
  ///   error=PFX:P
  ///   pps=RATE                    fault-plane wire rate
  /// where PFX is CIDR notation or the word `any` (= ::/0). Returns
  /// nullopt on malformed or invalid() input; an empty spec is the
  /// disabled plan.
  static std::optional<FaultPlan> parse(std::string_view spec);

  FaultPlan& with_base_loss(double p) { base_loss = p; return *this; }
  FaultPlan& with_loss(const v6::net::Prefix& scope, double p) {
    loss_rules.push_back({scope, p});
    return *this;
  }
  FaultPlan& with_rate_limit(const v6::net::Prefix& scope, double rate,
                             double burst, int bucket_prefix_len = -1) {
    rate_limits.push_back({scope, rate, burst, bucket_prefix_len});
    return *this;
  }
  FaultPlan& with_outage(const v6::net::Prefix& scope, double start_s,
                         double duration_s, double period_s = 0.0) {
    outages.push_back({scope, start_s, duration_s, period_s});
    return *this;
  }
  FaultPlan& with_error(const v6::net::Prefix& scope, double p) {
    errors.push_back({scope, p});
    return *this;
  }
  FaultPlan& with_wire_pps(double pps) { wire_pps = pps; return *this; }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace v6::fault
