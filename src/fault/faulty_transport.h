// FaultyTransport: applies a FaultPlan to every probe crossing a
// ProbeTransport.
//
// Slots between SimTransport and the observability decorators
// (CountingTransport / TracingTransport), so the instrumented layers see
// exactly what a scanner on a lossy network would: dropped probes come
// back as kTimeout without ever reaching the universe.
//
// Determinism: fault randomness comes from a private RNG derived from
// (seed, 0xFA17) — a separate stream from SimTransport's (seed, 0x7A57)
// — so enabling a fault never perturbs the universe's own reply draws,
// and a fixed (plan, seed) pair replays bit-identically regardless of
// --jobs. A disabled plan forwards every packet untouched and consumes
// zero randomness: the decorated chain is byte-identical to the bare one.
//
// Time model: the fault plane keeps a virtual clock that advances by
// 1/wire_pps per packet plus any explicit advance() calls (scanner
// backoff waits). Token buckets and outage windows are keyed to this
// clock, which is how adaptive backoff actually recovers replies: a
// cool-down wait refills the remote limiter's bucket.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.h"
#include "net/ipv6.h"
#include "net/rng.h"
#include "net/service.h"
#include "probe/transport.h"

namespace v6::fault {

class FaultyTransport final : public v6::probe::ProbeTransport {
 public:
  /// `inner` and `plan` are borrowed and must outlive the transport.
  FaultyTransport(v6::probe::ProbeTransport& inner, const FaultPlan& plan,
                  std::uint64_t seed)
      : inner_(&inner),
        plan_(&plan),
        rng_(v6::net::make_rng(seed, /*tag=*/0xFA17)),
        buckets_(plan.rate_limits.size()) {}

  v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                           v6::net::ProbeType type) override {
    ++packets_;
    now_ += 1.0 / plan_->wire_pps;
    // Until a probe reaches the inner transport, the last reply (if any)
    // was synthesized here and carries no modeled wire time.
    last_local_ = true;
    if (!plan_->enabled()) {
      last_local_ = false;
      return inner_->send(addr, type);
    }

    // Outage windows: purely clock-driven, no randomness.
    for (const OutageRule& rule : plan_->outages) {
      if (!rule.scope.contains(addr)) continue;
      double t = now_ - rule.start_s;
      if (t < 0.0) continue;
      if (rule.period_s > 0.0) t = std::fmod(t, rule.period_s);
      if (t < rule.duration_s) {
        ++dropped_outage_;
        return v6::net::ProbeReply::kTimeout;
      }
    }

    // Token buckets: one per distinct masked sub-prefix per rule. A probe
    // that finds its bucket empty is answered by silence — the rate
    // limiter suppressed the reply.
    for (std::size_t i = 0; i < plan_->rate_limits.size(); ++i) {
      const RateLimitRule& rule = plan_->rate_limits[i];
      if (!rule.scope.contains(addr)) continue;
      const int bucket_len = rule.bucket_prefix_len < 0
                                 ? rule.scope.length()
                                 : rule.bucket_prefix_len;
      Bucket& bucket =
          buckets_[i]
              .try_emplace(addr.masked(bucket_len), Bucket{rule.burst, now_})
              .first->second;
      bucket.tokens = std::min(
          rule.burst, bucket.tokens + (now_ - bucket.last_refill) *
                                          rule.replies_per_second);
      bucket.last_refill = now_;
      if (bucket.tokens < 1.0) {
        ++dropped_rate_limit_;
        return v6::net::ProbeReply::kTimeout;
      }
      bucket.tokens -= 1.0;
    }

    // Spurious ICMPv6 errors from on-path routers.
    for (const ErrorRule& rule : plan_->errors) {
      if (rule.error_prob > 0.0 && rule.scope.contains(addr) &&
          v6::net::chance(rng_, rule.error_prob)) {
        ++injected_errors_;
        return v6::net::ProbeReply::kDestUnreachable;
      }
    }

    // Random loss: matching rules compose multiplicatively, one draw per
    // packet (and none at all when every matching probability is zero).
    double pass = 1.0 - plan_->base_loss;
    for (const LossRule& rule : plan_->loss_rules) {
      if (rule.scope.contains(addr)) pass *= 1.0 - rule.drop_prob;
    }
    if (pass < 1.0 && !v6::net::chance(rng_, pass)) {
      ++dropped_loss_;
      return v6::net::ProbeReply::kTimeout;
    }

    last_local_ = false;
    return inner_->send(addr, type);
  }

  /// Swallowed probes and injected errors consumed no modeled wire time
  /// (drops time out — the scanner charges its timeout via advance());
  /// forwarded probes report the inner transport's RTT.
  std::uint64_t last_wire_nanos() const override {
    return last_local_ ? 0 : inner_->last_wire_nanos();
  }

  /// Sender-side packet count: includes probes the faults swallowed (the
  /// scanner did transmit them), so packet budgets stay honest.
  std::uint64_t packets_sent() const override { return packets_; }

  void advance(double seconds) override {
    now_ += seconds;
    inner_->advance(seconds);
  }

  double virtual_now() const { return now_; }
  std::uint64_t dropped_loss() const { return dropped_loss_; }
  std::uint64_t dropped_outage() const { return dropped_outage_; }
  std::uint64_t dropped_rate_limit() const { return dropped_rate_limit_; }
  std::uint64_t injected_errors() const { return injected_errors_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill = 0.0;
  };

  v6::probe::ProbeTransport* inner_;
  const FaultPlan* plan_;
  v6::net::Rng rng_;
  double now_ = 0.0;
  bool last_local_ = false;
  std::uint64_t packets_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_outage_ = 0;
  std::uint64_t dropped_rate_limit_ = 0;
  std::uint64_t injected_errors_ = 0;
  /// Parallel to plan_->rate_limits: per-rule bucket maps keyed by the
  /// masked sub-prefix address.
  std::vector<std::unordered_map<v6::net::Ipv6Addr, Bucket,
                                 v6::net::Ipv6AddrHash>>
      buckets_;
};

}  // namespace v6::fault
