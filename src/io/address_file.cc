#include "io/address_file.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "check/contracts.h"

namespace v6::io {

namespace {

std::string_view trim(std::string_view line) {
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
    line.remove_prefix(1);
  }
  while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                           line.back() == '\r')) {
    line.remove_suffix(1);
  }
  return line;
}

/// Invokes fn(line) for every '#'-stripped, trimmed, non-empty line.
template <typename Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (!line.empty()) fn(line);
    if (end == text.size()) break;
    pos = end + 1;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << contents;
  if (!out) throw std::runtime_error("failed writing " + path);
}

/// Parses a source label back to its enum; returns nullopt for unknown
/// labels (forward compatibility with files from newer versions).
std::optional<v6::seeds::SeedSource> parse_source(std::string_view label) {
  for (const v6::seeds::SeedSource source : v6::seeds::kAllSeedSources) {
    if (v6::seeds::to_string(source) == label) return source;
  }
  return std::nullopt;
}

}  // namespace

ParseReport parse_address_list(std::string_view text,
                               std::vector<v6::net::Ipv6Addr>& out) {
  ParseReport report;
  for_each_line(text, [&](std::string_view line) {
    ++report.lines;
    if (const auto addr = v6::net::Ipv6Addr::parse(line)) {
      out.push_back(*addr);
      ++report.parsed;
    } else {
      ++report.malformed;
    }
  });
  V6_ENSURE_MSG(report.lines == report.parsed + report.malformed,
                "every line must be counted exactly once");
  return report;
}

std::vector<v6::net::Ipv6Addr> read_address_file(const std::string& path,
                                                 ParseReport* report) {
  std::vector<v6::net::Ipv6Addr> out;
  const ParseReport r = parse_address_list(read_file(path), out);
  if (report != nullptr) *report = r;
  return out;
}

void write_address_list(std::ostream& os,
                        std::span<const v6::net::Ipv6Addr> addrs) {
  for (const v6::net::Ipv6Addr& addr : addrs) {
    os << addr.to_string() << '\n';
  }
}

void write_address_file(const std::string& path,
                        std::span<const v6::net::Ipv6Addr> addrs) {
  std::ostringstream os;
  write_address_list(os, addrs);
  write_file(path, std::move(os).str());
}

void write_seed_dataset(std::ostream& os,
                        const v6::seeds::SeedDataset& dataset) {
  const auto addrs = dataset.addrs();
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    os << addrs[i].to_string() << '\t';
    const std::uint16_t mask = dataset.sources_of(i);
    bool first = true;
    for (const v6::seeds::SeedSource source : v6::seeds::kAllSeedSources) {
      if (mask & v6::seeds::source_bit(source)) {
        if (!first) os << ',';
        os << v6::seeds::to_string(source);
        first = false;
      }
    }
    os << '\n';
  }
}

v6::seeds::SeedDataset parse_seed_dataset(std::string_view text,
                                          ParseReport* report) {
  v6::seeds::SeedDataset dataset;
  ParseReport r;
  for_each_line(text, [&](std::string_view line) {
    ++r.lines;
    const auto tab = line.find('\t');
    const auto addr =
        v6::net::Ipv6Addr::parse(trim(line.substr(0, tab)));
    if (!addr) {
      ++r.malformed;
      return;
    }
    bool any = false;
    if (tab != std::string_view::npos) {
      std::string_view labels = line.substr(tab + 1);
      while (!labels.empty()) {
        const auto comma = labels.find(',');
        const std::string_view label = trim(labels.substr(0, comma));
        if (const auto source = parse_source(label)) {
          dataset.add(*addr, *source);
          any = true;
        }
        if (comma == std::string_view::npos) break;
        labels.remove_prefix(comma + 1);
      }
    }
    if (any) {
      ++r.parsed;
    } else {
      ++r.malformed;  // no recognizable provenance
    }
  });
  V6_ENSURE_MSG(r.lines == r.parsed + r.malformed,
                "every line must be counted exactly once");
  V6_ENSURE_MSG(dataset.size() <= r.parsed,
                "dataset cannot hold more unique addresses than parsed lines");
  if (report != nullptr) *report = r;
  return dataset;
}

void write_seed_dataset_file(const std::string& path,
                             const v6::seeds::SeedDataset& dataset) {
  std::ostringstream os;
  write_seed_dataset(os, dataset);
  write_file(path, std::move(os).str());
}

v6::seeds::SeedDataset read_seed_dataset_file(const std::string& path,
                                              ParseReport* report) {
  return parse_seed_dataset(read_file(path), report);
}

void write_alias_list(std::ostream& os, const v6::dealias::AliasList& list) {
  for (const v6::net::Prefix& prefix : list.prefixes()) {
    os << prefix.to_string() << '\n';
  }
}

void write_alias_list_file(const std::string& path,
                           const v6::dealias::AliasList& list) {
  std::ostringstream os;
  write_alias_list(os, list);
  write_file(path, std::move(os).str());
}

v6::dealias::AliasList read_alias_list_file(const std::string& path) {
  v6::dealias::AliasList list;
  list.load(read_file(path));
  return list;
}

}  // namespace v6::io
