// Address-list and dataset file I/O.
//
// Real TGA pipelines live on flat files: seed lists in, candidate lists
// out, alias lists shared between tools. This module provides the same
// interchange: newline-separated IPv6 address files (with '#' comments),
// provenance-tagged seed dataset files, and alias-prefix lists.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dealias/alias_list.h"
#include "net/ipv6.h"
#include "seeds/seed_dataset.h"

namespace v6::io {

/// Result of parsing a text address list.
struct ParseReport {
  std::size_t lines = 0;       // non-comment, non-empty lines seen
  std::size_t parsed = 0;      // addresses successfully parsed
  std::size_t malformed = 0;   // lines that failed to parse
};

/// Parses newline-separated addresses from `text` ('#' comments, blank
/// lines, and surrounding whitespace allowed). Appends to `out`.
ParseReport parse_address_list(std::string_view text,
                               std::vector<v6::net::Ipv6Addr>& out);

/// Reads an address file from disk. Throws std::runtime_error if the
/// file cannot be opened.
std::vector<v6::net::Ipv6Addr> read_address_file(const std::string& path,
                                                 ParseReport* report = nullptr);

/// Writes one address per line (RFC 5952 compressed form).
void write_address_list(std::ostream& os,
                        std::span<const v6::net::Ipv6Addr> addrs);
void write_address_file(const std::string& path,
                        std::span<const v6::net::Ipv6Addr> addrs);

/// Seed dataset interchange: "address<TAB>source1,source2,..." lines.
void write_seed_dataset(std::ostream& os,
                        const v6::seeds::SeedDataset& dataset);
v6::seeds::SeedDataset parse_seed_dataset(std::string_view text,
                                          ParseReport* report = nullptr);
void write_seed_dataset_file(const std::string& path,
                             const v6::seeds::SeedDataset& dataset);
v6::seeds::SeedDataset read_seed_dataset_file(const std::string& path,
                                              ParseReport* report = nullptr);

/// Alias-prefix list files (CIDR per line), compatible with
/// dealias::AliasList::load().
void write_alias_list(std::ostream& os, const v6::dealias::AliasList& list);
void write_alias_list_file(const std::string& path,
                           const v6::dealias::AliasList& list);
v6::dealias::AliasList read_alias_list_file(const std::string& path);

}  // namespace v6::io
