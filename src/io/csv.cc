#include "io/csv.h"

#include <ostream>
#include <stdexcept>

namespace v6::io {

namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

void write_cell(std::ostream& os, const std::string& cell) {
  if (!needs_quoting(cell)) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void write_csv_row(std::ostream& os, std::span<const std::string> cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ',';
    write_cell(os, cells[i]);
  }
  os << '\n';
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(&os), columns_(header.size()) {
  write_csv_row(*os_, header);
}

void CsvWriter::row(std::vector<std::string> cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CSV row width mismatch");
  }
  write_csv_row(*os_, cells);
  ++rows_;
}

void write_outcomes_csv(std::ostream& os,
                        std::span<const std::string> label_names,
                        std::span<const OutcomeRow> rows) {
  std::vector<std::string> header(label_names.begin(), label_names.end());
  for (const char* metric :
       {"generated", "responsive", "hits", "ases", "aliases",
        "dense_filtered", "packets"}) {
    header.emplace_back(metric);
  }
  CsvWriter writer(os, std::move(header));
  for (const OutcomeRow& row : rows) {
    std::vector<std::string> cells = row.labels;
    const v6::metrics::ScanOutcome& o = *row.outcome;
    cells.push_back(std::to_string(o.generated));
    cells.push_back(std::to_string(o.responsive));
    cells.push_back(std::to_string(o.hits()));
    cells.push_back(std::to_string(o.ases()));
    cells.push_back(std::to_string(o.aliases));
    cells.push_back(std::to_string(o.dense_filtered));
    cells.push_back(std::to_string(o.packets));
    writer.row(std::move(cells));
  }
}

}  // namespace v6::io
