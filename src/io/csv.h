// Minimal CSV writing (RFC 4180 quoting) for exporting experiment
// results into external analysis tools.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "metrics/scan_outcome.h"

namespace v6::io {

/// Escapes and writes one CSV row.
void write_csv_row(std::ostream& os, std::span<const std::string> cells);

/// Streams rows with a fixed header.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream* os_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// One labeled ScanOutcome row (e.g. TGA x dataset x port).
struct OutcomeRow {
  std::vector<std::string> labels;
  const v6::metrics::ScanOutcome* outcome = nullptr;
};

/// Writes outcome metrics as CSV: label columns followed by
/// generated,responsive,hits,ases,aliases,dense_filtered,packets.
void write_outcomes_csv(std::ostream& os,
                        std::span<const std::string> label_names,
                        std::span<const OutcomeRow> rows);

}  // namespace v6::io
