#include "metrics/as_top.h"

#include <algorithm>
#include <unordered_map>

namespace v6::metrics {

AsCharacterization characterize(
    const std::unordered_set<v6::net::Ipv6Addr>& hits,
    const std::function<std::optional<std::uint32_t>(
        const v6::net::Ipv6Addr&)>& asn_of,
    const v6::asdb::AsDatabase& asdb, std::size_t k) {
  std::unordered_map<std::uint32_t, std::uint64_t> per_as;
  std::uint64_t resolved = 0;
  // Commutative accumulation: only per-AS sums survive this loop.
  // v6lint: allow(unordered-iteration)
  for (const v6::net::Ipv6Addr& addr : hits) {
    const auto asn = asn_of(addr);
    if (!asn) continue;
    ++per_as[*asn];
    ++resolved;
  }

  AsCharacterization out;
  out.total_ases = per_as.size();
  out.total_hits = resolved;

  // Materialize-and-sort with a total order (count desc, ASN asc).
  // v6lint: allow(unordered-iteration)
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted(per_as.begin(),
                                                              per_as.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const std::size_t n = std::min(k, sorted.size());
  out.top.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AsShare share;
    share.asn = sorted[i].first;
    share.hits = sorted[i].second;
    share.share = resolved == 0
                      ? 0.0
                      : static_cast<double>(sorted[i].second) /
                            static_cast<double>(resolved);
    if (const v6::asdb::AsInfo* info = asdb.find(share.asn)) {
      share.name = info->name;
      share.org_type = std::string(v6::asdb::to_string(info->org_type));
      share.region = std::string(v6::asdb::to_string(info->region));
    }
    out.top.push_back(std::move(share));
  }
  return out;
}

}  // namespace v6::metrics
