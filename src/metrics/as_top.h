// AS characterization of a discovered population (paper Table 6): the
// top-k ASes by hit share, with organization metadata.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "asdb/as_database.h"
#include "net/ipv6.h"

namespace v6::metrics {

struct AsShare {
  std::uint32_t asn = 0;
  std::string name;        // org name from the AS database
  std::string org_type;    // classified organization type
  std::string region;      // coarse geography
  std::uint64_t hits = 0;
  double share = 0.0;      // fraction of all hits in this population
};

struct AsCharacterization {
  std::vector<AsShare> top;   // top-k by hits, descending
  std::size_t total_ases = 0; // distinct ASes in the population
  std::uint64_t total_hits = 0;
};

/// Characterizes `hits` by AS. `asn_of` resolves addresses to ASNs.
AsCharacterization characterize(
    const std::unordered_set<v6::net::Ipv6Addr>& hits,
    const std::function<std::optional<std::uint32_t>(
        const v6::net::Ipv6Addr&)>& asn_of,
    const v6::asdb::AsDatabase& asdb, std::size_t k = 3);

}  // namespace v6::metrics
