#include "metrics/coverage.h"

#include <algorithm>

namespace v6::metrics {
namespace {

/// Greedy set-cover style ordering shared by both overloads.
template <typename Item, typename Hash>
std::vector<ContributionStep> greedy(
    const std::vector<std::pair<std::string,
                                const std::unordered_set<Item, Hash>*>>& sets) {
  std::vector<ContributionStep> steps;
  std::unordered_set<Item, Hash> covered;
  std::vector<bool> used(sets.size(), false);

  // Total union for the fraction denominators.
  std::size_t total = 0;
  {
    std::unordered_set<Item, Hash> all;
    for (const auto& [name, set] : sets) {
      all.insert(set->begin(), set->end());
    }
    total = all.size();
  }

  for (std::size_t round = 0; round < sets.size(); ++round) {
    std::size_t best = sets.size();
    std::size_t best_marginal = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (used[i]) continue;
      std::size_t marginal = 0;
      for (const Item& item : *sets[i].second) {
        if (!covered.contains(item)) ++marginal;
      }
      if (best == sets.size() || marginal > best_marginal) {
        best = i;
        best_marginal = marginal;
      }
    }
    used[best] = true;
    covered.insert(sets[best].second->begin(), sets[best].second->end());
    ContributionStep step;
    step.name = sets[best].first;
    step.marginal = best_marginal;
    step.cumulative = covered.size();
    step.cumulative_fraction =
        total == 0 ? 0.0
                   : static_cast<double>(covered.size()) /
                         static_cast<double>(total);
    steps.push_back(std::move(step));
  }
  return steps;
}

}  // namespace

std::vector<ContributionStep> cumulative_contribution(
    const std::vector<std::pair<std::string,
                                const std::unordered_set<v6::net::Ipv6Addr>*>>&
        sets) {
  return greedy(sets);
}

std::vector<ContributionStep> cumulative_as_contribution(
    const std::vector<std::pair<std::string,
                                const std::unordered_set<std::uint32_t>*>>&
        sets) {
  return greedy(sets);
}

}  // namespace v6::metrics
