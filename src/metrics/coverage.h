// Cumulative unique contribution analysis (paper Figure 6): greedily
// orders generators by how many new hits (or ASes) each adds on top of
// the generators already selected.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/ipv6.h"

namespace v6::metrics {

struct ContributionStep {
  std::string name;
  std::uint64_t marginal = 0;    // new items this generator adds
  std::uint64_t cumulative = 0;  // running union size
  double cumulative_fraction = 0.0;  // of the all-generator union
};

/// Greedy max-marginal ordering over address sets (Figure 6, hits).
std::vector<ContributionStep> cumulative_contribution(
    const std::vector<std::pair<std::string,
                                const std::unordered_set<v6::net::Ipv6Addr>*>>&
        sets);

/// Greedy max-marginal ordering over AS sets (Figure 6, ASes).
std::vector<ContributionStep> cumulative_as_contribution(
    const std::vector<std::pair<std::string,
                                const std::unordered_set<std::uint32_t>*>>&
        sets);

}  // namespace v6::metrics
