#include "metrics/reporter.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace v6::metrics {

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pending = static_cast<int>(digits.size());
  for (const char c : digits) {
    out += c;
    --pending;
    if (pending > 0 && pending % 3 == 0) out += ',';
  }
  return out;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_ratio(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.*f", decimals, ratio);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if ((c < '0' || c > '9') && c != ',' && c != '.' && c != '%' &&
        c != '+' && c != '-') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const bool right = align_right && c > 0 && looks_numeric(cell);
      if (c > 0) os << "  ";
      if (right) {
        os << std::string(width[c] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(width[c] - cell.size(), ' ');
      }
    }
    os << '\n';
  };

  print_row(header_, false);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    } else {
      print_row(row, true);
    }
  }
}

}  // namespace v6::metrics
