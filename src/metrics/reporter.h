// Plain-text table formatting for the bench harnesses: fixed-width
// columns, thousands separators, and ratio formatting, so bench output
// reads like the paper's tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace v6::metrics {

/// 1234567 -> "1,234,567".
std::string fmt_count(std::uint64_t n);

/// 0.4215 -> "42.2%".
std::string fmt_percent(double fraction, int decimals = 1);

/// Performance ratio with explicit sign: +0.53 / -0.21.
std::string fmt_ratio(double ratio, int decimals = 2);

/// Simple fixed-width text table. Column widths auto-size to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  /// Renders with single-space-padded, right-aligned numeric-looking
  /// cells and left-aligned text cells.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

}  // namespace v6::metrics
