// Scan outcome metrics: the paper's two core metrics (Hits and Active
// ASes), alias counts, and the Performance Ratio (§4.1).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "net/ipv6.h"

namespace v6::metrics {

/// Result of running one TGA with one seed dataset on one probe type,
/// after output dealiasing and AS12322 filtering.
struct ScanOutcome {
  std::uint64_t generated = 0;         // budget consumed
  std::uint64_t unique_generated = 0;  // distinct addresses produced
  std::uint64_t responsive = 0;        // positive replies before dealiasing
  std::uint64_t aliases = 0;           // responsive but classified aliased
  std::uint64_t dense_filtered = 0;    // removed by the AS12322 filter
  std::uint64_t packets = 0;           // probes emitted (scan + dealias)
  double virtual_seconds = 0.0;        // wire time at the configured pps

  /// Dealiased, filtered hits — the paper's "Hits" metric.
  std::unordered_set<v6::net::Ipv6Addr> hit_set;
  /// ASes with at least one hit — the paper's "Active ASes" metric.
  std::unordered_set<std::uint32_t> as_set;

  std::uint64_t hits() const { return hit_set.size(); }
  std::uint64_t ases() const { return as_set.size(); }
};

/// Performance Ratio (paper §4.1): 0 when unchanged, +1 when doubled,
/// -1 when halved (well, -0.5 when halved; the paper's formula is
/// (changed - original) / original). Returns 0 when original is 0.
inline double performance_ratio(double changed, double original) {
  if (original == 0.0) return 0.0;
  return (changed - original) / original;
}

}  // namespace v6::metrics
