// AddrIndexMap: an open-addressing hash map from Ipv6Addr to a 32-bit
// index, tuned for the simulator's hottest lookup (Universe::probe runs
// one find() per probe packet).
//
// Compared with std::unordered_map<Ipv6Addr, uint32_t> it stores slots
// contiguously (no per-node allocation, one cache line per lookup in the
// common case) and probes linearly from a mixed hash. Deletion is not
// supported — the universe only ever grows (UniverseBuilder::build and
// the aging birth pass), which keeps the table tombstone-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/contracts.h"
#include "net/ipv6.h"

namespace v6::net {

class AddrIndexMap {
 private:
  struct Slot {
    Ipv6Addr key;
    std::uint32_t value = 0;
    bool used = false;
  };

  static constexpr std::size_t kMinCapacity = 16;  // power of two
  static constexpr std::size_t kMaxLoadPercent = 70;

  /// First slot holding `addr`, or the empty slot where it would go.
  /// `slots` must be a non-empty power-of-two-sized table.
  template <typename Slots>
  static auto& locate(Slots& slots, const Ipv6Addr& addr) {
    V6_REQUIRE_MSG(!slots.empty() && (slots.size() & (slots.size() - 1)) == 0,
                   "table must be a non-empty power-of-two size");
    const std::size_t mask = slots.size() - 1;
    std::size_t i = Ipv6AddrHash{}(addr) & mask;
    for (;;) {
      auto& slot = slots[i];
      if (!slot.used || slot.key == addr) return slot;
      i = (i + 1) & mask;
    }
  }

  void rehash(std::size_t capacity) {
    V6_REQUIRE_MSG(capacity * kMaxLoadPercent >= size_ * 100,
                   "rehash target capacity would exceed the load limit");
    std::vector<Slot> next(capacity);
    for (const Slot& slot : slots_) {
      if (!slot.used) continue;
      Slot& target = locate(next, slot.key);
      V6_INVARIANT_MSG(!target.used, "duplicate key during rehash");
      target = slot;
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;

 public:
  AddrIndexMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` entries (rounded so the load factor
  /// stays below kMaxLoadPercent).
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadPercent < n * 100) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Inserts (addr -> value); returns false (leaving the map unchanged)
  /// if the key is already present.
  bool insert(const Ipv6Addr& addr, std::uint32_t value) {
    if (slots_.empty() || (size_ + 1) * 100 > slots_.size() * kMaxLoadPercent) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    Slot& slot = locate(slots_, addr);
    if (slot.used) return false;
    slot.key = addr;
    slot.value = value;
    slot.used = true;
    ++size_;
    V6_ENSURE_MSG(size_ * 100 <= slots_.size() * kMaxLoadPercent,
                  "load factor above the probing bound after insert");
    return true;
  }

  /// Pointer to the value stored under `addr`, or nullptr.
  const std::uint32_t* find(const Ipv6Addr& addr) const {
    if (slots_.empty()) return nullptr;
    const Slot& slot = locate(slots_, addr);
    return slot.used ? &slot.value : nullptr;
  }

  bool contains(const Ipv6Addr& addr) const { return find(addr) != nullptr; }

  /// Empties the map but keeps the allocated table, so scratch maps
  /// reused across scan batches (Scanner/StreamScanner dedup) reach a
  /// steady state with no per-batch allocation.
  void clear() {
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }
};

}  // namespace v6::net
