#include "net/ipv6.h"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace v6::net {
namespace {

/// Parses up to 4 hex digits of one group; returns -1 on failure and
/// otherwise advances `pos` past the digits consumed.
int parse_group(std::string_view text, std::size_t& pos) {
  int value = 0;
  int digits = 0;
  while (pos < text.size() && digits < 4) {
    const char c = text[pos];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else break;
    value = value * 16 + d;
    ++digits;
    ++pos;
  }
  return digits == 0 ? -1 : value;
}

}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  // Strip an optional zone suffix ("%eth0") which appears in some datasets.
  if (const auto pct = text.find('%'); pct != std::string_view::npos) {
    text = text.substr(0, pct);
  }
  if (text.empty()) return std::nullopt;

  std::array<int, 8> head{};
  std::array<int, 8> tail{};
  int head_n = 0;
  int tail_n = 0;
  bool seen_gap = false;

  std::size_t pos = 0;
  if (text[0] == ':') {
    if (text.size() < 2 || text[1] != ':') return std::nullopt;
    seen_gap = true;
    pos = 2;
  }

  while (pos < text.size()) {
    const int g = parse_group(text, pos);
    if (g < 0) return std::nullopt;
    if (!seen_gap) {
      if (head_n == 8) return std::nullopt;
      head[head_n++] = g;
    } else {
      if (tail_n == 8) return std::nullopt;
      tail[tail_n++] = g;
    }
    if (pos == text.size()) break;
    if (text[pos] != ':') return std::nullopt;
    ++pos;
    if (pos < text.size() && text[pos] == ':') {
      if (seen_gap) return std::nullopt;  // only one `::` allowed
      seen_gap = true;
      ++pos;
      if (pos == text.size()) break;  // address ends with `::`
    } else if (pos == text.size()) {
      return std::nullopt;  // trailing single colon
    }
  }

  const int total = head_n + tail_n;
  if (seen_gap ? total > 7 : total != 8) return std::nullopt;

  std::array<int, 8> groups{};
  for (int i = 0; i < head_n; ++i) groups[static_cast<std::size_t>(i)] = head[static_cast<std::size_t>(i)];
  for (int i = 0; i < tail_n; ++i) {
    groups[static_cast<std::size_t>(8 - tail_n + i)] = tail[static_cast<std::size_t>(i)];
  }

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | static_cast<std::uint64_t>(groups[static_cast<std::size_t>(i)]);
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | static_cast<std::uint64_t>(groups[static_cast<std::size_t>(i)]);
  return Ipv6Addr(hi, lo);
}

Ipv6Addr Ipv6Addr::must_parse(std::string_view text) {
  auto a = parse(text);
  if (!a) throw std::invalid_argument("bad IPv6 literal: " + std::string(text));
  return *a;
}

std::string Ipv6Addr::to_string() const {
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(hi_ >> ((3 - i) * 16));
  }
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<std::size_t>(4 + i)] = static_cast<std::uint16_t>(lo_ >> ((3 - i) * 16));
  }

  // Find the longest run of zero groups (length >= 2) for `::` compression.
  int best_start = -1;
  int best_len = 1;  // runs of length 1 are not compressed (RFC 5952 §4.2.2)
  int run_start = -1;
  int run_len = 0;
  for (int i = 0; i < 8; ++i) {
    if (groups[static_cast<std::size_t>(i)] == 0) {
      if (run_start < 0) run_start = i;
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_start = -1;
      run_len = 0;
    }
  }

  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) break;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
    if (i < 8 && i != best_start) out += ':';
  }
  return out;
}

std::string Ipv6Addr::to_full_string() const {
  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    const std::uint16_t g = static_cast<std::uint16_t>(
        (i < 4 ? hi_ >> ((3 - i) * 16) : lo_ >> ((7 - i) * 16)) & 0xFFFF);
    std::snprintf(buf, sizeof buf, "%04x", g);
    out += buf;
    if (i != 7) out += ':';
  }
  return out;
}

}  // namespace v6::net
