// IPv6 address value type used throughout the library.
//
// An Ipv6Addr is an immutable-friendly 128-bit value held as two 64-bit
// halves in host integer order (hi = bytes 0..7 of the address, lo =
// bytes 8..15). Nybble indexing follows the convention of the TGA
// literature: nybble 0 is the most-significant hexadecimal digit of the
// address and nybble 31 the least-significant.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "check/contracts.h"

namespace v6::net {

/// A 128-bit IPv6 address.
class Ipv6Addr {
 public:
  /// The number of hexadecimal digits (nybbles) in an address.
  static constexpr int kNybbles = 32;
  /// The number of bits in an address.
  static constexpr int kBits = 128;

  /// Constructs the unspecified address `::`.
  constexpr Ipv6Addr() = default;

  /// Constructs from the two 64-bit halves (hi = network-order bytes 0..7).
  constexpr Ipv6Addr(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  /// Parses an IPv6 address in standard textual form, including `::`
  /// compression. Returns std::nullopt on malformed input. Embedded IPv4
  /// dotted-quad suffixes are not supported (never needed for scanning).
  static std::optional<Ipv6Addr> parse(std::string_view text);

  /// Parses, throwing std::invalid_argument on malformed input. Intended
  /// for literals in tests and examples.
  static Ipv6Addr must_parse(std::string_view text);

  /// Upper 64 bits (bytes 0..7 of the address).
  constexpr std::uint64_t hi() const { return hi_; }
  /// Lower 64 bits (bytes 8..15 of the address).
  constexpr std::uint64_t lo() const { return lo_; }

  /// Returns nybble `i` (0 = most significant hex digit, 31 = least).
  constexpr std::uint8_t nybble(int i) const {
    V6_REQUIRE(i >= 0 && i < kNybbles);  // shift is UB outside [0, 31]
    if (i < 16) return static_cast<std::uint8_t>((hi_ >> ((15 - i) * 4)) & 0xF);
    return static_cast<std::uint8_t>((lo_ >> ((31 - i) * 4)) & 0xF);
  }

  /// Returns a copy with nybble `i` replaced by `value` (low 4 bits used).
  constexpr Ipv6Addr with_nybble(int i, std::uint8_t value) const {
    V6_REQUIRE(i >= 0 && i < kNybbles);
    const std::uint64_t v = value & 0xFULL;
    if (i < 16) {
      const int shift = (15 - i) * 4;
      return Ipv6Addr((hi_ & ~(0xFULL << shift)) | (v << shift), lo_);
    }
    const int shift = (31 - i) * 4;
    return Ipv6Addr(hi_, (lo_ & ~(0xFULL << shift)) | (v << shift));
  }

  /// Returns bit `i` (0 = most significant bit of the address).
  constexpr bool bit(int i) const {
    V6_REQUIRE(i >= 0 && i < kBits);  // shift is UB outside [0, 127]
    if (i < 64) return (hi_ >> (63 - i)) & 1ULL;
    return (lo_ >> (127 - i)) & 1ULL;
  }

  /// Returns a copy with the low `128 - len` bits cleared (the /len network).
  constexpr Ipv6Addr masked(int len) const {
    if (len <= 0) return Ipv6Addr();
    if (len >= 128) return *this;
    if (len <= 64) {
      const std::uint64_t mask =
          len == 64 ? ~0ULL : ~0ULL << (64 - len);
      return Ipv6Addr(hi_ & mask, 0);
    }
    const std::uint64_t mask = ~0ULL << (128 - len);
    return Ipv6Addr(hi_, lo_ & mask);
  }

  /// RFC 5952-style compressed textual form (lower-case, longest zero run
  /// compressed with `::`).
  std::string to_string() const;

  /// Fully expanded form: 32 hex digits in 8 colon-separated groups.
  std::string to_full_string() const;

  friend constexpr auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// FNV-1a style mixing hash suitable for unordered containers and for
/// deterministic address-derived pseudo-randomness in the simulator.
struct Ipv6AddrHash {
  std::size_t operator()(const Ipv6Addr& a) const noexcept {
    std::uint64_t x = a.hi() * 0x9E3779B97F4A7C15ULL;
    x ^= x >> 32;
    std::uint64_t y = (a.lo() + 0xD1B54A32D192ED03ULL) * 0xBF58476D1CE4E5B9ULL;
    y ^= y >> 29;
    std::uint64_t h = (x + y) * 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace v6::net

template <>
struct std::hash<v6::net::Ipv6Addr> {
  std::size_t operator()(const v6::net::Ipv6Addr& a) const noexcept {
    return v6::net::Ipv6AddrHash{}(a);
  }
};
