#include "net/prefix.h"

#include <charconv>
#include <stdexcept>

#include "check/contracts.h"

namespace v6::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv6Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int len = 0;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) {
    return std::nullopt;
  }
  if (len < 0 || len > 128) return std::nullopt;
  const Prefix prefix(*addr, len);
  V6_ENSURE(prefix.addr().masked(prefix.length()) == prefix.addr());
  return prefix;
}

Prefix Prefix::must_parse(std::string_view text) {
  auto p = parse(text);
  if (!p) throw std::invalid_argument("bad IPv6 prefix: " + std::string(text));
  return *p;
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace v6::net
