// IPv6 prefix (CIDR) value type.
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv6.h"

namespace v6::net {

/// An IPv6 network prefix, e.g. `2001:db8::/32`. The stored address is
/// always normalized (host bits cleared).
class Prefix {
 public:
  /// Constructs `::/0`.
  constexpr Prefix() = default;

  /// Constructs a prefix; host bits of `addr` are cleared. `len` is clamped
  /// to [0, 128].
  constexpr Prefix(Ipv6Addr addr, int len)
      : len_(len < 0 ? 0 : (len > 128 ? 128 : len)), addr_(addr.masked(len_)) {}

  /// Parses "addr/len" CIDR notation.
  static std::optional<Prefix> parse(std::string_view text);

  /// Parses, throwing std::invalid_argument on malformed input.
  static Prefix must_parse(std::string_view text);

  constexpr const Ipv6Addr& addr() const { return addr_; }
  constexpr int length() const { return len_; }

  /// True if `a` is inside this prefix.
  constexpr bool contains(const Ipv6Addr& a) const {
    return a.masked(len_) == addr_;
  }

  /// True if `other` is fully contained in this prefix (equal or longer).
  constexpr bool contains(const Prefix& other) const {
    return other.len_ >= len_ && other.addr_.masked(len_) == addr_;
  }

  /// Number of free (host) bits.
  constexpr int host_bits() const { return 128 - len_; }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  int len_ = 0;
  Ipv6Addr addr_;
};

struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept {
    return Ipv6AddrHash{}(p.addr()) ^
           (static_cast<std::size_t>(p.length()) * 0x9E3779B97F4A7C15ULL);
  }
};

}  // namespace v6::net
