// Binary longest-prefix-match trie mapping IPv6 prefixes to values.
//
// Used both as the routing table (prefix -> ASN) and as the alias-prefix
// lookup structure. Nodes are stored in a flat vector; child links are
// indices, which keeps the structure cache-friendly and trivially
// copyable/movable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv6.h"
#include "net/prefix.h"

namespace v6::net {

/// Longest-prefix-match trie. T must be copyable.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  /// Inserts (or overwrites) the value for `prefix`.
  void insert(const Prefix& prefix, T value) {
    std::uint32_t node = 0;
    for (int i = 0; i < prefix.length(); ++i) {
      const int b = prefix.addr().bit(i);
      std::uint32_t& child = nodes_[node].child[b];
      if (child == kNone) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      node = nodes_[node].child[b];
    }
    if (!nodes_[node].has_value) ++size_;
    nodes_[node].has_value = true;
    nodes_[node].value = std::move(value);
    nodes_[node].prefix_len = static_cast<std::int16_t>(prefix.length());
  }

  /// Longest-prefix match: returns the value of the most specific prefix
  /// containing `addr`, or nullptr if none.
  const T* longest_match(const Ipv6Addr& addr) const {
    const T* best = nullptr;
    std::uint32_t node = 0;
    if (nodes_[0].has_value) best = &nodes_[0].value;
    for (int i = 0; i < Ipv6Addr::kBits; ++i) {
      const std::uint32_t child = nodes_[node].child[addr.bit(i)];
      if (child == kNone) break;
      node = child;
      if (nodes_[node].has_value) best = &nodes_[node].value;
    }
    return best;
  }

  /// As longest_match, but also reports the matched prefix length.
  const T* longest_match(const Ipv6Addr& addr, int& matched_len) const {
    const T* best = nullptr;
    matched_len = -1;
    std::uint32_t node = 0;
    if (nodes_[0].has_value) {
      best = &nodes_[0].value;
      matched_len = 0;
    }
    for (int i = 0; i < Ipv6Addr::kBits; ++i) {
      const std::uint32_t child = nodes_[node].child[addr.bit(i)];
      if (child == kNone) break;
      node = child;
      if (nodes_[node].has_value) {
        best = &nodes_[node].value;
        matched_len = nodes_[node].prefix_len;
      }
    }
    return best;
  }

  /// Exact-prefix lookup.
  const T* find(const Prefix& prefix) const {
    std::uint32_t node = 0;
    for (int i = 0; i < prefix.length(); ++i) {
      const std::uint32_t child = nodes_[node].child[prefix.addr().bit(i)];
      if (child == kNone) return nullptr;
      node = child;
    }
    return nodes_[node].has_value ? &nodes_[node].value : nullptr;
  }

  /// True if any stored prefix contains `addr`.
  bool covers(const Ipv6Addr& addr) const { return longest_match(addr) != nullptr; }

  /// Number of stored prefixes.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every (prefix, value) pair in depth-first order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(0, Ipv6Addr(), 0, fn);
  }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFF;

  struct Node {
    std::uint32_t child[2] = {kNone, kNone};
    T value{};
    std::int16_t prefix_len = 0;
    bool has_value = false;
  };

  template <typename Fn>
  void visit(std::uint32_t node, Ipv6Addr addr, int depth, Fn&& fn) const {
    if (nodes_[node].has_value) fn(Prefix(addr, depth), nodes_[node].value);
    for (int b = 0; b < 2; ++b) {
      const std::uint32_t child = nodes_[node].child[b];
      if (child == kNone) continue;
      Ipv6Addr next = addr;
      if (b) {
        // Set bit `depth`.
        if (depth < 64) {
          next = Ipv6Addr(addr.hi() | (1ULL << (63 - depth)), addr.lo());
        } else {
          next = Ipv6Addr(addr.hi(), addr.lo() | (1ULL << (127 - depth)));
        }
      }
      visit(child, next, depth + 1, fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace v6::net
