// Deterministic random number utilities.
//
// Every stochastic component in the library takes an explicit seed; no
// global RNG state exists. SplitMix64 is used to derive independent
// sub-seeds so that component A consuming more randomness never perturbs
// component B.
#pragma once

#include <cstdint>
#include <random>

#include "net/ipv6.h"
#include "net/prefix.h"

namespace v6::net {

/// SplitMix64 step: maps a seed to a well-mixed 64-bit value. Useful for
/// deriving independent sub-seeds from (seed, index) pairs.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derives a sub-seed for component `tag` from a master seed.
constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t tag) {
  return splitmix64(master ^ splitmix64(tag));
}

namespace detail {

/// Inverts y = x ^ (x >> k). Each iteration recovers k more high bits;
/// ceil(64 / k) + 1 rounds reach the fixpoint for any k >= 1.
constexpr std::uint64_t unxorshift(std::uint64_t y, int k) {
  std::uint64_t x = y;
  for (int recovered = k; recovered < 64; recovered += k) x = y ^ (x >> k);
  return x;
}

/// Multiplicative inverse of an odd 64-bit constant mod 2^64 via Newton
/// iteration (x *= 2 - a*x doubles the number of correct low bits; a is
/// its own inverse mod 2^3, so five rounds exceed 64 bits).
constexpr std::uint64_t mul_inverse(std::uint64_t a) {
  std::uint64_t x = a;
  for (int i = 0; i < 5; ++i) x *= 2 - a * x;
  return x;
}

}  // namespace detail

/// Exact inverse of splitmix64 — every step of the finalizer (additive
/// constant, xorshift, odd multiply) is a bijection on 64 bits. The
/// procedural universe leans on this: host addresses are *derived* from
/// dense per-subnet indices, and the probe path recovers the index from
/// an arbitrary address in O(1) instead of consulting a stored table.
constexpr std::uint64_t splitmix64_inv(std::uint64_t z) {
  z = detail::unxorshift(z, 31);
  z *= detail::mul_inverse(0x94D049BB133111EBULL);
  z = detail::unxorshift(z, 27);
  z *= detail::mul_inverse(0xBF58476D1CE4E5B9ULL);
  z = detail::unxorshift(z, 30);
  return z - 0x9E3779B97F4A7C15ULL;
}

static_assert(splitmix64_inv(splitmix64(0)) == 0);
static_assert(splitmix64_inv(splitmix64(42)) == 42);
static_assert(splitmix64_inv(splitmix64(0xFFFFFFFFFFFFFFFFULL)) ==
              0xFFFFFFFFFFFFFFFFULL);
static_assert(splitmix64(splitmix64_inv(0xDEADBEEFCAFEF00DULL)) ==
              0xDEADBEEFCAFEF00DULL);

/// The RNG engine used across the library.
using Rng = std::mt19937_64;

/// Makes an engine from a master seed and a component tag.
inline Rng make_rng(std::uint64_t master, std::uint64_t tag = 0) {
  return Rng(derive_seed(master, tag));
}

/// A counter-based SplitMix64 URBG: draw k is splitmix64(seed + k).
/// Construction is two stores (no 624-word mt19937 table), which is what
/// the streaming scanner's stateless transport needs — it builds a fresh
/// engine per probe from a (seed, addr, attempt) hash so every reply is
/// a pure function of the probe, independent of ordering and sharding.
/// Statistically much weaker than mt19937_64 over long streams; only use
/// it where a handful of draws per seed is the pattern.
class SplitMixRng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMixRng(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() { return splitmix64(state_++); }

 private:
  std::uint64_t state_;
};

/// Uniform integer in [lo, hi] inclusive. Generic over the engine (same
/// contract as uniform01): instantiated with Rng it is byte-identical to
/// the historical Rng-only overload, so every legacy stream — and every
/// golden pinned to one — is untouched; instantiated with SplitMixRng it
/// powers the procedural universe's counter-keyed derivation streams.
template <typename Int, typename Urbg>
Int uniform_int(Urbg& rng, Int lo, Int hi) {
  return std::uniform_int_distribution<Int>(lo, hi)(rng);
}

/// Uniform double in [0, 1). Generic over the engine so the simulator's
/// reply model works identically from the sequential Rng stream and the
/// per-probe SplitMixRng engines.
template <typename Urbg>
double uniform01(Urbg& rng) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

/// Bernoulli draw (generic over the engine, like uniform01).
template <typename Urbg>
bool chance(Urbg& rng, double p) {
  return uniform01(rng) < p;
}

/// A uniformly random address inside `prefix` (host bits randomized).
template <typename Urbg>
Ipv6Addr random_in_prefix(Urbg& rng, const Prefix& prefix) {
  const std::uint64_t r_hi = rng();
  const std::uint64_t r_lo = rng();
  const int len = prefix.length();
  std::uint64_t hi = prefix.addr().hi();
  std::uint64_t lo = prefix.addr().lo();
  if (len < 64) {
    const std::uint64_t host_mask = len == 0 ? ~0ULL : ~0ULL >> len;
    hi |= r_hi & host_mask;
    lo = r_lo;
  } else if (len < 128) {
    const std::uint64_t host_mask = ~0ULL >> (len - 64);
    lo |= r_lo & host_mask;
  }
  return Ipv6Addr(hi, lo);
}

}  // namespace v6::net
