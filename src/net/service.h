// Probe types (ports/protocols) studied by the paper, and service bitmask
// helpers. This lives in the base library because both the simulated
// Internet (which answers probes) and the scanner (which sends them)
// depend on it.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace v6::net {

/// The four scan targets evaluated throughout the paper.
enum class ProbeType : std::uint8_t {
  kIcmp = 0,    // ICMPv6 Echo Request
  kTcp80 = 1,   // TCP SYN to port 80
  kTcp443 = 2,  // TCP SYN to port 443
  kUdp53 = 3,   // UDP DNS query to port 53
};

/// Number of probe types.
inline constexpr int kNumProbeTypes = 4;

/// All probe types, in the paper's reporting order.
inline constexpr std::array<ProbeType, 4> kAllProbeTypes = {
    ProbeType::kIcmp, ProbeType::kTcp80, ProbeType::kTcp443,
    ProbeType::kUdp53};

/// Human-readable label matching the paper's tables.
constexpr std::string_view to_string(ProbeType t) {
  switch (t) {
    case ProbeType::kIcmp: return "ICMP";
    case ProbeType::kTcp80: return "TCP80";
    case ProbeType::kTcp443: return "TCP443";
    case ProbeType::kUdp53: return "UDP53";
  }
  return "?";
}

/// Bitmask over probe types; bit i set means the host answers probe type i.
using ServiceMask = std::uint8_t;

constexpr ServiceMask service_bit(ProbeType t) {
  return static_cast<ServiceMask>(1u << static_cast<int>(t));
}

constexpr bool has_service(ServiceMask m, ProbeType t) {
  return (m & service_bit(t)) != 0;
}

inline constexpr ServiceMask kNoServices = 0;
inline constexpr ServiceMask kAllServices = 0xF;

/// Wire-level reply to a single probe packet. The scanner classifies these
/// into hit / no-hit following the paper's rules (§4.1): Destination
/// Unreachable and TCP RST are never hits.
enum class ProbeReply : std::uint8_t {
  kTimeout,          // no reply
  kEchoReply,        // ICMPv6 Echo Reply
  kSynAck,           // TCP SYN-ACK
  kRst,              // TCP RST (port closed); NOT a hit
  kUdpReply,         // UDP payload reply (DNS answer)
  kDestUnreachable,  // ICMPv6 Destination Unreachable; NOT a hit
};

constexpr std::string_view to_string(ProbeReply r) {
  switch (r) {
    case ProbeReply::kTimeout: return "timeout";
    case ProbeReply::kEchoReply: return "echo-reply";
    case ProbeReply::kSynAck: return "syn-ack";
    case ProbeReply::kRst: return "rst";
    case ProbeReply::kUdpReply: return "udp-reply";
    case ProbeReply::kDestUnreachable: return "dest-unreachable";
  }
  return "?";
}

/// The positive (hit) reply kind expected for a probe type.
constexpr ProbeReply positive_reply(ProbeType t) {
  switch (t) {
    case ProbeType::kIcmp: return ProbeReply::kEchoReply;
    case ProbeType::kTcp80:
    case ProbeType::kTcp443: return ProbeReply::kSynAck;
    case ProbeType::kUdp53: return ProbeReply::kUdpReply;
  }
  return ProbeReply::kTimeout;
}

/// True if `r` counts as a hit for probe type `t` under the paper's
/// classification rules.
constexpr bool is_hit(ProbeType t, ProbeReply r) {
  return r == positive_reply(t);
}

}  // namespace v6::net
