#include "obs/admin/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace v6::obs::admin {
namespace {

/// Accept-loop poll period: bounds how long stop() waits for the loop
/// to notice the stop flag. Wall-side only.
constexpr int kPollMillis = 100;

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
  return false;
}

/// Writes all of `body`, tolerating short writes. Best-effort: the
/// admin plane never fails the host process over a dropped scrape.
void write_all(int fd, const std::string& body) {
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

AdminServer::AdminServer(Options options) : options_(std::move(options)) {}

AdminServer::~AdminServer() { stop(); }

void AdminServer::handle(std::string path, Handler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

bool AdminServer::start(std::string* error) {
  if (listen_fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return set_error(error, "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    if (error != nullptr) {
      *error = "bad bind address '" + options_.bind_address + "'";
    }
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    set_error(error, "bind");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 8) != 0) {
    set_error(error, "listen");
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_release);
  accept_thread_.spawn([this] { serve_loop(); });
  return true;
}

void AdminServer::stop() {
  if (listen_fd_ < 0) return;
  stop_requested_.store(true, std::memory_order_release);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop flag
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    char buf[2048];
    const ssize_t n = ::read(conn, buf, sizeof(buf) - 1);
    if (n > 0) {
      buf[n] = '\0';
      write_all(conn, respond(std::string(buf)));
    }
    ::close(conn);
  }
}

std::string AdminServer::respond(const std::string& request) const {
  // Request line: METHOD SP path[?query] SP version. Anything that is
  // not a well-formed GET gets a terse 400/404/405 — this endpoint
  // serves scrapers and runbooks, not browsers.
  const std::size_t eol = request.find("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  std::string status = "400 Bad Request";
  std::string body = "bad request\n";
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    if (method != "GET") {
      status = "405 Method Not Allowed";
      body = "GET only\n";
    } else {
      status = "404 Not Found";
      body = "unknown path; try";
      for (const auto& [known, handler] : handlers_) {
        body += " " + known;
      }
      body += "\n";
      for (const auto& [known, handler] : handlers_) {
        if (known == path) {
          status = "200 OK";
          body = handler();
          break;
        }
      }
    }
  }
  std::string out = "HTTP/1.0 " + status + "\r\n";
  out += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace v6::obs::admin
