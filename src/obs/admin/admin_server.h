// AdminServer: a minimal self-contained HTTP/1.0 endpoint for live
// introspection scrapes (`sos serve --admin-port`).
//
// Scope is deliberately tiny: loopback-only by default, GET-only,
// Connection: close, one short-lived connection handled at a time on
// one accept thread (spawned through runtime::WorkerGroup). Handlers
// are `path -> body` closures registered before start(); the server
// snapshots whatever they render (typically obs::render_exposition over
// a Registry snapshot, or a FlightRecorder dump) at request time. That
// is all a Prometheus scraper or a `curl` in a runbook needs, and it
// keeps the dependency surface at POSIX sockets only.
//
// This directory is the one place in src/ allowed to touch raw sockets
// (v6lint `raw-socket` rule, docs/STATIC_ANALYSIS.md): every socket
// call lives in admin_server.cc, and this header is socket-free. The
// server never reads scan state directly — handlers observe snapshots —
// so the virtual-time determinism contract is untouched.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/worker_group.h"

namespace v6::obs::admin {

class AdminServer {
 public:
  struct Options {
    /// TCP port to bind; 0 asks the kernel for an ephemeral port (read
    /// it back from port() after start()).
    int port = 0;
    /// Bind address. Loopback by default: the admin plane is an
    /// operator tool, not a public API.
    std::string bind_address = "127.0.0.1";
  };

  /// Renders the response body for one GET. Must be safe to call from
  /// the accept thread while the instrumented process runs.
  using Handler = std::function<std::string()>;

  AdminServer() : AdminServer(Options{}) {}
  explicit AdminServer(Options options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers the handler for an exact path (e.g. "/metrics"). Call
  /// before start(); later registrations are not synchronized.
  void handle(std::string path, Handler handler);

  /// Binds, listens, and spawns the accept loop. Returns false with a
  /// description in `error` (optional) when the socket setup fails —
  /// e.g. the port is taken — in which case the server is inert and
  /// stop() is a no-op.
  bool start(std::string* error = nullptr);

  /// Stops the accept loop and closes the listening socket. Idempotent;
  /// the destructor calls it.
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  /// The actually-bound port (resolves port 0), or -1 before start().
  int port() const { return port_; }

 private:
  void serve_loop();
  std::string respond(const std::string& request) const;

  Options options_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_requested_{false};
  runtime::WorkerGroup accept_thread_;
};

}  // namespace v6::obs::admin
