#include "obs/chrome_trace.h"

#include <cstdio>
#include <map>
#include <ostream>
#include <string_view>
#include <utility>

#include "obs/sinks.h"

namespace v6::obs {

namespace {

constexpr int kScanPid = 1;
constexpr int kCountersPid = 2;

// Microsecond timestamps with sub-microsecond precision preserved.
void append_micros(std::string& out, double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  out += buf;
}

std::string_view top_segment(std::string_view path) {
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? path : path.substr(0, slash);
}

std::string_view last_segment(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(path), out_(&owned_) {}

ChromeTraceSink::~ChromeTraceSink() { close(); }

bool ChromeTraceSink::ok() const {
  return out_ != &owned_ || static_cast<bool>(owned_);
}

void ChromeTraceSink::emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  switch (event.kind) {
    case Event::Kind::kSpan:
    case Event::Kind::kProbe:
    case Event::Kind::kMessage:
    case Event::Kind::kSample:
      events_.push_back(event);
      break;
    default:
      break;  // registry totals stay in the JSONL trace
  }
}

void ChromeTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_->flush();
}

std::string ChromeTraceSink::render_locked() const {
  // Row (tid) per top-level span path segment, in first-appearance
  // order; probes and messages get fixed shared rows.
  std::map<std::string, int, std::less<>> tids;
  std::vector<std::string> row_names;
  auto tid_for = [&](std::string_view row) {
    const auto it = tids.find(row);
    if (it != tids.end()) return it->second;
    const int tid = static_cast<int>(tids.size()) + 1;
    tids.emplace(std::string(row), tid);
    row_names.emplace_back(row);
    return tid;
  };

  std::string body;
  bool first = true;
  auto begin_event = [&](const char* ph, int pid, int tid, double at) {
    if (!first) body += ",\n";
    first = false;
    body += "{\"ph\":\"";
    body += ph;
    body += "\",\"pid\":" + std::to_string(pid);
    body += ",\"tid\":" + std::to_string(tid);
    body += ",\"ts\":";
    append_micros(body, at);
  };

  for (const Event& event : events_) {
    switch (event.kind) {
      case Event::Kind::kSpan: {
        const int tid = tid_for(top_segment(event.path));
        begin_event("X", kScanPid, tid, event.at);
        body += ",\"dur\":";
        append_micros(body, event.seconds);
        body += ",\"name\":";
        append_quoted(body, last_segment(event.path));
        body += ",\"args\":{\"path\":";
        append_quoted(body, event.path);
        body += "}}";
        break;
      }
      case Event::Kind::kProbe: {
        begin_event("i", kScanPid, tid_for("probes"), event.at);
        body += ",\"s\":\"t\",\"name\":";
        append_quoted(body, event.path);
        body += ",\"args\":{\"outcome\":";
        append_quoted(body, event.detail);
        body += ",\"attempt\":" + std::to_string(event.value);
        body += "}}";
        break;
      }
      case Event::Kind::kMessage: {
        begin_event("i", kScanPid, tid_for("messages"), event.at);
        body += ",\"s\":\"t\",\"name\":";
        append_quoted(body, event.detail.empty() ? event.path : event.detail);
        body += "}";
        break;
      }
      case Event::Kind::kSample: {
        // Counter tracks live on their own pid so the virtual-time axis
        // does not interleave with wall-clock span rows.
        begin_event("C", kCountersPid, 0, event.at);
        body += ",\"name\":";
        append_quoted(body, event.path);
        body += ",\"args\":{\"value\":" + std::to_string(event.value);
        body += "}}";
        break;
      }
      default:
        break;
    }
  }

  // Name the rows so chrome://tracing shows "tga:6Tree" instead of a
  // bare tid number.
  for (const std::string& row : row_names) {
    if (!first) body += ",\n";
    first = false;
    body += "{\"ph\":\"M\",\"pid\":" + std::to_string(kScanPid);
    body += ",\"tid\":" + std::to_string(tids.find(row)->second);
    body += ",\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":";
    append_quoted(body, row);
    body += "}}";
  }

  return "{\"traceEvents\":[\n" + body + "\n]}\n";
}

void ChromeTraceSink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  *out_ << render_locked();
  out_->flush();
}

}  // namespace v6::obs
