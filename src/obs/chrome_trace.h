// ChromeTraceSink: exports the event stream as a Chrome Trace Event
// Format document ({"traceEvents":[...]}) loadable in chrome://tracing
// and Perfetto (`sos ... --trace-chrome out.json`).
//
// Mapping:
//   span    -> "X" (complete) event; ts/dur in microseconds; the event
//              name is the last path segment and args.path the full path.
//              Rows (tids) are assigned per top-level path segment in
//              first-appearance order — run_sweep replays per-run buffers
//              in slot order, so each "tga:<NAME>" run gets its own
//              deterministic row.
//   probe   -> "i" (instant) event on a shared "probes" row.
//   message -> "i" (instant) event on a shared "messages" row.
//   sample  -> "C" (counter) track named by the metric, ts = virtual
//              seconds (the deterministic time axis).
//   counter/gauge/timer/hist snapshots are end-of-run totals and are not
//   exported; the JSONL trace carries those.
//
// The document is written once, when close() is called (or on
// destruction). Events emitted after close() are dropped.
#pragma once

#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event.h"

namespace v6::obs {

class ChromeTraceSink final : public EventSink {
 public:
  /// Writes to a borrowed stream (kept alive by the caller).
  explicit ChromeTraceSink(std::ostream& out);
  /// Opens (truncates) `path`; ok() reports whether the open succeeded.
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  bool ok() const;
  void emit(const Event& event) override;
  void flush() override;

  /// Serializes the buffered events and writes the complete JSON
  /// document. Idempotent; implied by destruction.
  void close();

 private:
  std::string render_locked() const;

  std::ofstream owned_;
  std::ostream* out_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  bool closed_ = false;
};

}  // namespace v6::obs
