// Atomic metric primitives: monotonic counters, signed gauges, and
// duration accumulators. All operations are lock-free relaxed atomics —
// instrumented hot paths (one counter add per probe packet) pay a few
// nanoseconds, and nothing here allocates.
//
// Instances live inside an obs::Registry (stable addresses, so callers
// resolve a metric once and keep the pointer); see obs/registry.h for
// naming and snapshot semantics.
#pragma once

#include <atomic>
#include <cstdint>

namespace v6::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written signed level (queue depths, configured budgets, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Accumulated durations of one named span: invocation count plus total
/// time. Durations are kept in integer nanoseconds so concurrent adds
/// stay exact.
class TimerStat {
 public:
  void record_seconds(double seconds) {
    if (seconds < 0) seconds = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
  }

  /// Merge helper: folds another TimerStat's raw totals into this one.
  void add_raw(std::uint64_t count, std::uint64_t nanos) {
    count_.fetch_add(count, std::memory_order_relaxed);
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t nanos() const {
    return nanos_.load(std::memory_order_relaxed);
  }
  double seconds() const { return static_cast<double>(nanos()) * 1e-9; }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> nanos_{0};
};

}  // namespace v6::obs
