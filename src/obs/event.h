// Trace events and the sink interface they flow into.
//
// Spans, per-probe traces, and metric snapshots all funnel through one
// small Event struct so sinks stay trivial: a JSON-lines file sink for
// offline analysis and an in-memory sink used both by tests and by the
// runner's deterministic per-run buffering (obs/sinks.h).
#pragma once

#include <cstdint>
#include <string>

namespace v6::obs {

struct Event {
  enum class Kind : std::uint8_t {
    kSpan,     // a closed span: path + start offset + duration
    kCounter,  // counter snapshot: path + value
    kGauge,    // gauge snapshot: path + signed value (in `value`)
    kProbe,    // one probe packet: path = target address, detail = outcome
    kMessage,  // free-form annotation
    kSample,   // time-series point: path + virtual time (`at`) + value
    kHist,     // histogram snapshot: path + encoded totals in `detail`
    kTimer,    // timer snapshot: path + count (`value`) + total seconds
  };

  Kind kind = Kind::kMessage;
  /// Span path ("tga:6Tree/pipeline.scan"), metric name, probe target,
  /// or empty for messages.
  std::string path;
  /// Free-form qualifier: probe "ICMP->echo-reply", message text.
  std::string detail;
  /// Seconds since the owning Telemetry's epoch (span start / emit time).
  double at = 0.0;
  /// Span duration in seconds.
  double seconds = 0.0;
  /// Counter/gauge value (gauges are stored two's-complement) or probe
  /// attempt ordinal.
  std::uint64_t value = 0;
};

/// Receives events. Implementations must be safe to call from several
/// threads concurrently — instrumented code emits from wherever it runs.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
  virtual void flush() {}
};

}  // namespace v6::obs
