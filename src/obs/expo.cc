#include "obs/expo.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/quantiles.h"

namespace v6::obs {
namespace {

/// Exposition metric-name grammar is [a-zA-Z_:][a-zA-Z0-9_:]*; the
/// registry's dotted lower-case names map in by replacing everything
/// else (dots, '<', '>') with '_'. The "sos_" prefix namespaces the
/// whole process and guarantees a legal leading character.
std::string sanitize(std::string_view dotted) {
  std::string out = "sos_";
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// HELP text carries the dotted registry name; the only characters the
/// format escapes in HELP are backslash and newline, and registry names
/// never contain either (metric-name lint rule), so this is verbatim.
void family_header(std::string& out, const std::string& name,
                   std::string_view dotted, std::string_view type) {
  out += "# HELP " + name + " sos metric ";
  out += dotted;
  out += "\n# TYPE " + name + " ";
  out += type;
  out += "\n";
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

/// One fixed double format for every non-integer sample. %.9g keeps
/// nanosecond resolution for seconds-scale values and renders
/// identically across platforms for the ranges we emit.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string render_exposition(const Report& report) {
  std::string out;
  out.reserve(4096);
  for (const auto& [dotted, value] : report.counters) {
    const std::string name = sanitize(dotted);
    family_header(out, name, dotted, "counter");
    out += name + " ";
    append_uint(out, value);
    out += "\n";
  }
  for (const auto& [dotted, value] : report.gauges) {
    const std::string name = sanitize(dotted);
    family_header(out, name, dotted, "gauge");
    out += name + " ";
    append_int(out, value);
    out += "\n";
  }
  for (const auto& [dotted, total] : report.timers) {
    const std::string name = sanitize(dotted);
    family_header(out, name, dotted, "summary");
    out += name + "_count ";
    append_uint(out, total.count);
    out += "\n" + name + "_sum ";
    append_double(out, total.seconds());
    out += "\n";
  }
  for (const auto& [dotted, total] : report.histograms) {
    const std::string name = sanitize(dotted);
    family_header(out, name, dotted, "summary");
    const QuantileSummary s = summarize(total);
    const struct {
      const char* q;
      double v;
    } rows[] = {{"0.5", s.p50}, {"0.9", s.p90}, {"0.99", s.p99}, {"1", s.max}};
    for (const auto& row : rows) {
      out += name + "{quantile=\"";
      out += row.q;
      out += "\"} ";
      append_double(out, row.v);
      out += "\n";
    }
    out += name + "_count ";
    append_uint(out, s.count);
    out += "\n" + name + "_sum ";
    append_double(out, total.sum());
    out += "\n";
  }
  return out;
}

namespace {

bool name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  if (first) return alpha || c == '_' || c == ':';
  return alpha || (c >= '0' && c <= '9') || c == '_' || c == ':';
}

bool fail(std::string* error, std::size_t line_no, std::string_view what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + std::string(what);
  }
  return false;
}

}  // namespace

bool parse_exposition(std::string_view text, ExpoDoc* out,
                      std::string* error) {
  out->families.clear();
  out->samples.clear();
  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::string pending_help_name;
  std::string pending_help_text;
  while (pos < text.size()) {
    ++line_no;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; other comments skipped.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_help = line[2] == 'H';
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos || sp == 0) {
          return fail(error, line_no, "malformed comment line");
        }
        std::string_view name = rest.substr(0, sp);
        std::string_view tail = rest.substr(sp + 1);
        for (std::size_t i = 0; i < name.size(); ++i) {
          if (!name_char(name[i], i == 0)) {
            return fail(error, line_no, "bad metric name in comment");
          }
        }
        if (is_help) {
          // Our renderer writes "sos metric <dotted>"; keep only the
          // dotted original when that prefix is present.
          pending_help_name = std::string(name);
          constexpr std::string_view kPrefix = "sos metric ";
          pending_help_text = std::string(
              tail.rfind(kPrefix, 0) == 0 ? tail.substr(kPrefix.size())
                                          : tail);
        } else {
          if (tail != "counter" && tail != "gauge" && tail != "summary" &&
              tail != "histogram" && tail != "untyped") {
            return fail(error, line_no, "unknown family type");
          }
          ExpoFamily family;
          family.name = std::string(name);
          family.type = std::string(tail);
          if (pending_help_name == family.name) {
            family.help = pending_help_text;
          }
          out->families.push_back(std::move(family));
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t i = 0;
    while (i < line.size() && name_char(line[i], i == 0)) ++i;
    if (i == 0) return fail(error, line_no, "sample does not start with a name");
    ExpoSample sample;
    sample.name = std::string(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        return fail(error, line_no, "unterminated label set");
      }
      sample.labels = std::string(line.substr(i + 1, close - i - 1));
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(error, line_no, "expected space before sample value");
    }
    ++i;
    const std::string value_text(line.substr(i));
    char* end = nullptr;
    sample.value = std::strtod(value_text.c_str(), &end);
    if (value_text.empty() || end == nullptr || *end != '\0') {
      return fail(error, line_no, "unparseable sample value");
    }
    out->samples.push_back(std::move(sample));
  }
  return true;
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace v6::obs
