// Prometheus-style text exposition of a Registry snapshot, plus the
// atomic status-file writer behind `sos serve --status-file` — the
// socketless half of the live introspection plane (docs/OBSERVABILITY.md
// "Live introspection"). The socket half lives in obs/admin/.
//
// render_exposition() maps a point-in-time obs::Report onto the
// Prometheus text format, version 0.0.4:
//
//   counters  -> `# TYPE sos_<name> counter` + one sample
//   gauges    -> `# TYPE sos_<name> gauge` + one sample
//   timers    -> `# TYPE sos_<name> summary` + `_count` / `_sum` samples
//   histograms-> `# TYPE sos_<name> summary` + {quantile="0.5|0.9|0.99|1"}
//                samples (from obs::summarize) + `_count` / `_sum`
//
// Metric names keep the registry's dotted spelling in a `# HELP` line
// and are sanitized for the exposition name grammar by mapping every
// character outside [A-Za-z0-9_:] to '_' (distinct dotted names can in
// principle collide after sanitization; the dotted original in HELP
// disambiguates). Families render in Report iteration order — std::map,
// so sorted by name within each kind — and every number is printed
// through one fixed format, which makes the whole document byte-stable
// for a given Report (pinned by tests/golden/golden_expo.txt).
//
// parse_exposition() is the deliberately independent consumer half
// (same pattern as obs/trace_reader.h): it validates the line grammar
// and returns the samples, so tests and `sos expo-check` can round-trip
// a scrape without a Prometheus server in the loop.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace v6::obs {

/// Renders `report` as one complete exposition document (text format
/// 0.0.4, trailing newline included). Byte-stable: equal Reports render
/// to equal bytes.
std::string render_exposition(const Report& report);

/// One `name{labels} value` sample line, decoded.
struct ExpoSample {
  std::string name;    // sanitized family name, e.g. "sos_scanner_probed"
  std::string labels;  // raw text between braces, "" when absent
  double value = 0.0;
};

/// One metric family: the `# TYPE` declaration plus its samples.
struct ExpoFamily {
  std::string name;
  std::string type;  // "counter" | "gauge" | "summary" | "untyped"
  std::string help;  // dotted registry name from the HELP line
};

/// A parsed exposition document.
struct ExpoDoc {
  std::vector<ExpoFamily> families;
  std::vector<ExpoSample> samples;
};

/// Parses an exposition document produced by render_exposition (or any
/// conforming text-format document). Returns false on the first
/// malformed line; `error` (optional) then describes it with a 1-based
/// line number. On success `out` holds every family and sample in
/// document order.
bool parse_exposition(std::string_view text, ExpoDoc* out,
                      std::string* error = nullptr);

/// Writes `content` to `path` atomically: the bytes land in
/// `<path>.tmp` first and are renamed into place, so a concurrent
/// reader sees either the old document or the new one, never a torn
/// write. Returns false (and removes the temp file) on any I/O error.
bool write_file_atomic(const std::string& path, std::string_view content);

}  // namespace v6::obs
