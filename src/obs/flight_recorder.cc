#include "obs/flight_recorder.h"

#include <ostream>
#include <thread>

#include "obs/sinks.h"

namespace v6::obs {
namespace {

/// Process-wide thread ordinal: each thread gets a stable small integer
/// on first use, striping threads across lanes without any per-recorder
/// registration step. Which lane a thread lands on is wall-side state
/// and never observable in deterministic output.
std::size_t this_thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

FlightRecorder::FlightRecorder(Options options)
    : lane_capacity_(options.lane_capacity == 0 ? 1 : options.lane_capacity) {
  const std::size_t lanes = options.lanes == 0 ? 1 : options.lanes;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->ring.resize(lane_capacity_);
    lanes_.push_back(std::move(lane));
  }
}

FlightRecorder::Lane& FlightRecorder::lane_for_this_thread() {
  return *lanes_[this_thread_ordinal() % lanes_.size()];
}

void FlightRecorder::emit(const Event& event) {
  if (frozen_.load(std::memory_order_seq_cst)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Lane& lane = lane_for_this_thread();
  if (lane.in_write.exchange(true, std::memory_order_seq_cst)) {
    // Another thread striped onto this lane is mid-write; dropping is
    // the wait-free choice.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Re-check after publishing in_write: freeze() either sees our flag
  // and waits for us, or we see its frozen store and back out.
  if (frozen_.load(std::memory_order_seq_cst)) {
    lane.in_write.store(false, std::memory_order_seq_cst);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t seq = lane.seq.load(std::memory_order_relaxed);
  lane.ring[seq % lane_capacity_] = event;
  lane.seq.store(seq + 1, std::memory_order_relaxed);
  lane.in_write.store(false, std::memory_order_seq_cst);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::freeze() {
  frozen_.store(true, std::memory_order_seq_cst);
  for (const auto& lane : lanes_) {
    while (lane->in_write.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
  }
}

void FlightRecorder::thaw() { frozen_.store(false, std::memory_order_seq_cst); }

std::vector<Event> FlightRecorder::snapshot() {
  freeze();
  std::vector<Event> out;
  for (const auto& lane : lanes_) {
    const std::uint64_t seq = lane->seq.load(std::memory_order_relaxed);
    const std::uint64_t kept =
        seq < lane_capacity_ ? seq : static_cast<std::uint64_t>(lane_capacity_);
    for (std::uint64_t i = 0; i < kept; ++i) {
      out.push_back(lane->ring[(seq - kept + i) % lane_capacity_]);
    }
  }
  return out;
}

void FlightRecorder::dump_jsonl(std::ostream& out) {
  for (const Event& event : snapshot()) {
    out << JsonLinesSink::to_json(event) << '\n';
  }
  out.flush();
}

}  // namespace v6::obs
