// FlightRecorder: a fixed-size ring of the most recent obs events, kept
// per worker lane so a long-running scan can be post-mortemed without
// ever paying for a full trace file.
//
// The recorder is an EventSink, so it tees behind the normal sinks
// (obs/sinks.h) and sees exactly the events a JSONL trace would. Each
// recording thread maps onto one of a fixed set of lanes (a process-wide
// thread ordinal modulo the lane count); each lane is a single-writer
// ring of Events guarded by one atomic flag. record() is wait-free: a
// writer that finds its lane busy (two threads hashed onto it
// simultaneously) or the recorder frozen drops the event and bumps a
// drop counter instead of blocking — the recorder must never add a
// blocking edge to the pipeline it observes.
//
// dump() freezes the recorder (new events are dropped from then on),
// waits for in-flight writers to drain, and walks the lanes oldest→
// newest. The dump is JSONL in JsonLinesSink::to_json's exact encoding,
// so `sos report` and obs::load_trace parse a crash dump like any trace
// file (docs/OBSERVABILITY.md "Live introspection"). Dumps fire on
// watchdog trip, SIGTERM, or an explicit /flight scrape.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/event.h"

namespace v6::obs {

class FlightRecorder final : public EventSink {
 public:
  struct Options {
    /// Independent single-writer rings; threads are striped across them.
    /// More lanes = less cross-thread drop contention, more memory.
    std::size_t lanes = 4;
    /// Events retained per lane (oldest overwritten first).
    std::size_t lane_capacity = 256;
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options options);

  /// Wait-free. Copies `event` into the calling thread's lane, or drops
  /// it (counted) when the lane is busy or the recorder is frozen.
  void emit(const Event& event) override;

  /// Stops recording: every subsequent emit() drops. Returns once no
  /// writer is mid-slot, so the rings are safe to read. Idempotent.
  void freeze();
  /// Re-opens a frozen recorder (rings keep their contents).
  void thaw();
  bool frozen() const { return frozen_.load(std::memory_order_seq_cst); }

  /// Freezes, then returns the retained events: lanes in index order,
  /// each lane oldest→newest. The recorder stays frozen; call thaw() to
  /// resume recording.
  std::vector<Event> snapshot();

  /// snapshot() rendered as JSONL (JsonLinesSink::to_json per event,
  /// one per line) — the format obs::load_trace and `sos report`
  /// consume. Leaves the recorder frozen, like snapshot().
  void dump_jsonl(std::ostream& out);

  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t lanes() const { return lanes_.size(); }
  std::size_t lane_capacity() const { return lane_capacity_; }

 private:
  struct Lane {
    /// Single-writer flag: seq_cst exchange is the try-acquire, paired
    /// with freeze()'s seq_cst store/load handshake (Dekker pattern:
    /// writer publishes in_write then re-checks frozen; freeze publishes
    /// frozen then waits on in_write).
    std::atomic<bool> in_write{false};
    /// Total events ever written to this lane; slot = seq % capacity.
    std::atomic<std::uint64_t> seq{0};
    std::vector<Event> ring;
  };

  Lane& lane_for_this_thread();

  std::size_t lane_capacity_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> frozen_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace v6::obs
