#include "obs/histogram.h"

#include <charconv>
#include <string_view>

namespace v6::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

// Parses an unsigned integer prefixed by `key` ("c=", "b=", ...) at the
// cursor, advancing past it. Strict: missing key or digits fails.
bool take_u64(std::string_view& s, std::string_view key, std::uint64_t* out) {
  if (s.substr(0, key.size()) != key) return false;
  s.remove_prefix(key.size());
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out);
  if (res.ec != std::errc{} || res.ptr == s.data()) return false;
  s.remove_prefix(static_cast<std::size_t>(res.ptr - s.data()));
  return true;
}

bool take_sep(std::string_view& s, char sep) {
  if (s.empty() || s.front() != sep) return false;
  s.remove_prefix(1);
  return true;
}

}  // namespace

std::string encode_histogram(const HistogramTotal& total) {
  std::string out;
  out.reserve(48 + 12 * total.buckets.size());
  out += "c=";
  append_u64(out, total.count);
  out += ";z=";
  append_u64(out, total.zeros);
  out += ";s=";
  append_u64(out, total.sum_units);
  out += ";lo=";
  append_u64(out, total.min_units);
  out += ";hi=";
  append_u64(out, total.max_units);
  out += ";b=";
  bool first = true;
  for (const auto& [index, tally] : total.buckets) {
    if (!first) out += ',';
    first = false;
    append_u64(out, static_cast<std::uint64_t>(index));
    out += ':';
    append_u64(out, tally);
  }
  return out;
}

bool parse_histogram(std::string_view detail, HistogramTotal* out) {
  HistogramTotal t;
  t.min_units = 0;  // parsed explicitly below
  std::string_view s = detail;
  if (!take_u64(s, "c=", &t.count)) return false;
  if (!take_sep(s, ';') || !take_u64(s, "z=", &t.zeros)) return false;
  if (!take_sep(s, ';') || !take_u64(s, "s=", &t.sum_units)) return false;
  if (!take_sep(s, ';') || !take_u64(s, "lo=", &t.min_units)) return false;
  if (!take_sep(s, ';') || !take_u64(s, "hi=", &t.max_units)) return false;
  if (!take_sep(s, ';') || s.substr(0, 2) != "b=") return false;
  s.remove_prefix(2);
  while (!s.empty()) {
    std::uint64_t index = 0;
    std::uint64_t tally = 0;
    if (!take_u64(s, "", &index)) return false;
    if (!take_sep(s, ':') || !take_u64(s, "", &tally)) return false;
    if (index >= static_cast<std::uint64_t>(Histogram::kNumBuckets)) {
      return false;
    }
    t.buckets[static_cast<int>(index)] += tally;
    if (!s.empty() && !take_sep(s, ',')) return false;
  }
  *out = t;
  return true;
}

}  // namespace v6::obs
