// Histogram: a lock-free log-bucketed distribution metric.
//
// Values land in log-linear buckets (HdrHistogram-style): each power-of-
// two octave is split into kSubBuckets linear sub-buckets, so the
// relative bucket width — and therefore the worst-case quantile
// estimation error — is bounded by 1/kSubBuckets (12.5%) across the
// whole range. record() is a handful of relaxed atomic adds (plus two
// CAS loops for min/max), so instrumented hot paths pay nanoseconds and
// nothing allocates.
//
// Determinism contract (docs/OBSERVABILITY.md): histograms fed from the
// simulated wire clock (virtual-time RTTs, batch target counts) hold
// integer tallies and fixed-point 1e-9-unit sums, so their snapshots are
// bit-identical across jobs counts and repeated runs. Histograms fed
// from steady_clock carry the `.wall` name suffix and are exempt.
//
// Instances live inside an obs::Registry (stable addresses); snapshots
// travel as the plain-data HistogramTotal inside a Report.
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>

namespace v6::obs {

class Histogram;

/// Plain-data snapshot of one Histogram inside a Report. All fields are
/// integers (durations in 1e-9 "units"), so equality is bit-exact and
/// merging is pure addition — the properties the jobs-invariance
/// contract needs.
struct HistogramTotal {
  std::uint64_t count = 0;       // total recorded values
  std::uint64_t zeros = 0;       // values <= 0 (kept out of the log buckets)
  std::uint64_t sum_units = 0;   // sum of values, in 1e-9 units
  std::uint64_t min_units = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_units = 0;
  /// Sparse bucket index -> tally. std::map keeps iteration (and
  /// serialization) order deterministic.
  std::map<int, std::uint64_t> buckets;

  bool operator==(const HistogramTotal&) const = default;

  double sum() const { return static_cast<double>(sum_units) * 1e-9; }
  double min() const { return count == 0 ? 0.0 : static_cast<double>(min_units) * 1e-9; }
  double max() const { return static_cast<double>(max_units) * 1e-9; }
  double mean() const {
    return count == 0 ? 0.0 : sum() / static_cast<double>(count);
  }

  void merge_from(const HistogramTotal& other) {
    count += other.count;
    zeros += other.zeros;
    sum_units += other.sum_units;
    if (other.min_units < min_units) min_units = other.min_units;
    if (other.max_units > max_units) max_units = other.max_units;
    for (const auto& [index, tally] : other.buckets) buckets[index] += tally;
  }

  /// Quantile estimate: the upper bound of the bucket holding the value
  /// of rank ceil(q * count), clamped to the exact tracked max (so
  /// quantile(1.0) is exact). Error is bounded by the bucket's relative
  /// width. Returns 0 for an empty histogram.
  double quantile(double q) const;
};

/// Lock-free distribution metric. See file comment for the bucketing
/// scheme; see TimerStat for the add_raw-style merge model it follows.
class Histogram {
 public:
  /// Sub-buckets per power-of-two octave; bounds quantile error at
  /// 1/kSubBuckets relative.
  static constexpr int kSubBuckets = 8;
  /// Smallest/largest representable octave: 2^-31 (~4.7e-10) up to 2^33
  /// (~8.6e9). Out-of-range values clamp into the edge octaves — wide
  /// enough for nanosecond RTTs through multi-billion target counts.
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 33;
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent + 1) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index for a value > 0 (clamped into range). This is frexp
  /// done with IEEE-754 bit extraction — the exponent field is the
  /// octave, the top log2(kSubBuckets) mantissa bits are the linear
  /// sub-bucket (frexp gives v = m * 2^e with m in [0.5, 1), and
  /// (2m - 1) * kSubBuckets is exactly those mantissa bits). Bit-for-bit
  /// the same index as the frexp form for every positive double:
  /// denormals have a zero exponent field and clamp to bucket 0, inf
  /// clamps to the last bucket. One per-packet call on the instrumented
  /// scan hot path, so no libm call allowed here.
  static int bucket_index(double v) {
    static_assert(kSubBuckets == 8, "sub-bucket mask below assumes 8");
    const auto bits = std::bit_cast<std::uint64_t>(v);
    const int exp = static_cast<int>(bits >> 52) - 1022;
    if (exp < kMinExponent) return 0;
    if (exp > kMaxExponent) return kNumBuckets - 1;
    const int sub = static_cast<int>((bits >> 49) & (kSubBuckets - 1));
    return (exp - kMinExponent) * kSubBuckets + sub;
  }

  /// Inclusive lower / exclusive upper value bound of bucket `index`.
  static double bucket_lower(int index) {
    const int exp = index / kSubBuckets + kMinExponent;
    const int sub = index % kSubBuckets;
    return std::ldexp(0.5 * (1.0 + static_cast<double>(sub) / kSubBuckets),
                      exp);
  }
  static double bucket_upper(int index) {
    const int exp = index / kSubBuckets + kMinExponent;
    const int sub = index % kSubBuckets;
    return std::ldexp(
        0.5 * (1.0 + static_cast<double>(sub + 1) / kSubBuckets), exp);
  }

  /// Fixed-point conversion used for sum/min/max: 1e-9 units, clamped to
  /// [0, uint64 max]. Values <= 0 map to 0.
  static std::uint64_t to_units(double v) {
    if (!(v > 0)) return 0;
    const double scaled = v * 1e9;
    if (scaled >= 1.8e19) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(std::llround(scaled));
  }

  void record(double v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t units = to_units(v);
    sum_units_.fetch_add(units, std::memory_order_relaxed);
    fetch_min(min_units_, units);
    fetch_max(max_units_, units);
    if (v > 0) {
      buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    } else {
      zeros_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Merge helper: folds a snapshot's raw totals into this histogram
  /// (the Registry::merge_from path, mirroring TimerStat::add_raw).
  void add_raw(const HistogramTotal& total) {
    if (total.count == 0) return;
    count_.fetch_add(total.count, std::memory_order_relaxed);
    zeros_.fetch_add(total.zeros, std::memory_order_relaxed);
    sum_units_.fetch_add(total.sum_units, std::memory_order_relaxed);
    fetch_min(min_units_, total.min_units);
    fetch_max(max_units_, total.max_units);
    for (const auto& [index, tally] : total.buckets) {
      if (index >= 0 && index < kNumBuckets) {
        buckets_[index].fetch_add(tally, std::memory_order_relaxed);
      }
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  HistogramTotal total() const {
    HistogramTotal t;
    t.count = count_.load(std::memory_order_relaxed);
    t.zeros = zeros_.load(std::memory_order_relaxed);
    t.sum_units = sum_units_.load(std::memory_order_relaxed);
    t.min_units = min_units_.load(std::memory_order_relaxed);
    t.max_units = max_units_.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumBuckets; ++i) {
      const std::uint64_t tally = buckets_[i].load(std::memory_order_relaxed);
      if (tally != 0) t.buckets.emplace(i, tally);
    }
    return t;
  }

 private:
  static void fetch_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void fetch_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> zeros_{0};
  std::atomic<std::uint64_t> sum_units_{0};
  std::atomic<std::uint64_t> min_units_{
      std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_units_{0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

inline double HistogramTotal::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q >= 1.0) return max();
  if (q < 0.0) q = 0.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  std::uint64_t cumulative = zeros;
  if (rank <= cumulative) return 0.0;
  for (const auto& [index, tally] : buckets) {
    cumulative += tally;
    if (rank <= cumulative) {
      const double upper = Histogram::bucket_upper(index);
      const double exact_max = max();
      return upper < exact_max ? upper : exact_max;
    }
  }
  return max();
}

/// Compact integer serialization of a HistogramTotal, carried in the
/// `detail` field of `ev:"hist"` trace events:
///   c=<count>;z=<zeros>;s=<sum_units>;lo=<min_units>;hi=<max_units>;
///   b=<index>:<tally>,<index>:<tally>,...
/// Every field is an integer, so the encoding round-trips bit-exactly
/// (encode_histogram / parse_histogram are inverses — fuzz-checked).
std::string encode_histogram(const HistogramTotal& total);
bool parse_histogram(std::string_view detail, HistogramTotal* out);

}  // namespace v6::obs
