// Optional invariant checking for the observability layer.
//
// Compiled out by default: obs sits on scan hot paths, so its internal
// sanity checks (span stack discipline, metric name validity, merge
// preconditions) only exist when the build opts in with the
// V6_OBS_ASSERTS CMake option (on by default under the tsan preset,
// where the concurrency suite exercises the registry and sinks from
// many threads).
#pragma once

#if defined(V6_OBS_ASSERTS)

#include <cstdio>
#include <cstdlib>

#define V6_OBS_ASSERT(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "obs invariant violated at %s:%d: %s\n",     \
                   __FILE__, __LINE__, msg);                            \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#else

#define V6_OBS_ASSERT(cond, msg) ((void)0)

#endif
