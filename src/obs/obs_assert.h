// Optional invariant checking for the observability layer.
//
// Compiled out by default: obs sits on scan hot paths, so its internal
// sanity checks (span stack discipline, metric name validity, merge
// preconditions) only exist when the build opts in. Two opt-ins arm it:
//
//   V6_OBS_ASSERTS — the original obs-only switch (CMake option of the
//     same name, on under the tsan preset).
//   V6_CONTRACTS   — the repo-wide contracts layer (src/check); when it
//     is armed, V6_OBS_ASSERT is just an invariant check spelled through
//     check/contracts.h so every enforced condition reports uniformly.
#pragma once

#include "check/contracts.h"

#if defined(V6_CONTRACTS)

#define V6_OBS_ASSERT(cond, msg) V6_INVARIANT_MSG(cond, msg)

#elif defined(V6_OBS_ASSERTS)

#include <cstdio>
#include <cstdlib>

#define V6_OBS_ASSERT(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "obs invariant violated at %s:%d: %s\n",     \
                   __FILE__, __LINE__, msg);                            \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#else

#define V6_OBS_ASSERT(cond, msg) ((void)0)

#endif
