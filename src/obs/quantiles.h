// Quantile summaries of HistogramTotals, plus the stable JSON rendering
// shared by `sos report --json`, `sos --stats`, and the bench harness
// (bench_common.h embeds a "quantiles" block per run in BENCH_*.json).
//
// Schema (stable; consumers parse it):
//   {"<metric>":{"count":N,"mean":M,"p50":A,"p90":B,"p99":C,"max":D},...}
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "obs/histogram.h"
#include "obs/sinks.h"

namespace v6::obs {

struct QuantileSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

inline QuantileSummary summarize(const HistogramTotal& total) {
  QuantileSummary s;
  s.count = total.count;
  s.mean = total.mean();
  s.p50 = total.quantile(0.50);
  s.p90 = total.quantile(0.90);
  s.p99 = total.quantile(0.99);
  s.max = total.max();
  return s;
}

/// %.6g keeps the rendering compact and platform-stable for the value
/// ranges we emit (seconds, counts).
inline void append_json_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

inline void append_quantile_summary_json(std::string& out,
                                         const QuantileSummary& s) {
  out += "{\"count\":" + std::to_string(s.count);
  out += ",\"mean\":";
  append_json_double(out, s.mean);
  out += ",\"p50\":";
  append_json_double(out, s.p50);
  out += ",\"p90\":";
  append_json_double(out, s.p90);
  out += ",\"p99\":";
  append_json_double(out, s.p99);
  out += ",\"max\":";
  append_json_double(out, s.max);
  out += "}";
}

/// Renders every histogram in `histograms` as one JSON object (sorted
/// map order — deterministic).
inline std::string quantiles_json(
    const std::map<std::string, HistogramTotal>& histograms) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, total] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":";
    append_quantile_summary_json(out, summarize(total));
  }
  out += "}";
  return out;
}

}  // namespace v6::obs
