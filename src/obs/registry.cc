#include "obs/registry.h"

#include "obs/obs_assert.h"

namespace v6::obs {

void Report::merge_from(const Report& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, total] : other.timers) {
    TimerTotal& mine = timers[name];
    mine.count += total.count;
    mine.nanos += total.nanos;
  }
  for (const auto& [name, total] : other.histograms) {
    histograms[name].merge_from(total);
  }
}

double Report::timer_seconds(std::string_view name) const {
  const auto it = timers.find(std::string(name));
  return it == timers.end() ? 0.0 : it->second.seconds();
}

std::uint64_t Report::counter_value(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

template <typename T>
T& Registry::lookup(Table<T>& table, std::string_view name) {
  V6_OBS_ASSERT(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = table.find(name);
  if (it != table.end()) return *it->second;
  const auto inserted = table.emplace(std::string(name), std::make_unique<T>());
  return *inserted.first->second;
}

Counter& Registry::counter(std::string_view name) {
  return lookup(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) { return lookup(gauges_, name); }

TimerStat& Registry::timer(std::string_view name) {
  return lookup(timers_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return lookup(histograms_, name);
}

Report Registry::snapshot() const {
  Report report;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    report.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    report.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, timer] : timers_) {
    report.timers.emplace(name, TimerTotal{timer->count(), timer->nanos()});
  }
  for (const auto& [name, histogram] : histograms_) {
    report.histograms.emplace(name, histogram->total());
  }
  return report;
}

void Registry::merge_from(const Registry& other) {
  V6_OBS_ASSERT(&other != this, "cannot merge a registry into itself");
  const Report report = other.snapshot();
  for (const auto& [name, value] : report.counters) {
    if (value != 0) counter(name).add(value);
  }
  for (const auto& [name, value] : report.gauges) gauge(name).set(value);
  for (const auto& [name, total] : report.timers) {
    if (total.count != 0) timer(name).add_raw(total.count, total.nanos);
  }
  for (const auto& [name, total] : report.histograms) {
    if (total.count != 0) histogram(name).add_raw(total);
  }
}

}  // namespace v6::obs
