// The metric registry: named Counters/Gauges/TimerStats with stable
// addresses, deterministic snapshots, and additive merging.
//
// Naming scheme (docs/OBSERVABILITY.md): lower-case dotted hierarchies,
// `<subsystem>.<object>.<metric>` — e.g. `transport.ICMP.packets`,
// `scanner.retry.1`, with span timers keyed by span name
// (`pipeline.scan`). Lookup takes a mutex (registration is rare); hot
// paths resolve a metric once and cache the reference — Counter
// addresses never move for the life of the Registry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/counters.h"
#include "obs/histogram.h"

namespace v6::obs {

/// One timer's totals inside a Report.
struct TimerTotal {
  std::uint64_t count = 0;
  std::uint64_t nanos = 0;
  double seconds() const { return static_cast<double>(nanos) * 1e-9; }
};

/// Plain-data snapshot of a Registry. std::map keys make iteration order
/// deterministic, so two registries fed the same workload produce equal
/// Reports regardless of thread scheduling.
struct Report {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, TimerTotal> timers;
  std::map<std::string, HistogramTotal> histograms;

  /// Additive fold: counters, timers, and histograms sum; gauges take
  /// `other`'s value (a gauge is a level, not an accumulation).
  void merge_from(const Report& other);

  /// Convenience for consumers embedding phase breakdowns: the total
  /// seconds of timer `name`, or 0 when it never fired.
  double timer_seconds(std::string_view name) const;
  std::uint64_t counter_value(std::string_view name) const;
};

/// Thread-safe collection of named metrics.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric registered under `name`, creating it on first
  /// use. References stay valid (and addresses stable) for the life of
  /// the Registry, so callers may cache them across threads.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimerStat& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Deterministic snapshot of every registered metric.
  Report snapshot() const;

  /// Adds `other`'s current values into this registry (counters and
  /// timers accumulate, gauges overwrite). Used to fold per-run
  /// registries into a parent in slot order.
  void merge_from(const Registry& other);

 private:
  template <typename T>
  using Table = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  template <typename T>
  T& lookup(Table<T>& table, std::string_view name);

  mutable std::mutex mutex_;
  Table<Counter> counters_;
  Table<Gauge> gauges_;
  Table<TimerStat> timers_;
  Table<Histogram> histograms_;
};

}  // namespace v6::obs
