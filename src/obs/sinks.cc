#include "obs/sinks.h"

#include <charconv>
#include <ostream>

#include "obs/obs_assert.h"

namespace v6::obs {

void MemorySink::emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<Event> MemorySink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t MemorySink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void MemorySink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void MemorySink::replay_to(EventSink& sink) const {
  V6_OBS_ASSERT(&sink != this, "cannot replay a sink into itself");
  // Copy under the lock, emit outside it: the target sink takes its own
  // lock and may be slow (file I/O).
  for (const Event& event : events()) sink.emit(event);
}

void append_json_escaped(std::string& out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) {
          // Includes non-ASCII bytes: UTF-8 passes through untouched.
          out.push_back(c);
        } else {
          // Remaining control characters must be \u-escaped to stay
          // valid JSON (RFC 8259 §7).
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        }
    }
  }
}

namespace {

void append_number(std::string& out, double v) {
  // Shortest form that parses back to the same double: timestamps and
  // durations survive a write -> `sos report` -> re-emit cycle bit-exact.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

}  // namespace

std::string JsonLinesSink::to_json(const Event& event) {
  std::string line = "{\"ev\":\"";
  switch (event.kind) {
    case Event::Kind::kSpan: line += "span"; break;
    case Event::Kind::kCounter: line += "counter"; break;
    case Event::Kind::kGauge: line += "gauge"; break;
    case Event::Kind::kProbe: line += "probe"; break;
    case Event::Kind::kMessage: line += "message"; break;
    case Event::Kind::kSample: line += "sample"; break;
    case Event::Kind::kHist: line += "hist"; break;
    case Event::Kind::kTimer: line += "timer"; break;
  }
  line += "\"";
  if (!event.path.empty()) {
    line += ",\"path\":\"";
    append_json_escaped(line, event.path);
    line += "\"";
  }
  if (!event.detail.empty()) {
    line += ",\"detail\":\"";
    append_json_escaped(line, event.detail);
    line += "\"";
  }
  switch (event.kind) {
    case Event::Kind::kSpan:
      line += ",\"t0\":";
      append_number(line, event.at);
      line += ",\"dur\":";
      append_number(line, event.seconds);
      break;
    case Event::Kind::kCounter:
      line += ",\"value\":" + std::to_string(event.value);
      break;
    case Event::Kind::kGauge:
      line += ",\"value\":" +
              std::to_string(static_cast<std::int64_t>(event.value));
      break;
    case Event::Kind::kProbe:
      line += ",\"t0\":";
      append_number(line, event.at);
      break;
    case Event::Kind::kMessage:
      break;
    case Event::Kind::kSample:
      line += ",\"t0\":";
      append_number(line, event.at);
      line += ",\"value\":" + std::to_string(event.value);
      break;
    case Event::Kind::kHist:
      break;
    case Event::Kind::kTimer:
      line += ",\"count\":" + std::to_string(event.value);
      line += ",\"dur\":";
      append_number(line, event.seconds);
      break;
  }
  line += "}";
  return line;
}

JsonLinesSink::JsonLinesSink(std::ostream& out) : out_(&out) {}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : owned_(path), out_(&owned_) {}

bool JsonLinesSink::ok() const {
  return out_ != &owned_ || static_cast<bool>(owned_);
}

void JsonLinesSink::emit(const Event& event) {
  const std::string line = to_json(event);
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
}

void JsonLinesSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_->flush();
}

}  // namespace v6::obs
