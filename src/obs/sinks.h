// The two shipped EventSinks.
//
//   MemorySink    — append-only in-memory buffer. Tests assert on it, and
//                   run_sweep gives every parallel TGA run a private one
//                   so buffered events can be replayed into the real sink
//                   in slot order (deterministic traces under any jobs
//                   count).
//   JsonLinesSink — one JSON object per line, either to a borrowed
//                   ostream or to a file it owns. The format is described
//                   in docs/OBSERVABILITY.md.
//   TeeSink       — fans one event stream out to several sinks (e.g.
//                   --trace and --trace-chrome on the same run).
//
// The Chrome-trace exporter lives in obs/chrome_trace.h. All sinks
// serialize internally; emit() is thread-safe.
#pragma once

#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"

namespace v6::obs {

/// Appends `s` to `out` with JSON string escaping (RFC 8259): quotes and
/// backslashes escaped, \n/\t/\r shorthand, remaining control characters
/// as \u00XX, and everything >= 0x20 (including UTF-8 bytes) verbatim.
/// Shared by JsonLinesSink, ChromeTraceSink, and the bench JSON writers.
void append_json_escaped(std::string& out, std::string_view s);

class MemorySink final : public EventSink {
 public:
  void emit(const Event& event) override;

  /// Copy of the buffered events, in emission order.
  std::vector<Event> events() const;
  std::size_t size() const;
  void clear();

  /// Forwards every buffered event to `sink`, preserving order.
  void replay_to(EventSink& sink) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

class JsonLinesSink final : public EventSink {
 public:
  /// Writes to a borrowed stream (kept alive by the caller).
  explicit JsonLinesSink(std::ostream& out);
  /// Opens (truncates) `path`; ok() reports whether the open succeeded.
  explicit JsonLinesSink(const std::string& path);

  bool ok() const;
  void emit(const Event& event) override;
  void flush() override;

  /// Serialization of one event as a single JSON line (no trailing
  /// newline) — exposed so golden tests can pin the format.
  static std::string to_json(const Event& event);

 private:
  std::ofstream owned_;
  std::ostream* out_;
  std::mutex mutex_;
};

/// Forwards every event to each registered sink, in registration order.
/// Sinks are borrowed (caller keeps them alive); each one serializes
/// internally, so TeeSink itself needs no lock.
class TeeSink final : public EventSink {
 public:
  void add(EventSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void emit(const Event& event) override {
    for (EventSink* sink : sinks_) sink->emit(event);
  }
  void flush() override {
    for (EventSink* sink : sinks_) sink->flush();
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace v6::obs
