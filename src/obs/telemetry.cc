#include "obs/telemetry.h"

#include <vector>

#include "obs/obs_assert.h"

namespace v6::obs {

namespace {

// Per-thread span stacks, one top pointer per live Telemetry. A flat
// vector beats a hash map here: a thread has a handful of Telemetries at
// most (usually one), and spans open/close often enough that cache-hot
// linear scans win.
struct StackTop {
  const Telemetry* owner;
  Span* top;
};

thread_local std::vector<StackTop> t_span_tops;

StackTop* find_top(const Telemetry* owner) {
  for (StackTop& entry : t_span_tops) {
    if (entry.owner == owner) return &entry;
  }
  return nullptr;
}

}  // namespace

Span::Span(Telemetry* telemetry, std::string_view name)
    : telemetry_(telemetry) {
  if (telemetry_ == nullptr) return;
  V6_OBS_ASSERT(!name.empty(), "span name must be non-empty");
  name_.assign(name);
  StackTop* entry = find_top(telemetry_);
  if (entry == nullptr) {
    t_span_tops.push_back({telemetry_, nullptr});
    entry = &t_span_tops.back();
  }
  parent_ = entry->top;
  entry->top = this;
  start_ = std::chrono::steady_clock::now();
}

Span::Span(Telemetry* telemetry, std::string_view name, WithHistogram)
    : Span(telemetry, name) {
  wall_histogram_ = true;
}

std::string Span::path() const {
  std::string out;
  if (telemetry_ == nullptr) return out;
  std::size_t len = name_.size();
  for (const Span* span = parent_; span != nullptr; span = span->parent_) {
    len += span->name_.size() + 1;
  }
  out.reserve(len);
  append_path(out);
  return out;
}

void Span::append_path(std::string& out) const {
  if (parent_ != nullptr) {
    parent_->append_path(out);
    out += '/';
  }
  out += name_;
}

Span::~Span() {
  if (telemetry_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  StackTop* entry = find_top(telemetry_);
  V6_OBS_ASSERT(entry != nullptr && entry->top == this,
                "span destroyed out of stack order (or on another thread)");
  if (entry != nullptr) {
    entry->top = parent_;
    if (parent_ == nullptr) {
      // Drop the empty entry so the thread-local list stays tiny.
      t_span_tops.erase(t_span_tops.begin() + (entry - t_span_tops.data()));
    }
  }
  telemetry_->registry().timer(name_).record_seconds(seconds);
  if (wall_histogram_) {
    telemetry_->registry().histogram(name_ + ".wall").record(seconds);
  }
  if (telemetry_->tracing()) {
    // Path construction is gated here: without a sink, a span never
    // materializes its '/'-joined path.
    Event event;
    event.kind = Event::Kind::kSpan;
    event.path = path();
    event.seconds = seconds;
    event.at = telemetry_->since_epoch() - seconds;
    telemetry_->emit(event);
  }
}

void Telemetry::emit_metrics(std::string_view prefix) {
  if (!tracing()) return;
  const Report report = registry_.snapshot();
  const double now = since_epoch();
  auto make = [&](Event::Kind kind, const std::string& name,
                  std::uint64_t value) {
    Event event;
    event.kind = kind;
    event.path = std::string(prefix) + name;
    event.value = value;
    event.at = now;
    return event;
  };
  for (const auto& [name, value] : report.counters) {
    emit(make(Event::Kind::kCounter, name, value));
  }
  for (const auto& [name, value] : report.gauges) {
    emit(make(Event::Kind::kGauge, name, static_cast<std::uint64_t>(value)));
  }
  for (const auto& [name, total] : report.timers) {
    Event event = make(Event::Kind::kTimer, name, total.count);
    event.seconds = total.seconds();
    emit(event);
  }
  for (const auto& [name, total] : report.histograms) {
    Event event = make(Event::Kind::kHist, name, total.count);
    event.detail = encode_histogram(total);
    emit(event);
  }
}

}  // namespace v6::obs
