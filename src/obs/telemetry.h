// Telemetry: one instrumentation context = a metric Registry plus an
// optional EventSink, with RAII spans for phase timing.
//
// Cost model: every constructor and span below is null-safe — code holds
// a `Telemetry*` that may be nullptr, and instrumented-but-disabled
// paths reduce to a pointer test. With a Telemetry attached but no sink,
// spans cost two clock reads plus one relaxed atomic accumulate, and
// counters one relaxed add; only an attached sink buys string
// serialization.
//
// Span nesting uses per-thread, per-Telemetry stacks: a span's path is
// its ancestors' names joined with '/', where ancestry is "the spans of
// the same Telemetry currently open on this thread". Two Telemetry
// instances never nest into each other, which is what keeps paths
// deterministic when a thread pool interleaves runs (each run owns a
// private Telemetry; see experiment/runner.cc).
#pragma once

#include <atomic>
#include <chrono>
#include <string>
#include <string_view>

#include "obs/event.h"
#include "obs/registry.h"

namespace v6::obs {

class Telemetry;

/// RAII scoped timer. On destruction it accumulates its duration into
/// `registry().timer(<name>)` (name, not path: phase totals aggregate
/// across parents) and, when a sink is attached, emits a Kind::kSpan
/// event carrying the full nested path.
class Span {
 public:
  /// `telemetry == nullptr` makes the span inert (no-cost no-op).
  Span(Telemetry* telemetry, std::string_view name);
  ~Span();

  /// A span may additionally feed a wall-clock duration histogram named
  /// `<name>.wall` (the suffix marks it exempt from the virtual-time
  /// determinism contract; see docs/OBSERVABILITY.md).
  struct WithHistogram {};
  Span(Telemetry* telemetry, std::string_view name, WithHistogram);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Full '/'-joined path including enclosing spans of the same
  /// Telemetry on this thread, built on demand by walking the parent
  /// chain — the hot path never materializes it (sinkless spans cost two
  /// clock reads plus one atomic accumulate). Empty for inert spans.
  std::string path() const;

 private:
  void append_path(std::string& out) const;

  Telemetry* telemetry_;
  Span* parent_ = nullptr;
  bool wall_histogram_ = false;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

class Telemetry {
 public:
  Telemetry() : epoch_(std::chrono::steady_clock::now()) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// Attaches a non-owning sink (nullptr detaches). Not synchronized
  /// against concurrent emitters — attach before handing the Telemetry
  /// to instrumented code.
  void attach_sink(EventSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }
  EventSink* sink() const { return sink_.load(std::memory_order_acquire); }

  /// True when events would reach a sink; lets expensive producers (the
  /// per-probe tracer) skip serialization entirely.
  bool tracing() const { return sink() != nullptr; }

  /// Forwards to the sink, if any.
  void emit(const Event& event) {
    if (EventSink* s = sink()) s->emit(event);
  }

  /// Seconds since this Telemetry was constructed (steady clock).
  double since_epoch() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Emits one kCounter/kGauge/kTimer/kHist event per registry metric
  /// (sorted within each kind), names prefixed with `prefix`. Typically
  /// called once at shutdown so a trace file ends with the final totals.
  void emit_metrics(std::string_view prefix = {});

 private:
  Registry registry_;
  std::atomic<EventSink*> sink_{nullptr};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace v6::obs
