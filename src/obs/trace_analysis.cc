#include "obs/trace_analysis.h"

#include <algorithm>
#include <string_view>

#include "obs/quantiles.h"
#include "obs/sinks.h"

namespace v6::obs {

namespace {

// Splits "tga:6Tree/pipeline.scan" into {"6Tree", "pipeline.scan"};
// spans outside a tga:* root go to {"", "<leaf>"}.
void split_tga_phase(std::string_view path, std::string_view* tga,
                     std::string_view* phase) {
  *tga = {};
  *phase = path;
  if (path.substr(0, 4) != "tga:") return;
  const std::size_t slash = path.find('/');
  if (slash == std::string_view::npos) {
    *tga = path.substr(4);
    *phase = "(run)";
    return;
  }
  *tga = path.substr(4, slash - 4);
  const std::size_t last = path.rfind('/');
  *phase = path.substr(last + 1);
}

constexpr std::string_view kTransportPrefix = "transport.";

// Decomposes "transport.<TYPE>.<metric>" -> {TYPE, metric}.
bool split_transport(std::string_view name, std::string_view* type,
                     std::string_view* metric) {
  if (name.substr(0, kTransportPrefix.size()) != kTransportPrefix) {
    return false;
  }
  name.remove_prefix(kTransportPrefix.size());
  const std::size_t dot = name.rfind('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  *type = name.substr(0, dot);
  *metric = name.substr(dot + 1);
  return true;
}

}  // namespace

TraceSummary analyze_trace(const std::vector<Event>& events,
                           std::size_t top_n) {
  TraceSummary summary;
  summary.events = events.size();
  for (const Event& event : events) {
    switch (event.kind) {
      case Event::Kind::kSpan: {
        std::string_view tga;
        std::string_view phase;
        split_tga_phase(event.path, &tga, &phase);
        TimerTotal& total =
            summary.tga_phases[std::string(tga)][std::string(phase)];
        total.count += 1;
        total.nanos += Histogram::to_units(event.seconds);
        summary.slowest.push_back({event.path, event.at, event.seconds});
        break;
      }
      case Event::Kind::kCounter:
        summary.counters[event.path] = event.value;
        break;
      case Event::Kind::kGauge:
        summary.gauges[event.path] =
            static_cast<std::int64_t>(event.value);
        break;
      case Event::Kind::kTimer: {
        TimerTotal total;
        total.count = event.value;
        total.nanos = Histogram::to_units(event.seconds);
        summary.timers[event.path] = total;
        break;
      }
      case Event::Kind::kHist: {
        HistogramTotal total;
        if (parse_histogram(event.detail, &total)) {
          summary.histograms[event.path] = total;
        }
        break;
      }
      case Event::Kind::kProbe:
        ++summary.probes;
        break;
      case Event::Kind::kSample:
        ++summary.samples;
        if (event.at > summary.virtual_end) summary.virtual_end = event.at;
        break;
      case Event::Kind::kMessage:
        break;
    }
  }

  std::sort(summary.slowest.begin(), summary.slowest.end(),
            [](const TraceSummary::SlowSpan& a,
               const TraceSummary::SlowSpan& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              if (a.at != b.at) return a.at < b.at;
              return a.path < b.path;
            });
  if (summary.slowest.size() > top_n) summary.slowest.resize(top_n);

  // Wire accounting rows, one per probe type seen in transport metrics.
  std::map<std::string, TraceSummary::WireRow> rows;
  auto row = [&rows](std::string_view type) -> TraceSummary::WireRow& {
    TraceSummary::WireRow& r = rows[std::string(type)];
    if (r.type.empty()) r.type = std::string(type);
    return r;
  };
  for (const auto& [name, value] : summary.counters) {
    std::string_view type;
    std::string_view metric;
    if (!split_transport(name, &type, &metric)) continue;
    if (metric == "packets") row(type).packets = value;
    if (metric == "replies") row(type).replies = value;
    if (metric == "timeouts") row(type).timeouts = value;
  }
  for (const auto& [name, total] : summary.timers) {
    std::string_view type;
    std::string_view metric;
    if (!split_transport(name, &type, &metric)) continue;
    if (metric == "wire_seconds") {
      TraceSummary::WireRow& r = row(type);
      r.charged = total.count;
      r.wire_seconds = total.seconds();
    }
  }
  summary.wire.reserve(rows.size());
  for (auto& [type, r] : rows) summary.wire.push_back(std::move(r));
  return summary;
}

std::string report_json(const TraceSummary& summary) {
  std::string out = "{";
  out += "\"events\":" + std::to_string(summary.events);
  out += ",\"probes\":" + std::to_string(summary.probes);
  out += ",\"samples\":" + std::to_string(summary.samples);
  out += ",\"virtual_end\":";
  append_json_double(out, summary.virtual_end);

  out += ",\"tgas\":{";
  bool first_tga = true;
  for (const auto& [tga, phases] : summary.tga_phases) {
    if (!first_tga) out += ",";
    first_tga = false;
    out += "\"";
    append_json_escaped(out, tga);
    out += "\":{";
    bool first_phase = true;
    for (const auto& [phase, total] : phases) {
      if (!first_phase) out += ",";
      first_phase = false;
      out += "\"";
      append_json_escaped(out, phase);
      out += "\":{\"count\":" + std::to_string(total.count);
      out += ",\"seconds\":";
      append_json_double(out, total.seconds());
      out += "}";
    }
    out += "}";
  }
  out += "}";

  out += ",\"wire\":[";
  bool first_wire = true;
  for (const TraceSummary::WireRow& r : summary.wire) {
    if (!first_wire) out += ",";
    first_wire = false;
    out += "{\"type\":\"";
    append_json_escaped(out, r.type);
    out += "\",\"packets\":" + std::to_string(r.packets);
    out += ",\"replies\":" + std::to_string(r.replies);
    out += ",\"timeouts\":" + std::to_string(r.timeouts);
    out += ",\"charged\":" + std::to_string(r.charged);
    out += ",\"wire_seconds\":";
    append_json_double(out, r.wire_seconds);
    out += "}";
  }
  out += "]";

  out += ",\"quantiles\":" + quantiles_json(summary.histograms);

  out += ",\"slowest\":[";
  bool first_slow = true;
  for (const TraceSummary::SlowSpan& s : summary.slowest) {
    if (!first_slow) out += ",";
    first_slow = false;
    out += "{\"path\":\"";
    append_json_escaped(out, s.path);
    out += "\",\"t0\":";
    append_json_double(out, s.at);
    out += ",\"dur\":";
    append_json_double(out, s.seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace v6::obs
