// Offline trace analysis: turns a decoded event stream (trace_reader.h)
// into the aggregates behind `sos report` — per-TGA phase tables, wire
// accounting, histogram quantiles, top-N slowest spans, and sampler
// coverage. Pure data in/out; table rendering lives in the CLI and the
// JSON rendering (`report_json`) here, so bench and test consumers share
// one schema.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/histogram.h"
#include "obs/registry.h"

namespace v6::obs {

struct TraceSummary {
  std::size_t events = 0;
  std::size_t probes = 0;
  std::size_t samples = 0;

  /// Per-TGA phase totals, keyed "<tga-name>" -> "<leaf span name>";
  /// aggregated from span events whose path starts "tga:<name>/". Spans
  /// outside any tga:* root land under "".
  std::map<std::string, std::map<std::string, TimerTotal>> tga_phases;

  /// Final registry totals (last counter/gauge/timer/hist event wins —
  /// emit_metrics runs at shutdown, after any merged per-run snapshots).
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, TimerTotal> timers;
  std::map<std::string, HistogramTotal> histograms;

  struct SlowSpan {
    std::string path;
    double at = 0.0;
    double seconds = 0.0;
  };
  /// Longest spans, descending by duration (ties: earlier start first).
  std::vector<SlowSpan> slowest;

  /// Largest sampler timestamp — the virtual-time extent of the run.
  double virtual_end = 0.0;

  /// Wire accounting: `transport.<TYPE>.wire_seconds` timers keyed by
  /// probe type, alongside the matching packet counters.
  struct WireRow {
    std::string type;
    std::uint64_t packets = 0;
    std::uint64_t replies = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t charged = 0;     // wire_seconds count
    double wire_seconds = 0.0;
  };
  std::vector<WireRow> wire;
};

/// Aggregates `events`, keeping the `top_n` slowest spans.
TraceSummary analyze_trace(const std::vector<Event>& events,
                           std::size_t top_n = 10);

/// Stable machine-readable form (consumed by the report smoke test and
/// external tooling):
///   {"events":N,"probes":N,"samples":N,"virtual_end":T,
///    "tgas":{"<tga>":{"<phase>":{"count":N,"seconds":S},...},...},
///    "wire":[{"type":"ICMP","packets":N,...},...],
///    "quantiles":{...},            // quantiles.h schema
///    "slowest":[{"path":P,"t0":T,"dur":D},...]}
std::string report_json(const TraceSummary& summary);

}  // namespace v6::obs
