#include "obs/trace_reader.h"

#include <cmath>
#include <cstdlib>
#include <istream>

namespace v6::obs {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (eof() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return parse_string(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return consume_literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return consume_literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return consume_literal("null");
      default:
        out->type = JsonValue::Type::kNumber;
        return parse_number(&out->number);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"' || !parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  static void append_utf8(std::string* out, unsigned int cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(unsigned int* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned int v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned int>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned int>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned int>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (true) {
      if (eof()) return false;
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (eof()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned int cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half.
            unsigned int low = 0;
            if (!consume('\\') || !consume('u') || !parse_hex4(&low) ||
                low < 0xDC00 || low > 0xDFFF) {
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return false;
      }
    }
  }

  bool parse_number(double* out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    // Integer part: 0, or a nonzero digit followed by digits.
    if (eof()) return false;
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    *out = std::strtod(token.c_str(), nullptr);
    // Syntactically valid exponents can still overflow ("1e999"); a
    // non-finite value has no JSON spelling, so reject it here rather
    // than let it poison downstream arithmetic and re-serialization.
    return std::isfinite(*out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* find_typed(const JsonValue& obj, std::string_view key,
                            JsonValue::Type type) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->type == type) ? v : nullptr;
}

// Known fields must have the right type when present; `required` makes
// absence an error too.
bool read_string(const JsonValue& obj, std::string_view key, bool required,
                 std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return !required;
  if (v->type != JsonValue::Type::kString) return false;
  *out = v->string;
  return true;
}

bool read_number(const JsonValue& obj, std::string_view key, bool required,
                 double* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return !required;
  if (v->type != JsonValue::Type::kNumber) return false;
  *out = v->number;
  return true;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool json_parse(std::string_view text, JsonValue* out) {
  return Parser(text).parse_document(out);
}

std::optional<Event> parse_trace_line(std::string_view line) {
  JsonValue doc;
  if (!json_parse(line, &doc) || doc.type != JsonValue::Type::kObject) {
    return std::nullopt;
  }
  const JsonValue* ev = find_typed(doc, "ev", JsonValue::Type::kString);
  if (ev == nullptr) return std::nullopt;

  Event event;
  double number = 0.0;
  if (ev->string == "span") {
    event.kind = Event::Kind::kSpan;
    if (!read_string(doc, "path", /*required=*/true, &event.path)) {
      return std::nullopt;
    }
    if (!read_number(doc, "t0", false, &event.at)) return std::nullopt;
    if (!read_number(doc, "dur", false, &event.seconds)) return std::nullopt;
  } else if (ev->string == "counter" || ev->string == "gauge") {
    event.kind = ev->string == "counter" ? Event::Kind::kCounter
                                         : Event::Kind::kGauge;
    if (!read_string(doc, "path", true, &event.path)) return std::nullopt;
    if (!read_number(doc, "value", true, &number)) return std::nullopt;
    event.value = event.kind == Event::Kind::kGauge
                      ? static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(number))
                      : static_cast<std::uint64_t>(number);
  } else if (ev->string == "probe") {
    event.kind = Event::Kind::kProbe;
    if (!read_string(doc, "path", true, &event.path)) return std::nullopt;
    if (!read_string(doc, "detail", false, &event.detail)) {
      return std::nullopt;
    }
    if (!read_number(doc, "t0", false, &event.at)) return std::nullopt;
  } else if (ev->string == "message") {
    event.kind = Event::Kind::kMessage;
    if (!read_string(doc, "path", false, &event.path)) return std::nullopt;
    if (!read_string(doc, "detail", false, &event.detail)) {
      return std::nullopt;
    }
  } else if (ev->string == "sample") {
    event.kind = Event::Kind::kSample;
    if (!read_string(doc, "path", true, &event.path)) return std::nullopt;
    if (!read_number(doc, "t0", true, &event.at)) return std::nullopt;
    if (!read_number(doc, "value", true, &number)) return std::nullopt;
    event.value = static_cast<std::uint64_t>(number);
  } else if (ev->string == "hist") {
    event.kind = Event::Kind::kHist;
    if (!read_string(doc, "path", true, &event.path)) return std::nullopt;
    if (!read_string(doc, "detail", true, &event.detail)) {
      return std::nullopt;
    }
  } else if (ev->string == "timer") {
    event.kind = Event::Kind::kTimer;
    if (!read_string(doc, "path", true, &event.path)) return std::nullopt;
    if (!read_number(doc, "count", true, &number)) return std::nullopt;
    event.value = static_cast<std::uint64_t>(number);
    if (!read_number(doc, "dur", false, &event.seconds)) return std::nullopt;
  } else {
    return std::nullopt;
  }
  return event;
}

TraceLoadStats load_trace(std::istream& in, std::vector<Event>* out) {
  TraceLoadStats stats;
  std::string line;
  while (std::getline(in, line)) {
    // getline sets eofbit (without failbit) when the final line ends at
    // EOF with no '\n' — exactly the shape of a write cut short by a
    // crash. A line like that which also fails to decode is counted as
    // truncation, not corruption.
    const bool cut_at_eof = in.eof();
    if (line.empty()) continue;
    ++stats.lines;
    if (auto event = parse_trace_line(line)) {
      out->push_back(std::move(*event));
    } else if (cut_at_eof) {
      ++stats.truncated;
    } else {
      ++stats.bad_lines;
    }
  }
  return stats;
}

}  // namespace v6::obs
