// Strict JSON reading for trace files — the consumer half of
// JsonLinesSink / ChromeTraceSink.
//
// json_parse is a small recursive-descent RFC 8259 parser (objects,
// arrays, strings with \u escapes, strict number grammar, bounded
// nesting). It is deliberately independent of the writers so tests can
// use it to validate their output (the same pattern as the in-harness
// RFC 4180 reader in tests/fuzz/fuzz_csv.cc), and it doubles as the
// `sos report` front end and a fuzz target.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event.h"

namespace v6::obs {

/// A parsed JSON document node. Object member order is preserved.
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named `key` of an object, or nullptr.
  const JsonValue* find(std::string_view key) const;
};

/// Parses `text` as one complete JSON document (leading/trailing
/// whitespace allowed, nothing else). Returns false on any syntax
/// error; `out` is unspecified on failure.
bool json_parse(std::string_view text, JsonValue* out);

/// Decodes one JSONL trace line back into an Event. Returns nullopt for
/// malformed JSON, an unknown "ev" kind, or wrongly-typed known fields.
/// (A probe event's attempt ordinal is not serialized, so it reads back
/// as 0.)
std::optional<Event> parse_trace_line(std::string_view line);

struct TraceLoadStats {
  std::size_t lines = 0;      // non-empty lines seen
  std::size_t bad_lines = 0;  // interior lines that failed to decode
  /// 1 when the final line had no trailing newline and failed to
  /// decode — the signature of a dump cut mid-write (a crashed process,
  /// a flight-recorder dump truncated by the filesystem). Counted
  /// separately from bad_lines so a crash dump with a torn tail still
  /// reads as "clean trace, torn tail" rather than "corrupt trace".
  std::size_t truncated = 0;
};

/// Reads a JSONL trace stream, appending decoded events to `out`.
/// Malformed lines are counted, not fatal; a partial final line (no
/// trailing newline) counts as truncated, not bad.
TraceLoadStats load_trace(std::istream& in, std::vector<Event>* out);

}  // namespace v6::obs
