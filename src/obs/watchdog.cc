#include "obs/watchdog.h"

#include <cstdio>
#include <utility>

namespace v6::obs {
namespace {

void append_seconds(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

std::string StallWatchdog::StallReport::to_text() const {
  std::string out = "watchdog: stage '" + stage + "' stalled for ";
  append_seconds(out, idle_seconds);
  out += "s (deadline ";
  append_seconds(out, deadline_seconds);
  out += "s)\n";
  for (const StageStatus& s : stages) {
    out += "  stage " + s.name + ": beats=" + std::to_string(s.beats);
    out += s.armed ? " armed" : " disarmed";
    if (s.armed) {
      out += " idle=";
      append_seconds(out, s.idle_seconds);
      out += "s";
    }
    if (s.stalled) out += " STALLED";
    out += "\n";
  }
  return out;
}

StallWatchdog::StallWatchdog(Options options) : options_(std::move(options)) {
  if (options_.deadline_seconds <= 0.0) options_.deadline_seconds = 30.0;
  if (options_.poll_seconds <= 0.0) options_.poll_seconds = 0.25;
}

StallWatchdog::~StallWatchdog() { stop(); }

Heartbeat& StallWatchdog::stage(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Stage& s : stages_) {
    if (s.name == name) return s.heartbeat;
  }
  Stage& s = stages_.emplace_back();
  s.name = std::string(name);
  s.last_progress = Clock::now();
  return s.heartbeat;
}

void StallWatchdog::on_stall(StallHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
}

void StallWatchdog::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  monitor_.spawn([this] {
    const auto poll = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(options_.poll_seconds));
    while (true) {
      {
        // Timed wait, not a sleep: stop() interrupts it immediately,
        // and the poll cadence is wall-side only (never observable in
        // deterministic output).
        std::unique_lock<std::mutex> lock(mutex_);
        if (wake_.wait_for(lock, poll, [&] { return stop_requested_; })) {
          break;
        }
      }
      check_at(Clock::now());
    }
  });
}

void StallWatchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  monitor_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool StallWatchdog::check_now() { return check_at(Clock::now()); }

bool StallWatchdog::check_at(Clock::time_point now) {
  std::vector<StallReport> fired;
  StallHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handler = handler_;
    std::vector<StageStatus> statuses;
    statuses.reserve(stages_.size());
    std::vector<std::size_t> new_trips;
    std::int64_t stalled_now = 0;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      Stage& s = stages_[i];
      StageStatus status;
      status.name = s.name;
      status.armed = s.heartbeat.armed();
      status.beats = s.heartbeat.count();
      if (!status.armed) {
        s.was_armed = false;
        s.reported = false;
        statuses.push_back(std::move(status));
        continue;
      }
      if (!s.was_armed) {
        // Disarmed -> armed: the idle clock starts at the arm() instant
        // (the heartbeat timestamps it), so time spent between cycles is
        // never counted but a stage wedged since arming still trips on
        // the very first poll past the deadline.
        s.was_armed = true;
        s.last_count = status.beats;
        const Clock::time_point armed_at{
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::nanoseconds(s.heartbeat.armed_at_nanos()))};
        s.last_progress = armed_at > now ? now : armed_at;
        s.reported = false;
      } else if (status.beats != s.last_count) {
        s.last_count = status.beats;
        s.last_progress = now;
        s.reported = false;
      }
      status.idle_seconds =
          std::chrono::duration<double>(now - s.last_progress).count();
      const bool expired = status.idle_seconds > options_.deadline_seconds;
      status.stalled = expired;
      if (expired) {
        ++stalled_now;
        if (!s.reported) {
          s.reported = true;
          new_trips.push_back(i);
        }
      }
      statuses.push_back(std::move(status));
    }
    if (options_.registry != nullptr) {
      options_.registry->gauge("watchdog.stalled.wall").set(stalled_now);
      if (!new_trips.empty()) {
        options_.registry->counter("watchdog.trips.wall")
            .add(new_trips.size());
      }
    }
    for (std::size_t index : new_trips) {
      trips_.fetch_add(1, std::memory_order_relaxed);
      StallReport report;
      report.stage = statuses[index].name;
      report.idle_seconds = statuses[index].idle_seconds;
      report.deadline_seconds = options_.deadline_seconds;
      report.stages = statuses;
      fired.push_back(std::move(report));
    }
  }
  // Handlers run outside the lock: they may legitimately call status(),
  // stage(), or registry methods while dumping diagnostics.
  if (handler) {
    for (const StallReport& report : fired) handler(report);
  }
  return !fired.empty();
}

std::vector<StallWatchdog::StageStatus> StallWatchdog::status() const {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StageStatus> out;
  out.reserve(stages_.size());
  for (const Stage& s : stages_) {
    StageStatus status;
    status.name = s.name;
    status.armed = s.heartbeat.armed();
    status.beats = s.heartbeat.count();
    if (status.armed && s.was_armed) {
      status.idle_seconds =
          std::chrono::duration<double>(now - s.last_progress).count();
      status.stalled = s.reported;
    }
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace v6::obs
