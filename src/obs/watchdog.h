// StallWatchdog: per-stage progress heartbeats with a wall-clock
// deadline, the liveness half of the introspection plane.
//
// A pipeline stage (StreamScanner's producer/prober/receiver loops, the
// HitlistService refresh cycle) registers a named Heartbeat and beats it
// every unit of progress — one relaxed atomic increment, cheap enough
// for per-batch call sites. A monitor thread (spawned through
// runtime::WorkerGroup; obs may depend on runtime, tools/lint/layers.txt)
// polls the beat counts: an *armed* stage whose count has not moved for
// `deadline_seconds` of steady_clock time is stalled. On the first
// expiry per stall the watchdog bumps `watchdog.trips.wall`, sets the
// `watchdog.stalled.wall` gauge, and fires the on_stall handler exactly
// once per stalled stage — the `sos serve` wiring uses that to dump the
// flight recorder and a final exposition document before the operator
// ever attaches a debugger.
//
// Everything here is wall-clock-side and read-only with respect to scan
// state: heartbeats observe progress, never steer it, so the virtual-
// time determinism contract is untouched (docs/OBSERVABILITY.md).
// Stages arm() themselves while running and disarm() when they finish;
// a disarmed stage is never considered stalled, so idle-but-healthy
// services don't trip between refresh cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"
#include "runtime/worker_group.h"

namespace v6::obs {

/// One stage's progress pulse. Stable address for the life of its
/// watchdog (deque storage), so stages cache the pointer and beat
/// lock-free from any thread.
class Heartbeat {
 public:
  /// One unit of progress (a batch moved, a cycle finished). Relaxed:
  /// the monitor only ever compares successive snapshots.
  void beat() { beats_.fetch_add(1, std::memory_order_relaxed); }

  /// Arming marks the stage as expected-to-progress and timestamps the
  /// transition; the monitor measures idle from the arm instant (not
  /// from its first poll afterwards), so a stage is never blamed for
  /// time spent disarmed and never granted a free poll period either.
  void arm() {
    armed_at_nanos_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }
  void disarm() { armed_.store(false, std::memory_order_release); }

  std::uint64_t count() const { return beats_.load(std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// steady_clock nanos of the most recent arm() (0 before the first).
  std::int64_t armed_at_nanos() const {
    return armed_at_nanos_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::int64_t> armed_at_nanos_{0};
  std::atomic<bool> armed_{false};
};

class StallWatchdog {
 public:
  struct Options {
    /// An armed stage with no beat for this long (steady clock) is
    /// stalled.
    double deadline_seconds = 30.0;
    /// Monitor poll period. Detection latency is deadline + one poll.
    double poll_seconds = 0.25;
    /// Optional: trips and stalled-stage counts are published here as
    /// `watchdog.trips.wall` / `watchdog.stalled.wall`.
    Registry* registry = nullptr;
  };

  struct StageStatus {
    std::string name;
    std::uint64_t beats = 0;
    double idle_seconds = 0.0;
    bool armed = false;
    bool stalled = false;
  };

  struct StallReport {
    std::string stage;          // the stage that tripped
    double idle_seconds = 0.0;  // how long it has been silent
    double deadline_seconds = 0.0;
    std::vector<StageStatus> stages;  // every stage at trip time

    /// Human-readable multi-line rendering for logs and dump files.
    std::string to_text() const;
  };

  /// Fired on the monitor thread, once per stage per stall.
  using StallHandler = std::function<void(const StallReport&)>;

  StallWatchdog() : StallWatchdog(Options{}) {}
  explicit StallWatchdog(Options options);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Returns the heartbeat registered under `name`, creating it
  /// disarmed on first use. Address stable for the watchdog's lifetime.
  Heartbeat& stage(std::string_view name);

  /// Installs the trip handler. Call before start().
  void on_stall(StallHandler handler);

  /// Spawns the monitor thread. No-op when already running.
  void start();
  /// Stops and joins the monitor thread. Idempotent; the destructor
  /// calls it.
  void stop();

  /// One synchronous monitor pass against the current clock — the same
  /// code path the thread runs, exposed for tests and for single-
  /// threaded embedders. Returns true when any stage newly tripped.
  bool check_now();

  bool tripped() const { return trips() > 0; }
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

  /// Snapshot of every stage (name-registration order).
  std::vector<StageStatus> status() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Stage {
    std::string name;
    Heartbeat heartbeat;
    std::uint64_t last_count = 0;
    Clock::time_point last_progress{};
    bool was_armed = false;
    bool reported = false;  // handler fired for the current stall
  };

  bool check_at(Clock::time_point now);

  Options options_;
  StallHandler handler_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Stage> stages_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::atomic<std::uint64_t> trips_{0};
  runtime::WorkerGroup monitor_;
};

}  // namespace v6::obs
