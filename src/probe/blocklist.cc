#include "probe/blocklist.h"

namespace v6::probe {

std::size_t Blocklist::load(std::string_view text) {
  std::size_t added = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    // Trim whitespace.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) {
      if (end == text.size()) break;
      continue;
    }
    if (const auto prefix = v6::net::Prefix::parse(line)) {
      add(*prefix);
      ++added;
    }
    if (end == text.size()) break;
  }
  return added;
}

}  // namespace v6::probe
