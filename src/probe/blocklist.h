// Scan blocklist: prefixes that must never be probed.
//
// The paper (Appendix A) notes that 6Scan's scanner lacked blocklisting
// and had to be extended; blocklisting is a first-class citizen here.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace v6::probe {

class Blocklist {
 public:
  /// Adds one prefix to the blocklist.
  void add(const v6::net::Prefix& prefix) {
    trie_.insert(prefix, true);
    prefixes_.push_back(prefix);
  }

  /// Parses newline-separated CIDR entries; '#' starts a comment. Returns
  /// the number of prefixes added; malformed lines are skipped.
  std::size_t load(std::string_view text);

  /// True if `addr` must not be probed.
  bool blocked(const v6::net::Ipv6Addr& addr) const {
    return trie_.covers(addr);
  }

  std::size_t size() const { return prefixes_.size(); }
  std::span<const v6::net::Prefix> prefixes() const { return prefixes_; }

 private:
  v6::net::PrefixTrie<bool> trie_;
  std::vector<v6::net::Prefix> prefixes_;
};

}  // namespace v6::probe
