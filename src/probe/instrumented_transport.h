// Observability decorators over ProbeTransport (the tentpole's
// transport layer instrumentation).
//
//   CountingTransport — per-probe-type packet / reply / timeout counters
//     into an obs::Registry. Tallies are plain integers flushed into the
//     registry's atomic counters when the transport is destroyed (or on
//     flush()): a transport lives inside one run on one thread, so each
//     probe pays one extra virtual call and two plain increments —
//     cheap enough to leave on for every instrumented run. Registry
//     values are therefore visible only after the transport is done.
//   TracingTransport  — one Kind::kProbe event per packet to the
//     telemetry sink. Expensive (string serialization per probe); meant
//     for `sos --trace` on small universes, never for benches.
//
// Both are pure pass-throughs: replies, RNG consumption, and
// packets_sent() are untouched, so ScanOutcomes are byte-identical with
// or without them in the chain.
#pragma once

#include <array>
#include <string>

#include "net/service.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "probe/transport.h"

namespace v6::probe {

class CountingTransport final : public ProbeTransport {
 public:
  CountingTransport(ProbeTransport& inner, v6::obs::Registry& registry)
      : inner_(&inner) {
    for (const v6::net::ProbeType type : v6::net::kAllProbeTypes) {
      const auto i = static_cast<std::size_t>(type);
      const std::string base =
          "transport." + std::string(v6::net::to_string(type));
      packets_[i] = &registry.counter(base + ".packets");
      replies_[i] = &registry.counter(base + ".replies");
      timeouts_[i] = &registry.counter(base + ".timeouts");
    }
  }

  ~CountingTransport() override { flush(); }

  v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                           v6::net::ProbeType type) override {
    const v6::net::ProbeReply reply = inner_->send(addr, type);
    const auto i = static_cast<std::size_t>(type);
    ++packet_tally_[i];
    if (reply == v6::net::ProbeReply::kTimeout) {
      ++timeout_tally_[i];
    } else {
      ++reply_tally_[i];
    }
    return reply;
  }

  std::uint64_t packets_sent() const override { return inner_->packets_sent(); }

  void advance(double seconds) override { inner_->advance(seconds); }

  /// Publishes the accumulated tallies into the registry counters and
  /// zeroes them. Called automatically on destruction.
  void flush() {
    for (std::size_t i = 0; i < v6::net::kNumProbeTypes; ++i) {
      packets_[i]->add(packet_tally_[i]);
      replies_[i]->add(reply_tally_[i]);
      timeouts_[i]->add(timeout_tally_[i]);
      packet_tally_[i] = reply_tally_[i] = timeout_tally_[i] = 0;
    }
  }

 private:
  ProbeTransport* inner_;
  std::array<v6::obs::Counter*, v6::net::kNumProbeTypes> packets_{};
  std::array<v6::obs::Counter*, v6::net::kNumProbeTypes> replies_{};
  std::array<v6::obs::Counter*, v6::net::kNumProbeTypes> timeouts_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> packet_tally_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> reply_tally_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> timeout_tally_{};
};

class TracingTransport final : public ProbeTransport {
 public:
  TracingTransport(ProbeTransport& inner, v6::obs::Telemetry& telemetry)
      : inner_(&inner), telemetry_(&telemetry) {}

  v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                           v6::net::ProbeType type) override {
    const v6::net::ProbeReply reply = inner_->send(addr, type);
    if (telemetry_->tracing()) {
      v6::obs::Event event;
      event.kind = v6::obs::Event::Kind::kProbe;
      event.path = addr.to_string();
      event.detail = std::string(v6::net::to_string(type)) + "->" +
                     std::string(v6::net::to_string(reply));
      event.at = telemetry_->since_epoch();
      telemetry_->emit(event);
    }
    return reply;
  }

  std::uint64_t packets_sent() const override { return inner_->packets_sent(); }

  void advance(double seconds) override { inner_->advance(seconds); }

 private:
  ProbeTransport* inner_;
  v6::obs::Telemetry* telemetry_;
};

}  // namespace v6::probe
