// Observability decorators over ProbeTransport (the tentpole's
// transport layer instrumentation).
//
//   CountingTransport — per-probe-type packet / reply / timeout counters
//     into an obs::Registry, plus virtual wire-time accounting: each
//     reply's modeled RTT (ProbeTransport::last_wire_nanos) feeds a
//     `transport.<TYPE>.rtt` histogram and a `transport.<TYPE>.
//     wire_seconds` timer, and scanner waits threaded down via advance()
//     (timeouts, retry backoff, adaptive cool-downs) are charged to the
//     wire_seconds timer of the last-probed type. All of it is driven by
//     the simulated wire clock, so the totals are bit-identical across
//     jobs counts (docs/OBSERVABILITY.md, determinism contract).
//     Scalar tallies are plain integers flushed into the registry's
//     atomic counters when the transport is destroyed (or on flush()):
//     a transport lives inside one run on one thread, so each probe pays
//     one extra virtual call and a few plain increments — cheap enough
//     to leave on for every instrumented run. Registry values are
//     therefore visible only after the transport is done.
//   TracingTransport  — one Kind::kProbe event per packet to the
//     telemetry sink. Expensive (string serialization per probe); meant
//     for `sos --trace` on small universes, never for benches.
//
// Both are pure pass-throughs: replies, RNG consumption, and
// packets_sent() are untouched, so ScanOutcomes are byte-identical with
// or without them in the chain.
#pragma once

#include <array>
#include <string>

#include "net/service.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "probe/transport.h"

namespace v6::probe {

class CountingTransport final : public ProbeTransport {
 public:
  CountingTransport(ProbeTransport& inner, v6::obs::Registry& registry)
      : inner_(&inner) {
    for (const v6::net::ProbeType type : v6::net::kAllProbeTypes) {
      const auto i = static_cast<std::size_t>(type);
      const std::string base =
          "transport." + std::string(v6::net::to_string(type));
      packets_[i] = &registry.counter(base + ".packets");
      replies_[i] = &registry.counter(base + ".replies");
      timeouts_[i] = &registry.counter(base + ".timeouts");
      wire_[i] = &registry.timer(base + ".wire_seconds");
      rtt_[i] = &registry.histogram(base + ".rtt");
    }
  }

  ~CountingTransport() override { flush(); }

  v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                           v6::net::ProbeType type) override {
    const v6::net::ProbeReply reply = inner_->send(addr, type);
    const auto i = static_cast<std::size_t>(type);
    last_type_ = i;
    ++packet_tally_[i];
    if (reply == v6::net::ProbeReply::kTimeout) {
      // Timeouts consumed no wire time (the ProbeTransport contract), so
      // skip the last_wire_nanos() query on the most common path.
      ++timeout_tally_[i];
    } else {
      ++reply_tally_[i];
      const std::uint64_t wire = inner_->last_wire_nanos();
      if (wire != 0) {
        wire_nanos_tally_[i] += wire;
        ++wire_count_tally_[i];
        rtt_tally_[i].record_nanos(wire);
      }
    }
    return reply;
  }

  std::uint64_t packets_sent() const override { return inner_->packets_sent(); }

  std::uint64_t last_wire_nanos() const override {
    return inner_->last_wire_nanos();
  }

  void advance(double seconds) override {
    inner_->advance(seconds);
    // A scanner wait (timeout, retry backoff, adaptive cool-down) is
    // wire time spent on — and attributed to — the last-probed type.
    // The double->integer rounding matches TimerStat::record_seconds,
    // and `seconds` comes off the virtual clock, so the charge is
    // deterministic.
    wire_nanos_tally_[last_type_] +=
        static_cast<std::uint64_t>(seconds * 1e9);
    ++wire_count_tally_[last_type_];
  }

  /// Publishes the accumulated tallies into the registry counters and
  /// zeroes them. Called automatically on destruction.
  void flush() {
    for (std::size_t i = 0; i < v6::net::kNumProbeTypes; ++i) {
      packets_[i]->add(packet_tally_[i]);
      replies_[i]->add(reply_tally_[i]);
      timeouts_[i]->add(timeout_tally_[i]);
      wire_[i]->add_raw(wire_count_tally_[i], wire_nanos_tally_[i]);
      rtt_[i]->add_raw(rtt_tally_[i].take());
      packet_tally_[i] = reply_tally_[i] = timeout_tally_[i] = 0;
      wire_count_tally_[i] = wire_nanos_tally_[i] = 0;
    }
  }

 private:
  /// Plain (single-threaded) histogram accumulator: the per-packet
  /// record is five plain integer ops instead of the shared Histogram's
  /// five atomic RMWs; totals publish via add_raw at flush(). Unit math
  /// matches Histogram::record exactly — nanoseconds ARE the 1e-9
  /// fixed-point units — so the merged totals are bit-identical.
  struct LocalHistogram {
    std::uint64_t count = 0;
    std::uint64_t sum_nanos = 0;
    std::uint64_t min_nanos = ~std::uint64_t{0};
    std::uint64_t max_nanos = 0;
    std::array<std::uint64_t, v6::obs::Histogram::kNumBuckets> buckets{};

    void record_nanos(std::uint64_t nanos) {
      ++count;
      sum_nanos += nanos;
      if (nanos < min_nanos) min_nanos = nanos;
      if (nanos > max_nanos) max_nanos = nanos;
      ++buckets[static_cast<std::size_t>(v6::obs::Histogram::bucket_index(
          static_cast<double>(nanos) * 1e-9))];
    }

    v6::obs::HistogramTotal take() {
      v6::obs::HistogramTotal total;
      total.count = count;
      total.sum_units = sum_nanos;
      total.min_units = min_nanos;
      total.max_units = max_nanos;
      for (int b = 0; b < v6::obs::Histogram::kNumBuckets; ++b) {
        if (buckets[static_cast<std::size_t>(b)] != 0) {
          total.buckets.emplace(b, buckets[static_cast<std::size_t>(b)]);
        }
      }
      *this = LocalHistogram{};
      return total;
    }
  };

  ProbeTransport* inner_;
  std::array<v6::obs::Counter*, v6::net::kNumProbeTypes> packets_{};
  std::array<v6::obs::Counter*, v6::net::kNumProbeTypes> replies_{};
  std::array<v6::obs::Counter*, v6::net::kNumProbeTypes> timeouts_{};
  std::array<v6::obs::TimerStat*, v6::net::kNumProbeTypes> wire_{};
  std::array<v6::obs::Histogram*, v6::net::kNumProbeTypes> rtt_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> packet_tally_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> reply_tally_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> timeout_tally_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> wire_count_tally_{};
  std::array<std::uint64_t, v6::net::kNumProbeTypes> wire_nanos_tally_{};
  std::array<LocalHistogram, v6::net::kNumProbeTypes> rtt_tally_{};
  std::size_t last_type_ = 0;
};

class TracingTransport final : public ProbeTransport {
 public:
  TracingTransport(ProbeTransport& inner, v6::obs::Telemetry& telemetry)
      : inner_(&inner), telemetry_(&telemetry) {}

  v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                           v6::net::ProbeType type) override {
    const v6::net::ProbeReply reply = inner_->send(addr, type);
    if (telemetry_->tracing()) {
      v6::obs::Event event;
      event.kind = v6::obs::Event::Kind::kProbe;
      event.path = addr.to_string();
      event.detail = std::string(v6::net::to_string(type)) + "->" +
                     std::string(v6::net::to_string(reply));
      event.at = telemetry_->since_epoch();
      telemetry_->emit(event);
    }
    return reply;
  }

  std::uint64_t packets_sent() const override { return inner_->packets_sent(); }

  std::uint64_t last_wire_nanos() const override {
    return inner_->last_wire_nanos();
  }

  void advance(double seconds) override { inner_->advance(seconds); }

 private:
  ProbeTransport* inner_;
  v6::obs::Telemetry* telemetry_;
};

}  // namespace v6::probe
