// Stateless probe validation (docs/SCANNER.md): the prober embeds a
// splitmix64 MAC over (addr, seed) in every probe it emits, and the
// receiver recomputes it from the reply's address alone — no shared
// pending-map, no per-probe state on the receive path. A reply whose
// token fails validation is counted and dropped instead of classified
// (the live-scanning analogue: a spoofed or stale packet that does not
// echo our validation bytes).
//
// This is an integrity check against confusion, not a cryptographic MAC:
// splitmix64 is invertible to anyone who knows the construction. The
// paper's Scanv6 role needs replies attributable to probes; it does not
// need to survive an adversary forging them.
#pragma once

#include <cstdint>

#include "net/ipv6.h"
#include "net/rng.h"

namespace v6::probe {

/// The per-scan MAC key derived from the master seed. Hot paths derive
/// it once and use the *_keyed variants; probe_token/validate_probe
/// re-derive per call for convenience.
inline std::uint64_t probe_auth_key(std::uint64_t seed) {
  return v6::net::derive_seed(seed, /*tag=*/0x5EA1ED);
}

/// The validation token for `addr` under an already-derived key.
inline std::uint64_t probe_token_keyed(const v6::net::Ipv6Addr& addr,
                                       std::uint64_t key) {
  return v6::net::splitmix64(v6::net::splitmix64(addr.hi() ^ key) ^
                             addr.lo());
}

inline bool validate_probe_keyed(const v6::net::Ipv6Addr& addr,
                                 std::uint64_t key, std::uint64_t token) {
  return token == probe_token_keyed(addr, key);
}

/// The validation token carried in a probe to `addr` under `seed`. A
/// pure function of its arguments: any party holding the scan seed can
/// recompute it from a reply's source address.
inline std::uint64_t probe_token(const v6::net::Ipv6Addr& addr,
                                 std::uint64_t seed) {
  return probe_token_keyed(addr, probe_auth_key(seed));
}

/// Receiver-side check: does `token` authenticate a probe we sent to
/// `addr` under `seed`?
inline bool validate_probe(const v6::net::Ipv6Addr& addr, std::uint64_t seed,
                           std::uint64_t token) {
  return token == probe_token(addr, seed);
}

}  // namespace v6::probe
