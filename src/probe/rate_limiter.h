// Token-bucket rate limiter over a virtual clock.
//
// The paper rate-limits all scans to 10K pps (Appendix A). In simulation
// we never sleep; instead the limiter advances a virtual clock so that
// experiments can report how long a scan *would* take on the wire, and so
// tests can verify pacing behaviour exactly.
#pragma once

#include <cstdint>

namespace v6::probe {

class RateLimiter {
 public:
  /// `pps` — sustained packets per second. `burst` — bucket capacity.
  /// Degenerate input is clamped rather than trusted: non-positive (or
  /// NaN) pps becomes 1, and a burst below one token (or NaN) becomes 1
  /// — a bucket that can never hold a full token would deadlock the
  /// virtual clock. The comparisons are written `x > bound ? x : bound`
  /// so NaN falls to the clamp side.
  explicit RateLimiter(double pps, double burst = 64.0)
      : pps_(pps > 0 ? pps : 1.0), burst_(burst > 1.0 ? burst : 1.0),
        tokens_(burst_) {}

  /// Accounts for one packet. If the bucket is empty, advances the virtual
  /// clock to the instant the next token accrues. Returns the wait (in
  /// virtual seconds) that a live sender would have incurred.
  double acquire() {
    double waited = 0.0;
    if (tokens_ < 1.0) {
      const double deficit = 1.0 - tokens_;
      waited = deficit / pps_;
      now_ += waited;
      tokens_ = 1.0;
    }
    tokens_ -= 1.0;
    ++sent_;
    return waited;
  }

  /// Advances the virtual clock (e.g. generation time between batches),
  /// refilling tokens. Refill is clamped at `burst_`; zero, negative, and
  /// NaN advances are no-ops (the negated comparison catches NaN, which
  /// `seconds <= 0` would let through to poison the clock).
  void advance(double seconds) {
    if (!(seconds > 0)) return;
    now_ += seconds;
    tokens_ += seconds * pps_;
    if (tokens_ > burst_) tokens_ = burst_;
  }

  /// Virtual time elapsed since construction, in seconds.
  double virtual_now() const { return now_; }

  std::uint64_t packets() const { return sent_; }
  double pps() const { return pps_; }

 private:
  double pps_;
  double burst_;
  double tokens_;
  double now_ = 0.0;
  std::uint64_t sent_ = 0;
};

}  // namespace v6::probe
