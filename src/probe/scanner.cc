#include "probe/scanner.h"

#include <algorithm>
#include <unordered_set>

namespace v6::probe {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

Scanner::Scanner(ProbeTransport& transport, const Blocklist* blocklist,
                 ScanOptions options)
    : transport_(&transport),
      blocklist_(blocklist),
      options_(options),
      limiter_(options.max_pps),
      shuffle_rng_(v6::net::make_rng(options.seed, /*tag=*/0x5CA4)) {}

ProbeReply Scanner::probe_with_retries(const Ipv6Addr& addr, ProbeType type) {
  ProbeReply reply = ProbeReply::kTimeout;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    limiter_.acquire();
    reply = transport_->send(addr, type);
    if (reply != ProbeReply::kTimeout) break;
  }
  return reply;
}

std::optional<ProbeReply> Scanner::probe_one(const Ipv6Addr& addr,
                                             ProbeType type) {
  if (blocklist_ != nullptr && blocklist_->blocked(addr)) {
    return std::nullopt;  // blocked, not timed out: no packet was sent
  }
  return probe_with_retries(addr, type);
}

ScanStats Scanner::scan(std::span<const Ipv6Addr> targets, ProbeType type,
                        const ReplyCallback& on_reply) {
  ScanStats stats;
  stats.targets = targets.size();

  // Dedup while preserving first-seen order, then (optionally) shuffle —
  // every address is probed at most once per scan (paper §4.2 combines
  // and uniquifies targets to minimize per-address probes). The scratch
  // containers are members: clear() keeps their buckets/capacity, so
  // steady-state batches allocate nothing here.
  std::vector<Ipv6Addr>& unique = unique_scratch_;
  unique.clear();
  unique.reserve(targets.size());
  {
    std::unordered_set<Ipv6Addr>& seen = seen_scratch_;
    seen.clear();
    seen.reserve(targets.size());
    for (const Ipv6Addr& a : targets) {
      if (seen.insert(a).second) {
        unique.push_back(a);
      } else {
        ++stats.deduped;
      }
    }
  }
  if (options_.randomize_order) {
    std::shuffle(unique.begin(), unique.end(), shuffle_rng_);
  }

  const std::uint64_t packets_before = transport_->packets_sent();
  const double vtime_before = limiter_.virtual_now();

  for (const Ipv6Addr& addr : unique) {
    if (blocklist_ != nullptr && blocklist_->blocked(addr)) {
      ++stats.blocked;
      continue;
    }
    const ProbeReply reply = probe_with_retries(addr, type);
    ++stats.probed;
    switch (reply) {
      case ProbeReply::kTimeout:
        ++stats.timeouts;
        break;
      case ProbeReply::kRst:
        ++stats.rsts;
        break;
      case ProbeReply::kDestUnreachable:
        ++stats.unreachables;
        break;
      default:
        if (v6::net::is_hit(type, reply)) {
          ++stats.hits;
        }
        break;
    }
    if (on_reply) on_reply(addr, reply);
  }

  stats.packets = transport_->packets_sent() - packets_before;
  stats.virtual_seconds = limiter_.virtual_now() - vtime_before;
  return stats;
}

std::vector<Ipv6Addr> Scanner::scan_hits(std::span<const Ipv6Addr> targets,
                                         ProbeType type,
                                         ScanStats* stats_out) {
  std::vector<Ipv6Addr> hits;
  const ScanStats stats =
      scan(targets, type, [&](const Ipv6Addr& addr, ProbeReply reply) {
        if (v6::net::is_hit(type, reply)) hits.push_back(addr);
      });
  if (stats_out != nullptr) *stats_out = stats;
  return hits;
}

}  // namespace v6::probe
