#include "probe/scanner.h"

#include <algorithm>
#include <string>

namespace v6::probe {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

Scanner::Scanner(ProbeTransport& transport, const Blocklist* blocklist,
                 ScanOptions options)
    : transport_(&transport),
      blocklist_(blocklist),
      options_(options),
      limiter_(options.max_pps),
      shuffle_rng_(v6::net::make_rng(options.seed, /*tag=*/0x5CA4)),
      jitter_rng_(v6::net::make_rng(options.seed, /*tag=*/0xBACC0F)) {
  if (options_.telemetry != nullptr && options_.max_retries > 0) {
    v6::obs::Registry& registry = options_.telemetry->registry();
    retry_counters_.reserve(static_cast<std::size_t>(options_.max_retries));
    for (int k = 1; k <= options_.max_retries; ++k) {
      retry_counters_.push_back(
          &registry.counter("scanner.retry." + std::to_string(k)));
    }
  }
}

void Scanner::wait(double seconds) {
  // Waiting is always virtual: the limiter's clock and the transport
  // chain's fault clock move forward, wall time does not (tools/lint
  // forbids real sleeps in retry paths).
  limiter_.advance(seconds);
  transport_->advance(seconds);
}

ProbeReply Scanner::probe_with_retries(const Ipv6Addr& addr, ProbeType type,
                                       ScanStats* stats) {
  ProbeReply reply = ProbeReply::kTimeout;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    // Everything below the first send sits on the retry path only, which
    // is already the slow (timed-out) case — the common first-attempt
    // send pays nothing.
    if (attempt > 0) {
      if (!retry_counters_.empty()) {
        retry_counters_[static_cast<std::size_t>(attempt - 1)]->inc();
      }
      if (stats != nullptr) ++stats->retransmissions;
      if (options_.retry_backoff_s > 0.0) {
        // Exponential backoff: 1x, 2x, 4x, ... the base (exponent capped
        // so absurd retry counts cannot overflow the shift), optionally
        // jittered by a deterministic seeded draw.
        const int exponent = attempt - 1 < 62 ? attempt - 1 : 62;
        double backoff =
            options_.retry_backoff_s * static_cast<double>(1ULL << exponent);
        if (options_.retry_jitter > 0.0) {
          backoff *= 1.0 + options_.retry_jitter *
                               (2.0 * v6::net::uniform01(jitter_rng_) - 1.0);
        }
        wait(backoff);
        if (stats != nullptr) {
          ++stats->backoffs;
          stats->backoff_seconds += backoff;
        }
      }
    }
    limiter_.acquire();
    reply = transport_->send(addr, type);
    if (reply != ProbeReply::kTimeout) break;
    // Charge the time spent waiting for the reply that never came.
    if (options_.probe_timeout_s > 0.0) wait(options_.probe_timeout_s);
  }
  return reply;
}

void Scanner::note_reply(const Ipv6Addr& addr, ProbeReply reply,
                         ScanStats* stats) {
  if (options_.adaptive_threshold <= 0) return;
  int& streak = timeout_streaks_[addr.masked(options_.adaptive_prefix_len)];
  if (reply != ProbeReply::kTimeout) {
    streak = 0;
    return;
  }
  if (++streak >= options_.adaptive_threshold) {
    // The prefix looks rate-limited (a run of silent probes): cool down
    // so its token bucket refills before we spend more packets there.
    wait(options_.adaptive_backoff_s);
    if (stats != nullptr) {
      ++stats->backoffs;
      stats->backoff_seconds += options_.adaptive_backoff_s;
    }
    streak = 0;
  }
}

std::optional<ProbeReply> Scanner::probe_one(const Ipv6Addr& addr,
                                             ProbeType type) {
  if (blocklist_ != nullptr && blocklist_->blocked(addr)) {
    return std::nullopt;  // blocked, not timed out: no packet was sent
  }
  return probe_with_retries(addr, type, nullptr);
}

ScanStats Scanner::scan(std::span<const Ipv6Addr> targets, ProbeType type,
                        const ReplyCallback& on_reply) {
  v6::obs::Span span(options_.telemetry, "scanner.scan");
  ScanStats stats;
  stats.targets = targets.size();

  // Dedup while preserving first-seen order, then (optionally) shuffle —
  // every address is probed at most once per scan (paper §4.2 combines
  // and uniquifies targets to minimize per-address probes). The scratch
  // containers are members: clear() keeps their buckets/capacity, so
  // steady-state batches allocate nothing here.
  std::vector<Ipv6Addr>& unique = unique_scratch_;
  unique.clear();
  unique.reserve(targets.size());
  {
    v6::net::AddrIndexMap& seen = seen_scratch_;
    seen.clear();
    seen.reserve(targets.size());
    for (const Ipv6Addr& a : targets) {
      if (seen.insert(a, 0)) {
        unique.push_back(a);
      } else {
        ++stats.deduped;
      }
    }
  }
  if (options_.randomize_order) {
    std::shuffle(unique.begin(), unique.end(), shuffle_rng_);
  }

  const std::uint64_t packets_before = transport_->packets_sent();
  const double vtime_before = limiter_.virtual_now();

  for (const Ipv6Addr& addr : unique) {
    if (blocklist_ != nullptr && blocklist_->blocked(addr)) {
      ++stats.blocked;
      continue;
    }
    const ProbeReply reply = probe_with_retries(addr, type, &stats);
    note_reply(addr, reply, &stats);
    ++stats.probed;
    switch (reply) {
      case ProbeReply::kTimeout:
        ++stats.timeouts;
        break;
      case ProbeReply::kRst:
        ++stats.rsts;
        break;
      case ProbeReply::kDestUnreachable:
        ++stats.unreachables;
        break;
      default:
        if (v6::net::is_hit(type, reply)) {
          ++stats.hits;
        }
        break;
    }
    if (on_reply) on_reply(addr, reply);
  }

  stats.packets = transport_->packets_sent() - packets_before;
  stats.virtual_seconds = limiter_.virtual_now() - vtime_before;

  // Bulk-accumulate per-scan counters once per batch (never per packet).
  if (options_.telemetry != nullptr) {
    v6::obs::Registry& registry = options_.telemetry->registry();
    registry.counter("scanner.targets").add(stats.targets);
    registry.counter("scanner.deduped").add(stats.deduped);
    registry.counter("scanner.blocked").add(stats.blocked);
    registry.counter("scanner.probed").add(stats.probed);
    registry.counter("scanner.packets").add(stats.packets);
    registry.counter("scanner.hits").add(stats.hits);
    registry.counter("scanner.timeouts").add(stats.timeouts);
    // Robust-path counters appear only when the path actually fired, so
    // legacy (no-fault) reports keep their exact counter set.
    if (stats.retransmissions != 0) {
      registry.counter("scanner.retransmissions").add(stats.retransmissions);
    }
    if (stats.backoffs != 0) {
      registry.counter("scanner.backoffs").add(stats.backoffs);
    }
    // Per-batch distributions, both on the virtual clock (deterministic
    // across jobs counts — see docs/OBSERVABILITY.md).
    registry.histogram("scanner.batch.targets")
        .record(static_cast<double>(stats.targets));
    registry.histogram("scanner.batch.virtual_seconds")
        .record(stats.virtual_seconds);
  }
  return stats;
}

ScanResult Scanner::scan_hits(std::span<const Ipv6Addr> targets,
                              ProbeType type) {
  ScanResult result;
  result.stats =
      scan(targets, type, [&](const Ipv6Addr& addr, ProbeReply reply) {
        if (v6::net::is_hit(type, reply)) result.hits.push_back(addr);
      });
  return result;
}

}  // namespace v6::probe
