// The scan engine: dedup, blocklist, randomized order, retries, reply
// classification, and per-reply statistics.
//
// This plays the role of Scanv6 in the paper (§4.2): a list-driven scanner
// with blocklisting and response verification that the TGA pipeline and
// the dealiasers share.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/addr_index.h"
#include "net/ipv6.h"
#include "net/rng.h"
#include "net/service.h"
#include "obs/telemetry.h"
#include "probe/blocklist.h"
#include "probe/rate_limiter.h"
#include "probe/transport.h"

namespace v6::probe {

/// Scanner configuration. Defaults story: a default-constructed
/// ScanOptions is the paper's regular scan — 1 retry, shuffled order,
/// 10K pps, seed 0, uninstrumented. Override with designated
/// initializers or the fluent `with_*` chain:
///
///   Scanner s(transport, nullptr, ScanOptions{}.with_seed(7).with_retries(3));
struct ScanOptions {
  /// Extra transmissions after a timeout (paper uses 3 packet retries for
  /// dealiasing probes; regular scan probes use 1 retry).
  int max_retries = 1;
  /// Shuffle target order before probing (paper Appendix A).
  bool randomize_order = true;
  /// Sustained packet rate; drives the virtual clock only.
  double max_pps = 10000.0;
  /// Seed for shuffle order (and nothing else).
  std::uint64_t seed = 0;
  /// Optional instrumentation context (borrowed). When set, the scanner
  /// opens a `scanner.scan` span per scan() call and keeps
  /// `scanner.*` counters, including a per-retry histogram
  /// (`scanner.retry.<k>`). Never alters scan results.
  v6::obs::Telemetry* telemetry = nullptr;

  // --- Robust-scanner path (docs/ROBUSTNESS.md). All defaults are off,
  // so a default-constructed ScanOptions behaves exactly as before the
  // fault plane existed: no extra waits, no extra RNG draws.

  /// Virtual seconds charged per unanswered probe — the wait before the
  /// scanner declares a timeout. 0 keeps the legacy instant-timeout
  /// model. Waits advance the rate limiter's clock AND the transport
  /// chain (ProbeTransport::advance), so fault-plane token buckets
  /// refill while the scanner waits.
  double probe_timeout_s = 0.0;
  /// Base wait before the k-th retransmission: 2^(k-1) * retry_backoff_s
  /// (exponential backoff). 0 retransmits immediately.
  double retry_backoff_s = 0.0;
  /// Fractional jitter on each backoff wait, drawn from a dedicated
  /// seeded RNG (net/rng.h): the wait is scaled by a uniform factor in
  /// [1-jitter, 1+jitter]. Deterministic per seed; 0 draws nothing.
  double retry_jitter = 0.0;
  /// Consecutive final timeouts inside one /adaptive_prefix_len bucket
  /// that trip an adaptive cool-down (rate-limit back-pressure signal).
  /// 0 disables adaptive backoff.
  int adaptive_threshold = 0;
  /// Cool-down wait in virtual seconds when the threshold trips.
  double adaptive_backoff_s = 0.0;
  /// Prefix length grouping targets for the adaptive timeout streak.
  int adaptive_prefix_len = 48;

  ScanOptions& with_retries(int v) { max_retries = v; return *this; }
  ScanOptions& with_randomize_order(bool v) { randomize_order = v; return *this; }
  ScanOptions& with_max_pps(double v) { max_pps = v; return *this; }
  ScanOptions& with_seed(std::uint64_t v) { seed = v; return *this; }
  ScanOptions& with_telemetry(v6::obs::Telemetry* t) { telemetry = t; return *this; }
  ScanOptions& with_probe_timeout(double seconds) { probe_timeout_s = seconds; return *this; }
  ScanOptions& with_retry_backoff(double base_s, double jitter = 0.0) {
    retry_backoff_s = base_s;
    retry_jitter = jitter;
    return *this;
  }
  ScanOptions& with_adaptive_backoff(int threshold, double wait_s,
                                     int prefix_len = 48) {
    adaptive_threshold = threshold;
    adaptive_backoff_s = wait_s;
    adaptive_prefix_len = prefix_len;
    return *this;
  }
};

struct ScanStats {
  std::uint64_t targets = 0;       // addresses submitted
  std::uint64_t deduped = 0;       // duplicates removed
  std::uint64_t blocked = 0;       // skipped by blocklist
  std::uint64_t probed = 0;        // unique addresses actually probed
  std::uint64_t packets = 0;       // packets emitted (incl. retries)
  std::uint64_t hits = 0;          // positive replies
  std::uint64_t rsts = 0;          // TCP RSTs (not hits)
  std::uint64_t unreachables = 0;  // ICMP errors (not hits)
  std::uint64_t timeouts = 0;
  double virtual_seconds = 0.0;    // wire time at max_pps (incl. waits)
  // Robust-scanner path accounting (all zero when the path is off):
  std::uint64_t retransmissions = 0;  // retry packets actually sent
  std::uint64_t backoffs = 0;         // backoff waits taken (retry + adaptive)
  double backoff_seconds = 0.0;       // virtual time spent in those waits
};

/// What a hit-collecting scan returns: the positive responders plus the
/// full statistics of the pass that found them.
struct ScanResult {
  std::vector<v6::net::Ipv6Addr> hits;
  ScanStats stats;
};

/// Probes a target list once per unique address and classifies replies.
class Scanner {
 public:
  /// `blocklist` may be null (no blocklisting). The transport is borrowed
  /// and must outlive the scanner.
  Scanner(ProbeTransport& transport, const Blocklist* blocklist,
          ScanOptions options);

  using ReplyCallback =
      std::function<void(const v6::net::Ipv6Addr&, v6::net::ProbeReply)>;

  /// Scans `targets` on `type`. Invokes `on_reply` for every probed
  /// address with its final classified reply (after retries). Pass an
  /// empty callback to collect statistics only.
  ScanStats scan(std::span<const v6::net::Ipv6Addr> targets,
                 v6::net::ProbeType type, const ReplyCallback& on_reply);

  /// Convenience: collects the addresses that replied positively ("hits"
  /// per the paper's rules: echo reply / SYN-ACK / UDP reply only)
  /// together with the scan's statistics.
  ScanResult scan_hits(std::span<const v6::net::Ipv6Addr> targets,
                       v6::net::ProbeType type);

  /// Probes a single address with retries. Returns std::nullopt when the
  /// address is blocklisted (no packet sent) — distinct from a timeout,
  /// which means the address was probed and never answered.
  std::optional<v6::net::ProbeReply> probe_one(const v6::net::Ipv6Addr& addr,
                                               v6::net::ProbeType type);

  /// Cumulative virtual wire time across all scans by this scanner.
  double virtual_seconds() const { return limiter_.virtual_now(); }

 private:
  /// The shared send loop: rate-limited transmissions until a non-timeout
  /// reply or retries are exhausted, with optional timeout waits and
  /// exponential backoff between attempts. Does NOT consult the
  /// blocklist. `stats` may be null (probe_one path).
  v6::net::ProbeReply probe_with_retries(const v6::net::Ipv6Addr& addr,
                                         v6::net::ProbeType type,
                                         ScanStats* stats);

  /// Lets `seconds` of virtual time pass: advances the pacing limiter
  /// and the transport chain (fault-plane buckets refill). Never sleeps.
  void wait(double seconds);

  /// Feeds the adaptive-backoff streak tracker with `addr`'s final
  /// classified reply; may take a cool-down wait.
  void note_reply(const v6::net::Ipv6Addr& addr, v6::net::ProbeReply reply,
                  ScanStats* stats);

  ProbeTransport* transport_;
  const Blocklist* blocklist_;
  ScanOptions options_;
  RateLimiter limiter_;
  v6::net::Rng shuffle_rng_;
  /// Backoff jitter stream, independent of the shuffle stream; only ever
  /// drawn when retry_jitter > 0, so the default path consumes nothing.
  v6::net::Rng jitter_rng_;
  /// Consecutive-timeout streak per /adaptive_prefix_len bucket. Kept
  /// across scan() calls (the back-pressure signal outlives a batch);
  /// only populated when adaptive_threshold > 0.
  std::unordered_map<v6::net::Ipv6Addr, int, v6::net::Ipv6AddrHash>
      timeout_streaks_;
  /// Retry histogram counters (`scanner.retry.<k>`), resolved once when
  /// telemetry is attached; empty otherwise. retry_counters_[k-1] counts
  /// addresses that needed a k-th retransmission.
  std::vector<v6::obs::Counter*> retry_counters_;
  /// Per-scan dedup scratch, reused across batches so the hot loop does
  /// not reallocate hash buckets every call. The flat open-addressing
  /// table (net/addr_index.h) replaces the old std::unordered_set: no
  /// per-node allocation, one cache line per lookup. Scanner is
  /// therefore not reentrant from its own ReplyCallback (it never was:
  /// the transport and rate limiter are shared state too).
  v6::net::AddrIndexMap seen_scratch_;
  std::vector<v6::net::Ipv6Addr> unique_scratch_;
};

}  // namespace v6::probe
