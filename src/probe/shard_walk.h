// Sharded cyclic iteration over a target index space — the ZMap idiom
// (docs/SCANNER.md): instead of materializing and shuffling the target
// list, walk a seeded full-cycle permutation of [0, n) and decimate the
// cycle across shards, so N probers cover disjoint slices with zero
// shared mutable state and no shuffle buffer.
//
// Construction: pick m = smallest power of two >= max(n, 4) and a seeded
// affine map f(x) = a·x + c (mod m). By the Hull–Dobell theorem the map
// has full period 2^k exactly when c is odd and a ≡ 1 (mod 4), so the
// orbit x0, f(x0), f²(x0), … visits every value in [0, m) exactly once
// per cycle. Values >= n are skipped on the fly (at most half the cycle,
// since m < 2n for n >= 4).
//
// Sharding is decimation in *cycle position*, not in value: shard k of S
// visits positions p ≡ k (mod S). Stepping S positions at once is another
// affine map — f^S, with coefficients computed by binary composition
// ((a₁,c₁)∘(a₂,c₂) = (a₁a₂, a₁c₂ + c₁) for "apply f₂ then f₁") — so each
// shard advances with one multiply-add per step regardless of S.
//
// The emitted cycle position `pos` is the global sort key: it depends
// only on (n, seed), never on the shard count, and single-shard
// iteration emits positions in increasing order. Sorting any shard
// merge by pos therefore reproduces the 1-shard order bit-for-bit —
// the determinism contract the streaming scanner's receiver relies on.
//
// Known (and accepted) structure: an affine map mod 2^k has short-period
// low bits, so consecutive indices alternate parity. The walk is a scan
// ordering, not a statistical RNG; dispersion across the high bits is
// what spreads probes across the target space.
#pragma once

#include <cstdint>

#include "check/contracts.h"
#include "net/rng.h"

namespace v6::probe {

/// One emitted target: the index into the caller's target span plus the
/// global cycle position it was visited at (the canonical sort key).
struct ShardItem {
  std::uint64_t index = 0;
  std::uint64_t pos = 0;
};

/// The seeded permutation parameters shared by every shard of one walk.
class ShardPlan {
 public:
  /// `n` — number of target indices; `seed` — master seed (the walk is a
  /// pure function of (n, seed)).
  ShardPlan(std::uint64_t n, std::uint64_t seed) : n_(n) {
    m_ = 4;
    while (m_ < n) m_ <<= 1;
    V6_INVARIANT_MSG(m_ != 0, "cycle size overflowed; target count too large");
    const std::uint64_t mask = m_ - 1;
    const std::uint64_t r0 = v6::net::derive_seed(seed, /*tag=*/0x5A17D0);
    const std::uint64_t r1 = v6::net::derive_seed(seed, /*tag=*/0x5A17D1);
    const std::uint64_t r2 = v6::net::derive_seed(seed, /*tag=*/0x5A17D2);
    a_ = ((r0 & mask) & ~std::uint64_t{3}) | 1;  // a ≡ 1 (mod 4)
    c_ = (r1 & mask) | 1;                        // c odd
    x0_ = r2 & mask;
  }

  std::uint64_t size() const { return n_; }
  std::uint64_t cycle_length() const { return m_; }
  std::uint64_t multiplier() const { return a_; }
  std::uint64_t increment() const { return c_; }
  std::uint64_t start() const { return x0_; }

 private:
  std::uint64_t n_;
  std::uint64_t m_;
  std::uint64_t a_;
  std::uint64_t c_;
  std::uint64_t x0_;
};

/// Iterates shard `shard` of `num_shards` over a plan's cycle. Each
/// instance is self-contained (a handful of integers), so shard workers
/// share nothing mutable.
class ShardWalk {
 public:
  ShardWalk(const ShardPlan& plan, std::uint64_t shard,
            std::uint64_t num_shards)
      : n_(plan.size()), m_(plan.cycle_length()), mask_(m_ - 1) {
    V6_REQUIRE_MSG(num_shards > 0, "need at least one shard");
    V6_REQUIRE_MSG(shard < num_shards, "shard id out of range");
    // Step map f^S and the shard's starting point f^shard(x0), both via
    // binary composition of affine maps (O(log S)).
    const Affine step = pow_affine({plan.multiplier(), plan.increment()},
                                   num_shards, mask_);
    const Affine offset = pow_affine({plan.multiplier(), plan.increment()},
                                     shard, mask_);
    step_a_ = step.a;
    step_c_ = step.c;
    x_ = offset.apply(plan.start(), mask_);
    pos_ = shard;
    stride_ = num_shards;
  }

  /// Emits the shard's next in-range item. Returns false when this
  /// shard's slice of the cycle is exhausted.
  bool next(ShardItem* out) {
    while (pos_ < m_) {
      const std::uint64_t x = x_;
      const std::uint64_t p = pos_;
      x_ = (step_a_ * x_ + step_c_) & mask_;
      // Guard the position counter against wrap when m_ is within
      // stride_ of 2^64 (impossible for real target counts, cheap to
      // rule out anyway).
      pos_ = p + stride_ < p ? m_ : p + stride_;
      if (x < n_) {
        out->index = x;
        out->pos = p;
        return true;
      }
    }
    return false;
  }

 private:
  struct Affine {
    std::uint64_t a = 1;
    std::uint64_t c = 0;

    std::uint64_t apply(std::uint64_t x, std::uint64_t mask) const {
      return (a * x + c) & mask;
    }
  };

  /// f^e by square-and-multiply: compose(f, g)(x) = f(g(x)).
  static Affine pow_affine(Affine base, std::uint64_t e, std::uint64_t mask) {
    Affine result;  // identity
    while (e != 0) {
      if (e & 1) result = compose(base, result, mask);
      base = compose(base, base, mask);
      e >>= 1;
    }
    return result;
  }

  static Affine compose(const Affine& f, const Affine& g, std::uint64_t mask) {
    return {(f.a * g.a) & mask, (f.a * g.c + f.c) & mask};
  }

  std::uint64_t n_;
  std::uint64_t m_;
  std::uint64_t mask_;
  std::uint64_t step_a_ = 1;
  std::uint64_t step_c_ = 0;
  std::uint64_t x_ = 0;
  std::uint64_t pos_ = 0;
  std::uint64_t stride_ = 1;
};

}  // namespace v6::probe
