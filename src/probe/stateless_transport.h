// Per-probe stateless simulated transport for the streaming scanner.
//
// SimTransport draws loss randomness from one sequential mt19937_64
// stream, so the reply to probe #k depends on every probe before it —
// fine for a single sequential scanner, fatal for sharding, where the
// contract (docs/SCANNER.md) is that merged shard outcomes are
// bit-identical to a single-shard scan. StatelessSimTransport instead
// builds a fresh counter-based engine per send(), keyed by
// (seed, addr, attempt): every reply is a pure function of the probe
// itself, independent of ordering, interleaving, and shard count.
//
// `attempt` is tracked by counting consecutive sends to the same
// address — exactly the retransmission pattern the scanner emits — so a
// rate-limited region that dropped the first probe can still answer the
// retry with an independent coin, matching live-scan semantics. Call
// reset() between scans so attempt numbering can never leak across
// scans (shard-invariance depends on it).
#pragma once

#include <cstdint>

#include "net/ipv6.h"
#include "net/rng.h"
#include "probe/transport.h"
#include "simnet/universe.h"

namespace v6::probe {

class StatelessSimTransport final : public ProbeTransport {
 public:
  StatelessSimTransport(const v6::simnet::Universe& universe,
                        std::uint64_t seed)
      : universe_(&universe),
        base_(v6::net::derive_seed(seed, /*tag=*/0x57A7E)) {}

  v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                           v6::net::ProbeType type) override {
    if (has_last_ && addr == last_addr_) {
      ++attempt_;
    } else {
      attempt_ = 0;
    }
    has_last_ = true;
    ++packets_;
    // Engine keyed by the probe identity; the universe draws from it
    // only for the few regions that are actually stochastic.
    v6::net::SplitMixRng rng(
        v6::net::splitmix64(v6::net::splitmix64(base_ ^ addr.hi()) ^
                            addr.lo()) ^
        attempt_);
    const v6::net::ProbeReply reply = universe_->probe(addr, type, rng);
    last_addr_ = addr;
    last_replied_ = reply != v6::net::ProbeReply::kTimeout;
    return reply;
  }

  std::uint64_t packets_sent() const override { return packets_; }

  std::uint64_t last_wire_nanos() const override {
    return last_replied_ ? v6::simnet::Universe::rtt_nanos(last_addr_) : 0;
  }

  /// Clears the consecutive-send attempt tracking (not the packet
  /// counter). Must be called at the start of each scan.
  void reset() {
    attempt_ = 0;
    has_last_ = false;
    last_replied_ = false;
  }

 private:
  const v6::simnet::Universe* universe_;
  std::uint64_t base_;
  std::uint64_t packets_ = 0;
  std::uint64_t attempt_ = 0;
  v6::net::Ipv6Addr last_addr_;
  bool has_last_ = false;
  bool last_replied_ = false;
};

}  // namespace v6::probe
