#include "probe/stream_scanner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "check/contracts.h"
#include "check/validate.h"
#include "net/rng.h"
#include "obs/watchdog.h"
#include "probe/instrumented_transport.h"
#include "probe/probe_auth.h"
#include "probe/rate_limiter.h"
#include "probe/shard_walk.h"
#include "probe/stateless_transport.h"
#include "runtime/bounded_queue.h"
#include "runtime/worker_group.h"

namespace v6::probe {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

namespace {

/// All streaming wait accounting is integer nanoseconds: uint64 sums are
/// order-free, so folding per-shard tallies gives the same totals for
/// every shard count (double sums would not).
std::uint64_t to_nanos(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

/// Per-(addr, attempt) key for the stateless jitter engine.
std::uint64_t probe_key(std::uint64_t base, const Ipv6Addr& addr,
                        std::uint64_t attempt) {
  return v6::net::splitmix64(v6::net::splitmix64(base ^ addr.hi()) ^
                             addr.lo()) ^
         attempt;
}

/// Arms a stage heartbeat for a scan and disarms it on every exit path
/// (a disarmed stage is never considered stalled between scans).
struct ArmedStage {
  v6::obs::Heartbeat* heartbeat;
  explicit ArmedStage(v6::obs::Heartbeat* hb) : heartbeat(hb) {
    if (heartbeat != nullptr) heartbeat->arm();
  }
  ~ArmedStage() {
    if (heartbeat != nullptr) heartbeat->disarm();
  }
  void beat() {
    if (heartbeat != nullptr) heartbeat->beat();
  }
};

}  // namespace

/// One shard's private world: transport chain, rate budget slice, retry
/// and adaptive state, and plain-integer tallies. A Lane is touched by
/// exactly one prober thread during a scan and by the caller thread
/// outside it; nothing here is shared.
struct StreamScanner::Lane {
  Lane(const v6::simnet::Universe& universe, const Blocklist* /*blocklist*/,
       const StreamScanOptions& options, unsigned shard, double lane_pps)
      : wire(universe, options.scan.seed), limiter(lane_pps) {
    ProbeTransport* top = &wire;
    if (options.decorate) {
      decorated = options.decorate(wire, shard);
      if (decorated != nullptr) top = decorated.get();
    }
    v6::obs::Telemetry* const telemetry = options.scan.telemetry;
    if (telemetry != nullptr) {
      counting.emplace(*top, telemetry->registry());
      top = &*counting;
    }
    transport = top;
    if (options.scan.max_retries > 0) {
      retry_tallies.assign(static_cast<std::size_t>(options.scan.max_retries),
                           0);
    }
  }

  StatelessSimTransport wire;
  std::unique_ptr<ProbeTransport> decorated;
  std::optional<CountingTransport> counting;
  ProbeTransport* transport = nullptr;
  RateLimiter limiter;
  /// `scanner.retry.<k>` tallies; summed across lanes in shard order at
  /// flush_telemetry (atomics would serialize the probers for nothing).
  std::vector<std::uint64_t> retry_tallies;
  /// Adaptive-backoff streaks, per lane: the back-pressure control loop
  /// reacts to the shard's own probe sequence (docs/SCANNER.md caveat).
  std::unordered_map<Ipv6Addr, int, v6::net::Ipv6AddrHash> timeout_streaks;

  // Per-scan tallies, reset by scan() before the workers start.
  std::uint64_t blocked = 0;
  std::uint64_t probed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t backoffs = 0;
  std::uint64_t backoff_nanos = 0;
  std::uint64_t wait_nanos = 0;
  std::uint64_t packets_before = 0;
};

namespace {

/// A probe target in flight: the index into the caller's span plus its
/// global cycle position (the canonical merge key).
using TargetBatch = std::vector<ShardItem>;

/// A classified wire event headed for the receiver. The token is the
/// stateless MAC the receiver validates before classifying.
struct ReplyRecord {
  Ipv6Addr addr;
  std::uint64_t pos = 0;
  std::uint64_t token = 0;
  ProbeReply reply = ProbeReply::kTimeout;
};

using ReplyBatch = std::vector<ReplyRecord>;

/// Producer-side iterator: the seeded permutation walk, or a plain
/// strided index walk when randomize_order is off (pos == index keeps
/// the merge key meaningful either way).
struct WalkAdapter {
  std::optional<ShardWalk> perm;
  std::uint64_t x = 0;
  std::uint64_t n = 0;
  std::uint64_t stride = 1;

  bool next(ShardItem* out) {
    if (perm.has_value()) return perm->next(out);
    if (x >= n) return false;
    out->index = x;
    out->pos = x;
    x += stride;
    return true;
  }
};

}  // namespace

void StreamScanOptions::validate() const {
  const v6::check::Validator v("StreamScanOptions");
  v.positive(shards, "shards");
  v.positive(batch, "batch");
  v.positive(queue_capacity, "queue_capacity");
  v.non_negative(scan.max_retries, "scan.max_retries");
  v.positive(scan.max_pps, "scan.max_pps");
  v.non_negative(scan.probe_timeout_s, "scan.probe_timeout_s");
  v.non_negative(scan.retry_backoff_s, "scan.retry_backoff_s");
  v.unit_interval(scan.retry_jitter, "scan.retry_jitter");
  v.non_negative(scan.adaptive_threshold, "scan.adaptive_threshold");
  v.non_negative(scan.adaptive_backoff_s, "scan.adaptive_backoff_s");
  v.require(scan.adaptive_prefix_len > 0 && scan.adaptive_prefix_len <= 128,
            "scan.adaptive_prefix_len", "must be in [1, 128]");
}

StreamScanner::StreamScanner(const v6::simnet::Universe& universe,
                             const Blocklist* blocklist,
                             StreamScanOptions options)
    : universe_(&universe),
      blocklist_(blocklist),
      options_(std::move(options)) {
  options_.validate();
  jitter_base_ = v6::net::derive_seed(options_.scan.seed, /*tag=*/0xBACC0F);
  // Each lane gets an equal slice of the packet budget (the limiter
  // clamps degenerate pps itself).
  const double lane_pps =
      options_.scan.max_pps / static_cast<double>(options_.shards);
  lanes_.reserve(options_.shards);
  for (unsigned s = 0; s < options_.shards; ++s) {
    lanes_.push_back(
        std::make_unique<Lane>(*universe_, blocklist_, options_, s, lane_pps));
  }
  v6::obs::Telemetry* const telemetry = options_.scan.telemetry;
  if (telemetry != nullptr && options_.scan.max_retries > 0) {
    v6::obs::Registry& registry = telemetry->registry();
    retry_counters_.reserve(
        static_cast<std::size_t>(options_.scan.max_retries));
    for (int k = 1; k <= options_.scan.max_retries; ++k) {
      retry_counters_.push_back(
          &registry.counter("scanner.retry." + std::to_string(k)));
    }
  }
}

StreamScanner::~StreamScanner() { flush_telemetry(); }

void StreamScanner::flush_telemetry() {
  v6::obs::Telemetry* const telemetry = options_.scan.telemetry;
  if (telemetry == nullptr) return;
  // Shard order, so repeated runs publish identically; the per-lane
  // tallies are zeroed by the flush, which makes this idempotent.
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    if (lane->counting.has_value()) lane->counting->flush();
  }
  for (std::size_t k = 0; k < retry_counters_.size(); ++k) {
    std::uint64_t total = 0;
    for (const std::unique_ptr<Lane>& lane : lanes_) {
      total += lane->retry_tallies[k];
      lane->retry_tallies[k] = 0;
    }
    if (total != 0) retry_counters_[k]->add(total);
  }
}

std::uint64_t StreamScanner::packets_sent() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    total += lane->transport->packets_sent();
  }
  return total;
}

void StreamScanner::lane_wait(Lane& lane, double seconds) {
  // Virtual, never wall time: the lane's pacing clock and transport
  // chain (fault buckets) move forward together, as in Scanner::wait.
  lane.limiter.advance(seconds);
  lane.transport->advance(seconds);
}

ProbeReply StreamScanner::lane_probe(Lane& lane, const Ipv6Addr& addr,
                                     ProbeType type) const {
  ProbeReply reply = ProbeReply::kTimeout;
  for (int attempt = 0; attempt <= options_.scan.max_retries; ++attempt) {
    if (attempt > 0) {
      if (!lane.retry_tallies.empty()) {
        ++lane.retry_tallies[static_cast<std::size_t>(attempt - 1)];
      }
      ++lane.retransmissions;
      if (options_.scan.retry_backoff_s > 0.0) {
        const int exponent = attempt - 1 < 62 ? attempt - 1 : 62;
        double backoff = options_.scan.retry_backoff_s *
                         static_cast<double>(1ULL << exponent);
        if (options_.scan.retry_jitter > 0.0) {
          // Stateless jitter: a fresh engine per (addr, attempt), so the
          // draw is identical no matter which shard retries the address.
          v6::net::SplitMixRng jitter_rng(
              probe_key(jitter_base_, addr,
                        static_cast<std::uint64_t>(attempt)));
          backoff *= 1.0 + options_.scan.retry_jitter *
                               (2.0 * v6::net::uniform01(jitter_rng) - 1.0);
        }
        lane_wait(lane, backoff);
        ++lane.backoffs;
        const std::uint64_t nanos = to_nanos(backoff);
        lane.backoff_nanos += nanos;
        lane.wait_nanos += nanos;
      }
    }
    lane.limiter.acquire();
    reply = lane.transport->send(addr, type);
    if (reply != ProbeReply::kTimeout) break;
    if (options_.scan.probe_timeout_s > 0.0) {
      lane_wait(lane, options_.scan.probe_timeout_s);
      lane.wait_nanos += to_nanos(options_.scan.probe_timeout_s);
    }
  }
  return reply;
}

void StreamScanner::note_reply(Lane& lane, const Ipv6Addr& addr,
                               ProbeReply reply) const {
  if (options_.scan.adaptive_threshold <= 0) return;
  int& streak =
      lane.timeout_streaks[addr.masked(options_.scan.adaptive_prefix_len)];
  if (reply != ProbeReply::kTimeout) {
    streak = 0;
    return;
  }
  if (++streak >= options_.scan.adaptive_threshold) {
    lane_wait(lane, options_.scan.adaptive_backoff_s);
    ++lane.backoffs;
    const std::uint64_t nanos = to_nanos(options_.scan.adaptive_backoff_s);
    lane.backoff_nanos += nanos;
    lane.wait_nanos += nanos;
    streak = 0;
  }
}

ScanStats StreamScanner::scan(std::span<const Ipv6Addr> targets,
                              ProbeType type, const ReplyCallback& on_reply) {
  v6::obs::Span span(options_.scan.telemetry, "scanner.scan");
  ScanStats stats;
  stats.targets = targets.size();
  // Wall-side observability state: stage heartbeats for the watchdog
  // and queue totals captured before the stage queues die. All of it
  // feeds `.wall`-suffixed metrics, exempt from the shard/jobs
  // determinism contract (docs/OBSERVABILITY.md).
  v6::obs::StallWatchdog* const watchdog = options_.watchdog;
  std::vector<v6::runtime::QueueTotals> target_totals;
  v6::runtime::QueueTotals reply_totals;
  bool have_queue_totals = false;
  const auto wall_start = std::chrono::steady_clock::now();

  // Dedup on the caller thread: one flat-table pass marks the first
  // occurrence of each address. The producer then streams indices with
  // keep_[i] set — no uniquified copy of the target list is built.
  dedup_.clear();
  dedup_.reserve(targets.size());
  keep_.assign(targets.size(), 0);
  std::uint64_t unique_count = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (dedup_.insert(targets[i], 0)) {
      keep_[i] = 1;
      ++unique_count;
    } else {
      ++stats.deduped;
    }
  }

  const unsigned num_shards = shards();
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    lane->wire.reset();
    lane->blocked = 0;
    lane->probed = 0;
    lane->retransmissions = 0;
    lane->backoffs = 0;
    lane->backoff_nanos = 0;
    lane->wait_nanos = 0;
    lane->packets_before = lane->transport->packets_sent();
  }

  // The permutation plan is a pure function of (n, seed), shared by all
  // walks; built once on the caller thread.
  std::optional<ShardPlan> plan;
  if (options_.scan.randomize_order) {
    plan.emplace(targets.size(), options_.scan.seed);
  }
  auto make_walk = [&](unsigned shard) {
    WalkAdapter walk;
    if (plan.has_value()) {
      walk.perm.emplace(*plan, shard, num_shards);
    } else {
      walk.x = shard;
      walk.n = targets.size();
      walk.stride = num_shards;
    }
    return walk;
  };

  // Classification fold: the only stage that touches ScanStats and the
  // caller's callback. Runs on the caller thread in canonical
  // (cycle-position) order in both execution modes.
  auto classify = [&](const Ipv6Addr& addr, ProbeReply reply) {
    switch (reply) {
      case ProbeReply::kTimeout:
        ++stats.timeouts;
        break;
      case ProbeReply::kRst:
        ++stats.rsts;
        break;
      case ProbeReply::kDestUnreachable:
        ++stats.unreachables;
        break;
      default:
        if (v6::net::is_hit(type, reply)) ++stats.hits;
        break;
    }
    if (on_reply) on_reply(addr, reply);
  };

  if (num_shards == 1) {
    // Degenerate pipeline: with one shard nothing can overlap, so the
    // stages fuse into a single loop on the caller thread. The walk
    // already emits in canonical pos order and no record ever crosses a
    // thread boundary, so there is nothing to queue, tokenize, or merge
    // — the queues, reply records, and stateless MACs below are the
    // machinery of the multi-shard hand-off, not of the scan itself.
    // bench_throughput's single-core gate holds this loop to the batch
    // engine's per-probe cost, and the threaded merge must stay
    // bit-identical to it (stream_scanner_test compares the two).
    Lane& lane = *lanes_[0];
    ArmedStage stage(watchdog != nullptr ? &watchdog->stage("stream.scan")
                                         : nullptr);
    WalkAdapter walk = make_walk(0);
    ShardItem item;
    while (walk.next(&item)) {
      if (keep_[item.index] == 0) continue;
      const Ipv6Addr& addr = targets[item.index];
      if (blocklist_ != nullptr && blocklist_->blocked(addr)) {
        ++lane.blocked;
        continue;
      }
      const ProbeReply reply = lane_probe(lane, addr, type);
      note_reply(lane, addr, reply);
      ++lane.probed;
      classify(addr, reply);
      stage.beat();
    }
  } else {
    const std::uint64_t auth_key = probe_auth_key(options_.scan.seed);

    // Prober stage: probes one target batch on `lane`, appending one
    // authenticated ReplyRecord per probed address. Touches only the
    // lane's own state — safe on any thread that owns the lane.
    auto probe_batch = [&](Lane& lane, const TargetBatch& batch,
                           ReplyBatch* out) {
      for (const ShardItem& item : batch) {
        const Ipv6Addr& addr = targets[item.index];
        if (blocklist_ != nullptr && blocklist_->blocked(addr)) {
          ++lane.blocked;
          continue;
        }
        const ProbeReply reply = lane_probe(lane, addr, type);
        note_reply(lane, addr, reply);
        ++lane.probed;
        out->push_back(ReplyRecord{addr, item.pos,
                                   probe_token_keyed(addr, auth_key), reply});
      }
    };

    struct ReplayRecord {
      Ipv6Addr addr;
      std::uint64_t pos = 0;
      ProbeReply reply = ProbeReply::kTimeout;
    };
    std::vector<ReplayRecord> replay;
    replay.reserve(unique_count);

    // Receiver stage: validates tokens and folds a reply batch into the
    // replay buffer. Runs on the caller thread.
    auto absorb = [&](const ReplyBatch& batch) {
      for (const ReplyRecord& record : batch) {
        if (!validate_probe_keyed(record.addr, auth_key, record.token)) {
          ++invalid_replies_;
          continue;
        }
        replay.push_back(ReplayRecord{record.addr, record.pos, record.reply});
      }
    };

    // Queues before workers: locals die in reverse order, so the worker
    // group (which joins its threads) always outlives the queues.
    std::vector<std::unique_ptr<v6::runtime::BoundedQueue<TargetBatch>>>
        target_queues;
    target_queues.reserve(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
      target_queues.push_back(
          std::make_unique<v6::runtime::BoundedQueue<TargetBatch>>(
              options_.queue_capacity));
    }
    v6::runtime::BoundedQueue<ReplyBatch> reply_queue(options_.queue_capacity *
                                                      num_shards);
    std::atomic<unsigned> live_probers{num_shards};
    // Stage heartbeats (armed inside each worker, disarmed on every exit
    // path) and a live reply-queue depth gauge the receiver refreshes
    // per batch, so an admin scrape mid-scan sees current backpressure.
    v6::obs::Heartbeat* const producer_hb =
        watchdog != nullptr ? &watchdog->stage("stream.producer") : nullptr;
    v6::obs::Heartbeat* const receiver_hb =
        watchdog != nullptr ? &watchdog->stage("stream.receiver") : nullptr;
    std::vector<v6::obs::Heartbeat*> prober_hbs(num_shards, nullptr);
    if (watchdog != nullptr) {
      for (unsigned s = 0; s < num_shards; ++s) {
        prober_hbs[s] = &watchdog->stage("stream.prober." + std::to_string(s));
      }
    }
    v6::obs::Gauge* reply_depth_gauge = nullptr;
    if (v6::obs::Telemetry* const telemetry = options_.scan.telemetry;
        telemetry != nullptr) {
      reply_depth_gauge =
          &telemetry->registry().gauge("stream.queue.reply.depth.wall");
    }
    v6::runtime::WorkerGroup workers;
    // join() can only rethrow one exception; route the rest through the
    // telemetry sink (scanner.suppressed_errors counter + one kMessage
    // each) instead of losing them silently.
    if (v6::obs::Telemetry* const telemetry = options_.scan.telemetry;
        telemetry != nullptr) {
      workers.on_suppressed(
          [telemetry](std::size_t worker, const std::exception_ptr& error) {
            telemetry->registry().counter("scanner.suppressed_errors").inc();
            v6::obs::Event event;
            event.kind = v6::obs::Event::Kind::kMessage;
            event.path = "scanner.suppressed_error";
            event.value = worker;
            try {
              std::rethrow_exception(error);
            } catch (const std::exception& e) {
              event.detail = e.what();
            } catch (...) {
              event.detail = "non-std exception";
            }
            telemetry->emit(event);
          });
    }

    // --- Producer: walks the permutation, decimated across shards. ----
    workers.spawn([this, num_shards, &target_queues, &make_walk,
                   producer_hb]() {
      ArmedStage stage(producer_hb);
      struct CloseAll {
        std::vector<std::unique_ptr<v6::runtime::BoundedQueue<TargetBatch>>>*
            queues;
        ~CloseAll() {
          for (auto& queue : *queues) queue->close();
        }
      } close_all{&target_queues};

      std::vector<WalkAdapter> walks;
      walks.reserve(num_shards);
      for (unsigned s = 0; s < num_shards; ++s) walks.push_back(make_walk(s));
      std::vector<bool> done(num_shards, false);
      unsigned live = num_shards;
      // Round-robin one batch per live shard per cycle: no queue starves.
      while (live > 0) {
        for (unsigned s = 0; s < num_shards; ++s) {
          if (done[s]) continue;
          TargetBatch batch;
          batch.reserve(options_.batch);
          ShardItem item;
          bool more = true;
          while (batch.size() < options_.batch) {
            if (!walks[s].next(&item)) {
              more = false;
              break;
            }
            if (keep_[item.index] != 0) batch.push_back(item);
          }
          if (!batch.empty() && !target_queues[s]->push(std::move(batch))) {
            return;  // consumer aborted; close_all shuts the rest down
          }
          stage.beat();
          if (!more) {
            target_queues[s]->close();
            done[s] = true;
            --live;
          }
        }
      }
    });

    // --- Probers: one worker per shard. -------------------------------
    for (unsigned s = 0; s < num_shards; ++s) {
      workers.spawn([this, s, &target_queues, &reply_queue, &live_probers,
                     &probe_batch, &prober_hbs]() {
        Lane& lane = *lanes_[s];
        ArmedStage stage(prober_hbs[s]);
        struct ProberGuard {
          v6::runtime::BoundedQueue<TargetBatch>* own;
          v6::runtime::BoundedQueue<ReplyBatch>* replies;
          std::atomic<unsigned>* live;
          ~ProberGuard() {
            // Unblock the producer, and let the last prober out close
            // the reply stream — on every exit path, including throws.
            own->close();
            if (live->fetch_sub(1) == 1) replies->close();
          }
        } exit_guard{target_queues[s].get(), &reply_queue, &live_probers};

        TargetBatch batch;
        while (target_queues[s]->pop(&batch)) {
          ReplyBatch out;
          out.reserve(batch.size());
          probe_batch(lane, batch, &out);
          if (!out.empty() && !reply_queue.push(std::move(out))) {
            return;  // receiver gone
          }
          stage.beat();
        }
      });
    }

    // --- Receiver: this thread. ---------------------------------------
    try {
      {
        ArmedStage stage(receiver_hb);
        ReplyBatch batch;
        while (reply_queue.pop(&batch)) {
          absorb(batch);
          stage.beat();
          if (reply_depth_gauge != nullptr) {
            reply_depth_gauge->set(
                static_cast<std::int64_t>(reply_queue.size()));
          }
        }
      }
      workers.join();  // rethrows the first producer/prober failure
    } catch (...) {
      for (auto& queue : target_queues) queue->close();
      reply_queue.close();
      try {
        workers.join();
      } catch (...) {  // the original exception wins
      }
      throw;
    }

    // Queue totals survive the queues (locals of this branch) so the
    // telemetry block below can publish them.
    target_totals.reserve(num_shards);
    for (const auto& queue : target_queues) {
      target_totals.push_back(queue->totals());
    }
    reply_totals = reply_queue.totals();
    have_queue_totals = true;

    // Canonical order: merge the shard streams by ascending cycle
    // position — exactly the order the fused single-shard loop probes
    // in — then fold them through the same classifier.
    std::sort(replay.begin(), replay.end(),
              [](const ReplayRecord& a, const ReplayRecord& b) {
                return a.pos < b.pos;
              });
    for (const ReplayRecord& record : replay) {
      classify(record.addr, record.reply);
    }
  }

  // Fold lane tallies in shard order (integer sums, order-free anyway).
  std::uint64_t wait_nanos = 0;
  std::uint64_t backoff_nanos = 0;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    stats.blocked += lane->blocked;
    stats.probed += lane->probed;
    stats.retransmissions += lane->retransmissions;
    stats.backoffs += lane->backoffs;
    stats.packets += lane->transport->packets_sent() - lane->packets_before;
    wait_nanos += lane->wait_nanos;
    backoff_nanos += lane->backoff_nanos;
  }
  stats.backoff_seconds = static_cast<double>(backoff_nanos) * 1e-9;
  // Analytic wire-time model: emission time at the aggregate rate plus
  // the explicit waits (docs/SCANNER.md explains how this differs from
  // the batch engine's token-bucket clock).
  const double pps = options_.scan.max_pps > 0 ? options_.scan.max_pps : 1.0;
  stats.virtual_seconds = static_cast<double>(stats.packets) / pps +
                          static_cast<double>(wait_nanos) * 1e-9;
  total_virtual_seconds_ += stats.virtual_seconds;

  V6_ENSURE_MSG(stats.probed + stats.blocked == unique_count,
                "every unique target must be probed or blocked");
  V6_ENSURE_MSG(stats.deduped + unique_count == stats.targets,
                "dedup accounting must cover the target list");

  v6::obs::Telemetry* const telemetry = options_.scan.telemetry;
  if (telemetry != nullptr) {
    v6::obs::Registry& registry = telemetry->registry();
    registry.counter("scanner.targets").add(stats.targets);
    registry.counter("scanner.deduped").add(stats.deduped);
    registry.counter("scanner.blocked").add(stats.blocked);
    registry.counter("scanner.probed").add(stats.probed);
    registry.counter("scanner.packets").add(stats.packets);
    registry.counter("scanner.hits").add(stats.hits);
    registry.counter("scanner.timeouts").add(stats.timeouts);
    if (stats.retransmissions != 0) {
      registry.counter("scanner.retransmissions").add(stats.retransmissions);
    }
    if (stats.backoffs != 0) {
      registry.counter("scanner.backoffs").add(stats.backoffs);
    }
    registry.histogram("scanner.batch.targets")
        .record(static_cast<double>(stats.targets));
    registry.histogram("scanner.batch.virtual_seconds")
        .record(stats.virtual_seconds);
    // Backpressure plane (docs/OBSERVABILITY.md "Live introspection"):
    // per-queue totals and the scan's wall duration. Everything here is
    // scheduling-dependent, hence the `.wall` suffix — the equivalence
    // suites exempt these names from the shard/jobs bit-identity checks.
    registry.gauge("stream.scan.wall_nanos.wall")
        .set(std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - wall_start)
                 .count());
    if (have_queue_totals) {
      const auto publish = [&registry](const std::string& prefix,
                                       const v6::runtime::QueueTotals&
                                           totals) {
        registry.gauge(prefix + ".pushed.wall")
            .set(static_cast<std::int64_t>(totals.pushed));
        registry.gauge(prefix + ".hwm.wall")
            .set(static_cast<std::int64_t>(totals.high_watermark));
        registry.gauge(prefix + ".blocked_push_nanos.wall")
            .set(static_cast<std::int64_t>(totals.blocked_push_nanos));
        registry.gauge(prefix + ".blocked_pop_nanos.wall")
            .set(static_cast<std::int64_t>(totals.blocked_pop_nanos));
      };
      for (std::size_t s = 0; s < target_totals.size(); ++s) {
        publish("stream.queue.target." + std::to_string(s),
                target_totals[s]);
      }
      publish("stream.queue.reply", reply_totals);
    }
  }
  return stats;
}

ScanResult StreamScanner::scan_hits(std::span<const Ipv6Addr> targets,
                                    ProbeType type) {
  ScanResult result;
  result.stats =
      scan(targets, type, [&](const Ipv6Addr& addr, ProbeReply reply) {
        if (v6::net::is_hit(type, reply)) result.hits.push_back(addr);
      });
  return result;
}

}  // namespace v6::probe
