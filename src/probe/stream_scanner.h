// The streaming stateless scan engine (docs/SCANNER.md).
//
// Scanner (scanner.h) materializes, dedups, and shuffles the whole
// target list, then probes it sequentially. StreamScanner decouples the
// scan into a bounded producer→prober→receiver pipeline:
//
//   producer  — walks a seeded full-cycle permutation of the target
//               index space (shard_walk.h), decimated across shards; no
//               shuffle buffer is ever materialized.
//   probers   — one worker per shard, each with its own transport chain,
//               rate-limiter slice, and retry/backoff state; probes are
//               validated statelessly (probe_auth.h) so no pending-map
//               is shared.
//   receiver  — the calling thread: validates tokens, classifies
//               replies, and folds per-shard tallies in shard order.
//
// Stages are connected by fixed-capacity BoundedQueues
// (runtime/bounded_queue.h), so memory stays bounded no matter how far
// the producer runs ahead.
//
// With shards == 1 the pipeline degenerates: the stages fuse into one
// loop on the calling thread — no worker threads, no queues, no reply
// records (those are the machinery of the multi-shard hand-off, not of
// the scan itself) — which keeps the streaming engine at per-probe
// parity with the batch Scanner. bench/bench_throughput.cpp gates that
// parity on single-core hosts, and the threaded merge is required to
// stay bit-identical to the fused loop.
//
// Determinism contract (tested in tests/probe/stream_scanner_test.cc):
// with faults and adaptive backoff off, hits, classifications, packets,
// and every ScanStats counter are bit-identical across shard counts —
// replies are pure functions of (addr, attempt, seed), the walk's cycle
// positions are shard-count-independent, and all wait accounting is
// summed in integer nanoseconds. Reply callbacks fire after the scan in
// canonical cycle-position order (== the 1-shard probe order).
//
// Caveats, documented in docs/SCANNER.md: virtual_seconds uses the
// analytic model packets/max_pps + waits (not the batch engine's token
// bucket), adaptive backoff's *wait accounting* is a per-shard control
// loop (classifications stay shard-invariant), and fault decorators are
// per-shard-deterministic but not shard-invariant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/addr_index.h"
#include "net/ipv6.h"
#include "net/service.h"
#include "probe/blocklist.h"
#include "probe/scanner.h"
#include "simnet/universe.h"

namespace v6::obs {
class StallWatchdog;
}  // namespace v6::obs

namespace v6::probe {

/// Streaming-engine configuration wrapping the shared ScanOptions knobs.
struct StreamScanOptions {
  /// Decorates a shard's wire transport (e.g. wraps it in a fault
  /// injector). Called once per shard at construction; the returned
  /// transport owns nothing but may borrow `inner`. Lets callers layer
  /// src/fault into the chain without this library depending on it.
  using Decorator = std::function<std::unique_ptr<ProbeTransport>(
      ProbeTransport& inner, unsigned shard)>;

  /// Shard (= prober worker) count. Each shard covers a disjoint slice
  /// of the permutation cycle and gets max_pps/shards of the rate budget.
  unsigned shards = 1;
  /// Targets per queue message — amortizes queue locking.
  std::size_t batch = 256;
  /// Messages per queue: the backpressure bound between stages.
  std::size_t queue_capacity = 8;
  /// The shared scan knobs (retries, pacing, seed, telemetry, robust
  /// path). `randomize_order` selects the permuted walk (default) or a
  /// strided in-order walk; `seed` drives the permutation, the stateless
  /// reply engines, probe validation, and backoff jitter.
  ScanOptions scan;
  Decorator decorate;
  /// Optional liveness plane (borrowed; may be null): each pipeline
  /// stage registers a heartbeat (`stream.producer`, `stream.prober.<s>`,
  /// `stream.receiver`; `stream.scan` for the fused single-shard loop),
  /// armed for the duration of a scan and beaten once per batch. Purely
  /// wall-side observation — a watchdog never changes what the scan
  /// computes (docs/OBSERVABILITY.md "Live introspection").
  v6::obs::StallWatchdog* watchdog = nullptr;

  StreamScanOptions& with_shards(unsigned v) { shards = v; return *this; }
  StreamScanOptions& with_batch(std::size_t v) { batch = v; return *this; }
  StreamScanOptions& with_queue_capacity(std::size_t v) {
    queue_capacity = v;
    return *this;
  }
  StreamScanOptions& with_scan(ScanOptions v) { scan = v; return *this; }
  StreamScanOptions& with_decorator(Decorator v) {
    decorate = std::move(v);
    return *this;
  }
  StreamScanOptions& with_watchdog(v6::obs::StallWatchdog* v) {
    watchdog = v;
    return *this;
  }

  /// Bounds-checks the streaming knobs and the wrapped ScanOptions
  /// through the shared check/validate.h path; throws check::ConfigError
  /// with a uniform "StreamScanOptions.<field>: <constraint>" message.
  /// The StreamScanner constructor calls this, so a bad config fails the
  /// same way whether it reaches the engine directly or via
  /// PipelineConfig.
  void validate() const;
};

/// Sharded streaming counterpart of Scanner. Owns its transport chain
/// (one per shard, built over `universe`) because stateless per-probe
/// replies are what make sharding sound — a caller-supplied sequential
/// transport could not be split. The same scan()/scan_hits() surface and
/// ScanStats/ScanResult types as Scanner, so results are comparable
/// field by field.
class StreamScanner {
 public:
  /// `blocklist` may be null. `universe` and `options.scan.telemetry`
  /// are borrowed and must outlive the scanner.
  StreamScanner(const v6::simnet::Universe& universe,
                const Blocklist* blocklist, StreamScanOptions options);
  ~StreamScanner();

  StreamScanner(const StreamScanner&) = delete;
  StreamScanner& operator=(const StreamScanner&) = delete;

  using ReplyCallback = Scanner::ReplyCallback;

  /// Scans `targets` on `type` through the pipeline. `on_reply` fires
  /// once per probed address with its final classified reply, in
  /// canonical cycle-position order, after all probers have joined.
  ScanStats scan(std::span<const v6::net::Ipv6Addr> targets,
                 v6::net::ProbeType type, const ReplyCallback& on_reply);

  /// Collects positive responders plus the pass's statistics.
  ScanResult scan_hits(std::span<const v6::net::Ipv6Addr> targets,
                       v6::net::ProbeType type);

  /// Cumulative analytic virtual wire time across all scans.
  double virtual_seconds() const { return total_virtual_seconds_; }

  /// Cumulative packets emitted across all shards.
  std::uint64_t packets_sent() const;

  /// Replies whose stateless validation token failed (always 0 against
  /// the simulated universe; the counter exists because the receiver
  /// refuses to classify unauthenticated replies by construction).
  std::uint64_t invalid_replies() const { return invalid_replies_; }

  unsigned shards() const { return static_cast<unsigned>(lanes_.size()); }

  /// Folds per-shard telemetry (transport.* registries, scanner.retry.*
  /// tallies) into the attached Telemetry in shard order. Idempotent per
  /// accumulation; called automatically on destruction.
  void flush_telemetry();

 private:
  struct Lane;

  /// Prober-thread helpers (each touches only its own lane's state).
  static void lane_wait(Lane& lane, double seconds);
  v6::net::ProbeReply lane_probe(Lane& lane, const v6::net::Ipv6Addr& addr,
                                 v6::net::ProbeType type) const;
  void note_reply(Lane& lane, const v6::net::Ipv6Addr& addr,
                  v6::net::ProbeReply reply) const;

  const v6::simnet::Universe* universe_;
  const Blocklist* blocklist_;
  StreamScanOptions options_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Dedup scratch reused across scans (flat table, satellite of the
  /// same change that moved Scanner off unordered_set).
  v6::net::AddrIndexMap dedup_;
  std::vector<std::uint8_t> keep_;
  /// Stateless backoff-jitter key (same stream tag as Scanner's
  /// jitter_rng_, but mixed per (addr, attempt) so shards agree).
  std::uint64_t jitter_base_ = 0;
  /// `scanner.retry.<k>` counters, resolved eagerly like Scanner's so
  /// instrumented reports carry the same counter set.
  std::vector<v6::obs::Counter*> retry_counters_;
  double total_virtual_seconds_ = 0.0;
  std::uint64_t invalid_replies_ = 0;
};

}  // namespace v6::probe
