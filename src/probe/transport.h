// Probe transport abstraction.
//
// The scanner, the online dealiaser, and every online TGA emit probes
// through a ProbeTransport. The shipped SimTransport targets the simulated
// Internet; a raw-socket transport would slot in identically for live
// scanning.
#pragma once

#include <cstdint>

#include "net/ipv6.h"
#include "net/rng.h"
#include "net/service.h"
#include "simnet/universe.h"

namespace v6::probe {

/// Sends one probe packet and reports the wire-level reply.
class ProbeTransport {
 public:
  virtual ~ProbeTransport() = default;

  /// Emits a single probe of `type` to `addr` and returns the reply
  /// (kTimeout if none arrived).
  virtual v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                                   v6::net::ProbeType type) = 0;

  /// Total packets emitted through this transport.
  virtual std::uint64_t packets_sent() const = 0;

  /// Informs the transport that `seconds` of virtual wire time passed
  /// without traffic (scanner timeout/backoff waits). Time-aware layers
  /// — the fault plane's token buckets and outage windows — move their
  /// clocks forward; the default is a no-op, and decorators forward it
  /// down the chain.
  virtual void advance(double seconds) { (void)seconds; }

  /// Virtual wire nanoseconds consumed by the most recent send(): the
  /// modeled round-trip time of its reply. A timed-out probe consumed no
  /// wire time — implementations MUST return 0 after a timeout (the
  /// scanner's wait is charged separately via advance()), and callers on
  /// hot paths rely on that to skip the query entirely. Deterministic —
  /// derived from the simulated wire clock, never a real one. Default 0
  /// for transports without a latency model.
  virtual std::uint64_t last_wire_nanos() const { return 0; }
};

/// Transport that probes a simulated Universe. Loss randomness (rate
/// limited alias regions) is drawn from an internal deterministic RNG, so
/// a fixed (universe, seed) pair replays identically.
class SimTransport final : public ProbeTransport {
 public:
  SimTransport(const v6::simnet::Universe& universe, std::uint64_t seed)
      : universe_(&universe), rng_(v6::net::make_rng(seed, /*tag=*/0x7A57)) {}

  v6::net::ProbeReply send(const v6::net::Ipv6Addr& addr,
                           v6::net::ProbeType type) override {
    ++packets_;
    const v6::net::ProbeReply reply = universe_->probe(addr, type, rng_);
    last_addr_ = addr;
    last_replied_ = reply != v6::net::ProbeReply::kTimeout;
    return reply;
  }

  std::uint64_t packets_sent() const override { return packets_; }

  /// Lazily evaluated (a pure hash of the address, no RNG draw), so the
  /// uninstrumented path pays only two stores per probe.
  std::uint64_t last_wire_nanos() const override {
    return last_replied_ ? v6::simnet::Universe::rtt_nanos(last_addr_) : 0;
  }

 private:
  const v6::simnet::Universe* universe_;
  v6::net::Rng rng_;
  std::uint64_t packets_ = 0;
  v6::net::Ipv6Addr last_addr_;
  bool last_replied_ = false;
};

}  // namespace v6::probe
