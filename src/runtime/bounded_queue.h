// BoundedQueue: a fixed-capacity multi-producer/multi-consumer queue
// with blocking push/pop and close semantics — the coupling between the
// streaming scan engine's pipeline stages (docs/SCANNER.md).
//
// The capacity bound is the backpressure mechanism: a producer that gets
// ahead of its consumers blocks in push() instead of materializing an
// unbounded buffer, so the target stream never has more than
// capacity × element-size items in flight per stage.
//
// Close semantics: close() wakes every blocked caller. A push() after
// close returns false and drops the element; pop() keeps draining
// whatever was enqueued before the close and returns false only once the
// queue is both closed and empty. That makes shutdown a one-liner on
// each side: producers `if (!q.push(...)) return;`, consumers
// `while (q.pop(&v)) { ... }`.
//
// Blocking uses condition variables on the caller's thread only — no
// wall-clock reads, no timed waits — so the v6lint no-sleep /
// nondeterminism rules hold: scheduling can change *when* an element
// moves, never *what* the pipeline computes (determinism lives above
// the queue, in the shard walk's canonical positions).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace v6::runtime {

/// Fixed-capacity blocking MPMC ring. `T` must be default-constructible
/// and move-assignable (the ring is a pre-sized vector of slots).
template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity is clamped to one: a queue that can never accept an
  /// element would deadlock the first push.
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false — dropping `value` —
  /// if the queue was closed (before or during the wait).
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return size_ < ring_.size() || closed_; });
    if (closed_) return false;
    ring_[(head_ + size_) % ring_.size()] = std::move(value);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns false only when the queue
  /// is closed AND drained; elements enqueued before close() are always
  /// delivered.
  bool pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;  // closed and drained
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Idempotent. Wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Instantaneous count; only a snapshot under concurrency.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return ring_.size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace v6::runtime
