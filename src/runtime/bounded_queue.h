// BoundedQueue: a fixed-capacity multi-producer/multi-consumer queue
// with blocking push/pop and close semantics — the coupling between the
// streaming scan engine's pipeline stages (docs/SCANNER.md).
//
// The capacity bound is the backpressure mechanism: a producer that gets
// ahead of its consumers blocks in push() instead of materializing an
// unbounded buffer, so the target stream never has more than
// capacity × element-size items in flight per stage.
//
// Close semantics: close() wakes every blocked caller. A push() after
// close returns false and drops the element; pop() keeps draining
// whatever was enqueued before the close and returns false only once the
// queue is both closed and empty. That makes shutdown a one-liner on
// each side: producers `if (!q.push(...)) return;`, consumers
// `while (q.pop(&v)) { ... }`.
//
// Blocking uses condition variables on the caller's thread only — no
// timed waits — so the v6lint no-sleep rule holds: scheduling can
// change *when* an element moves, never *what* the pipeline computes
// (determinism lives above the queue, in the shard walk's canonical
// positions).
//
// Backpressure observability (docs/OBSERVABILITY.md "Live
// introspection"): the queue keeps relaxed-atomic totals — elements
// pushed/popped/dropped, the depth high watermark, and time spent
// blocked on either side. The uncontended hot path pays only relaxed
// increments (no extra locks: the queue mutex is already held); the
// steady_clock reads happen only on the contended path, when the caller
// is about to block anyway. totals() reads them without taking the
// queue lock. All of this is wall-side state: it feeds `.wall`-suffixed
// metrics exempt from the virtual-time determinism contract, while push
// and pop still move exactly the same elements.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace v6::runtime {

/// Point-in-time copy of one queue's lifetime totals (element-type
/// independent, so mixed pipelines can fold totals from differently-
/// typed queues). `pushed` counts elements accepted, `dropped` elements
/// refused by a closed queue; after a drain (closed and empty),
/// pushed == popped.
struct QueueTotals {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t dropped = 0;
  std::uint64_t push_waits = 0;  // pushes that blocked on a full queue
  std::uint64_t pop_waits = 0;   // pops that blocked on an empty queue
  std::uint64_t blocked_push_nanos = 0;
  std::uint64_t blocked_pop_nanos = 0;
  std::size_t high_watermark = 0;  // max depth ever observed
};

/// Fixed-capacity blocking MPMC ring. `T` must be default-constructible
/// and move-assignable (the ring is a pre-sized vector of slots).
template <typename T>
class BoundedQueue {
 public:
  using Totals = QueueTotals;

  /// A zero capacity is clamped to one: a queue that can never accept an
  /// element would deadlock the first push.
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false — dropping `value` —
  /// if the queue was closed (before or during the wait).
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ >= ring_.size() && !closed_) {
      push_waits_.fetch_add(1, std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      not_full_.wait(lock, [&] { return size_ < ring_.size() || closed_; });
      blocked_push_nanos_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count(),
          std::memory_order_relaxed);
    }
    if (closed_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ring_[(head_ + size_) % ring_.size()] = std::move(value);
    ++size_;
    pushed_.fetch_add(1, std::memory_order_relaxed);
    if (size_ > high_watermark_.load(std::memory_order_relaxed)) {
      high_watermark_.store(size_, std::memory_order_relaxed);
    }
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns false only when the queue
  /// is closed AND drained; elements enqueued before close() are always
  /// delivered.
  bool pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0 && !closed_) {
      pop_waits_.fetch_add(1, std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
      blocked_pop_nanos_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count(),
          std::memory_order_relaxed);
    }
    if (size_ == 0) return false;  // closed and drained
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    popped_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Idempotent. Wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Instantaneous count; only a snapshot under concurrency.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return ring_.size(); }

  /// Lock-free snapshot of the lifetime totals (relaxed loads — each
  /// field is individually exact, the set is only consistent once the
  /// queue is quiescent).
  Totals totals() const {
    Totals t;
    t.pushed = pushed_.load(std::memory_order_relaxed);
    t.popped = popped_.load(std::memory_order_relaxed);
    t.dropped = dropped_.load(std::memory_order_relaxed);
    t.push_waits = push_waits_.load(std::memory_order_relaxed);
    t.pop_waits = pop_waits_.load(std::memory_order_relaxed);
    t.blocked_push_nanos = blocked_push_nanos_.load(std::memory_order_relaxed);
    t.blocked_pop_nanos = blocked_pop_nanos_.load(std::memory_order_relaxed);
    t.high_watermark = high_watermark_.load(std::memory_order_relaxed);
    return t;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  // Lifetime totals (see Totals). Atomics so totals() needs no lock;
  // the writers already hold the queue mutex, so relaxed ordering
  // suffices.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> push_waits_{0};
  std::atomic<std::uint64_t> pop_waits_{0};
  std::atomic<std::uint64_t> blocked_push_nanos_{0};
  std::atomic<std::uint64_t> blocked_pop_nanos_{0};
  std::atomic<std::size_t> high_watermark_{0};
};

}  // namespace v6::runtime
