#include "runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace v6::runtime {

unsigned default_jobs() {
  if (const char* env = std::getenv("V6_JOBS"); env != nullptr) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {
  const unsigned workers = jobs_ - 1;
  workers_.reserve(workers);
  worker_ids_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    worker_ids_.push_back(workers_.back().get_id());
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Join before members are destroyed (workers drain the queue first, so
  // every submitted future is satisfied).
  for (std::jthread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::in_worker() const {
  const std::thread::id self = std::this_thread::get_id();
  return std::find(worker_ids_.begin(), worker_ids_.end(), self) !=
         worker_ids_.end();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future, never here
  }
}

}  // namespace v6::runtime
