// A small dependency-free thread pool for the experiment layer.
//
// Design constraints (see docs/ALGORITHMS.md, "Parallel experiment
// execution"):
//   - Determinism lives above the pool: tasks write to pre-assigned
//     output slots and own all their mutable state, so scheduling order
//     can never change results.
//   - `parallel_for` makes the calling thread participate in the loop,
//     so a task running on a pool worker may itself call `parallel_for`
//     on the same pool without deadlocking even when every worker is
//     busy.
//   - Exceptions thrown by loop bodies are captured and the first one is
//     rethrown on the calling thread after the loop drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace v6::runtime {

/// Worker count used when a caller passes `jobs == 0`: the `V6_JOBS`
/// environment variable if set and positive, else hardware_concurrency
/// (else 1).
unsigned default_jobs();

/// Fixed-size pool of worker threads draining a shared FIFO queue.
class ThreadPool {
 public:
  /// Spawns `jobs - 1` workers (the calling thread is expected to
  /// participate via `parallel_for`, so total parallelism is `jobs`).
  /// `jobs == 0` means `default_jobs()`.
  explicit ThreadPool(unsigned jobs = 0);

  /// Drains nothing: pending tasks are executed before workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism this pool was built for (workers + caller).
  unsigned jobs() const { return jobs_; }

  /// True when called from one of this pool's worker threads.
  bool in_worker() const;

  /// Enqueues `fn`; the returned future carries its result or exception.
  /// Deadlock guard: when called from one of this pool's own workers the
  /// task runs inline (a worker blocking on a future produced by its own
  /// pool could otherwise wait forever behind itself).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (in_worker()) {
      (*task)();
    } else {
      enqueue([task] { (*task)(); });
    }
    return future;
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  unsigned jobs_ = 1;
  std::vector<std::jthread> workers_;
  std::vector<std::thread::id> worker_ids_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

namespace detail {

/// Shared state of one parallel_for: the loop body, an atomic claim
/// counter, and a completion latch. Iterations are claimed dynamically,
/// so an uneven workload (one slow TGA) never idles the other lanes. The
/// body is owned here (not borrowed from the caller's frame) because a
/// helper task may still be scheduled after the caller returned.
struct LoopState {
  LoopState(std::size_t n, std::function<void(std::size_t)> body)
      : fn(std::move(body)), total(n) {}

  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  const std::size_t total;
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // guarded by mutex; first error wins
  std::atomic<bool> has_error{false};

  void run() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      if (!has_error.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          has_error.store(true, std::memory_order_relaxed);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace detail

/// Runs `fn(i)` for every `i` in `[0, n)` across the pool, with the
/// calling thread participating. Blocks until every iteration finished;
/// rethrows the first exception any iteration raised. Iterations must be
/// independent — there is no ordering guarantee.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (pool.jobs() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<detail::LoopState>(
      n, std::function<void(std::size_t)>(std::forward<Fn>(fn)));
  const std::size_t helpers = std::min<std::size_t>(pool.jobs() - 1, n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    // Fire-and-forget helpers; completion is tracked by the latch, and
    // the shared_ptr keeps the state alive past the caller's return.
    pool.submit([state] { state->run(); });
  }
  state->run();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
  if (state->error) std::rethrow_exception(state->error);
}

/// One-shot convenience: builds a pool of `jobs` and runs the loop.
/// `jobs == 0` means `default_jobs()`; `jobs == 1` runs inline with no
/// threads at all.
template <typename Fn>
void parallel_for(unsigned jobs, std::size_t n, Fn&& fn) {
  if (jobs == 0) jobs = default_jobs();
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(jobs);
  parallel_for(pool, n, std::forward<Fn>(fn));
}

}  // namespace v6::runtime
