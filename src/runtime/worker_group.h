// WorkerGroup: an RAII batch of worker threads with exception capture.
//
// The streaming scanner spawns its producer and prober stages through
// this instead of raw std::jthread so that (a) a thrown stage never
// terminates the process — the first exception, in spawn order, is
// rethrown on the joining thread — and (b) thread creation stays inside
// src/runtime/, where the v6lint raw-thread rule confines it
// (docs/STATIC_ANALYSIS.md). Everything above this layer reasons about
// stages and queues, never about threads.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace v6::runtime {

class WorkerGroup {
 public:
  /// Observer for exceptions join() cannot rethrow (every captured
  /// exception after the first, in spawn order). Arguments: the spawn
  /// index of the failed worker and its captured exception. Runtime
  /// stays observability-free, so callers that want these surfaced
  /// (e.g. through a telemetry sink) install the hook themselves.
  using SuppressedHandler =
      std::function<void(std::size_t worker, const std::exception_ptr&)>;

  WorkerGroup() = default;
  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  /// Joins without rethrowing (std::jthread joins on destruction);
  /// callers that care about worker exceptions must call join().
  ~WorkerGroup() = default;

  /// Starts `fn` on a new thread. Any exception it throws is captured
  /// and rethrown by join(). The error slots live in a deque so their
  /// addresses survive later spawns.
  template <typename Fn>
  void spawn(Fn&& fn) {
    errors_.emplace_back(nullptr);
    std::exception_ptr* slot = &errors_.back();
    threads_.emplace_back([slot, f = std::forward<Fn>(fn)]() mutable {
      try {
        f();
      } catch (...) {
        *slot = std::current_exception();
      }
    });
  }

  std::size_t size() const { return threads_.size(); }

  /// Installs the observer for suppressed exceptions (replacing any
  /// previous one). Runs on the joining thread, after every worker has
  /// joined, once per exception join() discards.
  void on_suppressed(SuppressedHandler handler) {
    on_suppressed_ = std::move(handler);
  }

  /// Joins every worker, then rethrows the first captured exception in
  /// spawn order (deterministic: independent of which worker failed
  /// first on the wall clock). Exceptions after the first cannot
  /// propagate — only one can be in flight — so they are reported to
  /// the on_suppressed() hook (if any) before being discarded, never
  /// silently lost. The group is reusable afterwards.
  void join() {
    for (std::jthread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    std::exception_ptr first;
    for (std::size_t i = 0; i < errors_.size(); ++i) {
      if (!errors_[i]) continue;
      if (!first) {
        first = errors_[i];
      } else if (on_suppressed_) {
        on_suppressed_(i, errors_[i]);
      }
    }
    errors_.clear();
    if (first) std::rethrow_exception(first);
  }

 private:
  std::vector<std::jthread> threads_;
  std::deque<std::exception_ptr> errors_;
  SuppressedHandler on_suppressed_;
};

}  // namespace v6::runtime
