// WorkerGroup: an RAII batch of worker threads with exception capture.
//
// The streaming scanner spawns its producer and prober stages through
// this instead of raw std::jthread so that (a) a thrown stage never
// terminates the process — the first exception, in spawn order, is
// rethrown on the joining thread — and (b) thread creation stays inside
// src/runtime/, where the v6lint raw-thread rule confines it
// (docs/STATIC_ANALYSIS.md). Everything above this layer reasons about
// stages and queues, never about threads.
#pragma once

#include <deque>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace v6::runtime {

class WorkerGroup {
 public:
  WorkerGroup() = default;
  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  /// Joins without rethrowing (std::jthread joins on destruction);
  /// callers that care about worker exceptions must call join().
  ~WorkerGroup() = default;

  /// Starts `fn` on a new thread. Any exception it throws is captured
  /// and rethrown by join(). The error slots live in a deque so their
  /// addresses survive later spawns.
  template <typename Fn>
  void spawn(Fn&& fn) {
    errors_.emplace_back(nullptr);
    std::exception_ptr* slot = &errors_.back();
    threads_.emplace_back([slot, f = std::forward<Fn>(fn)]() mutable {
      try {
        f();
      } catch (...) {
        *slot = std::current_exception();
      }
    });
  }

  std::size_t size() const { return threads_.size(); }

  /// Joins every worker, then rethrows the first captured exception in
  /// spawn order (deterministic: independent of which worker failed
  /// first on the wall clock). The group is reusable afterwards.
  void join() {
    for (std::jthread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    for (std::exception_ptr& error : errors_) {
      if (error) {
        const std::exception_ptr first = error;
        errors_.clear();
        std::rethrow_exception(first);
      }
    }
    errors_.clear();
  }

 private:
  std::vector<std::jthread> threads_;
  std::deque<std::exception_ptr> errors_;
};

}  // namespace v6::runtime
