#include "seeds/collector.h"

#include <unordered_map>

#include "net/rng.h"
#include "probe/transport.h"
#include "tga/det.h"

namespace v6::seeds {

using v6::net::Ipv6Addr;
using v6::net::Prefix;
using v6::net::Rng;
using v6::simnet::HostKind;
using v6::simnet::HostRecord;

namespace {

/// Maps a domain-derived seed source to its domain-list kind.
std::optional<v6::dns::DomainListKind> domain_kind(SeedSource source) {
  switch (source) {
    case SeedSource::kCensys: return v6::dns::DomainListKind::kCensysCt;
    case SeedSource::kRapid7: return v6::dns::DomainListKind::kRapid7Fdns;
    case SeedSource::kUmbrella: return v6::dns::DomainListKind::kUmbrella;
    case SeedSource::kMajestic: return v6::dns::DomainListKind::kMajestic;
    case SeedSource::kTranco: return v6::dns::DomainListKind::kTranco;
    case SeedSource::kSecrank: return v6::dns::DomainListKind::kSecrank;
    case SeedSource::kRadar: return v6::dns::DomainListKind::kRadar;
    case SeedSource::kCaidaDns: return v6::dns::DomainListKind::kCaidaDns;
    default: return std::nullopt;
  }
}

}  // namespace

SourceProfile default_profile(SeedSource source) {
  SourceProfile p;
  switch (source) {
    case SeedSource::kCensys:
      // CT logs: resolved via the DNS path; CDN-hosted certificates add
      // aliased residue.
      p.alias_samples = 3000;
      break;
    case SeedSource::kRapid7:
      // FDNS archival snapshot from 2021: the domain list itself is
      // stale-heavy (see DomainListProfile).
      p.alias_samples = 2500;
      break;
    case SeedSource::kUmbrella:
    case SeedSource::kMajestic:
    case SeedSource::kTranco:
    case SeedSource::kSecrank:
    case SeedSource::kRadar:
    case SeedSource::kCaidaDns:
      // Pure DNS-path feeds; CDN aliasing arrives via popular names that
      // resolve into aliased space.
      if (source == SeedSource::kSecrank) p.china_only = true;
      break;
    case SeedSource::kScamper:
      // Traceroute topology: router interfaces across nearly every AS,
      // from the Ark vantage set.
      p.router_band_hi = 0.58;
      p.campaign_targets = 40000;
      p.dense_samples = 400;
      p.junk_fraction = 0.55;  // historical interfaces that filter today
      break;
    case SeedSource::kRipeAtlas:
      // Atlas probes: a different vantage set, plus measurement targets
      // beyond pure topology (web/dns endpoints).
      p.as_coverage = 0.96;
      p.web_p = 0.05;
      p.dns_p = 0.08;
      p.endhost_p = 0.010;
      p.router_band_lo = 0.47;
      p.campaign_targets = 30000;
      p.dense_samples = 250;
      p.junk_fraction = 0.30;
      break;
    case SeedSource::kHitlist:
      // The best single source of responsive IPs; broad role mix. Mostly
      // dealiased upstream, small aliased residue.
      p.as_coverage = 0.72;
      p.router_p = 0.22;
      p.web_p = 0.15;
      p.dns_p = 0.17;
      p.endhost_p = 0.08;
      p.popular_boost = 1.3;
      p.alias_samples = 1500;
      p.dense_samples = 800;
      p.junk_fraction = 0.16;  // hitlist churn (paper: 16% unresponsive)
      break;
    case SeedSource::kAddrMiner:
      // TGA-generated hitlist: deep, alias-heavy, little unique AS reach.
      p.as_coverage = 0.62;
      p.router_p = 0.15;
      p.web_p = 0.12;
      p.dns_p = 0.10;
      p.endhost_p = 0.05;
      p.alias_samples = 60000;
      p.dense_samples = 1200;
      p.junk_fraction = 0.35;
      break;
  }
  return p;
}

SeedCollector::SeedCollector(const v6::simnet::Universe& universe,
                             std::uint64_t seed)
    : universe_(&universe),
      seed_(seed),
      zone_(v6::dns::ZoneDb::build(universe, {.seed = seed})),
      topo_(universe, seed) {}

bool SeedCollector::as_visible(SeedSource source, std::uint32_t asn,
                               const SourceProfile& profile) const {
  if (profile.china_only) {
    const v6::asdb::AsInfo* info = universe_->asdb().find(asn);
    if (info == nullptr || info->region != v6::asdb::Region::kChina) {
      return false;
    }
  }
  const std::uint64_t h = v6::net::splitmix64(
      seed_ ^ v6::net::splitmix64(
                  (static_cast<std::uint64_t>(source) << 40) ^ asn));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < profile.as_coverage;
}

void SeedCollector::sample_hosts(SeedSource source,
                                 const SourceProfile& profile, Rng& rng,
                                 std::vector<Ipv6Addr>& out) const {
  // Visibility is computed lazily per ASN and memoized for this pass.
  std::unordered_map<std::uint32_t, bool> visible;
  auto is_visible = [&](std::uint32_t asn) {
    const auto it = visible.find(asn);
    if (it != visible.end()) return it->second;
    const bool v = as_visible(source, asn, profile);
    visible.emplace(asn, v);
    return v;
  };

  // Streaming enumeration: identical host order (and so identical RNG
  // draw order) on materialized and procedural universes.
  universe_->for_each_host([&](const HostRecord& host) {
    if (!is_visible(host.asn)) return;
    double p = 0.0;
    switch (host.kind) {
      case HostKind::kRouter: p = profile.router_p; break;
      case HostKind::kWebServer: p = profile.web_p; break;
      case HostKind::kDnsServer: p = profile.dns_p; break;
      case HostKind::kEndhost: p = profile.endhost_p; break;
    }
    if (host.kind == HostKind::kRouter &&
        (profile.router_band_lo > 0.0 || profile.router_band_hi < 1.0)) {
      const std::uint64_t h =
          v6::net::splitmix64(host.addr.hi() ^ host.addr.lo() ^ 0xBAD6E);
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u < profile.router_band_lo || u >= profile.router_band_hi) {
        return;
      }
    }
    if (profile.popular_only) {
      if (host.kind == HostKind::kWebServer && !host.popular) p *= 0.003;
    } else if (host.popular) {
      p *= profile.popular_boost;
    }
    if (host.churned()) p *= profile.stale_mult;
    if (p > 0 && v6::net::chance(rng, p > 1.0 ? 1.0 : p)) {
      out.push_back(host.addr);
    }
  });
}

void SeedCollector::sample_extras(SeedSource source,
                                  const SourceProfile& profile, Rng& rng,
                                  std::vector<Ipv6Addr>& out) const {
  (void)source;
  // ---- Aliased-region samples -------------------------------------------
  // Hitlist-carried aliased addresses are predominantly TGA-generated and
  // therefore *structured* (coarse subnetting plus small-counter host
  // bits), not uniform random. This structure is what lets downstream
  // TGAs mine dense patterns inside aliased space and collapse into it
  // (paper 6.1: "patterns generators exploit correlate strongly to
  // where aliases exist").
  std::vector<std::size_t> region_pool;
  {
    const auto regions_all = universe_->alias_regions();
    for (std::size_t i = 0; i < regions_all.size(); ++i) {
      if (profile.china_only) {
        const v6::asdb::AsInfo* info =
            universe_->asdb().find(regions_all[i].asn);
        if (info == nullptr || info->region != v6::asdb::Region::kChina) {
          continue;
        }
      }
      region_pool.push_back(i);
    }
  }
  const auto regions = universe_->alias_regions();
  if (!region_pool.empty() && profile.alias_samples > 0) {
    for (std::size_t i = 0; i < profile.alias_samples; ++i) {
      const std::size_t region_index =
          region_pool[v6::net::uniform_int<std::size_t>(
              rng, 0, region_pool.size() - 1)];
      const auto& region = regions[region_index];
      Ipv6Addr a = region.prefix.addr();
      // A third of the regions were mined by upstream TGAs as hot base
      // subnets (dense counter runs only); the rest appear as coarse
      // sprawl. Keeping the two shapes in *separate* regions preserves
      // tight per-/64 clusters for range-mining TGAs like 6Gen.
      if (region_index % 3 == 0) {
        const std::uint64_t counter =
            v6::net::uniform_int<std::uint64_t>(rng, 1, 1024);
        out.push_back(Ipv6Addr(a.hi(), (a.lo() & ~0xFFFFULL) | counter));
        continue;
      }
      // Coarse subnetting: vary the two nybbles just past the prefix.
      const int first_free = (region.prefix.length() + 3) / 4;
      if (first_free + 1 < v6::net::Ipv6Addr::kNybbles) {
        a = a.with_nybble(first_free,
                          static_cast<std::uint8_t>(rng() & 0xF))
                .with_nybble(first_free + 1,
                             static_cast<std::uint8_t>(rng() & 0xF));
      }
      // Small-counter host bits in the last four nybbles.
      const std::uint64_t counter =
          v6::net::uniform_int<std::uint64_t>(rng, 1, 6000);
      out.push_back(Ipv6Addr(a.hi(), (a.lo() & ~0xFFFFULL) | counter));
    }
  }

  // ---- Dense-region (AS12322 analogue) samples ---------------------------
  if (universe_->dense_region() && profile.dense_samples > 0) {
    const Prefix& dense = universe_->dense_region()->prefix;
    for (std::size_t i = 0; i < profile.dense_samples; ++i) {
      const Ipv6Addr r = v6::net::random_in_prefix(rng, dense);
      // The pattern fixes low64 to ::1 (paper 4.1).
      out.push_back(Ipv6Addr(r.hi(), 1));
    }
  }

  // ---- Junk: routed but never-active addresses ----------------------------
  // DNS lookups that point at unused space, networks that went dark,
  // traceroute artifacts. Junk is *clustered* — when a network dies it
  // leaves a whole counter run of stale addresses behind, which forms
  // exactly the kind of dense-looking pattern that misleads TGAs
  // (the paper's RQ1.b mechanism).
  const auto& announcements = universe_->routes().announcements();
  if (!announcements.empty() && profile.junk_fraction > 0) {
    const std::size_t junk =
        static_cast<std::size_t>(static_cast<double>(out.size()) *
                                 profile.junk_fraction);
    std::size_t emitted = 0;
    while (emitted < junk) {
      const auto& [prefix, asn] = announcements[v6::net::uniform_int<std::size_t>(
          rng, 0, announcements.size() - 1)];
      (void)asn;
      // A dead subnet: a plausible counter run in one /64.
      const Ipv6Addr base = v6::net::random_in_prefix(rng, prefix);
      const std::size_t run =
          v6::net::uniform_int<std::size_t>(rng, 3, 40);
      const std::uint64_t start =
          v6::net::uniform_int<std::uint64_t>(rng, 1, 64);
      for (std::size_t k = 0; k < run && emitted < junk; ++k, ++emitted) {
        out.push_back(Ipv6Addr(base.hi(), start + k));
      }
    }
  }
}

void SeedCollector::collect_addrminer(const SourceProfile& profile,
                                      Rng& rng,
                                      std::vector<Ipv6Addr>& out) const {
  // Bootstrap seeds: a hitlist-style host sample plus the structured
  // aliased residue the miner inherited from earlier runs.
  std::vector<Ipv6Addr> bootstrap;
  sample_hosts(SeedSource::kAddrMiner, profile, rng, bootstrap);
  {
    SourceProfile boot_extras;  // aliased residue only
    boot_extras.alias_samples = 15'000;
    sample_extras(SeedSource::kAddrMiner, boot_extras, rng, bootstrap);
  }
  out.insert(out.end(), bootstrap.begin(), bootstrap.end());

  // Long-term mining: DET generates, the miner probes ICMP and archives
  // every responsive address it finds — without dealiasing.
  v6::tga::Det miner;
  miner.prepare(bootstrap, v6::net::derive_seed(seed_, 0xADD4));
  v6::probe::SimTransport transport(*universe_,
                                    v6::net::derive_seed(seed_, 0xADD5));
  constexpr std::uint64_t kMinerBudget = 40'000;
  std::uint64_t generated = 0;
  while (generated < kMinerBudget) {
    const auto batch = miner.next_batch(
        static_cast<std::size_t>(std::min<std::uint64_t>(
            10'000, kMinerBudget - generated)));
    if (batch.empty()) break;
    generated += batch.size();
    for (const Ipv6Addr& addr : batch) {
      const bool active =
          transport.send(addr, v6::net::ProbeType::kIcmp) ==
          v6::net::ProbeReply::kEchoReply;
      miner.observe(addr, active);
      // The public archive holds most — not all — of what the miner ever
      // saw (deduplication windows, churn between snapshots).
      if (active && v6::net::chance(rng, 0.55)) out.push_back(addr);
    }
  }
}

std::vector<Ipv6Addr> SeedCollector::collect(SeedSource source) const {
  const SourceProfile profile = default_profile(source);
  Rng rng = v6::net::make_rng(
      seed_, /*tag=*/0x5EED0000ULL + static_cast<std::uint64_t>(source));

  std::vector<Ipv6Addr> out;

  if (const auto kind = domain_kind(source)) {
    // ---- Domain feed: synthesize the list, resolve it (ZDNS path) ------
    const std::vector<std::string> names =
        v6::dns::make_domain_list(zone_, *universe_, *kind, seed_);
    v6::dns::Resolver resolver(
        zone_, {.seed = v6::net::derive_seed(
                    seed_, static_cast<std::uint64_t>(source))});
    out = resolver.resolve_all(names);
  } else if (profile.campaign_targets > 0) {
    // ---- Traceroute feed: campaign from this vantage set ----------------
    v6::topo::VantageProfile vantage;
    vantage.band_lo = profile.router_band_lo;
    vantage.band_hi = profile.router_band_hi;
    out = topo_.campaign(profile.campaign_targets, vantage,
                         static_cast<std::uint64_t>(source));
    // Atlas-style feeds also contribute measurement endpoints.
    sample_hosts(source, profile, rng, out);
  } else if (source == SeedSource::kAddrMiner) {
    // ---- Mined hitlist: an actual TGA run over the universe -------------
    collect_addrminer(profile, rng, out);
  } else {
    // ---- Hitlist feed: direct host-space sampling -----------------------
    sample_hosts(source, profile, rng, out);
  }

  sample_extras(source, profile, rng, out);
  return out;
}

SeedDataset SeedCollector::collect_all() const {
  SeedDataset dataset;
  for (const SeedSource source : kAllSeedSources) {
    for (const Ipv6Addr& addr : collect(source)) {
      dataset.add(addr, source);
    }
  }
  return dataset;
}

}  // namespace v6::seeds
