// Seed collection: samples the simulated Internet the way each real-world
// feed samples the real one (paper §5).
//
// Domain-derived feeds (Censys CT, Rapid7 FDNS, the five toplists, CAIDA
// DNS) are collected the way the paper collects them: synthesize the
// feed's *domain list*, then resolve it with the batch AAAA resolver
// (the ZDNS analogue). Traceroute feeds (Scamper, RIPE Atlas) run
// traceroute campaigns through the topology substrate from
// vantage-specific viewpoints. Hitlist feeds (IPv6 Hitlist, AddrMiner)
// sample known-host space directly, alias residue and all.
//
// The bias profiles are tuned so the dataset-composition shapes of
// Table 3 and Figures 1-2 emerge: traceroute sources give AS breadth,
// domains give IP depth with heavy mutual overlap, the hitlist is the
// best single source of responsive IPs, and AddrMiner carries the bulk
// of the aliases.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dns/domain_lists.h"
#include "dns/resolver.h"
#include "dns/zone_db.h"
#include "net/ipv6.h"
#include "seeds/seed_dataset.h"
#include "seeds/source.h"
#include "simnet/universe.h"
#include "topo/traceroute.h"

namespace v6::seeds {

/// Bias profile for one seed source.
struct SourceProfile {
  double as_coverage = 0.5;   // probability an AS is visible to the feed
  double router_p = 0.0;      // inclusion probability per host role,
  double web_p = 0.0;         //   given the AS is visible
  double dns_p = 0.0;
  double endhost_p = 0.0;
  bool popular_only = false;  // toplists: only popular web properties
  double popular_boost = 1.0; // multiplier for popular hosts
  bool china_only = false;    // SecRank: China-region ASes only
  double stale_mult = 1.0;    // multiplier for churned-host inclusion
  /// Router vantage band: traceroute feeds observe the subset of router
  /// interfaces whose address hash falls in [lo, hi) — different vantage
  /// points see mostly different interfaces.
  double router_band_lo = 0.0;
  double router_band_hi = 1.0;
  /// Traceroute campaign size (traceroute feeds only).
  std::size_t campaign_targets = 0;
  std::size_t alias_samples = 0;  // addresses drawn from aliased regions
  std::size_t dense_samples = 0;  // addresses from the AS12322 pattern
  double junk_fraction = 0.0;     // extra never-active routed addresses
};

/// The default profile for each source.
SourceProfile default_profile(SeedSource source);

class SeedCollector {
 public:
  /// `seed` controls all sampling; collection is deterministic in
  /// (universe, seed). Builds the DNS zone and the topology substrate.
  SeedCollector(const v6::simnet::Universe& universe, std::uint64_t seed);

  /// Collects one source's address feed (may contain stale, aliased and
  /// junk addresses — preprocessing is a separate, studied step).
  std::vector<v6::net::Ipv6Addr> collect(SeedSource source) const;

  /// Collects every source into one provenance-tagged dataset.
  SeedDataset collect_all() const;

  /// The synthetic DNS zone used for domain-feed resolution.
  const v6::dns::ZoneDb& zone() const { return zone_; }

 private:
  /// Deterministic per-(source, ASN) visibility coin.
  bool as_visible(SeedSource source, std::uint32_t asn,
                  const SourceProfile& profile) const;

  /// Direct host-space sampling (hitlists; small extras for RIPE Atlas).
  void sample_hosts(SeedSource source, const SourceProfile& profile,
                    v6::net::Rng& rng,
                    std::vector<v6::net::Ipv6Addr>& out) const;

  /// Aliased-region, dense-region, and junk augmentation.
  void sample_extras(SeedSource source, const SourceProfile& profile,
                     v6::net::Rng& rng,
                     std::vector<v6::net::Ipv6Addr>& out) const;

  /// AddrMiner: a genuinely TGA-generated hitlist. Bootstraps a DET-style
  /// generator from a host-space sample (paper: AddrMiner extends DET for
  /// long-term measurement) and accumulates its responsive discoveries —
  /// aliases included, since the miner does not dealias its archive.
  void collect_addrminer(const SourceProfile& profile, v6::net::Rng& rng,
                         std::vector<v6::net::Ipv6Addr>& out) const;

  const v6::simnet::Universe* universe_;
  std::uint64_t seed_;
  v6::dns::ZoneDb zone_;
  mutable v6::topo::TracerouteEngine topo_;
};

}  // namespace v6::seeds
