#include "seeds/overlap.h"

#include <unordered_map>
#include <unordered_set>

namespace v6::seeds {

OverlapMatrix ip_overlap(const SeedDataset& dataset, const AddrFilter& filter) {
  OverlapMatrix m;
  std::array<std::array<std::size_t, kNumSeedSources>, kNumSeedSources>
      inter{};
  std::array<std::size_t, kNumSeedSources> shared{};

  const auto addrs = dataset.addrs();
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (filter && !filter(addrs[i])) continue;
    const std::uint16_t mask = dataset.sources_of(i);
    for (int a = 0; a < kNumSeedSources; ++a) {
      if (!(mask & (1u << a))) continue;
      ++m.total[static_cast<std::size_t>(a)];
      if (mask & ~(1u << a)) ++shared[static_cast<std::size_t>(a)];
      for (int b = 0; b < kNumSeedSources; ++b) {
        if (mask & (1u << b)) {
          ++inter[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
        }
      }
    }
  }

  for (int a = 0; a < kNumSeedSources; ++a) {
    const std::size_t ta = m.total[static_cast<std::size_t>(a)];
    m.any_other[static_cast<std::size_t>(a)] =
        ta == 0 ? 0.0
                : static_cast<double>(shared[static_cast<std::size_t>(a)]) /
                      static_cast<double>(ta);
    for (int b = 0; b < kNumSeedSources; ++b) {
      m.cell[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          ta == 0 ? 0.0
                  : static_cast<double>(
                        inter[static_cast<std::size_t>(a)]
                             [static_cast<std::size_t>(b)]) /
                        static_cast<double>(ta);
    }
  }
  return m;
}

OverlapMatrix as_overlap(const SeedDataset& dataset, const AsnResolver& asn_of,
                         const AddrFilter& filter) {
  // Build per-source AS sets, then compute set overlaps.
  std::array<std::unordered_set<std::uint32_t>, kNumSeedSources> as_sets;
  // Memoize address -> ASN: datasets routinely hold hundreds of
  // thousands of addresses mapping to a few thousand ASes.
  const auto addrs = dataset.addrs();
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (filter && !filter(addrs[i])) continue;
    const auto asn = asn_of(addrs[i]);
    if (!asn) continue;
    const std::uint16_t mask = dataset.sources_of(i);
    for (int a = 0; a < kNumSeedSources; ++a) {
      if (mask & (1u << a)) as_sets[static_cast<std::size_t>(a)].insert(*asn);
    }
  }

  OverlapMatrix m;
  for (int a = 0; a < kNumSeedSources; ++a) {
    const auto& sa = as_sets[static_cast<std::size_t>(a)];
    m.total[static_cast<std::size_t>(a)] = sa.size();
    std::size_t shared = 0;
    for (const std::uint32_t asn : sa) {
      bool in_other = false;
      for (int b = 0; b < kNumSeedSources && !in_other; ++b) {
        if (b != a && as_sets[static_cast<std::size_t>(b)].contains(asn)) {
          in_other = true;
        }
      }
      if (in_other) ++shared;
    }
    m.any_other[static_cast<std::size_t>(a)] =
        sa.empty() ? 0.0
                   : static_cast<double>(shared) / static_cast<double>(sa.size());
    for (int b = 0; b < kNumSeedSources; ++b) {
      const auto& sb = as_sets[static_cast<std::size_t>(b)];
      std::size_t inter = 0;
      for (const std::uint32_t asn : sa) {
        if (sb.contains(asn)) ++inter;
      }
      m.cell[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          sa.empty() ? 0.0
                     : static_cast<double>(inter) /
                           static_cast<double>(sa.size());
    }
  }
  return m;
}

}  // namespace v6::seeds
