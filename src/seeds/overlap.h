// Pairwise seed-source overlap analysis (Figures 1 and 2): for every pair
// of sources, the percentage of source A's addresses (or ASes) also
// present in source B, plus the percentage present in *any* other source.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "net/ipv6.h"
#include "seeds/seed_dataset.h"
#include "seeds/source.h"

namespace v6::seeds {

struct OverlapMatrix {
  /// cell[a][b] = fraction of a's items also in b (diagonal = 1).
  std::array<std::array<double, kNumSeedSources>, kNumSeedSources> cell{};
  /// any_other[a] = fraction of a's items in >= 1 other source.
  std::array<double, kNumSeedSources> any_other{};
  /// total[a] = number of items from source a.
  std::array<std::size_t, kNumSeedSources> total{};
};

/// Resolves an address to its AS number; nullopt for unrouted space.
using AsnResolver =
    std::function<std::optional<std::uint32_t>(const v6::net::Ipv6Addr&)>;

/// Predicate selecting which dataset addresses participate (e.g. only
/// responsive ones for Figure 2); null means all.
using AddrFilter = std::function<bool(const v6::net::Ipv6Addr&)>;

/// IP-level overlap (Figure 1 / 2, left panels).
OverlapMatrix ip_overlap(const SeedDataset& dataset,
                         const AddrFilter& filter = nullptr);

/// AS-level overlap (Figure 1 / 2, right panels): membership is computed
/// over the set of ASes each source's addresses map into.
OverlapMatrix as_overlap(const SeedDataset& dataset, const AsnResolver& asn_of,
                         const AddrFilter& filter = nullptr);

}  // namespace v6::seeds
