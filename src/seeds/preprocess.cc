#include "seeds/preprocess.h"

namespace v6::seeds {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

ActivityMap scan_activity(std::span<const Ipv6Addr> addrs,
                          v6::probe::Scanner& scanner) {
  ActivityMap activity;
  for (const ProbeType type : v6::net::kAllProbeTypes) {
    scanner.scan(addrs, type, [&](const Ipv6Addr& addr, ProbeReply reply) {
      if (v6::net::is_hit(type, reply)) activity.merge_bit(addr, type);
    });
  }
  return activity;
}

std::vector<Ipv6Addr> dealias_seeds(std::span<const Ipv6Addr> addrs,
                                    v6::dealias::Dealiaser& dealiaser,
                                    ProbeType online_type) {
  return dealiaser.filter(addrs, online_type);
}

std::vector<Ipv6Addr> filter_active_any(std::span<const Ipv6Addr> addrs,
                                        const ActivityMap& activity) {
  std::vector<Ipv6Addr> out;
  out.reserve(addrs.size());
  for (const Ipv6Addr& a : addrs) {
    if (activity.active_any(a)) out.push_back(a);
  }
  return out;
}

std::vector<Ipv6Addr> filter_active_on(std::span<const Ipv6Addr> addrs,
                                       const ActivityMap& activity,
                                       ProbeType type) {
  std::vector<Ipv6Addr> out;
  out.reserve(addrs.size());
  for (const Ipv6Addr& a : addrs) {
    if (activity.active_on(a, type)) out.push_back(a);
  }
  return out;
}

}  // namespace v6::seeds
