// Seed-dataset preprocessing: the operations whose impact the paper
// quantifies in RQ1 and RQ2 — dealiasing seeds, removing unresponsive
// seeds, and restricting to port-specific responsive seeds.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "dealias/dealiaser.h"
#include "net/ipv6.h"
#include "net/service.h"
#include "probe/scanner.h"

namespace v6::seeds {

/// Per-address responsiveness across the four studied probe types,
/// obtained by scanning the seeds (the paper's "Active" determination,
/// §5.3).
class ActivityMap {
 public:
  /// Responsiveness mask of `addr` (0 if never scanned or unresponsive).
  v6::net::ServiceMask of(const v6::net::Ipv6Addr& addr) const {
    const auto it = mask_.find(addr);
    return it == mask_.end() ? 0 : it->second;
  }

  bool active_on(const v6::net::Ipv6Addr& addr, v6::net::ProbeType t) const {
    return v6::net::has_service(of(addr), t);
  }

  bool active_any(const v6::net::Ipv6Addr& addr) const { return of(addr) != 0; }

  void set(const v6::net::Ipv6Addr& addr, v6::net::ServiceMask m) {
    mask_[addr] = m;
  }

  void merge_bit(const v6::net::Ipv6Addr& addr, v6::net::ProbeType t) {
    mask_[addr] |= v6::net::service_bit(t);
  }

  std::size_t size() const { return mask_.size(); }

 private:
  std::unordered_map<v6::net::Ipv6Addr, v6::net::ServiceMask> mask_;
};

/// Scans `addrs` on all four probe types and records per-address
/// responsiveness. Only positive replies (per the paper's hit rules)
/// count.
ActivityMap scan_activity(std::span<const v6::net::Ipv6Addr> addrs,
                          v6::probe::Scanner& scanner);

/// Removes aliased addresses from `addrs` under `dealiaser`'s mode.
/// `online_type` is the probe type used for online alias verification
/// (the paper dealiases seed datasets with ICMP-based probing).
std::vector<v6::net::Ipv6Addr> dealias_seeds(
    std::span<const v6::net::Ipv6Addr> addrs,
    v6::dealias::Dealiaser& dealiaser,
    v6::net::ProbeType online_type = v6::net::ProbeType::kIcmp);

/// Keeps addresses responsive on at least one probe type ("All Active").
std::vector<v6::net::Ipv6Addr> filter_active_any(
    std::span<const v6::net::Ipv6Addr> addrs, const ActivityMap& activity);

/// Keeps addresses responsive on `type` (the port-specific datasets of
/// RQ2).
std::vector<v6::net::Ipv6Addr> filter_active_on(
    std::span<const v6::net::Ipv6Addr> addrs, const ActivityMap& activity,
    v6::net::ProbeType type);

}  // namespace v6::seeds
