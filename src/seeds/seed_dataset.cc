#include "seeds/seed_dataset.h"

#include "check/contracts.h"

namespace v6::seeds {

void SeedDataset::add(const v6::net::Ipv6Addr& addr, SeedSource source) {
  const auto [it, inserted] =
      index_.emplace(addr, static_cast<std::uint32_t>(addrs_.size()));
  if (inserted) {
    addrs_.push_back(addr);
    masks_.push_back(source_bit(source));
  } else {
    masks_[it->second] |= source_bit(source);
  }
  V6_INVARIANT_MSG(addrs_.size() == masks_.size() &&
                       addrs_.size() == index_.size(),
                   "address / mask / index stores out of sync");
}

std::uint16_t SeedDataset::sources_of(const v6::net::Ipv6Addr& addr) const {
  const auto it = index_.find(addr);
  if (it == index_.end()) return 0;
  V6_INVARIANT(it->second < masks_.size());
  return masks_[it->second];
}

std::vector<v6::net::Ipv6Addr> SeedDataset::from_source(
    SeedSource source) const {
  std::vector<v6::net::Ipv6Addr> out;
  const std::uint16_t bit = source_bit(source);
  for (std::size_t i = 0; i < addrs_.size(); ++i) {
    if (masks_[i] & bit) out.push_back(addrs_[i]);
  }
  return out;
}

std::size_t SeedDataset::count(SeedSource source) const {
  std::size_t n = 0;
  const std::uint16_t bit = source_bit(source);
  for (const std::uint16_t m : masks_) {
    if (m & bit) ++n;
  }
  return n;
}

}  // namespace v6::seeds
