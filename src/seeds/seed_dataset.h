// Seed dataset container: a unique address set with per-address source
// provenance, supporting the overlap analyses of Figures 1 and 2.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "check/contracts.h"
#include "net/ipv6.h"
#include "seeds/source.h"

namespace v6::seeds {

class SeedDataset {
 public:
  /// Records that `addr` was observed by `source`. Idempotent per
  /// (addr, source); an address may carry several source bits.
  void add(const v6::net::Ipv6Addr& addr, SeedSource source);

  /// Unique addresses in first-seen order.
  std::span<const v6::net::Ipv6Addr> addrs() const { return addrs_; }

  /// Source membership bitmask of addrs()[i].
  std::uint16_t sources_of(std::size_t i) const {
    V6_REQUIRE_MSG(i < masks_.size(), "index must come from addrs()");
    return masks_[i];
  }

  /// Source membership bitmask for `addr` (0 if absent).
  std::uint16_t sources_of(const v6::net::Ipv6Addr& addr) const;

  bool contains(const v6::net::Ipv6Addr& addr) const {
    return index_.contains(addr);
  }

  std::size_t size() const { return addrs_.size(); }
  bool empty() const { return addrs_.empty(); }

  /// All addresses carrying `source`'s bit.
  std::vector<v6::net::Ipv6Addr> from_source(SeedSource source) const;

  /// Number of addresses carrying `source`'s bit.
  std::size_t count(SeedSource source) const;

 private:
  std::vector<v6::net::Ipv6Addr> addrs_;
  std::vector<std::uint16_t> masks_;
  std::unordered_map<v6::net::Ipv6Addr, std::uint32_t> index_;
};

}  // namespace v6::seeds
