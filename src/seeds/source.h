// The twelve seed data sources studied by the paper (Table 3).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace v6::seeds {

enum class SeedSource : std::uint8_t {
  // Domain-derived sources ("D" in Table 3).
  kCensys = 0,    // Certificate Transparency logs via Censys
  kRapid7 = 1,    // Rapid7 FDNS (2021 archival snapshot; stale-heavy)
  kUmbrella = 2,  // Cisco Umbrella toplist
  kMajestic = 3,  // Majestic Million toplist
  kTranco = 4,    // Tranco toplist
  kSecrank = 5,   // SecRank toplist (China-heavy)
  kRadar = 6,     // Cloudflare Radar toplist
  kCaidaDns = 7,  // CAIDA DNS Names
  // Router/traceroute sources ("R").
  kScamper = 8,    // CAIDA IPv6 Topology (Scamper)
  kRipeAtlas = 9,  // RIPE Atlas
  // Hitlists ("Both").
  kHitlist = 10,    // IPv6 Hitlist
  kAddrMiner = 11,  // AddrMiner hitlist (alias-heavy)
};

inline constexpr int kNumSeedSources = 12;

inline constexpr std::array<SeedSource, kNumSeedSources> kAllSeedSources = {
    SeedSource::kCensys,   SeedSource::kRapid7,    SeedSource::kUmbrella,
    SeedSource::kMajestic, SeedSource::kTranco,    SeedSource::kSecrank,
    SeedSource::kRadar,    SeedSource::kCaidaDns,  SeedSource::kScamper,
    SeedSource::kRipeAtlas, SeedSource::kHitlist,  SeedSource::kAddrMiner};

constexpr std::string_view to_string(SeedSource s) {
  switch (s) {
    case SeedSource::kCensys: return "Censys";
    case SeedSource::kRapid7: return "Rapid7";
    case SeedSource::kUmbrella: return "Umbrella";
    case SeedSource::kMajestic: return "Majestic";
    case SeedSource::kTranco: return "Tranco";
    case SeedSource::kSecrank: return "SecRank";
    case SeedSource::kRadar: return "Radar";
    case SeedSource::kCaidaDns: return "CAIDA DNS";
    case SeedSource::kScamper: return "Scamper";
    case SeedSource::kRipeAtlas: return "RIPE Atlas";
    case SeedSource::kHitlist: return "IPv6 Hitlist";
    case SeedSource::kAddrMiner: return "AddrMiner";
  }
  return "?";
}

/// Source category as labeled in Table 3.
enum class SourceCategory : std::uint8_t { kDomain, kRouter, kBoth };

constexpr SourceCategory category(SeedSource s) {
  switch (s) {
    case SeedSource::kScamper:
    case SeedSource::kRipeAtlas:
      return SourceCategory::kRouter;
    case SeedSource::kHitlist:
    case SeedSource::kAddrMiner:
      return SourceCategory::kBoth;
    default:
      return SourceCategory::kDomain;
  }
}

constexpr std::string_view to_string(SourceCategory c) {
  switch (c) {
    case SourceCategory::kDomain: return "D";
    case SourceCategory::kRouter: return "R";
    case SourceCategory::kBoth: return "Both";
  }
  return "?";
}

/// Bit for set-membership masks over sources.
constexpr std::uint16_t source_bit(SeedSource s) {
  return static_cast<std::uint16_t>(1u << static_cast<int>(s));
}

}  // namespace v6::seeds
