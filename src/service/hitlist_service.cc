#include "service/hitlist_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "check/validate.h"
#include "net/rng.h"
#include "obs/watchdog.h"
#include "probe/stream_scanner.h"

namespace v6::service {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;

namespace {

/// Per-cycle seed stream tags. Distinct high bits keep the cycle index
/// from colliding with other derive_seed tags in the tree.
constexpr std::uint64_t kAgingTag = 0xA6E0'0000'0000ULL;
constexpr std::uint64_t kScanTag = 0x5CA2'0000'0000ULL;

/// Validation must precede the members (bandit, scheduler) built from
/// the config, so it runs inside the member-init chain.
ServiceConfig validated(ServiceConfig config) {
  config.validate();
  return config;
}

}  // namespace

void ServiceConfig::validate() const {
  const v6::check::Validator v("ServiceConfig");
  v.positive(budget_per_cycle, "budget_per_cycle");
  v.positive(shards, "shards");
  v.positive(max_pps, "max_pps");
  v.non_negative(scan_retries, "scan_retries");
  v.unit_interval(explore_floor, "explore_floor");
  const std::size_t roster =
      kinds.empty() ? v6::tga::kAllTgas.size() : kinds.size();
  v.require(explore_floor * static_cast<double>(roster) <= 1.0,
            "explore_floor", "must leave a non-negative shared remainder");
  v.positive(rescan.rescan_interval, "rescan.rescan_interval");
  v.positive(rescan.max_miss_streak, "rescan.max_miss_streak");
}

HitlistService::HitlistService(v6::simnet::Universe& universe,
                               std::span<const Ipv6Addr> seeds,
                               ServiceConfig config)
    : universe_(&universe),
      config_(validated(std::move(config))),
      kinds_(config_.kinds.empty()
                 ? std::vector<v6::tga::TgaKind>(v6::tga::kAllTgas.begin(),
                                                 v6::tga::kAllTgas.end())
                 : config_.kinds),
      scheduler_(config_.rescan),
      bandit_(kinds_.size(), config_.seed, config_.explore_floor) {
  generators_.reserve(kinds_.size());
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    generators_.emplace_back(
        kinds_[i], v6::net::derive_seed(config_.seed, /*tag=*/0x76A0 + i));
    generators_.back().prepare(seeds);
  }
  for (const Ipv6Addr& addr : seeds) scheduler_.track(addr);
}

void HitlistService::ingest_seeds(const SeedDelta& delta) {
  if (delta.empty()) return;
  for (IncrementalTargetGenerator& generator : generators_) {
    generator.ingest(delta);
  }
  for (const Ipv6Addr& addr : delta.added) scheduler_.track(addr);
}

ServiceStats HitlistService::stats() const {
  ServiceStats out = stats_;
  out.incremental_updates = 0;
  out.full_rebuilds = 0;
  for (const IncrementalTargetGenerator& generator : generators_) {
    out.incremental_updates += generator.incremental_updates();
    out.full_rebuilds += generator.full_rebuilds();
  }
  return out;
}

const HitlistEpoch& HitlistService::refresh_once() {
  const std::uint64_t cycle = stats_.cycles + 1;
  const std::uint64_t probes_before = stats_.probes;
  v6::obs::Telemetry* const telemetry = config_.telemetry;

  // Liveness: the whole cycle runs under one `service.refresh`
  // heartbeat, beaten once per phase; the watchdog is also threaded
  // into the scanner below so its pipeline stages report on their own.
  v6::obs::Heartbeat* const heartbeat =
      config_.watchdog != nullptr ? &config_.watchdog->stage("service.refresh")
                                  : nullptr;
  struct ArmedRefresh {
    v6::obs::Heartbeat* heartbeat;
    explicit ArmedRefresh(v6::obs::Heartbeat* hb) : heartbeat(hb) {
      if (heartbeat != nullptr) heartbeat->arm();
    }
    ~ArmedRefresh() {
      if (heartbeat != nullptr) heartbeat->disarm();
    }
    void beat() {
      if (heartbeat != nullptr) heartbeat->beat();
    }
  } refresh_stage(heartbeat);
  const auto wall_start = std::chrono::steady_clock::now();

  // 1. Churn: the universe moves first, then the service chases it.
  if (config_.age_universe && cycle > 1) {
    v6::simnet::AgingConfig aging = config_.aging;
    aging.seed = v6::net::derive_seed(config_.seed, kAgingTag + cycle);
    v6::simnet::UniverseBuilder::age(*universe_, aging);
  }

  // One streaming scanner per cycle, built after aging so it sees the
  // current universe; the per-cycle seed keeps reply randomness
  // independent across cycles while staying reproducible.
  v6::probe::StreamScanOptions scan_options;
  scan_options.shards = static_cast<unsigned>(config_.shards);
  scan_options.scan.seed = v6::net::derive_seed(config_.seed, kScanTag + cycle);
  scan_options.scan.max_pps = config_.max_pps;
  scan_options.scan.max_retries = config_.scan_retries;
  scan_options.scan.telemetry = telemetry;
  scan_options.watchdog = config_.watchdog;
  v6::probe::StreamScanner scanner(*universe_, /*blocklist=*/nullptr,
                                   std::move(scan_options));
  refresh_stage.beat();

  // 2. Rescans: every tracked address whose interval is due, probed in
  // sorted order. Results update the per-address history.
  const std::vector<Ipv6Addr> due = scheduler_.due(cycle);
  if (!due.empty()) {
    scanner.scan(due, config_.type, [&](const Ipv6Addr& addr,
                                        ProbeReply reply) {
      scheduler_.note_result(addr, v6::net::is_hit(config_.type, reply), cycle);
    });
    stats_.rescans += due.size();
    stats_.probes += due.size();
  }
  refresh_stage.beat();

  // 3. Discovery: bandit shares of the cycle budget, one slice per TGA
  // in roster order; hits feed the generators (online models), the
  // scheduler (they join the rescan set), and the bandit (next cycle's
  // shares).
  last_allocation_ = bandit_.allocate(config_.budget_per_cycle);
  for (std::size_t arm = 0; arm < kinds_.size(); ++arm) {
    if (last_allocation_[arm] == 0) continue;
    v6::tga::TargetGenerator& generator = generators_[arm].generator();
    const std::vector<Ipv6Addr> targets = generator.next_batch(
        static_cast<std::size_t>(last_allocation_[arm]));
    if (targets.empty()) continue;
    std::uint64_t hits = 0;
    scanner.scan(targets, config_.type,
                 [&](const Ipv6Addr& addr, ProbeReply reply) {
                   const bool hit = v6::net::is_hit(config_.type, reply);
                   generator.observe(addr, hit);
                   if (!hit) return;
                   ++hits;
                   if (!scheduler_.contains(addr)) ++stats_.discovered;
                   scheduler_.note_result(addr, true, cycle);
                 });
    stats_.probes += targets.size();
    bandit_.reward(arm, targets.size(), hits);
    refresh_stage.beat();
  }

  // 4. Decay: addresses past the miss-streak threshold leave the
  // tracked set (and therefore the next epoch).
  stats_.evicted += scheduler_.evict_churned();

  // 5. Publish the surviving responsive set as the next epoch.
  HitlistStore::EpochBuilder builder = store_.begin_epoch();
  builder.add_all(scheduler_.responsive());
  const HitlistEpoch& epoch = store_.publish_epoch(std::move(builder));

  stats_.cycles = cycle;
  stats_.virtual_seconds += scanner.virtual_seconds();
  if (telemetry != nullptr) {
    v6::obs::Registry& registry = telemetry->registry();
    registry.counter("service.cycles").inc();
    registry.gauge("service.epoch_version").set(
        static_cast<std::int64_t>(epoch.version));
    registry.gauge("service.hitlist_size").set(
        static_cast<std::int64_t>(epoch.size()));
    registry.gauge("service.tracked").set(
        static_cast<std::int64_t>(scheduler_.tracked()));
    registry.counter("service.probes").add(stats_.probes - probes_before);
    // Wall-side cycle duration: host time, exempt from the determinism
    // contract (`.wall` suffix, docs/OBSERVABILITY.md).
    registry.gauge("service.refresh.wall_nanos.wall")
        .set(static_cast<std::int64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count()));
  }
  return epoch;
}

}  // namespace v6::service
