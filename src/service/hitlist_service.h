// The continuous hitlist service (docs/SERVICE.md): a refresh loop on
// the virtual clock that keeps a versioned hitlist fresh against a
// churning universe, plus the query facade (`snapshot` / `lookup` /
// `stats`) that `sos serve` and bench_serve drive.
//
// One refresh cycle:
//
//   1. optionally age the universe (simnet churn model, seeded per
//      cycle) — the world the service is chasing;
//   2. rescan every tracked address whose interval is due, updating
//      per-address responsiveness history (RescanScheduler);
//   3. apportion the discovery budget across the TGAs by measured hit
//      ratio (BanditAllocator), run each generator's slice through the
//      streaming scan engine, and feed results back into the
//      generators, the scheduler, and the bandit;
//   4. evict addresses whose miss streak crossed the policy threshold;
//   5. publish the surviving responsive set as the next immutable
//      HitlistStore epoch.
//
// Everything is a pure function of (universe state, ServiceConfig):
// scan replies are stateless per (addr, attempt, seed), the scheduler
// iterates in sorted address order, the bandit is seeded, and the
// streaming engine is shard-count-invariant — so the epoch sequence is
// bit-identical across shard counts (ctest-asserted in
// tests/service/hitlist_service_test.cc).
//
// Threading contract: refresh_once()/ingest_seeds() are writer-side and
// must be externally serialized (one refresh loop). snapshot(),
// lookup(), and stats() are safe from any thread concurrently with the
// writer — the store's epoch publication is the synchronization point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "net/service.h"
#include "obs/telemetry.h"
#include "service/hitlist_store.h"
#include "service/incremental_tga.h"
#include "service/rescan_scheduler.h"
#include "simnet/universe_builder.h"
#include "tga/registry.h"

namespace v6::obs {
class StallWatchdog;
}  // namespace v6::obs

namespace v6::service {

struct ServiceConfig {
  std::uint64_t seed = 42;
  /// Discovery probes per refresh cycle, split across the TGAs by the
  /// bandit (rescan probes are charged separately).
  std::uint64_t budget_per_cycle = 40'000;
  /// TGAs on the roster; empty means all eight.
  std::vector<v6::tga::TgaKind> kinds;
  v6::net::ProbeType type = v6::net::ProbeType::kIcmp;
  /// Streaming-engine shard count for the refresh scans (>= 1; the
  /// epoch sequence is invariant in this).
  int shards = 1;
  double max_pps = 10'000.0;
  int scan_retries = 1;
  /// Per-TGA guaranteed share of the discovery budget, in
  /// [0, 1/num_tgas].
  double explore_floor = 0.10;
  RescanPolicy rescan;
  /// Age the universe one churn step before every cycle after the
  /// first (the service exists because hitlists decay; aging off gives
  /// a static world for equivalence tests).
  bool age_universe = false;
  v6::simnet::AgingConfig aging;
  /// Optional instrumentation (borrowed; may be null). `service.*`
  /// counters and gauges, never outcome-affecting.
  v6::obs::Telemetry* telemetry = nullptr;
  /// Optional liveness plane (borrowed; may be null): the refresh loop
  /// arms a `service.refresh` heartbeat beaten once per phase, and the
  /// watchdog is threaded into the cycle's streaming scanner so its
  /// producer/prober/receiver stages report too. Wall-side only — a
  /// watchdog never changes the epoch sequence
  /// (docs/OBSERVABILITY.md "Live introspection").
  v6::obs::StallWatchdog* watchdog = nullptr;

  ServiceConfig& with_seed(std::uint64_t v) { seed = v; return *this; }
  ServiceConfig& with_budget(std::uint64_t v) { budget_per_cycle = v; return *this; }
  ServiceConfig& with_kinds(std::span<const v6::tga::TgaKind> k) { kinds.assign(k.begin(), k.end()); return *this; }
  ServiceConfig& with_type(v6::net::ProbeType v) { type = v; return *this; }
  ServiceConfig& with_shards(int v) { shards = v; return *this; }
  ServiceConfig& with_max_pps(double v) { max_pps = v; return *this; }
  ServiceConfig& with_explore_floor(double v) { explore_floor = v; return *this; }
  ServiceConfig& with_rescan(const RescanPolicy& v) { rescan = v; return *this; }
  ServiceConfig& with_aging(const v6::simnet::AgingConfig& v) { age_universe = true; aging = v; return *this; }
  ServiceConfig& with_telemetry(v6::obs::Telemetry* v) { telemetry = v; return *this; }
  ServiceConfig& with_watchdog(v6::obs::StallWatchdog* v) { watchdog = v; return *this; }

  /// Shared check/validate.h path; throws check::ConfigError with a
  /// uniform "ServiceConfig.<field>: <constraint>" message.
  void validate() const;
};

/// Cumulative service counters, all derived from deterministic state.
struct ServiceStats {
  std::uint64_t cycles = 0;
  /// Probe targets submitted to the scan engine (rescans + discovery).
  std::uint64_t probes = 0;
  /// Responsive addresses first seen by a discovery scan.
  std::uint64_t discovered = 0;
  /// Rescan probes issued.
  std::uint64_t rescans = 0;
  /// Addresses evicted after max_miss_streak consecutive misses.
  std::uint64_t evicted = 0;
  /// Seed deltas folded incrementally vs full generator retrains,
  /// summed across the roster.
  std::uint64_t incremental_updates = 0;
  std::uint64_t full_rebuilds = 0;
  /// Virtual wire seconds consumed by refresh scans.
  double virtual_seconds = 0.0;
};

class HitlistService {
 public:
  /// Binds the service to `universe` (mutated only when aging is
  /// enabled) and trains every roster generator on `seeds`. The seeds
  /// enter the rescan schedule immediately, so the first refresh
  /// classifies them.
  HitlistService(v6::simnet::Universe& universe,
                 std::span<const v6::net::Ipv6Addr> seeds,
                 ServiceConfig config);

  /// One refresh cycle (see file comment); returns the epoch it
  /// published. Writer-side: serialize externally.
  const HitlistEpoch& refresh_once();

  /// Applies a seed-update delta to every roster generator
  /// (incrementally where the model allows) and schedules the added
  /// addresses for classification next cycle. Writer-side.
  void ingest_seeds(const SeedDelta& delta);

  /// Query facade — safe from any thread, concurrently with the
  /// refresh loop.
  const HitlistEpoch& snapshot() const { return store_.snapshot(); }
  bool lookup(const v6::net::Ipv6Addr& addr) const {
    return store_.lookup(addr);
  }
  ServiceStats stats() const;

  const HitlistStore& store() const { return store_; }
  /// The roster in allocation order (bandit arm i == roster()[i]).
  std::span<const v6::tga::TgaKind> roster() const { return kinds_; }
  /// Last cycle's per-arm discovery shares (empty before the first
  /// refresh) — exposed for the determinism tests.
  std::span<const std::uint64_t> last_allocation() const {
    return last_allocation_;
  }

 private:
  v6::simnet::Universe* universe_;
  ServiceConfig config_;
  std::vector<v6::tga::TgaKind> kinds_;
  std::vector<IncrementalTargetGenerator> generators_;
  RescanScheduler scheduler_;
  BanditAllocator bandit_;
  HitlistStore store_;
  ServiceStats stats_;
  std::vector<std::uint64_t> last_allocation_;
};

}  // namespace v6::service
