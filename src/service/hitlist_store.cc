#include "service/hitlist_store.h"

#include <algorithm>
#include <utility>

namespace v6::service {

using v6::net::Ipv6Addr;

bool HitlistEpoch::contains(const Ipv6Addr& addr) const {
  return std::binary_search(addrs.begin(), addrs.end(), addr);
}

std::uint64_t epoch_fingerprint(std::uint64_t version,
                                std::span<const Ipv6Addr> addrs) {
  std::uint64_t chain = v6::net::splitmix64(version ^ 0xE90C4A11);
  for (const Ipv6Addr& addr : addrs) {
    chain = v6::net::splitmix64(chain ^ addr.hi());
    chain = v6::net::splitmix64(chain ^ addr.lo());
  }
  return chain;
}

HitlistStore::HitlistStore() {
  auto root = std::make_unique<HitlistEpoch>();
  root->fingerprint = epoch_fingerprint(0, root->addrs);
  head_.store(root.get(), std::memory_order_release);
  epochs_.push_back(std::move(root));
}

std::size_t HitlistStore::epoch_count() const {
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  return epochs_.size();
}

const HitlistEpoch& HitlistStore::publish_epoch(EpochBuilder&& builder) {
  auto next = std::make_unique<HitlistEpoch>();
  next->addrs = std::move(builder.addrs_);
  std::sort(next->addrs.begin(), next->addrs.end());
  next->addrs.erase(std::unique(next->addrs.begin(), next->addrs.end()),
                    next->addrs.end());

  const std::lock_guard<std::mutex> lock(writer_mutex_);
  next->version = epochs_.back()->version + 1;
  next->fingerprint = epoch_fingerprint(next->version, next->addrs);
  const HitlistEpoch* published = next.get();
  epochs_.push_back(std::move(next));
  // The single point of publication: everything written above
  // happens-before any reader's acquire load of the new head.
  head_.store(published, std::memory_order_release);
  return *published;
}

}  // namespace v6::service
