// Versioned, immutable hitlist storage for the continuous scanning
// service (docs/SERVICE.md).
//
// The store is a sequence of epochs. Each HitlistEpoch is an immutable
// snapshot — a sorted, deduplicated run of addresses plus a fingerprint
// over its contents — and publication is copy-on-write: a refresh
// builds the next epoch off to the side (EpochBuilder), then swings one
// atomic head pointer. Readers never lock, never block, and never see a
// half-built epoch:
//
//   reader:  snapshot() = head_.load(acquire)  → an epoch frozen forever
//   writer:  begin_epoch() … publish_epoch()   → store + release the new head
//
// Published epochs are retained for the store's lifetime (append-only),
// so a snapshot reference stays valid however many refreshes land after
// it — that retention is what makes the reader path truly lock-free: no
// reference counting, no hazard pointers, no reclamation races. A
// hitlist epoch is a few hundred KB in this simulation; a service that
// refreshed every virtual hour for a year would retain ~10K epochs,
// which is an acceptable price for wait-free readers.
//
// The only mutation spellings are begin_epoch()/publish_epoch(), and
// the v6lint `hitlist-mutation` rule confines them to src/service/
// (docs/STATIC_ANALYSIS.md): library code everywhere else can read
// snapshots but cannot grow the store.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "net/ipv6.h"
#include "net/rng.h"

namespace v6::service {

/// One immutable hitlist version. Never modified after publication.
struct HitlistEpoch {
  /// Monotonic version, starting at 0 for the store's empty root epoch.
  std::uint64_t version = 0;
  /// Sorted ascending, deduplicated.
  std::vector<v6::net::Ipv6Addr> addrs;
  /// splitmix64 chain over (version, addrs), computed at publication.
  /// Readers (and the TSan snapshot-isolation test) can recompute it to
  /// prove the epoch they hold was never torn or mutated.
  std::uint64_t fingerprint = 0;

  /// Membership by binary search — O(log n), no hashing, no allocation.
  bool contains(const v6::net::Ipv6Addr& addr) const;

  std::size_t size() const { return addrs.size(); }
};

/// Recomputes the fingerprint chain for `version` + `addrs` (the same
/// function publish_epoch uses to stamp new epochs).
std::uint64_t epoch_fingerprint(std::uint64_t version,
                                std::span<const v6::net::Ipv6Addr> addrs);

class HitlistStore {
 public:
  /// Accumulates the next epoch's contents. Duplicates and ordering are
  /// irrelevant at add() time; publish_epoch sorts and dedups once.
  class EpochBuilder {
   public:
    void add(const v6::net::Ipv6Addr& addr) { addrs_.push_back(addr); }
    void add_all(std::span<const v6::net::Ipv6Addr> addrs) {
      addrs_.insert(addrs_.end(), addrs.begin(), addrs.end());
    }
    std::size_t pending() const { return addrs_.size(); }

   private:
    friend class HitlistStore;
    std::vector<v6::net::Ipv6Addr> addrs_;
  };

  /// Starts at version 0 with an empty published epoch, so snapshot()
  /// is valid from the first instant.
  HitlistStore();

  HitlistStore(const HitlistStore&) = delete;
  HitlistStore& operator=(const HitlistStore&) = delete;

  /// The current epoch. Wait-free (one acquire load); the returned
  /// reference is valid for the store's lifetime, across any number of
  /// later publications.
  const HitlistEpoch& snapshot() const {
    return *head_.load(std::memory_order_acquire);
  }

  /// Membership in the current epoch. Equivalent to
  /// snapshot().contains(addr) — one acquire load plus a binary search.
  bool lookup(const v6::net::Ipv6Addr& addr) const {
    return snapshot().contains(addr);
  }

  /// Version of the current epoch.
  std::uint64_t version() const { return snapshot().version; }

  /// Number of epochs retained (== current version + 1).
  std::size_t epoch_count() const;

  /// Writer side: a fresh builder for the next epoch.
  EpochBuilder begin_epoch() const { return EpochBuilder{}; }

  /// Writer side: sorts, dedups, fingerprints, and publishes `builder`'s
  /// contents as the next epoch, returning it. Single release store
  /// makes the whole epoch visible to readers at once. Serializes
  /// concurrent writers behind a mutex the readers never touch.
  const HitlistEpoch& publish_epoch(EpochBuilder&& builder);

 private:
  std::atomic<const HitlistEpoch*> head_;
  /// Writer-only state: publication order and the append-only retention
  /// of every epoch ever published (see file comment for why).
  mutable std::mutex writer_mutex_;
  std::vector<std::unique_ptr<HitlistEpoch>> epochs_;
};

}  // namespace v6::service
