#include "service/incremental_tga.h"

#include <algorithm>

namespace v6::service {

using v6::net::Ipv6Addr;

IncrementalTargetGenerator::IncrementalTargetGenerator(v6::tga::TgaKind kind,
                                                       std::uint64_t rng_seed)
    : kind_(kind),
      rng_seed_(rng_seed),
      generator_(v6::tga::make_generator(kind)) {}

void IncrementalTargetGenerator::prepare(std::span<const Ipv6Addr> seeds) {
  seeds_.clear();
  seed_set_.clear();
  for (const Ipv6Addr& addr : seeds) {
    if (seed_set_.insert(addr).second) seeds_.push_back(addr);
  }
  incremental_updates_ = 0;
  full_rebuilds_ = 0;
  generator_->prepare(seeds_, rng_seed_);
}

void IncrementalTargetGenerator::rebuild() {
  ++full_rebuilds_;
  generator_->prepare(seeds_, rng_seed_);
}

void IncrementalTargetGenerator::ingest(const SeedDelta& delta) {
  // Removals first: they force the rebuild anyway, so fresh additions
  // in the same delta ride along in the retrain.
  bool removed_any = false;
  if (!delta.removed.empty()) {
    for (const Ipv6Addr& addr : delta.removed) {
      if (seed_set_.erase(addr) > 0) removed_any = true;
    }
    if (removed_any) {
      std::erase_if(seeds_, [this](const Ipv6Addr& addr) {
        return !seed_set_.contains(addr);
      });
    }
  }

  std::vector<Ipv6Addr> fresh;
  fresh.reserve(delta.added.size());
  for (const Ipv6Addr& addr : delta.added) {
    if (seed_set_.contains(addr)) continue;
    fresh.push_back(addr);
  }

  if (removed_any) {
    // Models cannot unlearn; merge the additions into the list and
    // retrain once from the filtered result.
    for (const Ipv6Addr& addr : fresh) {
      seed_set_.insert(addr);
      seeds_.push_back(addr);
    }
    rebuild();
    return;
  }
  if (fresh.empty()) return;  // delta was a no-op

  // Addition-only delta: let the model fold it in place if it can.
  // absorb_seeds registers the addresses in the generator's own seed
  // bookkeeping; ours is updated either way.
  const bool absorbed = generator_->absorb_seeds(fresh);
  if (!absorbed) {
    for (const Ipv6Addr& addr : fresh) {
      seed_set_.insert(addr);
      seeds_.push_back(addr);
    }
    rebuild();
    return;
  }
  for (const Ipv6Addr& addr : fresh) {
    seed_set_.insert(addr);
    seeds_.push_back(addr);
  }
  ++incremental_updates_;
}

}  // namespace v6::service
