// Incremental adapter over the eight TargetGenerators (docs/SERVICE.md).
//
// The batch pipeline retrains a generator from scratch for every run:
// prepare(seeds) wipes the model, the emitted set, and the RNG. A
// continuous service cannot afford that — seed updates arrive as small
// deltas between refresh cycles, and a full retrain both wastes work
// and forgets which candidates were already emitted (so the service
// would re-probe them).
//
// IncrementalTargetGenerator keeps the authoritative merged seed list
// and routes each delta to the cheapest path the model supports:
//
//   - additions    → TargetGenerator::absorb_seeds() when the model can
//                    fold a delta in place (6Hit's tree recreation);
//                    otherwise a full prepare() with the merged list.
//   - removals     → always a full rebuild: no model here can unlearn
//                    an address, so the merged list is filtered and the
//                    generator retrained from it.
//
// The ingest statistics (incremental vs full) are what the service
// reports, so the cost of a churn stream is observable.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/ipv6.h"
#include "tga/registry.h"
#include "tga/target_generator.h"

namespace v6::service {

/// A seed-update delta between refresh cycles.
struct SeedDelta {
  std::vector<v6::net::Ipv6Addr> added;
  std::vector<v6::net::Ipv6Addr> removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

class IncrementalTargetGenerator {
 public:
  /// Owns a fresh generator of `kind`. `rng_seed` is the deterministic
  /// seed forwarded to every prepare() call.
  IncrementalTargetGenerator(v6::tga::TgaKind kind, std::uint64_t rng_seed);

  /// Full (re)train from `seeds`, replacing the merged list. Resets the
  /// ingest statistics; counts as neither an incremental update nor a
  /// fallback rebuild.
  void prepare(std::span<const v6::net::Ipv6Addr> seeds);

  /// Applies one delta. Duplicate additions and unknown removals are
  /// ignored; an effectively-empty delta touches nothing.
  void ingest(const SeedDelta& delta);

  v6::tga::TgaKind kind() const { return kind_; }
  v6::tga::TargetGenerator& generator() { return *generator_; }
  std::span<const v6::net::Ipv6Addr> seeds() const { return seeds_; }

  /// Deltas the model folded in place via absorb_seeds().
  std::uint64_t incremental_updates() const { return incremental_updates_; }
  /// Deltas that forced a full retrain (removals, or models without
  /// incremental support).
  std::uint64_t full_rebuilds() const { return full_rebuilds_; }

 private:
  void rebuild();

  v6::tga::TgaKind kind_;
  std::uint64_t rng_seed_;
  std::unique_ptr<v6::tga::TargetGenerator> generator_;
  /// Authoritative merged seed list, insertion-ordered so rebuilds are
  /// reproducible; `seed_set_` guards against duplicates.
  std::vector<v6::net::Ipv6Addr> seeds_;
  std::unordered_set<v6::net::Ipv6Addr, v6::net::Ipv6AddrHash> seed_set_;
  std::uint64_t incremental_updates_ = 0;
  std::uint64_t full_rebuilds_ = 0;
};

}  // namespace v6::service
