#include "service/rescan_scheduler.h"

#include <algorithm>
#include <numeric>

#include "check/contracts.h"

namespace v6::service {

using v6::net::Ipv6Addr;

void RescanScheduler::track(const Ipv6Addr& addr) {
  history_.try_emplace(addr);
}

void RescanScheduler::note_result(const Ipv6Addr& addr, bool responsive,
                                  std::uint64_t cycle) {
  History& h = history_[addr];
  h.last_probed = cycle;
  h.probed_once = true;
  if (responsive) {
    h.last_responsive = cycle;
    h.miss_streak = 0;
    h.responsive = true;
  } else {
    ++h.miss_streak;
    h.responsive = false;
  }
}

std::vector<Ipv6Addr> RescanScheduler::due(std::uint64_t cycle) const {
  std::vector<Ipv6Addr> out;
  for (const auto& [addr, h] : history_) {
    // Never-probed addresses (fresh seeds, fresh discoveries fed via
    // track) are always due; probed ones wait out the interval.
    if (!h.probed_once || cycle >= h.last_probed + policy_.rescan_interval) {
      out.push_back(addr);
    }
  }
  return out;  // map order == sorted order
}

std::vector<Ipv6Addr> RescanScheduler::responsive() const {
  std::vector<Ipv6Addr> out;
  for (const auto& [addr, h] : history_) {
    if (h.responsive) out.push_back(addr);
  }
  return out;
}

std::size_t RescanScheduler::evict_churned() {
  std::size_t evicted = 0;
  for (auto it = history_.begin(); it != history_.end();) {
    if (it->second.probed_once && !it->second.responsive &&
        it->second.miss_streak >= policy_.max_miss_streak) {
      it = history_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

BanditAllocator::BanditAllocator(std::size_t arms, std::uint64_t seed,
                                 double explore_floor)
    : stats_(arms),
      explore_floor_(explore_floor),
      rng_(v6::net::make_rng(seed, /*tag=*/0xBA4D17)) {
  V6_REQUIRE_MSG(arms > 0, "bandit needs at least one arm");
  V6_REQUIRE_MSG(explore_floor >= 0.0 &&
                     explore_floor * static_cast<double>(arms) <= 1.0,
                 "explore floor must leave a non-negative remainder");
}

double BanditAllocator::score(std::size_t arm) const {
  const ArmStats& s = stats_[arm];
  return (static_cast<double>(s.hits) + 1.0) /
         (static_cast<double>(s.probes) + 2.0);
}

void BanditAllocator::reward(std::size_t arm, std::uint64_t probes,
                             std::uint64_t hits) {
  stats_[arm].probes += probes;
  stats_[arm].hits += hits;
}

std::vector<std::uint64_t> BanditAllocator::allocate(std::uint64_t budget) {
  const std::size_t n = stats_.size();
  std::vector<std::uint64_t> shares(n, 0);
  if (budget == 0) return shares;

  // Guaranteed exploration floor per arm.
  const auto floor_share = static_cast<std::uint64_t>(
      static_cast<double>(budget) * explore_floor_);
  std::uint64_t remaining = budget;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t give = std::min(floor_share, remaining);
    shares[i] += give;
    remaining -= give;
  }

  // Remainder proportional to smoothed hit ratios, largest-remainder
  // rounding so the shares sum exactly to the budget.
  if (remaining > 0) {
    double total_score = 0.0;
    for (std::size_t i = 0; i < n; ++i) total_score += score(i);
    std::vector<double> fractional(n, 0.0);
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double exact =
          static_cast<double>(remaining) * score(i) / total_score;
      const auto whole = static_cast<std::uint64_t>(exact);
      shares[i] += whole;
      assigned += whole;
      fractional[i] = exact - static_cast<double>(whole);
    }
    // Hand out the rounding leftovers by descending fractional part;
    // ties by arm index, rotated by one seeded draw so a flat start
    // does not permanently favor arm 0.
    std::uint64_t leftover = remaining - assigned;
    if (leftover > 0) {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      const std::size_t rotate =
          v6::net::uniform_int<std::size_t>(rng_, 0, n - 1);
      std::rotate(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(rotate),
                  order.end());
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return fractional[a] > fractional[b];
                       });
      for (std::size_t k = 0; leftover > 0; k = (k + 1) % n, --leftover) {
        ++shares[order[k]];
      }
    }
  }
  return shares;
}

}  // namespace v6::service
