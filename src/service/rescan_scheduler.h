// Churn-aware rescan scheduling and probe-budget allocation for the
// continuous service (docs/SERVICE.md).
//
// RescanScheduler keeps a per-address responsiveness history — last
// probed cycle, last responsive cycle, consecutive-miss streak — and
// decides, each refresh cycle, which known addresses are due a rescan
// and which have churned out (miss streak past the eviction threshold).
// The history lives in a std::map keyed by address, so every iteration
// order is the sorted address order and the schedule is a pure function
// of (history, policy, cycle): bit-identical across runs, jobs counts,
// and shard counts.
//
// BanditAllocator reapportions the discovery budget across the TGAs by
// measured hit ratio — a deterministic explore-floor bandit. Every arm
// keeps a smoothed hit ratio (hits+1)/(probes+2) (Laplace, so unprobed
// arms start at 0.5 rather than 0); each cycle every arm is guaranteed
// `explore_floor` of the budget and the remainder is split
// proportionally to the smoothed ratios with largest-remainder
// rounding. Ties break by arm index and the one seeded RNG draw per
// allocation only rotates which tied arm gets the last leftover probe —
// the allocation sequence is reproducible from the seed alone.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/ipv6.h"
#include "net/rng.h"

namespace v6::service {

/// Rescan/eviction policy knobs.
struct RescanPolicy {
  /// Cycles between rescans of a responsive address (1 = every cycle).
  std::uint64_t rescan_interval = 1;
  /// Consecutive missed rescans after which an address is evicted from
  /// the tracked set (hitlist-decay: stop paying for dead hosts).
  int max_miss_streak = 3;
};

class RescanScheduler {
 public:
  explicit RescanScheduler(const RescanPolicy& policy) : policy_(policy) {}

  /// Registers `addr` with unknown responsiveness; it becomes due on
  /// the next cycle. Idempotent for already-tracked addresses.
  void track(const v6::net::Ipv6Addr& addr);

  /// Records one probe result for a tracked address at `cycle`.
  /// Untracked addresses are added first (discovery path).
  void note_result(const v6::net::Ipv6Addr& addr, bool responsive,
                   std::uint64_t cycle);

  /// Addresses whose rescan is due at `cycle`, in sorted address order.
  std::vector<v6::net::Ipv6Addr> due(std::uint64_t cycle) const;

  /// Currently-responsive addresses in sorted order — the contents of
  /// the next hitlist epoch.
  std::vector<v6::net::Ipv6Addr> responsive() const;

  /// Drops every address whose miss streak reached the policy's
  /// threshold; returns how many were evicted.
  std::size_t evict_churned();

  std::size_t tracked() const { return history_.size(); }

  /// Whether `addr` already has a history entry.
  bool contains(const v6::net::Ipv6Addr& addr) const {
    return history_.contains(addr);
  }

 private:
  struct History {
    std::uint64_t last_probed = 0;
    std::uint64_t last_responsive = 0;
    int miss_streak = 0;
    bool responsive = false;
    bool probed_once = false;
  };

  RescanPolicy policy_;
  /// Ordered map: every traversal yields sorted addresses, which is
  /// what keeps due()/responsive() deterministic.
  std::map<v6::net::Ipv6Addr, History> history_;
};

class BanditAllocator {
 public:
  /// `arms` TGAs; `seed` drives the (single) tie-break draw per
  /// allocation; `explore_floor` is each arm's guaranteed budget share
  /// in [0, 1/arms].
  BanditAllocator(std::size_t arms, std::uint64_t seed, double explore_floor);

  /// Splits `budget` probes across the arms: floor shares first, the
  /// remainder proportional to smoothed hit ratios, largest-remainder
  /// rounding. The returned shares always sum to exactly `budget`.
  std::vector<std::uint64_t> allocate(std::uint64_t budget);

  /// Feeds one cycle's outcome for `arm` back into its ratio.
  void reward(std::size_t arm, std::uint64_t probes, std::uint64_t hits);

  /// The smoothed hit ratio (hits+1)/(probes+2) steering `arm`.
  double score(std::size_t arm) const;

  std::size_t arms() const { return stats_.size(); }

 private:
  struct ArmStats {
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
  };

  std::vector<ArmStats> stats_;
  double explore_floor_;
  v6::net::Rng rng_;
};

}  // namespace v6::service
