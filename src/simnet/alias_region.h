// Aliased prefixes in the simulated Internet.
//
// An aliased prefix maps every address inside it to the same small set of
// devices: every probe to any address in the region is answered (paper
// §2.2). Some regions rate-limit responses, which is the mechanism the
// paper identifies as defeating on-the-fly (online) dealiasing.
#pragma once

#include <cstdint>

#include "net/prefix.h"
#include "net/service.h"

namespace v6::simnet {

struct AliasRegion {
  v6::net::Prefix prefix;
  std::uint32_t asn = 0;
  /// Services the aliased device answers on.
  v6::net::ServiceMask services = v6::net::kAllServices;
  /// Present in the published (offline) alias list, as with the IPv6
  /// Hitlist alias list. Unpublished regions can only be caught online.
  bool published = false;
  /// Region drops most probes (ICMP/TCP rate limiting).
  bool rate_limited = false;
  /// Per-probe response probability when rate-limited (1.0 otherwise).
  double response_prob = 1.0;
};

}  // namespace v6::simnet
