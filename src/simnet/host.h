// Ground-truth host records for the simulated IPv6 Internet.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/ipv6.h"
#include "net/service.h"

namespace v6::simnet {

/// Functional role of a host; drives addressing pattern, service mix, and
/// which seed sources are likely to observe it.
enum class HostKind : std::uint8_t {
  kRouter,     // infrastructure interface; mostly ICMP-responsive
  kWebServer,  // TCP80/TCP443 (+ usually ICMP)
  kDnsServer,  // UDP53 (+ usually ICMP)
  kEndhost,    // CPE / client; ICMP at best, hard-to-guess addresses
};

constexpr std::string_view to_string(HostKind k) {
  switch (k) {
    case HostKind::kRouter: return "router";
    case HostKind::kWebServer: return "web";
    case HostKind::kDnsServer: return "dns";
    case HostKind::kEndhost: return "endhost";
  }
  return "?";
}

/// One ground-truth host. `services` is what the host answers *today*;
/// `historic_services` is what it answered when seed sources observed it.
/// A churned host has historic services but no current ones — it appears
/// in seed feeds yet no longer responds (paper RQ1.b).
struct HostRecord {
  v6::net::Ipv6Addr addr;
  std::uint32_t asn = 0;
  v6::net::ServiceMask services = 0;
  v6::net::ServiceMask historic_services = 0;
  HostKind kind = HostKind::kEndhost;
  /// Appears on domain toplists (popular web property).
  bool popular = false;
  /// Sits behind an ICMP rate limiter: answers each probe only with
  /// UniverseConfig::host_rate_limited_response_prob.
  bool rate_limited = false;
  /// No longer responds on any port/protocol.
  bool churned() const { return services == 0 && historic_services != 0; }
};

}  // namespace v6::simnet
