#include "simnet/site_model.h"

namespace v6::simnet {

using v6::net::Ipv6Addr;

// The probe hot path of a procedural universe: one 32-bit trie walk to
// the owning plan, then pure arithmetic + a handful of splitmix64 calls.
// Every rejection mirrors a slot the enumeration would never emit, so
// lookup() and for_each_host() can never disagree about membership.
bool ProceduralModel::lookup(const UniverseConfig& config,
                             const Ipv6Addr& addr, HostRecord& out) const {
  const std::uint32_t* plan_index = plan_trie.longest_match(addr);
  if (plan_index == nullptr) return false;
  const PrefixPlan& plan = plans[*plan_index];

  const std::uint64_t hi = addr.hi();
  const std::uint64_t site = (hi >> 16) & 0xFFFF;
  const std::uint64_t sn = hi & 0xFFFF;

  // Infrastructure routers live at <prefix>:ffff:0::1..infra_routers.
  if (site == 0xFFFF) {
    if (sn != 0) return false;
    const std::uint64_t lo = addr.lo();
    if (lo == 0 || lo > plan.infra_routers) return false;
    out = derive_infra_host(config, plan, lo);
    return true;
  }

  if (plan.site_count == 0) return false;
  if (site % plan.site_stride != 0) return false;
  const std::uint64_t ordinal = site / plan.site_stride;
  if (ordinal >= plan.site_count) return false;
  const bool last_site = ordinal + 1 == plan.site_count;

  const int subnets =
      last_site ? plan.last_site_subnets : site_subnets(plan, site);
  if (sn >= static_cast<std::uint64_t>(subnets)) return false;

  const SubnetPlan sub = subnet_plan(plan, site, sn);
  std::uint64_t count = sub.count;
  if (last_site && sn + 1 == static_cast<std::uint64_t>(subnets)) {
    count = plan.last_subnet_count;
  }

  const std::optional<std::uint64_t> index =
      index_for_low64(sub.pattern, sub.key, addr.lo());
  if (!index || *index >= count) return false;
  // Forward-verify: kEui64's hash-picked OUI and kWords' continuation
  // run make the inverse a candidate, not a proof.
  if (low64_for_index(sub.pattern, sub.key, *index) != addr.lo()) {
    return false;
  }
  return derive_subnet_host(config, plan, sub, site, sn, *index, out);
}

}  // namespace v6::simnet
