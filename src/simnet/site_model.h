// Procedural site model: the entire host population of a universe as a
// pure function of (seed, address).
//
// The legacy builder materializes every HostRecord, which caps a
// universe at roughly what fits in memory (~1M hosts). This model keeps
// only one small PrefixPlan per announced /32 — everything below it
// (which /48 sites exist, how many /64 subnets each holds, each
// subnet's host kind / IID pattern / host count, and every per-host
// service/churn/rate-limit draw) is rederived on demand from splitmix64
// chains keyed on the plan. Memory is therefore proportional to the
// routing table, not the host population, which is what lets a
// 100M–1B-host universe fit in the footprint of a 1M-host one
// (docs/SCALE.md).
//
// Two operations, both driven by the same derivation chain so they can
// never disagree:
//   for_each_host(cfg, fn)  enumerate every existing host in canonical
//                           order (the order the materialized twin
//                           inserts them in)
//   lookup(cfg, addr, out)  O(1) membership + record derivation for an
//                           arbitrary address (the probe hot path)
//
// The inverse direction works because every IID pattern here is a
// bijection from the per-subnet host index (see low64_for_index):
// kPrivacy, for instance, is splitmix64 of the index, inverted with
// net::splitmix64_inv. The sampling distributions are shared with the
// legacy builder (templated over the URBG), so the mt19937 path keeps
// its exact historical streams — and its goldens — bit for bit.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asdb/as_database.h"
#include "net/ipv6.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "net/service.h"
#include "simnet/host.h"
#include "simnet/universe_config.h"

namespace v6::simnet {

// ---- Sampling distributions (shared with the legacy builder) ---------
// Generic over the URBG: the legacy builder instantiates them with
// net::Rng (mt19937_64), preserving its historical streams exactly; the
// procedural model instantiates them with net::SplitMixRng over
// derivation-keyed counters.

template <typename Urbg>
v6::asdb::OrgType sample_org_type(Urbg& rng) {
  // Weights loosely follow PeeringDB-style composition: ISPs dominate,
  // with substantial enterprise and hosting populations.
  const double u = v6::net::uniform01(rng);
  using v6::asdb::OrgType;
  if (u < 0.44) return OrgType::kIsp;
  if (u < 0.50) return OrgType::kMobile;
  if (u < 0.51) return OrgType::kSatellite;
  if (u < 0.56) return OrgType::kCloud;
  if (u < 0.62) return OrgType::kHosting;
  if (u < 0.635) return OrgType::kCdn;
  if (u < 0.72) return OrgType::kEducation;
  if (u < 0.94) return OrgType::kEnterprise;
  if (u < 0.96) return OrgType::kGovernment;
  if (u < 0.97) return OrgType::kSecurity;
  return OrgType::kOther;
}

template <typename Urbg>
v6::asdb::Region sample_region(Urbg& rng) {
  const double u = v6::net::uniform01(rng);
  using v6::asdb::Region;
  if (u < 0.25) return Region::kNorthAmerica;
  if (u < 0.50) return Region::kEurope;
  if (u < 0.65) return Region::kAsia;
  if (u < 0.77) return Region::kChina;
  if (u < 0.87) return Region::kSouthAmerica;
  if (u < 0.92) return Region::kAfrica;
  return Region::kOceania;
}

enum class SizeClass { kSmall, kMedium, kLarge };

template <typename Urbg>
SizeClass sample_size_class(Urbg& rng, v6::asdb::OrgType org) {
  using v6::asdb::OrgType;
  double large_p = 0.02;
  double medium_p = 0.13;
  // Clouds, CDNs, and hosters skew large (where the paper's hit mass is);
  // big eyeball ISPs/mobile carriers are also large, keeping the global
  // composition endhost- and ICMP-heavy as on the real IPv6 Internet.
  if (org == OrgType::kCloud || org == OrgType::kCdn ||
      org == OrgType::kHosting) {
    large_p = 0.10;
    medium_p = 0.30;
  } else if (org == OrgType::kIsp || org == OrgType::kMobile) {
    large_p = 0.08;
    medium_p = 0.25;
  }
  const double u = v6::net::uniform01(rng);
  if (u < large_p) return SizeClass::kLarge;
  if (u < large_p + medium_p) return SizeClass::kMedium;
  return SizeClass::kSmall;
}

template <typename Urbg>
std::size_t sample_host_count(Urbg& rng, SizeClass size, double scale) {
  std::size_t n = 0;
  switch (size) {
    case SizeClass::kSmall:
      n = v6::net::uniform_int<std::size_t>(rng, 5, 80);
      break;
    case SizeClass::kMedium:
      n = v6::net::uniform_int<std::size_t>(rng, 300, 3000);
      break;
    case SizeClass::kLarge:
      n = v6::net::uniform_int<std::size_t>(rng, 6000, 30000);
      break;
  }
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) * scale));
}

template <typename Urbg>
HostKind sample_host_kind(Urbg& rng, v6::asdb::OrgType org) {
  using v6::asdb::OrgType;
  const double u = v6::net::uniform01(rng);
  switch (org) {
    case OrgType::kIsp:
    case OrgType::kMobile:
    case OrgType::kSatellite:
      if (u < 0.08) return HostKind::kRouter;
      if (u < 0.16) return HostKind::kWebServer;
      if (u < 0.20) return HostKind::kDnsServer;
      return HostKind::kEndhost;
    case OrgType::kCloud:
    case OrgType::kHosting:
      if (u < 0.05) return HostKind::kRouter;
      if (u < 0.75) return HostKind::kWebServer;
      if (u < 0.85) return HostKind::kDnsServer;
      return HostKind::kEndhost;
    case OrgType::kCdn:
    case OrgType::kSecurity:
      if (u < 0.05) return HostKind::kRouter;
      if (u < 0.90) return HostKind::kWebServer;
      return HostKind::kDnsServer;
    default:  // education, enterprise, government, other
      if (u < 0.10) return HostKind::kRouter;
      if (u < 0.40) return HostKind::kWebServer;
      if (u < 0.50) return HostKind::kDnsServer;
      return HostKind::kEndhost;
  }
}

template <typename Urbg>
v6::net::ServiceMask sample_services(Urbg& rng, HostKind kind) {
  using v6::net::ProbeType;
  v6::net::ServiceMask m = 0;
  auto add = [&](ProbeType t, double p) {
    if (v6::net::chance(rng, p)) m |= v6::net::service_bit(t);
  };
  switch (kind) {
    case HostKind::kRouter:
      add(ProbeType::kIcmp, 0.95);
      add(ProbeType::kTcp80, 0.03);
      add(ProbeType::kTcp443, 0.02);
      add(ProbeType::kUdp53, 0.02);
      break;
    case HostKind::kWebServer:
      // Far more web hosts answer ping than expose 80/443 publicly
      // (CDN fronting, firewalls); the paper's Censys actives are only
      // ~22% TCP80-responsive.
      add(ProbeType::kIcmp, 0.92);
      add(ProbeType::kTcp80, 0.30);
      add(ProbeType::kTcp443, 0.36);
      add(ProbeType::kUdp53, 0.02);
      break;
    case HostKind::kDnsServer:
      add(ProbeType::kIcmp, 0.92);
      add(ProbeType::kTcp80, 0.08);
      add(ProbeType::kTcp443, 0.08);
      add(ProbeType::kUdp53, 0.85);
      break;
    case HostKind::kEndhost:
      add(ProbeType::kIcmp, 0.70);
      break;
  }
  return m;
}

// ---- Low-64 addressing patterns --------------------------------------

/// How the hosts of one /64 subnet number their interface identifiers.
/// TGAs succeed exactly when these patterns are learnable; endhost
/// subnets deliberately use unguessable identifiers.
enum class Low64Pattern {
  kCounter,     // ::1, ::2, ::3, ... (routers, many servers)
  kWords,       // service-flavored constants: ::80, ::443, ::53, 0xdead...
  kStructured,  // slot << 32 | small counter (orchestrated hosting)
  kEui64,       // ff:fe-embedded MAC-derived identifiers
  kPrivacy,     // fully random identifiers (RFC 4941)
};

template <typename Urbg>
Low64Pattern sample_pattern(Urbg& rng, HostKind kind) {
  const double u = v6::net::uniform01(rng);
  switch (kind) {
    case HostKind::kRouter:
      return u < 0.8 ? Low64Pattern::kCounter : Low64Pattern::kEui64;
    case HostKind::kWebServer:
    case HostKind::kDnsServer:
      if (u < 0.55) return Low64Pattern::kCounter;
      if (u < 0.70) return Low64Pattern::kWords;
      if (u < 0.90) return Low64Pattern::kStructured;
      return Low64Pattern::kEui64;
    case HostKind::kEndhost:
      if (u < 0.25) return Low64Pattern::kCounter;
      if (u < 0.65) return Low64Pattern::kEui64;
      return Low64Pattern::kPrivacy;
  }
  return Low64Pattern::kCounter;
}

inline constexpr std::array<std::uint64_t, 12> kServiceWords = {
    0x1,    0x2,     0x53,          0x80,
    0x443,  0x8080,  0xdead'beef,   0xcafe,
    0xface, 0xb00c,  0x1111'1111,   0x1337,
};

/// EUI-64 OUI pool (small vendor set, as on real LANs).
inline constexpr std::array<std::uint64_t, 6> kOuis = {
    0x00005E, 0x000C29, 0x001B21, 0x3C22FB, 0xD85ED3, 0xF4CE46};

/// Legacy (RNG-tailed) IID synthesis, used only by the materializing
/// v1 builder: kEui64/kPrivacy draw their tails from the shared host
/// stream, so the mapping index -> IID is not invertible. Kept verbatim
/// to preserve the legacy goldens.
template <typename Urbg>
std::uint64_t make_low64(Urbg& rng, Low64Pattern pattern, std::size_t index) {
  switch (pattern) {
    case Low64Pattern::kCounter:
      return static_cast<std::uint64_t>(index) + 1;
    case Low64Pattern::kWords:
      if (index < kServiceWords.size()) return kServiceWords[index];
      // Overflow past the word list continues counting from the last word.
      return kServiceWords.back() + (index - kServiceWords.size()) + 1;
    case Low64Pattern::kStructured: {
      // A rack/slot identifier in the upper half, small counter below.
      const std::uint64_t slot = (index / 16) + 1;
      const std::uint64_t unit = (index % 16) + 1;
      return (slot << 32) | unit;
    }
    case Low64Pattern::kEui64: {
      // OUI from a small vendor pool, ff:fe in the middle, random tail.
      const std::uint64_t oui = kOuis[rng() % kOuis.size()];
      const std::uint64_t tail = rng() & 0xFFFFFF;
      return ((oui ^ 0x020000) << 40) | (0xFFFEULL << 24) | tail;
    }
    case Low64Pattern::kPrivacy:
      return rng();
  }
  return 1;
}

namespace site_detail {

inline constexpr std::uint64_t kPhi = 0x9E3779B97F4A7C15ULL;

/// 4-round Feistel permutation on 24 bits (12-bit halves), keyed on the
/// subnet derivation key: a bijection index <-> EUI-64 tail that looks
/// random per subnet yet inverts exactly.
inline std::uint32_t feistel24(std::uint32_t value, std::uint64_t key) {
  std::uint32_t left = (value >> 12) & 0xFFF;
  std::uint32_t right = value & 0xFFF;
  for (int round = 0; round < 4; ++round) {
    const std::uint32_t f = static_cast<std::uint32_t>(
        v6::net::splitmix64(key ^ (static_cast<std::uint64_t>(round) << 12) ^
                            right) &
        0xFFF);
    const std::uint32_t next = left ^ f;
    left = right;
    right = next;
  }
  return (left << 12) | right;
}

inline std::uint32_t feistel24_inv(std::uint32_t value, std::uint64_t key) {
  std::uint32_t left = (value >> 12) & 0xFFF;
  std::uint32_t right = value & 0xFFF;
  for (int round = 3; round >= 0; --round) {
    const std::uint32_t f = static_cast<std::uint32_t>(
        v6::net::splitmix64(key ^ (static_cast<std::uint64_t>(round) << 12) ^
                            left) &
        0xFFF);
    const std::uint32_t prev = right ^ f;
    right = left;
    left = prev;
  }
  return (left << 12) | right;
}

}  // namespace site_detail

/// Invertible (index -> IID) for the procedural model. Same address
/// *shapes* as the legacy make_low64, but every pattern is a bijection
/// keyed on the subnet so lookup() can recover the index from an
/// arbitrary probed address:
///   kCounter/kWords/kStructured  already invertible, shared shape
///   kEui64    OUI picked by hash, tail = Feistel-permuted index
///   kPrivacy  splitmix64(key ^ (index+1)), inverted via splitmix64_inv
inline std::uint64_t low64_for_index(Low64Pattern pattern,
                                     std::uint64_t subnet_key,
                                     std::uint64_t index) {
  switch (pattern) {
    case Low64Pattern::kCounter:
      return index + 1;
    case Low64Pattern::kWords:
      if (index < kServiceWords.size()) return kServiceWords[index];
      return kServiceWords.back() + (index - kServiceWords.size()) + 1;
    case Low64Pattern::kStructured:
      return (((index / 16) + 1) << 32) | ((index % 16) + 1);
    case Low64Pattern::kEui64: {
      const std::uint64_t oui =
          kOuis[v6::net::splitmix64(subnet_key ^ index ^ 0x0F1) %
                kOuis.size()];
      const std::uint64_t tail = site_detail::feistel24(
          static_cast<std::uint32_t>(index & 0xFFFFFF), subnet_key);
      return ((oui ^ 0x020000) << 40) | (0xFFFEULL << 24) | tail;
    }
    case Low64Pattern::kPrivacy:
      return v6::net::splitmix64(subnet_key ^ (index + 1));
  }
  return 1;
}

/// Inverse of low64_for_index: the candidate index an IID decodes to.
/// Callers must still range-check against the subnet's host count and
/// forward-verify (kEui64's OUI and kWords' continuation run are not
/// self-checking).
inline std::optional<std::uint64_t> index_for_low64(Low64Pattern pattern,
                                                    std::uint64_t subnet_key,
                                                    std::uint64_t lo) {
  switch (pattern) {
    case Low64Pattern::kCounter:
      if (lo == 0) return std::nullopt;
      return lo - 1;
    case Low64Pattern::kWords: {
      for (std::size_t w = 0; w < kServiceWords.size(); ++w) {
        if (kServiceWords[w] == lo) return w;
      }
      if (lo <= kServiceWords.back()) return std::nullopt;
      return lo - kServiceWords.back() + kServiceWords.size() - 1;
    }
    case Low64Pattern::kStructured: {
      const std::uint64_t slot = lo >> 32;
      const std::uint64_t unit = lo & 0xFFFFFFFF;
      if (slot == 0 || unit == 0 || unit > 16) return std::nullopt;
      return (slot - 1) * 16 + (unit - 1);
    }
    case Low64Pattern::kEui64: {
      if (((lo >> 24) & 0xFFFF) != 0xFFFE) return std::nullopt;
      return site_detail::feistel24_inv(
          static_cast<std::uint32_t>(lo & 0xFFFFFF), subnet_key);
    }
    case Low64Pattern::kPrivacy: {
      const std::uint64_t seed = v6::net::splitmix64_inv(lo) ^ subnet_key;
      if (seed == 0) return std::nullopt;
      return seed - 1;
    }
  }
  return std::nullopt;
}

// ---- Per-prefix plan --------------------------------------------------

/// Everything stored per announced /32 — 64 bytes, the only per-prefix
/// state of a procedural universe. The site/subnet/host structure below
/// it is rederived from `key` on demand. `site_count`/`last_*` pin the
/// per-AS host-budget truncation: the plan walk at build time finds
/// where the budget runs out (O(#subnets), no per-host work) and the
/// membership check replays that boundary in O(1).
struct PrefixPlan {
  std::uint64_t key = 0;      // per-prefix derivation key
  std::uint64_t base_hi = 0;  // high 64 bits of the /32 base address
  std::uint32_t asn = 0;
  v6::asdb::OrgType org = v6::asdb::OrgType::kOther;
  std::uint16_t infra_routers = 1;   // 1..3, at <prefix>:ffff:0::1..
  std::uint16_t site_stride = 1;     // /48 allocation stride (1 or 0x10)
  std::uint32_t site_count = 0;      // occupied site ordinals (0 = none)
  std::uint16_t last_site_subnets = 0;  // subnets in the last site
  std::uint64_t last_subnet_count = 0;  // host slots in the last subnet
};

/// Derived (never stored) structure of one /64 subnet.
struct SubnetPlan {
  HostKind kind = HostKind::kEndhost;
  Low64Pattern pattern = Low64Pattern::kCounter;
  std::uint64_t count = 0;  // host slots (dark slots included)
  std::uint64_t key = 0;    // per-subnet derivation key
};

/// Derivation key of site ordinal-with-stride `site` (the /48 value).
inline std::uint64_t site_key(const PrefixPlan& plan, std::uint64_t site) {
  return v6::net::splitmix64(plan.key ^ (site * site_detail::kPhi) ^ 0x517E);
}

/// How many /64 subnets the site holds (1..12, as in the legacy builder).
inline int site_subnets(const PrefixPlan& plan, std::uint64_t site) {
  v6::net::SplitMixRng rng(site_key(plan, site));
  return v6::net::uniform_int(rng, 1, 12);
}

/// Kind / IID pattern / slot count of subnet `sn` of `site`. The count
/// here is the *untruncated* draw; the caller caps the final subnet of
/// the final site with PrefixPlan::last_subnet_count.
inline SubnetPlan subnet_plan(const PrefixPlan& plan, std::uint64_t site,
                              std::uint64_t sn) {
  SubnetPlan sub;
  sub.key = v6::net::splitmix64(site_key(plan, site) ^
                                ((sn + 1) * site_detail::kPhi));
  v6::net::SplitMixRng rng(sub.key);
  sub.kind = sample_host_kind(rng, plan.org);
  sub.pattern = sample_pattern(rng, sub.kind);
  switch (sub.kind) {
    case HostKind::kRouter:
      sub.count = v6::net::uniform_int<std::uint64_t>(rng, 1, 6);
      break;
    case HostKind::kWebServer:
    case HostKind::kDnsServer:
      sub.count = v6::net::uniform_int<std::uint64_t>(rng, 4, 200);
      break;
    case HostKind::kEndhost:
      sub.count = v6::net::uniform_int<std::uint64_t>(rng, 4, 48);
      break;
  }
  return sub;
}

/// Derives the host record at slot `index` of a subnet. Returns false
/// for a dark slot (no historic services): the address simply does not
/// host anything, in either representation. RNG draws mirror the legacy
/// per-host sequence (services, churn, popularity, rate limiting), but
/// from a per-slot SplitMix stream instead of the shared builder stream.
inline bool derive_subnet_host(const UniverseConfig& config,
                               const PrefixPlan& plan, const SubnetPlan& sub,
                               std::uint64_t site, std::uint64_t sn,
                               std::uint64_t index, HostRecord& out) {
  using v6::net::ProbeType;
  using v6::net::ServiceMask;
  v6::net::SplitMixRng rng(
      v6::net::splitmix64(sub.key ^ ((index + 1) * site_detail::kPhi)));
  const ServiceMask historic = sample_services(rng, sub.kind);
  if (historic == 0) return false;  // dark slot
  out.addr = v6::net::Ipv6Addr(plan.base_hi | (site << 16) | sn,
                               low64_for_index(sub.pattern, sub.key, index));
  out.asn = plan.asn;
  out.kind = sub.kind;
  out.historic_services = historic;
  if (v6::net::chance(rng, config.churn_fraction)) {
    out.services = 0;  // fully churned: in feeds, answers nothing
  } else if (v6::net::chance(rng, 0.05)) {
    // Partial churn: lost one service since observation.
    ServiceMask m = historic;
    for (const ProbeType t : v6::net::kAllProbeTypes) {
      if (v6::net::has_service(m, t)) {
        m &= static_cast<ServiceMask>(~v6::net::service_bit(t));
        break;
      }
    }
    out.services = m;
  } else {
    out.services = historic;
  }
  const double popular_base = (plan.org == v6::asdb::OrgType::kCdn ||
                               plan.org == v6::asdb::OrgType::kCloud)
                                  ? 0.05
                                  : 0.02;
  out.popular = sub.kind == HostKind::kWebServer &&
                v6::net::chance(rng, popular_base);
  out.rate_limited =
      config.host_rate_limited_fraction > 0.0 &&
      v6::net::chance(rng, config.host_rate_limited_fraction);
  return true;
}

/// Derives one of the prefix's guaranteed infrastructure routers
/// (lo in [1, plan.infra_routers] at site 0xFFFF). Always exists.
inline HostRecord derive_infra_host(const UniverseConfig& config,
                                    const PrefixPlan& plan, std::uint64_t lo) {
  HostRecord rec;
  v6::net::SplitMixRng rng(
      v6::net::splitmix64(plan.key ^ (lo * site_detail::kPhi) ^ 0x1F4A));
  rec.addr = v6::net::Ipv6Addr(plan.base_hi | (0xFFFFULL << 16), lo);
  rec.asn = plan.asn;
  rec.kind = HostKind::kRouter;
  rec.historic_services = sample_services(rng, HostKind::kRouter);
  if (rec.historic_services == 0) {
    rec.historic_services = v6::net::service_bit(v6::net::ProbeType::kIcmp);
  }
  rec.services = v6::net::chance(rng, config.churn_fraction)
                     ? v6::net::ServiceMask{0}
                     : rec.historic_services;
  rec.rate_limited =
      config.host_rate_limited_fraction > 0.0 &&
      v6::net::chance(rng, config.host_rate_limited_fraction);
  return rec;
}

// ---- The model --------------------------------------------------------

/// All procedural state of a universe: one PrefixPlan per announced /32
/// plus a longest-prefix-match trie over their bases. Construction is
/// UniverseBuilder's job (it walks the AS-level derivation); this struct
/// only evaluates.
struct ProceduralModel {
  std::vector<PrefixPlan> plans;
  v6::net::PrefixTrie<std::uint32_t> plan_trie;
  /// Total regular host slots across all plans (dark slots included) —
  /// the budget actually placed, cheap to report without enumeration.
  std::uint64_t total_slots = 0;

  /// O(1) membership + derivation for an arbitrary address. Returns
  /// false when no host exists at `addr`.
  bool lookup(const UniverseConfig& config, const v6::net::Ipv6Addr& addr,
              HostRecord& out) const;

  /// Enumerates every existing host in canonical order: per prefix, the
  /// infrastructure routers first, then sites ascending, subnets
  /// ascending, slot indices ascending, skipping dark slots — exactly
  /// the order the materialized twin inserts records in.
  template <typename Fn>
  void for_each_host(const UniverseConfig& config, Fn&& fn) const {
    HostRecord rec;
    for (const PrefixPlan& plan : plans) {
      for (std::uint64_t lo = 1; lo <= plan.infra_routers; ++lo) {
        fn(derive_infra_host(config, plan, lo));
      }
      for (std::uint32_t ordinal = 0; ordinal < plan.site_count; ++ordinal) {
        const std::uint64_t site =
            static_cast<std::uint64_t>(ordinal) * plan.site_stride;
        const bool last_site = ordinal + 1 == plan.site_count;
        const int subnets =
            last_site ? plan.last_site_subnets : site_subnets(plan, site);
        for (int sn = 0; sn < subnets; ++sn) {
          const SubnetPlan sub = subnet_plan(plan, site, sn);
          std::uint64_t count = sub.count;
          if (last_site && sn + 1 == subnets) count = plan.last_subnet_count;
          for (std::uint64_t h = 0; h < count; ++h) {
            if (derive_subnet_host(config, plan, sub, site, sn, h, rec)) {
              fn(rec);
            }
          }
        }
      }
    }
  }
};

}  // namespace v6::simnet
