#include "simnet/universe.h"

namespace v6::simnet {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

bool Universe::addr_coin(const Ipv6Addr& addr, std::uint64_t salt, double p) {
  std::uint64_t h = v6::net::splitmix64(addr.hi() ^ v6::net::splitmix64(salt));
  h = v6::net::splitmix64(h ^ addr.lo());
  // Map to [0, 1) with 53 bits of precision.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

namespace {

/// High 64 bits of a 64x64 multiply: maps a full-range hash into [0, n)
/// as hash * n / 2^64 (Lemire's multiply-shift). One mul instead of the
/// ~30-cycle 64-bit division a `% n` costs — this runs once per reply on
/// the instrumented-scan hot path. Bias vs a true modulo is < 2^-37 for
/// the ranges used here, invisible in a latency model.
inline std::uint64_t map_to_range(std::uint64_t hash, std::uint64_t n) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(hash) * n) >> 64);
}

}  // namespace

std::uint64_t Universe::rtt_nanos(const Ipv6Addr& addr) {
  // Per-/48 base latency: everything in one site shares a path to us.
  // The site is the top 48 bits of hi() — masked inline, no Ipv6Addr.
  const std::uint64_t site_hi = addr.hi() & ~std::uint64_t{0xFFFF};
  const std::uint64_t base_hash = v6::net::splitmix64(site_hi ^ 0x177C);
  const std::uint64_t base =
      5'000'000 + map_to_range(base_hash, 180'000'000);  // 5–185 ms
  // Per-address jitter on top (last-hop / host scheduling). One odd-
  // constant multiply is enough mixing here: map_to_range keeps only the
  // high bits, which a multiply spreads well, and jitter only has to
  // decorrelate neighbours — the heavy lifting is in base_hash.
  const std::uint64_t jitter_hash =
      (addr.lo() ^ base_hash) * 0x9E3779B97F4A7C15ULL;
  return base + map_to_range(jitter_hash, 20'000'000);  // + 0–20 ms
}

const HostRecord* Universe::host(const Ipv6Addr& addr) const {
  V6_REQUIRE(!procedural_);
  const std::uint32_t* idx = host_index_.find(addr);
  return idx == nullptr ? nullptr : &hosts_[*idx];
}

bool Universe::lookup_host(const Ipv6Addr& addr, HostRecord& out) const {
  if (procedural_) return model_.lookup(config_, addr, out);
  const std::uint32_t* idx = host_index_.find(addr);
  if (idx == nullptr) return false;
  out = hosts_[*idx];
  return true;
}

bool Universe::host_active(const Ipv6Addr& addr, ProbeType type) const {
  HostRecord h;
  return lookup_host(addr, h) && v6::net::has_service(h.services, type);
}

const Universe::CountCache& Universe::counts() const {
  // counts_ itself is allocated eagerly by the builder for procedural
  // universes, so only the fill needs synchronizing.
  std::call_once(counts_->once, [this] {
    for_each_host([this](const HostRecord& h) {
      ++counts_->total;
      if (h.services != 0) ++counts_->any;
      for (ProbeType type : v6::net::kAllProbeTypes) {
        if (v6::net::has_service(h.services, type)) {
          ++counts_->by_type[static_cast<int>(type)];
        }
      }
    });
  });
  return *counts_;
}

std::size_t Universe::active_host_count(ProbeType type) const {
  if (procedural_) return counts().by_type[static_cast<int>(type)];
  std::size_t n = 0;
  for (const HostRecord& h : hosts_) {
    if (v6::net::has_service(h.services, type)) ++n;
  }
  return n;
}

std::size_t Universe::active_host_count_any() const {
  if (procedural_) return counts().any;
  std::size_t n = 0;
  for (const HostRecord& h : hosts_) {
    if (h.services != 0) ++n;
  }
  return n;
}

std::size_t Universe::host_count() const {
  if (procedural_) return counts().total;
  return hosts_.size();
}

}  // namespace v6::simnet
