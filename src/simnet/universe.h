// The simulated IPv6 Internet: ground truth the scanner probes against.
//
// A Universe holds every aliased region, the dense AS12322-analogue
// region, the AS database and routing table — and its host population in
// one of two representations. A *materialized* universe (the legacy
// default) stores every synthesized HostRecord behind a flat AddrIndexMap;
// a *procedural* universe (UniverseConfig::procedural) stores only one
// PrefixPlan per announced /32 and rederives any host on demand from
// (seed, address) via src/simnet/site_model.h, so memory scales with the
// routing table instead of the host count (docs/SCALE.md). Either way it
// answers probes with wire-level replies (including rate-limiting and
// background ICMP errors) and exposes ground-truth queries used only by
// evaluation code (never by TGAs or the scanner themselves).
//
// Host-population access goes through lookup_host() (one address) and
// for_each_host() (ordered streaming enumeration); the materialized
// hosts() span exists for evaluation code and tests on legacy builds
// only, and the v6lint `materialized-span` rule bars library code
// outside simnet from reaching for it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "asdb/as_database.h"
#include "asdb/routing_table.h"
#include "check/contracts.h"
#include "net/addr_index.h"
#include "net/ipv6.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "net/service.h"
#include "simnet/alias_region.h"
#include "simnet/host.h"
#include "simnet/site_model.h"
#include "simnet/universe_config.h"

namespace v6::simnet {

/// Description of the dense, trivially-enumerable ICMP region modeled on
/// AS12322 (paper §4.1): addresses inside `prefix` whose low 64 bits are
/// exactly ::1 respond to ICMP with probability `active_prob`.
struct DenseRegion {
  v6::net::Prefix prefix;
  std::uint32_t asn = 0;
  double active_prob = 0.35;
};

class Universe {
 public:
  Universe() = default;
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;
  Universe(Universe&&) = default;
  Universe& operator=(Universe&&) = default;

  // ---- Wire behaviour (what the scanner sees) -------------------------

  /// Answers one probe packet. `rng` supplies loss randomness for
  /// rate-limited regions; everything else is a deterministic function of
  /// the address. Generic over the URBG so the sequential SimTransport
  /// stream (net::Rng) and the streaming scanner's per-probe stateless
  /// engines (net::SplitMixRng) share one reply model; the engine choice
  /// only matters for the few regions that actually draw randomness.
  template <typename Urbg>
  v6::net::ProbeReply probe(const v6::net::Ipv6Addr& addr,
                            v6::net::ProbeType type, Urbg& rng) const;

  // ---- Ground truth (evaluation only) ---------------------------------

  /// True if `addr` lies inside any aliased region.
  bool is_aliased(const v6::net::Ipv6Addr& addr) const {
    return alias_trie_.covers(addr);
  }

  /// The alias region containing `addr`, if any.
  const AliasRegion* alias_region_of(const v6::net::Ipv6Addr& addr) const {
    const std::uint32_t* idx = alias_trie_.longest_match(addr);
    return idx == nullptr ? nullptr : &alias_regions_[*idx];
  }

  /// True if `addr` belongs to the AS12322-analogue dense-pattern region
  /// (whether or not the particular address is active).
  bool in_dense_region(const v6::net::Ipv6Addr& addr) const {
    return dense_region_ && dense_region_->prefix.contains(addr);
  }

  /// True if a (non-aliased) host at `addr` currently answers `type`.
  bool host_active(const v6::net::Ipv6Addr& addr,
                   v6::net::ProbeType type) const;

  /// Resolves the host at `addr` into `out`. Works in both
  /// representations (index lookup when materialized, O(1) site-model
  /// derivation when procedural); returns false if no host exists there.
  /// This is the host-population query library code should use.
  bool lookup_host(const v6::net::Ipv6Addr& addr, HostRecord& out) const;

  /// Host record at `addr`, if one exists. Materialized universes only
  /// (a procedural universe has no stored record to point into) — use
  /// lookup_host() for representation-independent access.
  const HostRecord* host(const v6::net::Ipv6Addr& addr) const;

  /// Streams every host to `fn(const HostRecord&)` in canonical builder
  /// order — identical between a procedural universe and its
  /// materialized twin, so seed synthesis and evaluation passes are
  /// representation-independent. O(hosts) time, O(1) memory.
  template <typename Fn>
  void for_each_host(Fn&& fn) const {
    if (procedural_) {
      model_.for_each_host(config_, std::forward<Fn>(fn));
      return;
    }
    for (const HostRecord& h : hosts_) fn(h);
  }

  /// True when this universe derives hosts procedurally.
  bool procedural() const { return procedural_; }

  // ---- Topology & metadata --------------------------------------------

  const v6::asdb::AsDatabase& asdb() const { return asdb_; }
  const v6::asdb::RoutingTable& routes() const { return routes_; }

  /// Origin ASN of `addr` per the routing table.
  std::optional<std::uint32_t> asn_of(const v6::net::Ipv6Addr& addr) const {
    return routes_.asn_of(addr);
  }

  /// The materialized host table. Legacy/evaluation access only: empty
  /// on a procedural universe (contract-checked in sanitizer builds) —
  /// stream with for_each_host() instead.
  std::span<const HostRecord> hosts() const {
    V6_REQUIRE(!procedural_);
    return hosts_;
  }
  std::span<const AliasRegion> alias_regions() const { return alias_regions_; }
  const std::optional<DenseRegion>& dense_region() const {
    return dense_region_;
  }
  const UniverseConfig& config() const { return config_; }

  // ---- Summary statistics ----------------------------------------------

  /// Hosts currently responsive on `type` (excluding aliases and the dense
  /// region). On a procedural universe the counts are derived by one full
  /// enumeration, computed lazily on first call and cached (thread-safe).
  std::size_t active_host_count(v6::net::ProbeType type) const;

  /// Hosts currently responsive on any probe type.
  std::size_t active_host_count_any() const;

  /// Total hosts in existence (responsive or churned). Cheap on both
  /// representations once the count cache is warm.
  std::size_t host_count() const;

  /// Deterministic modeled round-trip time for a reply from `addr`, in
  /// integer nanoseconds: a per-/48-site base (5–185 ms, continental
  /// spread) plus per-address jitter (0–20 ms). A pure splitmix64 hash —
  /// no RNG stream is consumed, so calling (or not calling) this can
  /// never perturb scan outcomes, and repeated probes of one address
  /// agree. Feeds the virtual-time `transport.<TYPE>.rtt` histograms.
  static std::uint64_t rtt_nanos(const v6::net::Ipv6Addr& addr);

 private:
  friend class UniverseBuilder;

  /// Deterministic per-address coin used for background noise and the
  /// dense region, so repeated probes of one address agree.
  static bool addr_coin(const v6::net::Ipv6Addr& addr, std::uint64_t salt,
                        double p);

  /// Lazily-computed population counts of a procedural universe. Lives
  /// behind a unique_ptr because std::once_flag is immovable and
  /// Universe is move-only.
  struct CountCache {
    std::once_flag once;
    std::array<std::size_t, v6::net::kNumProbeTypes> by_type{};
    std::size_t any = 0;
    std::size_t total = 0;
  };
  const CountCache& counts() const;

  UniverseConfig config_;
  v6::asdb::AsDatabase asdb_;
  v6::asdb::RoutingTable routes_;
  std::vector<HostRecord> hosts_;
  /// Flat open-addressing table: one find() per probe packet makes this
  /// the hottest lookup in the materialized simulator.
  v6::net::AddrIndexMap host_index_;
  /// Procedural twin of (hosts_, host_index_): per-/32 plans + LPM trie.
  bool procedural_ = false;
  ProceduralModel model_;
  mutable std::unique_ptr<CountCache> counts_;
  std::vector<AliasRegion> alias_regions_;
  v6::net::PrefixTrie<std::uint32_t> alias_trie_;
  std::optional<DenseRegion> dense_region_;
};

// Defined in the header because it is a template (see the declaration);
// the non-template helpers it calls (lookup_host, addr_coin) stay in
// the .cc.
template <typename Urbg>
v6::net::ProbeReply Universe::probe(const v6::net::Ipv6Addr& addr,
                                    v6::net::ProbeType type, Urbg& rng) const {
  using v6::net::ProbeReply;
  using v6::net::ProbeType;

  // 1. Aliased regions answer for every address inside them.
  if (const AliasRegion* region = alias_region_of(addr); region != nullptr) {
    if (v6::net::has_service(region->services, type)) {
      if (!region->rate_limited ||
          v6::net::uniform01(rng) < region->response_prob) {
        return v6::net::positive_reply(type);
      }
      return ProbeReply::kTimeout;  // probe dropped by the rate limiter
    }
    // Service closed on the aliased device: TCP gets a RST.
    if (type == ProbeType::kTcp80 || type == ProbeType::kTcp443) {
      return ProbeReply::kRst;
    }
    return ProbeReply::kTimeout;
  }

  // 2. The dense AS12322-analogue pattern: low64 == ::1, ~35% ICMP-active.
  if (dense_region_ && dense_region_->prefix.contains(addr)) {
    if (type == ProbeType::kIcmp && addr.lo() == 1 &&
        addr_coin(addr, /*salt=*/0xDE45E, dense_region_->active_prob)) {
      return ProbeReply::kEchoReply;
    }
    return ProbeReply::kTimeout;
  }

  // 3. Regular hosts. Host-level faults (rate-limited hosts, reply
  // loss) draw from the transport RNG only when the universe actually
  // enables them, so default (lossless) configs keep the exact RNG
  // stream — and so the exact replies — of pre-fault builds.
  if (HostRecord h; lookup_host(addr, h)) {
    if (v6::net::has_service(h.services, type)) {
      if (h.rate_limited &&
          v6::net::uniform01(rng) >= config_.host_rate_limited_response_prob) {
        return ProbeReply::kTimeout;  // reply suppressed by the limiter
      }
      if (config_.host_loss_prob > 0.0 &&
          v6::net::uniform01(rng) < config_.host_loss_prob) {
        return ProbeReply::kTimeout;  // reply lost in the network
      }
      return v6::net::positive_reply(type);
    }
    // Host up but port closed: TCP stacks typically send RST; a UDP probe
    // may draw an ICMP Port Unreachable (classified as DestUnreachable).
    if (h.services != 0) {
      if (type == ProbeType::kTcp80 || type == ProbeType::kTcp443) {
        return ProbeReply::kRst;
      }
      if (type == ProbeType::kUdp53 &&
          addr_coin(addr, /*salt=*/0x0D53, 0.5)) {
        return ProbeReply::kDestUnreachable;
      }
    }
    return ProbeReply::kTimeout;
  }

  // 4. Background: routed-but-unused space occasionally draws an ICMP
  // Destination Unreachable from an on-path router.
  if (routes_.asn_of(addr).has_value() &&
      addr_coin(addr, /*salt=*/0xBAC6, config_.background_unreachable_prob)) {
    return ProbeReply::kDestUnreachable;
  }
  return ProbeReply::kTimeout;
}

}  // namespace v6::simnet
