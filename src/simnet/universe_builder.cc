#include "simnet/universe_builder.h"

#include <algorithm>
#include <string>

#include "net/rng.h"
#include "simnet/site_model.h"

namespace v6::simnet {
namespace {

using v6::asdb::AsInfo;
using v6::asdb::OrgType;
using v6::asdb::Region;
using v6::net::Ipv6Addr;
using v6::net::Prefix;
using v6::net::ProbeType;
using v6::net::Rng;
using v6::net::ServiceMask;
using v6::net::SplitMixRng;

// The sampling distributions, IID patterns, and kServiceWords/kOuis
// tables historically defined here now live in simnet/site_model.h,
// shared (as URBG templates) between this builder and the procedural
// model. Instantiated with net::Rng they are byte-identical to the old
// local copies, so every legacy stream — and every golden pinned to
// one — is untouched.

std::string make_as_name(OrgType org, Region region, std::uint32_t asn) {
  std::string name{v6::asdb::to_string(org)};
  name += '-';
  name += v6::asdb::to_string(region);
  name += '-';
  name += std::to_string(asn);
  return name;
}

/// Address of the /32 slot `s`: top nybble 2, slot number in the next 28
/// bits. Every AS prefix in the universe is carved from 2000::/4.
Ipv6Addr slot_base(std::uint32_t s) {
  return Ipv6Addr((0x2ULL << 60) | (static_cast<std::uint64_t>(s) << 32), 0);
}

/// The dense AS12322-analogue region occupies slot 0 in every build mode.
/// Takes the universe members directly: these helpers live outside
/// UniverseBuilder and so outside Universe's friendship.
void add_dense_region(const UniverseConfig& config, v6::asdb::AsDatabase& asdb,
                      v6::asdb::RoutingTable& routes,
                      std::optional<DenseRegion>& dense) {
  if (!config.include_dense_region) return;
  constexpr std::uint32_t kDenseAsn = 12322;
  AsInfo info;
  info.asn = kDenseAsn;
  info.org_type = OrgType::kIsp;
  info.region = Region::kEurope;
  info.name = "ISP-EU-12322-densenet";
  asdb.add(info);
  // With low64 == ::1 the pattern space is 2^(64 - len) addresses,
  // ~35% of them ICMP-active — the scaled analogue of the paper's
  // 16.7M-address, 35%-active AS12322 pattern.
  const Prefix prefix(slot_base(0), config.dense_region_prefix_len);
  routes.announce(prefix, kDenseAsn);
  dense = DenseRegion{prefix, kDenseAsn, config.dense_region_active_prob};
}

/// Aliased regions of one /32, drawn from `rng` (clouds/hosters/CDNs
/// only). Shared verbatim between the legacy path (which passes the
/// global alias mt19937 stream) and the v2 path (a per-prefix SplitMix
/// stream) — the draw sequence is identical, only the engine differs.
template <typename Urbg>
void add_alias_regions(const UniverseConfig& config, Urbg& rng,
                       const Prefix& as_prefix, const AsInfo& info,
                       v6::net::PrefixTrie<std::uint32_t>& alias_trie,
                       std::vector<AliasRegion>& alias_regions) {
  const bool alias_candidate = info.org_type == OrgType::kCloud ||
                               info.org_type == OrgType::kHosting ||
                               info.org_type == OrgType::kCdn ||
                               info.org_type == OrgType::kSecurity;
  if (!alias_candidate || !v6::net::chance(rng, config.alias_as_fraction)) {
    return;
  }
  const int regions = v6::net::uniform_int(rng, 1, 4);
  for (int r = 0; r < regions; ++r) {
    AliasRegion region;
    // Place the alias inside the same dense site space the AS's
    // real hosts occupy: aliases correlate with the patterns TGAs
    // exploit (paper §6.1).
    const std::uint64_t a_site = v6::net::uniform_int<std::uint64_t>(rng, 0, 24);
    const std::uint64_t a_sn = v6::net::uniform_int<std::uint64_t>(rng, 0, 12);
    const Ipv6Addr base(as_prefix.addr().hi() | (a_site << 16) | a_sn, 0);
    const int len = v6::net::chance(rng, 0.5)
                        ? 64
                        : (v6::net::chance(rng, 0.5) ? 80 : 96);
    region.prefix = Prefix(base, len);
    region.asn = info.asn;
    region.services =
        v6::net::chance(rng, 0.6)
            ? v6::net::kAllServices
            : static_cast<ServiceMask>(
                  v6::net::service_bit(ProbeType::kIcmp) |
                  v6::net::service_bit(ProbeType::kTcp80) |
                  v6::net::service_bit(ProbeType::kTcp443));
    region.published =
        v6::net::chance(rng, config.alias_published_fraction);
    region.rate_limited =
        v6::net::chance(rng, config.alias_rate_limited_fraction);
    region.response_prob =
        region.rate_limited ? config.rate_limited_response_prob : 1.0;
    alias_trie.insert(region.prefix,
                      static_cast<std::uint32_t>(alias_regions.size()));
    alias_regions.push_back(region);
  }
}

}  // namespace

/// Legacy materializing build: three shared mt19937 streams, hosts
/// synthesized inline. Byte-for-byte the historical algorithm — the
/// pinned goldens (golden_sweep, golden_quantiles, BENCH_rq1_rq2)
/// depend on this exact draw order.
Universe UniverseBuilder::build_legacy(const UniverseConfig& config) {
  Universe u;
  u.config_ = config;

  Rng as_rng = v6::net::make_rng(config.seed, /*tag=*/1);
  Rng host_rng = v6::net::make_rng(config.seed, /*tag=*/2);
  Rng alias_rng = v6::net::make_rng(config.seed, /*tag=*/3);

  std::uint32_t next_slot = 1;  // slot 0 reserved for the dense region
  add_dense_region(config, u.asdb_, u.routes_, u.dense_region_);

  for (int i = 0; i < config.num_ases; ++i) {
    AsInfo info;
    info.asn = 1000 + static_cast<std::uint32_t>(i) * 13 +
               v6::net::uniform_int<std::uint32_t>(as_rng, 0, 12);
    info.org_type = sample_org_type(as_rng);
    info.region = sample_region(as_rng);
    info.name = make_as_name(info.org_type, info.region, info.asn);
    u.asdb_.add(info);

    const SizeClass size = sample_size_class(as_rng, info.org_type);
    std::size_t remaining =
        sample_host_count(as_rng, size, config.host_scale);

    const int num_prefixes =
        size == SizeClass::kLarge
            ? v6::net::uniform_int(as_rng, 1, 3)
            : (size == SizeClass::kMedium ? v6::net::uniform_int(as_rng, 1, 2)
                                          : 1);
    for (int p = 0; p < num_prefixes; ++p) {
      const Prefix as_prefix(slot_base(next_slot++), 32);
      u.routes_.announce(as_prefix, info.asn);
      const std::size_t share =
          remaining / static_cast<std::size_t>(num_prefixes - p);
      remaining -= share;

      // Guaranteed infrastructure subnet: every routed prefix exposes a
      // couple of router interfaces at <prefix>:ffff:0::1.. (traceroute
      // sources see almost every AS through these).
      {
        const Ipv6Addr infra_base(as_prefix.addr().hi() | (0xFFFFULL << 16),
                                  0);
        const std::size_t routers =
            v6::net::uniform_int<std::size_t>(host_rng, 1, 3);
        for (std::size_t h = 0; h < routers; ++h) {
          HostRecord rec;
          rec.addr = Ipv6Addr(infra_base.hi(), h + 1);
          rec.asn = info.asn;
          rec.kind = HostKind::kRouter;
          rec.historic_services = sample_services(host_rng, HostKind::kRouter);
          if (rec.historic_services == 0) {
            rec.historic_services =
                v6::net::service_bit(ProbeType::kIcmp);
          }
          rec.services = v6::net::chance(host_rng, config.churn_fraction)
                             ? v6::net::ServiceMask{0}
                             : rec.historic_services;
          // Short-circuit keeps the draw (and so the whole host RNG
          // stream) out of default builds, where the fraction is 0.
          rec.rate_limited =
              config.host_rate_limited_fraction > 0.0 &&
              v6::net::chance(host_rng, config.host_rate_limited_fraction);
          if (u.host_index_.insert(
                  rec.addr, static_cast<std::uint32_t>(u.hosts_.size()))) {
            u.hosts_.push_back(rec);
          }
        }
      }

      // Fill the prefix site by site (/48), subnet by subnet (/64).
      std::size_t placed = 0;
      std::uint64_t site = 0;
      // Some orgs stride their site allocations, a pattern TGAs must learn.
      const std::uint64_t site_stride =
          v6::net::chance(as_rng, 0.25) ? 0x10 : 1;
      while (placed < share && site < 0xFFFF) {
        const int subnets_in_site = v6::net::uniform_int(host_rng, 1, 12);
        for (int sn = 0; sn < subnets_in_site && placed < share; ++sn) {
          const Ipv6Addr subnet_base(
              as_prefix.addr().hi() | (site << 16) |
                  static_cast<std::uint64_t>(sn),
              0);
          const HostKind kind = sample_host_kind(host_rng, info.org_type);
          const Low64Pattern pattern = sample_pattern(host_rng, kind);
          std::size_t count = 0;
          switch (kind) {
            case HostKind::kRouter:
              count = v6::net::uniform_int<std::size_t>(host_rng, 1, 6);
              break;
            case HostKind::kWebServer:
            case HostKind::kDnsServer:
              count = v6::net::uniform_int<std::size_t>(host_rng, 4, 200);
              break;
            case HostKind::kEndhost:
              count = v6::net::uniform_int<std::size_t>(host_rng, 4, 48);
              break;
          }
          count = std::min(count, share - placed);
          const double popular_base =
              (info.org_type == OrgType::kCdn ||
               info.org_type == OrgType::kCloud)
                  ? 0.05
                  : 0.02;
          for (std::size_t h = 0; h < count; ++h) {
            HostRecord rec;
            rec.addr = Ipv6Addr(subnet_base.hi(),
                                make_low64(host_rng, pattern, h));
            rec.asn = info.asn;
            rec.kind = kind;
            rec.historic_services = sample_services(host_rng, kind);
            if (rec.historic_services == 0) continue;  // dark host, skip
            if (v6::net::chance(host_rng, config.churn_fraction)) {
              rec.services = 0;  // fully churned: in feeds, answers nothing
            } else if (v6::net::chance(host_rng, 0.05)) {
              // Partial churn: lost one service since observation.
              ServiceMask m = rec.historic_services;
              for (const ProbeType t : v6::net::kAllProbeTypes) {
                if (v6::net::has_service(m, t)) {
                  m &= static_cast<ServiceMask>(~v6::net::service_bit(t));
                  break;
                }
              }
              rec.services = m;
            } else {
              rec.services = rec.historic_services;
            }
            rec.popular = kind == HostKind::kWebServer &&
                          v6::net::chance(host_rng, popular_base);
            rec.rate_limited =
                config.host_rate_limited_fraction > 0.0 &&
                v6::net::chance(host_rng, config.host_rate_limited_fraction);
            if (u.host_index_.insert(
                    rec.addr, static_cast<std::uint32_t>(u.hosts_.size()))) {
              u.hosts_.push_back(rec);
            }
            ++placed;
          }
        }
        site += site_stride;
      }

      add_alias_regions(config, alias_rng, as_prefix, info, u.alias_trie_,
                        u.alias_regions_);
    }
  }

  return u;
}

// v2 build: the shared mt19937 streams are replaced by hierarchical
// SplitMix keys (seed -> AS -> prefix -> site -> subnet -> slot), so any
// level of the structure can be rederived without replaying the levels
// before it. That is what makes the procedural representation possible;
// the materialized twin walks the identical derivation and only differs
// in storing the results.
Universe UniverseBuilder::build_v2(const UniverseConfig& config,
                                  bool materialize_hosts) {
  using site_detail::kPhi;

  Universe u;
  u.config_ = config;
  u.procedural_ = !materialize_hosts;

  std::uint32_t next_slot = 1;  // slot 0 reserved for the dense region
  add_dense_region(config, u.asdb_, u.routes_, u.dense_region_);

  const std::uint64_t asn_salt = v6::net::derive_seed(config.seed, 0xA5A);

  for (int i = 0; i < config.num_ases; ++i) {
    AsInfo info;
    info.asn = 1000 + static_cast<std::uint32_t>(i) * 13 +
               static_cast<std::uint32_t>(
                   v6::net::splitmix64(asn_salt ^
                                       static_cast<std::uint64_t>(i)) %
                   13);
    // Per-AS sub-stream: every AS-level draw comes from a key derived
    // from (seed, asn), so AS j's structure is independent of how much
    // randomness AS j-1 consumed.
    const std::uint64_t as_key = v6::net::splitmix64(config.seed + info.asn);
    SplitMixRng as_rng(as_key);
    info.org_type = sample_org_type(as_rng);
    info.region = sample_region(as_rng);
    info.name = make_as_name(info.org_type, info.region, info.asn);
    u.asdb_.add(info);

    const SizeClass size = sample_size_class(as_rng, info.org_type);
    std::size_t remaining =
        sample_host_count(as_rng, size, config.host_scale);

    const int num_prefixes =
        size == SizeClass::kLarge
            ? v6::net::uniform_int(as_rng, 1, 3)
            : (size == SizeClass::kMedium ? v6::net::uniform_int(as_rng, 1, 2)
                                          : 1);
    for (int p = 0; p < num_prefixes; ++p) {
      const Prefix as_prefix(slot_base(next_slot++), 32);
      u.routes_.announce(as_prefix, info.asn);
      const std::size_t share =
          remaining / static_cast<std::size_t>(num_prefixes - p);
      remaining -= share;

      PrefixPlan plan;
      plan.key = v6::net::splitmix64(
          as_key ^ ((static_cast<std::uint64_t>(p) + 1) * kPhi));
      plan.base_hi = as_prefix.addr().hi();
      plan.asn = info.asn;
      plan.org = info.org_type;
      SplitMixRng p_rng(plan.key);
      plan.infra_routers = v6::net::uniform_int<std::uint16_t>(p_rng, 1, 3);
      plan.site_stride = v6::net::chance(p_rng, 0.25) ? 0x10 : 1;

      // Walk the derived site/subnet structure until the prefix's host
      // budget runs out, recording the truncation boundary. O(#subnets):
      // no per-host derivation happens here, because a slot's existence
      // (unlike its darkness) is decided at the subnet level.
      std::uint64_t placed = 0;
      for (std::uint64_t k = 0;
           k * plan.site_stride < 0xFFFF && placed < share; ++k) {
        const std::uint64_t site = k * plan.site_stride;
        const int subnets = site_subnets(plan, site);
        for (int sn = 0; sn < subnets && placed < share; ++sn) {
          const SubnetPlan sub = subnet_plan(plan, site, sn);
          const std::uint64_t take = std::min<std::uint64_t>(
              sub.count, static_cast<std::uint64_t>(share) - placed);
          placed += take;
          plan.site_count = static_cast<std::uint32_t>(k + 1);
          plan.last_site_subnets = static_cast<std::uint16_t>(sn + 1);
          plan.last_subnet_count = take;
        }
      }
      u.model_.total_slots += placed + plan.infra_routers;

      u.model_.plan_trie.insert(
          as_prefix, static_cast<std::uint32_t>(u.model_.plans.size()));
      u.model_.plans.push_back(plan);

      // Aliases are always materialized (a few thousand regions at
      // most); a per-prefix stream keeps them order-independent too.
      SplitMixRng a_rng(v6::net::splitmix64(plan.key ^ 0xA11A5));
      add_alias_regions(config, a_rng, as_prefix, info, u.alias_trie_,
                        u.alias_regions_);
    }
  }

  if (materialize_hosts) {
    u.model_.for_each_host(config, [&u](const HostRecord& rec) {
      if (u.host_index_.insert(rec.addr,
                               static_cast<std::uint32_t>(u.hosts_.size()))) {
        u.hosts_.push_back(rec);
      }
    });
  } else {
    u.counts_ = std::make_unique<Universe::CountCache>();
  }

  return u;
}

Universe UniverseBuilder::build(const UniverseConfig& config) {
  config.validate();
  if (config.procedural) return build_v2(config, /*materialize_hosts=*/false);
  return build_legacy(config);
}

Universe UniverseBuilder::materialize(const UniverseConfig& config) {
  config.validate();
  return build_v2(config, /*materialize_hosts=*/true);
}

void UniverseBuilder::age(Universe& u, const AgingConfig& config) {
  V6_REQUIRE(!u.procedural_);
  Rng rng = v6::net::make_rng(config.seed, /*tag=*/0xA6E);

  // Deterministic per-(epoch, /64) coin for clustered subnet death.
  const std::uint64_t subnet_salt = v6::net::splitmix64(config.seed ^ 0x5B);
  auto subnet_dies = [&](std::uint64_t hi) {
    const std::uint64_t h = v6::net::splitmix64(hi ^ subnet_salt);
    return static_cast<double>(h >> 11) * 0x1.0p-53 <
           config.subnet_death_prob;
  };

  std::vector<HostRecord> births;
  for (HostRecord& host : u.hosts_) {
    if (host.services != 0) {
      if (subnet_dies(host.addr.hi()) ||
          v6::net::chance(rng, config.death_prob)) {
        host.services = 0;
        continue;
      }
      if (v6::net::chance(rng, config.service_loss_prob)) {
        for (const ProbeType t : v6::net::kAllProbeTypes) {
          if (v6::net::has_service(host.services, t)) {
            host.services &=
                static_cast<ServiceMask>(~v6::net::service_bit(t));
            break;
          }
        }
      }
      // Growth clusters where addressing is structured: a counter host
      // gains a sibling at the next identifier.
      if (host.addr.lo() < 0x10000 &&
          v6::net::chance(rng, config.birth_prob)) {
        HostRecord sibling = host;
        sibling.addr = Ipv6Addr(host.addr.hi(), host.addr.lo() + 1);
        sibling.popular = false;
        births.push_back(sibling);
      }
    } else if (host.historic_services != 0 &&
               v6::net::chance(rng, config.revival_prob)) {
      host.services = host.historic_services;
    }
  }

  for (const HostRecord& born : births) {
    if (u.host_index_.insert(born.addr,
                             static_cast<std::uint32_t>(u.hosts_.size()))) {
      u.hosts_.push_back(born);
    }
  }
}

}  // namespace v6::simnet
