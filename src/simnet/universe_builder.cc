#include "simnet/universe_builder.h"

#include <algorithm>
#include <array>
#include <string>

#include "net/rng.h"

namespace v6::simnet {
namespace {

using v6::asdb::AsInfo;
using v6::asdb::OrgType;
using v6::asdb::Region;
using v6::net::Ipv6Addr;
using v6::net::Prefix;
using v6::net::ProbeType;
using v6::net::Rng;
using v6::net::ServiceMask;

// ---- Distributions ---------------------------------------------------

OrgType sample_org_type(Rng& rng) {
  // Weights loosely follow PeeringDB-style composition: ISPs dominate,
  // with substantial enterprise and hosting populations.
  const double u = v6::net::uniform01(rng);
  if (u < 0.44) return OrgType::kIsp;
  if (u < 0.50) return OrgType::kMobile;
  if (u < 0.51) return OrgType::kSatellite;
  if (u < 0.56) return OrgType::kCloud;
  if (u < 0.62) return OrgType::kHosting;
  if (u < 0.635) return OrgType::kCdn;
  if (u < 0.72) return OrgType::kEducation;
  if (u < 0.94) return OrgType::kEnterprise;
  if (u < 0.96) return OrgType::kGovernment;
  if (u < 0.97) return OrgType::kSecurity;
  return OrgType::kOther;
}

Region sample_region(Rng& rng) {
  const double u = v6::net::uniform01(rng);
  if (u < 0.25) return Region::kNorthAmerica;
  if (u < 0.50) return Region::kEurope;
  if (u < 0.65) return Region::kAsia;
  if (u < 0.77) return Region::kChina;
  if (u < 0.87) return Region::kSouthAmerica;
  if (u < 0.92) return Region::kAfrica;
  return Region::kOceania;
}

enum class SizeClass { kSmall, kMedium, kLarge };

SizeClass sample_size_class(Rng& rng, OrgType org) {
  double large_p = 0.02;
  double medium_p = 0.13;
  // Clouds, CDNs, and hosters skew large (where the paper's hit mass is);
  // big eyeball ISPs/mobile carriers are also large, keeping the global
  // composition endhost- and ICMP-heavy as on the real IPv6 Internet.
  if (org == OrgType::kCloud || org == OrgType::kCdn ||
      org == OrgType::kHosting) {
    large_p = 0.10;
    medium_p = 0.30;
  } else if (org == OrgType::kIsp || org == OrgType::kMobile) {
    large_p = 0.08;
    medium_p = 0.25;
  }
  const double u = v6::net::uniform01(rng);
  if (u < large_p) return SizeClass::kLarge;
  if (u < large_p + medium_p) return SizeClass::kMedium;
  return SizeClass::kSmall;
}

std::size_t sample_host_count(Rng& rng, SizeClass size, double scale) {
  std::size_t n = 0;
  switch (size) {
    case SizeClass::kSmall:
      n = v6::net::uniform_int<std::size_t>(rng, 5, 80);
      break;
    case SizeClass::kMedium:
      n = v6::net::uniform_int<std::size_t>(rng, 300, 3000);
      break;
    case SizeClass::kLarge:
      n = v6::net::uniform_int<std::size_t>(rng, 6000, 30000);
      break;
  }
  return std::max<std::size_t>(1, static_cast<std::size_t>(n * scale));
}

HostKind sample_host_kind(Rng& rng, OrgType org) {
  const double u = v6::net::uniform01(rng);
  switch (org) {
    case OrgType::kIsp:
    case OrgType::kMobile:
    case OrgType::kSatellite:
      if (u < 0.08) return HostKind::kRouter;
      if (u < 0.16) return HostKind::kWebServer;
      if (u < 0.20) return HostKind::kDnsServer;
      return HostKind::kEndhost;
    case OrgType::kCloud:
    case OrgType::kHosting:
      if (u < 0.05) return HostKind::kRouter;
      if (u < 0.75) return HostKind::kWebServer;
      if (u < 0.85) return HostKind::kDnsServer;
      return HostKind::kEndhost;
    case OrgType::kCdn:
    case OrgType::kSecurity:
      if (u < 0.05) return HostKind::kRouter;
      if (u < 0.90) return HostKind::kWebServer;
      return HostKind::kDnsServer;
    default:  // education, enterprise, government, other
      if (u < 0.10) return HostKind::kRouter;
      if (u < 0.40) return HostKind::kWebServer;
      if (u < 0.50) return HostKind::kDnsServer;
      return HostKind::kEndhost;
  }
}

ServiceMask sample_services(Rng& rng, HostKind kind) {
  ServiceMask m = 0;
  auto add = [&](ProbeType t, double p) {
    if (v6::net::chance(rng, p)) m |= v6::net::service_bit(t);
  };
  switch (kind) {
    case HostKind::kRouter:
      add(ProbeType::kIcmp, 0.95);
      add(ProbeType::kTcp80, 0.03);
      add(ProbeType::kTcp443, 0.02);
      add(ProbeType::kUdp53, 0.02);
      break;
    case HostKind::kWebServer:
      // Far more web hosts answer ping than expose 80/443 publicly
      // (CDN fronting, firewalls); the paper's Censys actives are only
      // ~22% TCP80-responsive.
      add(ProbeType::kIcmp, 0.92);
      add(ProbeType::kTcp80, 0.30);
      add(ProbeType::kTcp443, 0.36);
      add(ProbeType::kUdp53, 0.02);
      break;
    case HostKind::kDnsServer:
      add(ProbeType::kIcmp, 0.92);
      add(ProbeType::kTcp80, 0.08);
      add(ProbeType::kTcp443, 0.08);
      add(ProbeType::kUdp53, 0.85);
      break;
    case HostKind::kEndhost:
      add(ProbeType::kIcmp, 0.70);
      break;
  }
  return m;
}

// ---- Low-64 addressing patterns --------------------------------------

/// How the hosts of one /64 subnet number their interface identifiers.
/// TGAs succeed exactly when these patterns are learnable; endhost
/// subnets deliberately use unguessable identifiers.
enum class Low64Pattern {
  kCounter,     // ::1, ::2, ::3, ... (routers, many servers)
  kWords,       // service-flavored constants: ::80, ::443, ::53, 0xdead...
  kStructured,  // slot << 32 | small counter (orchestrated hosting)
  kEui64,       // ff:fe-embedded MAC-derived identifiers
  kPrivacy,     // fully random identifiers (RFC 4941)
};

Low64Pattern sample_pattern(Rng& rng, HostKind kind) {
  const double u = v6::net::uniform01(rng);
  switch (kind) {
    case HostKind::kRouter:
      return u < 0.8 ? Low64Pattern::kCounter : Low64Pattern::kEui64;
    case HostKind::kWebServer:
    case HostKind::kDnsServer:
      if (u < 0.55) return Low64Pattern::kCounter;
      if (u < 0.70) return Low64Pattern::kWords;
      if (u < 0.90) return Low64Pattern::kStructured;
      return Low64Pattern::kEui64;
    case HostKind::kEndhost:
      if (u < 0.25) return Low64Pattern::kCounter;
      if (u < 0.65) return Low64Pattern::kEui64;
      return Low64Pattern::kPrivacy;
  }
  return Low64Pattern::kCounter;
}

constexpr std::array<std::uint64_t, 12> kServiceWords = {
    0x1,    0x2,     0x53,          0x80,
    0x443,  0x8080,  0xdead'beef,   0xcafe,
    0xface, 0xb00c,  0x1111'1111,   0x1337,
};

std::uint64_t make_low64(Rng& rng, Low64Pattern pattern, std::size_t index) {
  switch (pattern) {
    case Low64Pattern::kCounter:
      return static_cast<std::uint64_t>(index) + 1;
    case Low64Pattern::kWords:
      if (index < kServiceWords.size()) return kServiceWords[index];
      // Overflow past the word list continues counting from the last word.
      return kServiceWords.back() + (index - kServiceWords.size()) + 1;
    case Low64Pattern::kStructured: {
      // A rack/slot identifier in the upper half, small counter below.
      const std::uint64_t slot = (index / 16) + 1;
      const std::uint64_t unit = (index % 16) + 1;
      return (slot << 32) | unit;
    }
    case Low64Pattern::kEui64: {
      // OUI from a small vendor pool, ff:fe in the middle, random tail.
      static constexpr std::array<std::uint64_t, 6> kOuis = {
          0x00005E, 0x000C29, 0x001B21, 0x3C22FB, 0xD85ED3, 0xF4CE46};
      const std::uint64_t oui = kOuis[rng() % kOuis.size()];
      const std::uint64_t tail = rng() & 0xFFFFFF;
      return ((oui ^ 0x020000) << 40) | (0xFFFEULL << 24) | tail;
    }
    case Low64Pattern::kPrivacy:
      return rng();
  }
  return 1;
}

std::string make_as_name(OrgType org, Region region, std::uint32_t asn) {
  std::string name{v6::asdb::to_string(org)};
  name += '-';
  name += v6::asdb::to_string(region);
  name += '-';
  name += std::to_string(asn);
  return name;
}

/// Address of the /32 slot `s`: top nybble 2, slot number in the next 28
/// bits. Every AS prefix in the universe is carved from 2000::/4.
Ipv6Addr slot_base(std::uint32_t s) {
  return Ipv6Addr((0x2ULL << 60) | (static_cast<std::uint64_t>(s) << 32), 0);
}

}  // namespace

Universe UniverseBuilder::build(const UniverseConfig& config) {
  Universe u;
  u.config_ = config;

  Rng as_rng = v6::net::make_rng(config.seed, /*tag=*/1);
  Rng host_rng = v6::net::make_rng(config.seed, /*tag=*/2);
  Rng alias_rng = v6::net::make_rng(config.seed, /*tag=*/3);

  std::uint32_t next_slot = 1;  // slot 0 reserved for the dense region

  // ---- Dense AS12322-analogue region ----------------------------------
  if (config.include_dense_region) {
    constexpr std::uint32_t kDenseAsn = 12322;
    AsInfo info;
    info.asn = kDenseAsn;
    info.org_type = OrgType::kIsp;
    info.region = Region::kEurope;
    info.name = "ISP-EU-12322-densenet";
    u.asdb_.add(info);
    // With low64 == ::1 the pattern space is 2^(64 - len) addresses,
    // ~35% of them ICMP-active — the scaled analogue of the paper's
    // 16.7M-address, 35%-active AS12322 pattern.
    const Prefix dense(slot_base(0), config.dense_region_prefix_len);
    u.routes_.announce(dense, kDenseAsn);
    u.dense_region_ = DenseRegion{dense, kDenseAsn,
                                  config.dense_region_active_prob};
  }

  // ---- Regular ASes ----------------------------------------------------
  for (int i = 0; i < config.num_ases; ++i) {
    AsInfo info;
    info.asn = 1000 + static_cast<std::uint32_t>(i) * 13 +
               v6::net::uniform_int<std::uint32_t>(as_rng, 0, 12);
    info.org_type = sample_org_type(as_rng);
    info.region = sample_region(as_rng);
    info.name = make_as_name(info.org_type, info.region, info.asn);
    u.asdb_.add(info);

    const SizeClass size = sample_size_class(as_rng, info.org_type);
    std::size_t remaining =
        sample_host_count(as_rng, size, config.host_scale);

    const int num_prefixes =
        size == SizeClass::kLarge
            ? v6::net::uniform_int(as_rng, 1, 3)
            : (size == SizeClass::kMedium ? v6::net::uniform_int(as_rng, 1, 2)
                                          : 1);
    for (int p = 0; p < num_prefixes; ++p) {
      const Prefix as_prefix(slot_base(next_slot++), 32);
      u.routes_.announce(as_prefix, info.asn);
      const std::size_t share = remaining / static_cast<std::size_t>(num_prefixes - p);
      remaining -= share;

      // Guaranteed infrastructure subnet: every routed prefix exposes a
      // couple of router interfaces at <prefix>:ffff:0::1.. (traceroute
      // sources see almost every AS through these).
      {
        const Ipv6Addr infra_base(as_prefix.addr().hi() | (0xFFFFULL << 16),
                                  0);
        const std::size_t routers =
            v6::net::uniform_int<std::size_t>(host_rng, 1, 3);
        for (std::size_t h = 0; h < routers; ++h) {
          HostRecord rec;
          rec.addr = Ipv6Addr(infra_base.hi(), h + 1);
          rec.asn = info.asn;
          rec.kind = HostKind::kRouter;
          rec.historic_services = sample_services(host_rng, HostKind::kRouter);
          if (rec.historic_services == 0) {
            rec.historic_services =
                v6::net::service_bit(ProbeType::kIcmp);
          }
          rec.services = v6::net::chance(host_rng, config.churn_fraction)
                             ? v6::net::ServiceMask{0}
                             : rec.historic_services;
          // Short-circuit keeps the draw (and so the whole host RNG
          // stream) out of default builds, where the fraction is 0.
          rec.rate_limited =
              config.host_rate_limited_fraction > 0.0 &&
              v6::net::chance(host_rng, config.host_rate_limited_fraction);
          if (u.host_index_.insert(
                  rec.addr, static_cast<std::uint32_t>(u.hosts_.size()))) {
            u.hosts_.push_back(rec);
          }
        }
      }

      // Fill the prefix site by site (/48), subnet by subnet (/64).
      std::size_t placed = 0;
      std::uint64_t site = 0;
      // Some orgs stride their site allocations, a pattern TGAs must learn.
      const std::uint64_t site_stride =
          v6::net::chance(as_rng, 0.25) ? 0x10 : 1;
      while (placed < share && site < 0xFFFF) {
        const int subnets_in_site = v6::net::uniform_int(host_rng, 1, 12);
        for (int sn = 0; sn < subnets_in_site && placed < share; ++sn) {
          const Ipv6Addr subnet_base(
              as_prefix.addr().hi() | (site << 16) |
                  static_cast<std::uint64_t>(sn),
              0);
          const HostKind kind = sample_host_kind(host_rng, info.org_type);
          const Low64Pattern pattern = sample_pattern(host_rng, kind);
          std::size_t count = 0;
          switch (kind) {
            case HostKind::kRouter:
              count = v6::net::uniform_int<std::size_t>(host_rng, 1, 6);
              break;
            case HostKind::kWebServer:
            case HostKind::kDnsServer:
              count = v6::net::uniform_int<std::size_t>(host_rng, 4, 200);
              break;
            case HostKind::kEndhost:
              count = v6::net::uniform_int<std::size_t>(host_rng, 4, 48);
              break;
          }
          count = std::min(count, share - placed);
          const double popular_base =
              (info.org_type == OrgType::kCdn ||
               info.org_type == OrgType::kCloud)
                  ? 0.05
                  : 0.02;
          for (std::size_t h = 0; h < count; ++h) {
            HostRecord rec;
            rec.addr = Ipv6Addr(subnet_base.hi(),
                                make_low64(host_rng, pattern, h));
            rec.asn = info.asn;
            rec.kind = kind;
            rec.historic_services = sample_services(host_rng, kind);
            if (rec.historic_services == 0) continue;  // dark host, skip
            if (v6::net::chance(host_rng, config.churn_fraction)) {
              rec.services = 0;  // fully churned: in feeds, answers nothing
            } else if (v6::net::chance(host_rng, 0.05)) {
              // Partial churn: lost one service since observation.
              ServiceMask m = rec.historic_services;
              for (const ProbeType t : v6::net::kAllProbeTypes) {
                if (v6::net::has_service(m, t)) {
                  m &= static_cast<ServiceMask>(~v6::net::service_bit(t));
                  break;
                }
              }
              rec.services = m;
            } else {
              rec.services = rec.historic_services;
            }
            rec.popular = kind == HostKind::kWebServer &&
                          v6::net::chance(host_rng, popular_base);
            rec.rate_limited =
                config.host_rate_limited_fraction > 0.0 &&
                v6::net::chance(host_rng, config.host_rate_limited_fraction);
            if (u.host_index_.insert(
                    rec.addr, static_cast<std::uint32_t>(u.hosts_.size()))) {
              u.hosts_.push_back(rec);
            }
            ++placed;
          }
        }
        site += site_stride;
      }

      // ---- Aliased regions (clouds/hosters/CDNs only) -----------------
      const bool alias_candidate = info.org_type == OrgType::kCloud ||
                                   info.org_type == OrgType::kHosting ||
                                   info.org_type == OrgType::kCdn ||
                                   info.org_type == OrgType::kSecurity;
      if (alias_candidate &&
          v6::net::chance(alias_rng, config.alias_as_fraction)) {
        const int regions = v6::net::uniform_int(alias_rng, 1, 4);
        for (int r = 0; r < regions; ++r) {
          AliasRegion region;
          // Place the alias inside the same dense site space the AS's
          // real hosts occupy: aliases correlate with the patterns TGAs
          // exploit (paper §6.1).
          const std::uint64_t a_site =
              v6::net::uniform_int<std::uint64_t>(alias_rng, 0, 24);
          const std::uint64_t a_sn =
              v6::net::uniform_int<std::uint64_t>(alias_rng, 0, 12);
          const Ipv6Addr base(
              as_prefix.addr().hi() | (a_site << 16) | a_sn, 0);
          const int len = v6::net::chance(alias_rng, 0.5)
                              ? 64
                              : (v6::net::chance(alias_rng, 0.5) ? 80 : 96);
          region.prefix = Prefix(base, len);
          region.asn = info.asn;
          region.services = v6::net::chance(alias_rng, 0.6)
                                ? v6::net::kAllServices
                                : static_cast<ServiceMask>(
                                      v6::net::service_bit(ProbeType::kIcmp) |
                                      v6::net::service_bit(ProbeType::kTcp80) |
                                      v6::net::service_bit(ProbeType::kTcp443));
          region.published =
              v6::net::chance(alias_rng, config.alias_published_fraction);
          region.rate_limited =
              v6::net::chance(alias_rng, config.alias_rate_limited_fraction);
          region.response_prob =
              region.rate_limited ? config.rate_limited_response_prob : 1.0;
          u.alias_trie_.insert(region.prefix,
                               static_cast<std::uint32_t>(u.alias_regions_.size()));
          u.alias_regions_.push_back(region);
        }
      }
    }
  }

  return u;
}

void UniverseBuilder::age(Universe& u, const AgingConfig& config) {
  Rng rng = v6::net::make_rng(config.seed, /*tag=*/0xA6E);

  // Deterministic per-(epoch, /64) coin for clustered subnet death.
  const std::uint64_t subnet_salt = v6::net::splitmix64(config.seed ^ 0x5B);
  auto subnet_dies = [&](std::uint64_t hi) {
    const std::uint64_t h = v6::net::splitmix64(hi ^ subnet_salt);
    return static_cast<double>(h >> 11) * 0x1.0p-53 <
           config.subnet_death_prob;
  };

  std::vector<HostRecord> births;
  for (HostRecord& host : u.hosts_) {
    if (host.services != 0) {
      if (subnet_dies(host.addr.hi()) ||
          v6::net::chance(rng, config.death_prob)) {
        host.services = 0;
        continue;
      }
      if (v6::net::chance(rng, config.service_loss_prob)) {
        for (const ProbeType t : v6::net::kAllProbeTypes) {
          if (v6::net::has_service(host.services, t)) {
            host.services &=
                static_cast<ServiceMask>(~v6::net::service_bit(t));
            break;
          }
        }
      }
      // Growth clusters where addressing is structured: a counter host
      // gains a sibling at the next identifier.
      if (host.addr.lo() < 0x10000 &&
          v6::net::chance(rng, config.birth_prob)) {
        HostRecord sibling = host;
        sibling.addr = Ipv6Addr(host.addr.hi(), host.addr.lo() + 1);
        sibling.popular = false;
        births.push_back(sibling);
      }
    } else if (host.historic_services != 0 &&
               v6::net::chance(rng, config.revival_prob)) {
      host.services = host.historic_services;
    }
  }

  for (const HostRecord& born : births) {
    if (u.host_index_.insert(born.addr,
                             static_cast<std::uint32_t>(u.hosts_.size()))) {
      u.hosts_.push_back(born);
    }
  }
}

}  // namespace v6::simnet
