// Deterministic construction of a simulated IPv6 Internet from a
// UniverseConfig. The same config always yields the same universe.
#pragma once

#include "simnet/universe.h"
#include "simnet/universe_config.h"

namespace v6::simnet {

/// One step of temporal evolution (the churn the paper's RQ1.b and the
/// hitlist-decay literature it cites are about).
struct AgingConfig {
  std::uint64_t seed = 1;
  /// Probability an active host stops responding entirely
  /// (independent, per host).
  double death_prob = 0.04;
  /// Probability an entire /64 goes dark (renumbering, provider change,
  /// new firewall policy). Clustered death is what makes stale seeds
  /// actively misleading rather than merely redundant.
  double subnet_death_prob = 0.05;
  /// Probability a single service (not the host) is withdrawn.
  double service_loss_prob = 0.04;
  /// Probability a churned host comes back with its historic services.
  double revival_prob = 0.04;
  /// Probability an active counter-pattern host gains a new sibling
  /// (networks grow where they are already structured).
  double birth_prob = 0.03;
};

class UniverseBuilder {
 public:
  /// Builds the full universe described by `config`.
  static Universe build(const UniverseConfig& config);

  /// Advances the universe by one epoch: hosts die, lose services,
  /// revive, and new hosts appear next to existing counter runs.
  /// Deterministic in (universe state, config.seed).
  static void age(Universe& universe, const AgingConfig& config);
};

}  // namespace v6::simnet
