// Deterministic construction of a simulated IPv6 Internet from a
// UniverseConfig. The same config always yields the same universe.
#pragma once

#include "simnet/universe.h"
#include "simnet/universe_config.h"

namespace v6::simnet {

/// One step of temporal evolution (the churn the paper's RQ1.b and the
/// hitlist-decay literature it cites are about).
struct AgingConfig {
  std::uint64_t seed = 1;
  /// Probability an active host stops responding entirely
  /// (independent, per host).
  double death_prob = 0.04;
  /// Probability an entire /64 goes dark (renumbering, provider change,
  /// new firewall policy). Clustered death is what makes stale seeds
  /// actively misleading rather than merely redundant.
  double subnet_death_prob = 0.05;
  /// Probability a single service (not the host) is withdrawn.
  double service_loss_prob = 0.04;
  /// Probability a churned host comes back with its historic services.
  double revival_prob = 0.04;
  /// Probability an active counter-pattern host gains a new sibling
  /// (networks grow where they are already structured).
  double birth_prob = 0.03;
};

class UniverseBuilder {
 public:
  /// Builds the full universe described by `config` (validates it
  /// first). config.procedural selects the representation: the legacy
  /// materializing path (default, byte-identical to historical builds)
  /// or the procedural site model (docs/SCALE.md).
  static Universe build(const UniverseConfig& config);

  /// Materialized twin of a procedural build: walks the exact same
  /// site-model derivation as `build` with config.procedural set, but
  /// stores every HostRecord in the flat table. Exists so the
  /// differential battery (tests/simnet/procedural_equivalence_test.cc)
  /// can compare the two representations host by host and probe by
  /// probe; config.procedural itself is ignored.
  static Universe materialize(const UniverseConfig& config);

  /// Advances the universe by one epoch: hosts die, lose services,
  /// revive, and new hosts appear next to existing counter runs.
  /// Deterministic in (universe state, config.seed). Materialized
  /// universes only — a procedural population is immutable by
  /// construction (model churn via UniverseConfig::churn_fraction).
  static void age(Universe& universe, const AgingConfig& config);

 private:
  static Universe build_legacy(const UniverseConfig& config);
  static Universe build_v2(const UniverseConfig& config,
                           bool materialize_hosts);
};

}  // namespace v6::simnet
