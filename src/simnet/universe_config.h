// Configuration for building a simulated IPv6 Internet.
#pragma once

#include <cstdint>

#include "check/validate.h"

namespace v6::simnet {

/// Knobs for UniverseBuilder. Defaults produce a universe of roughly one
/// million hosts across ~2,500 ASes — a scaled analogue of the paper's
/// view of the IPv6 Internet (31K ASes, ~11M responsive addresses), sized
/// so that every experiment in the paper can be regenerated in seconds.
struct UniverseConfig {
  /// Master seed; the entire universe is a deterministic function of it.
  std::uint64_t seed = 42;

  /// Number of autonomous systems to synthesize.
  int num_ases = 2500;

  /// Global multiplier on per-AS host counts (scale the universe up/down).
  double host_scale = 1.0;

  /// Fraction of hosts that were active historically (and so appear in
  /// seed feeds) but no longer respond (paper RQ1.b: 16% of the IPv6
  /// Hitlist was unresponsive).
  double churn_fraction = 0.18;

  /// Probability a cloud/hosting/CDN AS contains aliased regions.
  double alias_as_fraction = 0.30;

  /// Fraction of aliased regions present in the published alias list.
  double alias_published_fraction = 0.55;

  /// Fraction of aliased regions that rate-limit probes (defeating online
  /// dealiasing most of the time).
  double alias_rate_limited_fraction = 0.15;

  /// Per-probe response probability inside a rate-limited alias region.
  double rate_limited_response_prob = 0.15;

  /// Include the AS12322 analogue: a single ISP with a dense, trivially
  /// enumerable ICMP-responsive pattern (low64 == ::1, ~35% active) that
  /// the paper filters from ICMP metrics.
  bool include_dense_region = true;

  /// Prefix length of the dense region; the pattern space is
  /// 2^(64 - len) addresses (the paper's AS12322 pattern held 16.7M;
  /// scale this with host_scale so the dense region stays roughly half
  /// of all ICMP-responsive addresses).
  int dense_region_prefix_len = 48;

  /// Activation probability inside the dense region pattern.
  double dense_region_active_prob = 0.35;

  /// Background probability that a probe to a routed but unused address
  /// draws an ICMP Destination Unreachable from an on-path router.
  double background_unreachable_prob = 0.02;

  /// Per-probe chance that a live host's reply is lost in the network
  /// (host-level analogue of the fault plane's wire loss; 0 keeps the
  /// idealized lossless universe, and the default RNG stream untouched).
  double host_loss_prob = 0.0;

  /// Fraction of regular hosts sitting behind an ICMP rate limiter.
  /// 0 draws nothing during building, keeping default universes
  /// bit-identical to pre-fault builds.
  double host_rate_limited_fraction = 0.0;

  /// Per-probe response probability for a rate-limited host.
  double host_rate_limited_response_prob = 0.5;

  /// Procedural mode: derive every host on demand from (seed, address)
  /// via the per-/48 site model (src/simnet/site_model.h) instead of
  /// materializing a HostRecord table. Memory becomes proportional to
  /// the routing table, so host_scale can grow the universe by 2-3
  /// orders of magnitude (docs/SCALE.md). Procedural and materialized
  /// v2 builds of the same config are bit-identical in behaviour
  /// (tests/simnet/procedural_equivalence_test.cc); the default false
  /// keeps the legacy builder path and its pinned goldens untouched.
  bool procedural = false;

  /// Uniform boundary validation (check/validate.h); throws ConfigError
  /// as "UniverseConfig.<field>: <constraint>". UniverseBuilder::build
  /// calls this on entry.
  void validate() const {
    const v6::check::Validator v("UniverseConfig");
    v.non_negative(num_ases, "num_ases");
    v.require(host_scale > 0.0, "host_scale", "must be > 0");
    v.unit_interval(churn_fraction, "churn_fraction");
    v.unit_interval(alias_as_fraction, "alias_as_fraction");
    v.unit_interval(alias_published_fraction, "alias_published_fraction");
    v.unit_interval(alias_rate_limited_fraction,
                    "alias_rate_limited_fraction");
    v.unit_interval(rate_limited_response_prob, "rate_limited_response_prob");
    v.require(dense_region_prefix_len >= 16 && dense_region_prefix_len <= 64,
              "dense_region_prefix_len", "must be in [16, 64]");
    v.unit_interval(dense_region_active_prob, "dense_region_active_prob");
    v.unit_interval(background_unreachable_prob,
                    "background_unreachable_prob");
    v.unit_interval(host_loss_prob, "host_loss_prob");
    v.unit_interval(host_rate_limited_fraction, "host_rate_limited_fraction");
    v.unit_interval(host_rate_limited_response_prob,
                    "host_rate_limited_response_prob");
  }
};

}  // namespace v6::simnet
