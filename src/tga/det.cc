#include "tga/det.h"

#include <algorithm>
#include <cmath>

namespace v6::tga {

using v6::net::Ipv6Addr;

void Det::reset_model() {
  regions_.clear();
  pending_.clear();
  total_emitted_ = 0;
  SpaceTree tree(seeds_, {.policy = SplitPolicy::kMinEntropy,
                          .max_leaf_seeds = options_.max_leaf_seeds,
                          .max_free = options_.max_free});
  regions_.reserve(tree.regions().size());
  for (const TreeRegion& r : tree.regions()) {
    Region region;
    region.cursor = RegionCursor(r.base, r.free);
    region.seed_mass = static_cast<double>(r.seed_count);
    regions_.push_back(std::move(region));
  }
}

double Det::score(const Region& r) const {
  if (r.dead) return -1.0;
  const double exploit =
      r.seed_mass / static_cast<double>(r.emitted + 16);
  const double explore =
      options_.exploration *
      std::sqrt(std::log(static_cast<double>(total_emitted_ + 2)) /
                static_cast<double>(r.emitted + 1));
  return exploit + explore;
}

std::vector<Ipv6Addr> Det::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (regions_.empty()) return out;

  std::size_t consecutive_failures = 0;
  while (out.size() < n && consecutive_failures < regions_.size() + 8) {
    // Select the best-scoring region (linear scan; region counts are in
    // the tens of thousands at most).
    std::size_t best = 0;
    double best_score = -2.0;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      const double s = score(regions_[i]);
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    Region& region = regions_[best];
    if (region.dead) break;  // every region is dead

    std::uint64_t taken = 0;
    while (taken < options_.chunk && out.size() < n) {
      auto addr = region.cursor.next();
      if (!addr) {
        if (!region.cursor.extend()) {
          region.dead = true;
        }
        break;  // re-score before spending into the widened space
      }
      ++region.emitted;
      ++total_emitted_;
      if (emit(*addr, out)) {
        pending_.emplace(*addr, static_cast<std::uint32_t>(best));
        ++taken;
      }
    }
    consecutive_failures = taken == 0 ? consecutive_failures + 1 : 0;
  }
  return out;
}

void Det::observe(const Ipv6Addr& addr, bool active) {
  const auto it = pending_.find(addr);
  if (it == pending_.end()) return;
  if (active) {
    regions_[it->second].seed_mass += options_.hit_weight;
  }
  pending_.erase(it);
}

}  // namespace v6::tga
