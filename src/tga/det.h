// DET (Song et al., ToN 2022).
//
// A space tree split on the minimum-entropy varying nybble, with online
// density updates: discovered active addresses raise the density estimate
// of their region, steering subsequent budget. Selection is UCB-style —
// exploitation of high-density regions plus an exploration bonus that
// spreads probes across many regions, which is what gives DET its strong
// AS diversity in the paper's results.
#pragma once

#include <unordered_map>
#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class Det final : public TargetGeneratorBase {
 public:
  struct Options {
    std::uint32_t max_leaf_seeds = 16;
    int max_free = 6;
    std::uint64_t chunk = 32;       // addresses per region selection
    double exploration = 0.35;      // UCB exploration coefficient
    double hit_weight = 2.0;        // online density boost per hit
  };

  Det() = default;
  explicit Det(const Options& options) : options_(options) {}

  std::string_view name() const override { return "DET"; }
  bool is_online() const override { return true; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;
  void observe(const v6::net::Ipv6Addr& addr, bool active) override;

 protected:
  void reset_model() override;

 private:
  struct Region {
    RegionCursor cursor;
    double seed_mass = 0.0;     // seeds + hit_weight * observed hits
    std::uint64_t emitted = 0;  // addresses generated from this region
    bool dead = false;          // space exhausted and unextendable
  };

  double score(const Region& r) const;

  Options options_;
  std::vector<Region> regions_;
  std::unordered_map<v6::net::Ipv6Addr, std::uint32_t> pending_;
  std::uint64_t total_emitted_ = 0;
};

}  // namespace v6::tga
