#include "tga/entropy_ip.h"

#include <algorithm>
#include <unordered_map>

#include "tga/nybble_stats.h"

namespace v6::tga {

using v6::net::Ipv6Addr;

namespace {

/// Value of nybbles [first, last] of `addr` packed into a uint64.
std::uint64_t segment_value(const Ipv6Addr& addr, int first, int last) {
  std::uint64_t v = 0;
  for (int pos = first; pos <= last; ++pos) {
    v = (v << 4) | addr.nybble(pos);
  }
  return v;
}

int entropy_class(double h, double low, double high) {
  if (h < low) return 0;
  if (h < high) return 1;
  return 2;
}

}  // namespace

void EntropyIp::reset_model() {
  segments_.clear();
  if (seeds_.empty()) return;

  NybbleStats stats(seeds_);

  // Segment the 32 nybbles into runs of equal entropy class.
  int start = 0;
  int start_class = entropy_class(stats.at(0).entropy(), options_.low_entropy,
                                  options_.high_entropy);
  for (int pos = 1; pos <= Ipv6Addr::kNybbles; ++pos) {
    const int cls =
        pos == Ipv6Addr::kNybbles
            ? -1
            : entropy_class(stats.at(pos).entropy(), options_.low_entropy,
                            options_.high_entropy);
    const bool boundary = cls != start_class ||
                          pos - start >= options_.max_segment_nybbles;
    if (!boundary) continue;
    Segment seg;
    seg.first = start;
    seg.last = pos - 1;
    segments_.push_back(seg);
    start = pos;
    start_class = cls;
  }

  // Fit a value-frequency model per segment.
  for (Segment& seg : segments_) {
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    for (const Ipv6Addr& s : seeds_) {
      if (counts.size() > options_.max_values) break;
      ++counts[segment_value(s, seg.first, seg.last)];
    }
    if (counts.size() > options_.max_values) {
      seg.random_fill = true;
      continue;
    }
    seg.values.reserve(counts.size());
    // Materialize-and-sort; pair ordering is total, so hash order dies
    // here.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> sorted(
        counts.begin(), counts.end());  // v6lint: allow(unordered-iteration)
    std::sort(sorted.begin(), sorted.end());
    std::uint32_t running = 0;
    for (const auto& [value, count] : sorted) {
      running += count;
      seg.values.push_back(value);
      seg.cumulative.push_back(running);
    }
  }
}

std::uint64_t EntropyIp::sample_segment(const Segment& seg) {
  const int width = seg.last - seg.first + 1;
  if (seg.random_fill || seg.values.empty()) {
    const std::uint64_t mask =
        width >= 16 ? ~0ULL : (1ULL << (4 * width)) - 1;
    return rng_() & mask;
  }
  const std::uint32_t pick = v6::net::uniform_int<std::uint32_t>(
      rng_, 1, seg.cumulative.back());
  const auto it =
      std::lower_bound(seg.cumulative.begin(), seg.cumulative.end(), pick);
  return seg.values[static_cast<std::size_t>(
      std::distance(seg.cumulative.begin(), it))];
}

std::vector<Ipv6Addr> EntropyIp::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (segments_.empty()) return out;

  std::size_t stall = 0;
  while (out.size() < n && stall < options_.max_stall) {
    Ipv6Addr addr;
    if (!seeds_.empty() && v6::net::chance(rng_, options_.mutation_prob)) {
      // Conditioned generation (stand-in for the original's Bayesian
      // network between segments): keep a real seed's segment values and
      // resample a single segment from the frequency model.
      addr = seeds_[v6::net::uniform_int<std::size_t>(rng_, 0,
                                                      seeds_.size() - 1)];
      // Resample a host-side segment: the model's network-side
      // conditioning is strong, so mutations stay within the subnet.
      std::size_t pick = v6::net::uniform_int<std::size_t>(
          rng_, 0, segments_.size() - 1);
      for (std::size_t tries = 0;
           segments_[pick].first < 16 && tries < segments_.size(); ++tries) {
        pick = (pick + 1) % segments_.size();
      }
      const Segment& seg = segments_[pick];
      std::uint64_t v = sample_segment(seg);
      for (int pos = seg.last; pos >= seg.first; --pos) {
        addr = addr.with_nybble(pos, static_cast<std::uint8_t>(v & 0xF));
        v >>= 4;
      }
    } else {
      for (const Segment& seg : segments_) {
        std::uint64_t v = sample_segment(seg);
        for (int pos = seg.last; pos >= seg.first; --pos) {
          addr = addr.with_nybble(pos, static_cast<std::uint8_t>(v & 0xF));
          v >>= 4;
        }
      }
    }
    if (emit(addr, out)) {
      stall = 0;
    } else {
      ++stall;
      // Model collapse: perturb the host nybble to escape duplicates.
      if (stall % 64 == 0) {
        const Ipv6Addr mutated = addr.with_nybble(
            Ipv6Addr::kNybbles - 1,
            static_cast<std::uint8_t>(rng_() & 0xF));
        emit(mutated, out);
      }
    }
  }
  return out;
}

}  // namespace v6::tga
