#include "tga/nybble_stats.h"

#include <cmath>

namespace v6::tga {

double NybbleHistogram::entropy() const {
  const std::uint32_t t = total();
  if (t == 0) return 0.0;
  double h = 0.0;
  for (const std::uint32_t c : count) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(t);
    h -= p * std::log2(p);
  }
  return h;
}

std::uint8_t NybbleHistogram::mode() const {
  int best = 0;
  for (int v = 1; v < 16; ++v) {
    if (count[static_cast<std::size_t>(v)] >
        count[static_cast<std::size_t>(best)]) {
      best = v;
    }
  }
  return static_cast<std::uint8_t>(best);
}

NybbleStats::NybbleStats(std::span<const v6::net::Ipv6Addr> addrs) {
  for (const v6::net::Ipv6Addr& a : addrs) add(a);
}

void NybbleStats::add(const v6::net::Ipv6Addr& addr) {
  for (int i = 0; i < v6::net::Ipv6Addr::kNybbles; ++i) {
    ++hist_[static_cast<std::size_t>(i)].count[addr.nybble(i)];
  }
  ++samples_;
}

std::vector<int> NybbleStats::varying_positions() const {
  std::vector<int> out;
  for (int i = 0; i < v6::net::Ipv6Addr::kNybbles; ++i) {
    if (hist_[static_cast<std::size_t>(i)].distinct() > 1) out.push_back(i);
  }
  return out;
}

int NybbleStats::min_entropy_position() const {
  int best = -1;
  double best_h = 5.0;  // above the 4-bit maximum
  for (int i = 0; i < v6::net::Ipv6Addr::kNybbles; ++i) {
    const NybbleHistogram& h = hist_[static_cast<std::size_t>(i)];
    if (h.distinct() <= 1) continue;
    const double e = h.entropy();
    if (e < best_h) {
      best_h = e;
      best = i;
    }
  }
  return best;
}

int NybbleStats::leftmost_varying_position() const {
  for (int i = 0; i < v6::net::Ipv6Addr::kNybbles; ++i) {
    if (hist_[static_cast<std::size_t>(i)].distinct() > 1) return i;
  }
  return -1;
}

}  // namespace v6::tga
