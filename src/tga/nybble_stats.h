// Per-nybble value statistics over an address set: histograms, entropy,
// and varying-position detection. Shared by every pattern-mining TGA.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.h"

namespace v6::tga {

/// Value histogram of one nybble position.
struct NybbleHistogram {
  std::array<std::uint32_t, 16> count{};

  std::uint32_t total() const {
    std::uint32_t t = 0;
    for (const std::uint32_t c : count) t += c;
    return t;
  }

  /// Number of distinct values observed.
  int distinct() const {
    int d = 0;
    for (const std::uint32_t c : count) d += c != 0;
    return d;
  }

  /// Shannon entropy in bits (0 for a constant nybble; max 4).
  double entropy() const;

  /// Most frequent value (lowest value wins ties).
  std::uint8_t mode() const;
};

/// Histograms for all 32 nybble positions of an address set.
class NybbleStats {
 public:
  NybbleStats() = default;
  explicit NybbleStats(std::span<const v6::net::Ipv6Addr> addrs);

  void add(const v6::net::Ipv6Addr& addr);

  const NybbleHistogram& at(int nybble) const {
    return hist_[static_cast<std::size_t>(nybble)];
  }

  std::size_t samples() const { return samples_; }

  /// Positions with more than one observed value, left to right.
  std::vector<int> varying_positions() const;

  /// Among `candidates` (or all varying positions if empty), the position
  /// with minimum positive entropy — DET's split heuristic.
  int min_entropy_position() const;

  /// The leftmost varying position, or -1 if all nybbles are constant —
  /// 6Tree's split heuristic.
  int leftmost_varying_position() const;

 private:
  std::array<NybbleHistogram, v6::net::Ipv6Addr::kNybbles> hist_{};
  std::size_t samples_ = 0;
};

}  // namespace v6::tga
