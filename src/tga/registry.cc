#include "tga/registry.h"

#include "tga/det.h"
#include "tga/entropy_ip.h"
#include "tga/six_forest.h"
#include "tga/six_gen.h"
#include "tga/six_graph.h"
#include "tga/six_hit.h"
#include "tga/six_scan.h"
#include "tga/six_sense.h"
#include "tga/six_tree.h"

namespace v6::tga {

std::unique_ptr<TargetGenerator> make_generator(TgaKind kind) {
  switch (kind) {
    case TgaKind::kSixSense: return std::make_unique<SixSense>();
    case TgaKind::kDet: return std::make_unique<Det>();
    case TgaKind::kSixTree: return std::make_unique<SixTree>();
    case TgaKind::kSixScan: return std::make_unique<SixScan>();
    case TgaKind::kSixGraph: return std::make_unique<SixGraph>();
    case TgaKind::kSixGen: return std::make_unique<SixGen>();
    case TgaKind::kSixHit: return std::make_unique<SixHit>();
    case TgaKind::kEntropyIp: return std::make_unique<EntropyIp>();
    case TgaKind::kSixForest: return std::make_unique<SixForest>();
  }
  return nullptr;
}

std::unique_ptr<TargetGenerator> make_generator(std::string_view name) {
  for (const TgaKind kind : kAllTgas) {
    if (to_string(kind) == name) return make_generator(kind);
  }
  for (const TgaKind kind : kExtensionTgas) {
    if (to_string(kind) == name) return make_generator(kind);
  }
  return nullptr;
}

}  // namespace v6::tga
