// Factory for the eight studied TGAs.
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "tga/target_generator.h"

namespace v6::tga {

/// The eight generators, in the paper's reporting order.
enum class TgaKind : std::uint8_t {
  kSixSense = 0,
  kDet = 1,
  kSixTree = 2,
  kSixScan = 3,
  kSixGraph = 4,
  kSixGen = 5,
  kSixHit = 6,
  kEntropyIp = 7,
  // Extensions beyond the paper's core eight:
  kSixForest = 8,
};

inline constexpr int kNumTgas = 8;

inline constexpr std::array<TgaKind, kNumTgas> kAllTgas = {
    TgaKind::kSixSense, TgaKind::kDet,    TgaKind::kSixTree,
    TgaKind::kSixScan,  TgaKind::kSixGraph, TgaKind::kSixGen,
    TgaKind::kSixHit,   TgaKind::kEntropyIp};

/// Extension generators beyond the paper's core eight (implemented to
/// study the paper's exclusions; never part of the reproduction tables).
inline constexpr std::array<TgaKind, 1> kExtensionTgas = {
    TgaKind::kSixForest};

constexpr std::string_view to_string(TgaKind k) {
  switch (k) {
    case TgaKind::kSixSense: return "6Sense";
    case TgaKind::kDet: return "DET";
    case TgaKind::kSixTree: return "6Tree";
    case TgaKind::kSixScan: return "6Scan";
    case TgaKind::kSixGraph: return "6Graph";
    case TgaKind::kSixGen: return "6Gen";
    case TgaKind::kSixHit: return "6Hit";
    case TgaKind::kEntropyIp: return "EIP";
    case TgaKind::kSixForest: return "6Forest";
  }
  return "?";
}

/// Creates a generator with default parameters (the paper uses default
/// TGA parameters throughout, §4.1).
std::unique_ptr<TargetGenerator> make_generator(TgaKind kind);

/// Creates a generator by its table name ("6Tree", "DET", ...); nullptr
/// for unknown names.
std::unique_ptr<TargetGenerator> make_generator(std::string_view name);

}  // namespace v6::tga
