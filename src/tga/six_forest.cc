#include "tga/six_forest.h"

#include <algorithm>
#include <unordered_set>

namespace v6::tga {

using v6::net::Ipv6Addr;

void SixForest::reset_model() {
  regions_.clear();
  turn_ = 0;
  if (seeds_.empty()) return;

  struct Scored {
    TreeRegion region;
    double density;
  };
  std::vector<Scored> forest_regions;

  // Bootstrap partitions by stride, alternating split heuristics so the
  // ensemble members disagree (the point of a forest).
  const int trees = std::max(1, options_.trees);
  for (int t = 0; t < trees; ++t) {
    std::vector<Ipv6Addr> partition;
    partition.reserve(seeds_.size() / static_cast<std::size_t>(trees) + 1);
    for (std::size_t i = static_cast<std::size_t>(t); i < seeds_.size();
         i += static_cast<std::size_t>(trees)) {
      partition.push_back(seeds_[i]);
    }
    if (partition.empty()) continue;
    const SplitPolicy policy =
        t % 2 == 0 ? SplitPolicy::kLeftmost : SplitPolicy::kMinEntropy;
    SpaceTree tree(partition, {.policy = policy,
                               .max_leaf_seeds = options_.max_leaf_seeds,
                               .max_free = options_.max_free});
    const auto leaves = tree.regions();
    if (leaves.empty()) continue;

    // Outlier isolation: drop the bottom density quantile of this tree.
    // regions() is density-sorted descending, so the cut is positional.
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(leaves.size()) *
               (1.0 - options_.outlier_quantile)));
    for (std::size_t i = 0; i < keep; ++i) {
      forest_regions.push_back({leaves[i], leaves[i].density});
    }
  }

  // Merge the forest: dedupe identical regions discovered by several
  // trees (same base pattern and free set).
  std::sort(forest_regions.begin(), forest_regions.end(),
            [](const Scored& a, const Scored& b) {
              if (a.density != b.density) return a.density > b.density;
              if (a.region.base != b.region.base) {
                return a.region.base < b.region.base;
              }
              return a.region.free < b.region.free;
            });
  struct Key {
    Ipv6Addr base;
    std::vector<int> free;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = v6::net::Ipv6AddrHash{}(k.base);
      for (const int pos : k.free) {
        h = h * 31 + static_cast<std::size_t>(pos);
      }
      return h;
    }
  };
  std::unordered_set<Key, KeyHash> seen;
  regions_.reserve(forest_regions.size());
  for (const Scored& scored : forest_regions) {
    if (!seen.insert({scored.region.base, scored.region.free}).second) {
      continue;
    }
    Region region;
    region.cursor = RegionCursor(scored.region.base, scored.region.free);
    region.chunk = std::max<std::uint64_t>(
        options_.min_chunk,
        options_.chunk_per_seed * scored.region.seed_count);
    regions_.push_back(std::move(region));
  }
}

std::vector<Ipv6Addr> SixForest::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (regions_.empty()) return out;

  std::size_t stall = 0;
  while (out.size() < n && stall < regions_.size() * 2) {
    Region& region = regions_[turn_ % regions_.size()];
    ++turn_;
    std::uint64_t taken = 0;
    while (taken < region.chunk && out.size() < n) {
      auto addr = region.cursor.next();
      if (!addr) {
        if (region.extensions >= options_.max_extensions ||
            !region.cursor.extend()) {
          break;
        }
        ++region.extensions;
        break;  // widened space waits for the next scheduling round
      }
      if (emit(*addr, out)) ++taken;
    }
    stall = taken == 0 ? stall + 1 : 0;
  }
  return out;
}

}  // namespace v6::tga
