// 6Forest (Yang et al., INFOCOM 2022) — extension beyond the paper's
// core eight.
//
// An ensemble of space trees: seeds are split into bootstrap partitions,
// each grown into its own space tree (alternating split heuristics), and
// low-density outlier leaves are isolated and discarded before
// generation — 6Forest's outlier-detection mechanism. Generation merges
// the forest's surviving regions, densest first.
//
// The paper excluded 6Forest (with the deep-learning TGAs) because the
// public implementation could not generate tens of millions of
// addresses; this implementation exists so the exclusion can be studied
// rather than assumed (see bench_ext_forest).
#pragma once

#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class SixForest final : public TargetGeneratorBase {
 public:
  struct Options {
    int trees = 8;                 // ensemble size
    std::uint32_t max_leaf_seeds = 16;
    int max_free = 6;
    /// Leaves whose density falls below `outlier_quantile` of their
    /// tree's density distribution are isolated as outliers.
    double outlier_quantile = 0.25;
    std::uint64_t chunk_per_seed = 8;
    std::uint64_t min_chunk = 16;
    int max_extensions = 1;
  };

  SixForest() = default;
  explicit SixForest(const Options& options) : options_(options) {}

  std::string_view name() const override { return "6Forest"; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;

 protected:
  void reset_model() override;

 private:
  struct Region {
    RegionCursor cursor;
    std::uint64_t chunk = 0;
    int extensions = 0;
  };

  Options options_;
  std::vector<Region> regions_;  // density order across the whole forest
  std::size_t turn_ = 0;
};

}  // namespace v6::tga
