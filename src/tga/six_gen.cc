#include "tga/six_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace v6::tga {

using v6::net::Ipv6Addr;

// ---- SixGen ----------------------------------------------------------------

void SixGen::reset_model() {
  clusters_.clear();
  turn_ = 0;

  // Cluster by /64 network.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> groups;
  for (std::uint32_t i = 0; i < seeds_.size(); ++i) {
    groups[seeds_[i].hi()].push_back(i);
  }

  struct Scored {
    Cluster cluster;
    double density;
    Ipv6Addr base;
  };
  std::vector<Scored> scored;
  scored.reserve(groups.size());

  // Every group lands in `scored`, later sorted by (density, base) — a
  // total order since bases are distinct per group.
  // v6lint: allow(unordered-iteration)
  for (const auto& [hi, members] : groups) {
    // Observed value sets for the 16 low-64 nybbles.
    std::array<std::vector<std::uint8_t>, 16> seen{};
    for (const std::uint32_t m : members) {
      for (int pos = 16; pos < 32; ++pos) {
        const std::uint8_t v = seeds_[m].nybble(pos);
        auto& vals = seen[static_cast<std::size_t>(pos - 16)];
        if (!std::binary_search(vals.begin(), vals.end(), v)) {
          vals.insert(std::lower_bound(vals.begin(), vals.end(), v), v);
        }
      }
    }
    // Varying positions form the range; fixed ones stay at their value.
    std::vector<int> positions;
    std::vector<std::vector<std::uint8_t>> values;
    double span_log16 = 0.0;
    for (int pos = 16; pos < 32; ++pos) {
      auto& vals = seen[static_cast<std::size_t>(pos - 16)];
      if (vals.size() > 1) {
        span_log16 += std::log2(static_cast<double>(vals.size())) / 4.0;
        positions.push_back(pos);
        values.push_back(vals);
      }
    }
    if (positions.empty()) {
      // Single distinct low64: vary the host nybble.
      positions.push_back(31);
      values.push_back({seeds_[members.front()].nybble(31)});
      values.back().push_back(
          static_cast<std::uint8_t>((values.back().front() + 1) & 0xF));
      std::sort(values.back().begin(), values.back().end());
      values.back().erase(
          std::unique(values.back().begin(), values.back().end()),
          values.back().end());
    }
    if (span_log16 > static_cast<double>(options_.max_span_nybbles)) {
      continue;  // range too sparse to be worth enumerating
    }

    Scored s;
    s.base = seeds_[members.front()];
    s.cluster.cursor = RangeCursor(s.base, std::move(positions),
                                   std::move(values));
    s.cluster.chunk = std::max<std::uint64_t>(
        options_.min_chunk,
        options_.chunk_per_seed * members.size());
    s.density = static_cast<double>(members.size()) /
                static_cast<double>(s.cluster.cursor.capacity());
    scored.push_back(std::move(s));
  }

  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.density != b.density) return a.density > b.density;
    return a.base < b.base;
  });
  clusters_.reserve(scored.size());
  for (Scored& s : scored) clusters_.push_back(std::move(s.cluster));
}

std::vector<Ipv6Addr> SixGen::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (clusters_.empty()) return out;

  // 6Gen packs the budget into the tightest ranges first: clusters are
  // drained sequentially in density order. When the whole list is
  // exhausted, every cluster is widened by one adjacent value and the
  // sweep restarts (density-preserving growth).
  std::size_t widen_rounds = 0;
  while (out.size() < n) {
    if (turn_ >= clusters_.size()) {
      turn_ = 0;
      bool any_widened = false;
      for (Cluster& cluster : clusters_) {
        if (!cluster.dead && cluster.cursor.widen()) any_widened = true;
      }
      if (!any_widened || ++widen_rounds > 64) break;
    }
    Cluster& cluster = clusters_[turn_];
    if (cluster.dead) {
      ++turn_;
      continue;
    }
    bool progressed = false;
    while (out.size() < n) {
      auto addr = cluster.cursor.next();
      if (!addr) break;  // drained; widen happens on the next full sweep
      if (emit(*addr, out)) progressed = true;
    }
    if (out.size() < n) ++turn_;
    (void)progressed;
  }
  return out;
}

}  // namespace v6::tga
