// 6Gen (Murdock et al., IMC 2017).
//
// Clustering approach: seeds sharing a /64 network form a cluster whose
// per-nybble observed-value sets define a tight range. Generation
// enumerates the tightest (densest) ranges first and widens a range one
// adjacent nybble value at a time once exhausted — 6Gen's density-driven
// cluster growth.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class SixGen final : public TargetGeneratorBase {
 public:
  struct Options {
    /// Clusters whose range exceeds 16^max_span addresses are dropped.
    int max_span_nybbles = 7;
    std::uint64_t chunk_per_seed = 8;
    std::uint64_t min_chunk = 16;
  };

  SixGen() = default;
  explicit SixGen(const Options& options) : options_(options) {}

  std::string_view name() const override { return "6Gen"; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;

 protected:
  void reset_model() override;

 private:
  struct Cluster {
    RangeCursor cursor;
    std::uint64_t chunk = 0;
    bool dead = false;
  };

  Options options_;
  std::vector<Cluster> clusters_;  // density order
  std::size_t turn_ = 0;
};

}  // namespace v6::tga
