#include "tga/six_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace v6::tga {

using v6::net::Ipv6Addr;

namespace {

/// Disjoint-set forest for leaf merging.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Unites unless the merged component would exceed `cap` members —
  /// unbounded transitive merging chains unrelated patterns into one
  /// dilute mega-cluster.
  void unite(std::uint32_t a, std::uint32_t b, std::uint32_t cap) {
    a = find(a);
    b = find(b);
    if (a == b || size_[a] + size_[b] > cap) return;
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

/// Key identifying a leaf pattern with one extra position wildcarded:
/// the base address (free + wildcard positions zeroed) and the bitmask of
/// wildcarded positions.
struct PatternKey {
  Ipv6Addr base;
  std::uint64_t free_mask;
  bool operator==(const PatternKey&) const = default;
};

struct PatternKeyHash {
  std::size_t operator()(const PatternKey& k) const noexcept {
    return v6::net::Ipv6AddrHash{}(k.base) ^
           (k.free_mask * 0x9E3779B97F4A7C15ULL);
  }
};

std::uint64_t free_mask_of(const std::vector<int>& free) {
  std::uint64_t m = 0;
  for (const int pos : free) m |= 1ULL << pos;
  return m;
}

}  // namespace

void SixGraph::reset_model() {
  clusters_.clear();
  turn_ = 0;

  SpaceTree tree(seeds_, {.policy = SplitPolicy::kMinEntropy,
                          .max_leaf_seeds = options_.max_leaf_seeds,
                          .max_free = options_.max_free});
  const auto leaves = tree.regions();
  if (leaves.empty()) return;

  // Connect leaves that agree on their pattern once any single fixed
  // nybble is wildcarded (an edge in 6Graph's pattern-similarity graph).
  UnionFind uf(leaves.size());
  std::unordered_map<PatternKey, std::uint32_t, PatternKeyHash> first_with_key;
  for (std::uint32_t li = 0; li < leaves.size(); ++li) {
    const TreeRegion& leaf = leaves[li];
    // Only tight leaves participate in pattern mining: a leaf with many
    // free dimensions is noise, and merging through it would fuse
    // unrelated patterns into one dilute cluster.
    if (leaf.free.size() > 2) continue;
    const std::uint64_t base_mask = free_mask_of(leaf.free);
    for (int pos = 0; pos < Ipv6Addr::kNybbles; ++pos) {
      if (base_mask & (1ULL << pos)) continue;
      PatternKey key{leaf.base.with_nybble(pos, 0),
                     base_mask | (1ULL << pos)};
      const auto [it, inserted] = first_with_key.emplace(key, li);
      if (!inserted) uf.unite(it->second, li, /*cap=*/16);
    }
  }

  // Materialize components into pattern clusters. A cluster's pattern
  // wildcards (a) the members' free dimensions over the full nybble range
  // and (b) the positions where member bases differ over the *observed*
  // values only — 6Graph expands mined patterns, it does not enumerate
  // blind space between them.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> components;
  for (std::uint32_t li = 0; li < leaves.size(); ++li) {
    components[uf.find(li)].push_back(li);
  }

  struct Scored {
    Cluster cluster;
    double density;
    Ipv6Addr base;
  };
  std::vector<Scored> scored;
  scored.reserve(components.size());
  // Every component lands in `scored`, later sorted by (density, base)
  // — a total order since bases are distinct per component.
  // v6lint: allow(unordered-iteration)
  for (const auto& [root, members] : components) {
    // Union of free positions; observed values at differing positions.
    std::uint64_t free_mask = 0;
    std::array<std::uint16_t, Ipv6Addr::kNybbles> value_bits{};
    std::uint32_t seeds = 0;
    double member_capacity = 0.0;
    std::uint32_t best_seed_count = 0;
    Ipv6Addr base = leaves[members.front()].base;
    for (const std::uint32_t li : members) {
      const TreeRegion& leaf = leaves[li];
      free_mask |= free_mask_of(leaf.free);
      for (int pos = 0; pos < Ipv6Addr::kNybbles; ++pos) {
        value_bits[static_cast<std::size_t>(pos)] |=
            static_cast<std::uint16_t>(1u << leaf.base.nybble(pos));
      }
      seeds += leaf.seed_count;
      member_capacity +=
          std::pow(16.0, static_cast<double>(leaf.free.size()));
      if (leaf.seed_count > best_seed_count) {
        best_seed_count = leaf.seed_count;
        base = leaf.base;
      }
    }

    std::vector<int> positions;
    std::vector<std::vector<std::uint8_t>> values;
    double span_log16 = 0.0;
    for (int pos = 0; pos < Ipv6Addr::kNybbles; ++pos) {
      const bool is_free = (free_mask >> pos) & 1;
      std::vector<std::uint8_t> vals;
      if (is_free) {
        vals.resize(16);
        for (int v = 0; v < 16; ++v) vals[static_cast<std::size_t>(v)] =
            static_cast<std::uint8_t>(v);
      } else {
        for (int v = 0; v < 16; ++v) {
          if (value_bits[static_cast<std::size_t>(pos)] & (1u << v)) {
            vals.push_back(static_cast<std::uint8_t>(v));
          }
        }
        if (vals.size() <= 1) continue;  // constant across members
      }
      span_log16 += std::log2(static_cast<double>(vals.size())) / 4.0;
      positions.push_back(pos);
      values.push_back(std::move(vals));
      if (span_log16 > static_cast<double>(options_.max_cluster_free)) break;
    }
    if (span_log16 > static_cast<double>(options_.max_cluster_free)) {
      continue;  // pattern too wide to enumerate
    }
    if (positions.empty()) {
      positions.push_back(Ipv6Addr::kNybbles - 1);
      std::vector<std::uint8_t> all16(16);
      for (int v = 0; v < 16; ++v) all16[static_cast<std::size_t>(v)] =
          static_cast<std::uint8_t>(v);
      values.push_back(std::move(all16));
    }

    Scored s;
    s.base = base;
    s.cluster.cursor = RangeCursor(base, std::move(positions),
                                   std::move(values));
    s.cluster.chunk = std::max<std::uint64_t>(
        options_.min_chunk, options_.chunk_per_seed * seeds);
    // Density over the member space: fusing leaves into one pattern must
    // not demote the pattern below its constituent parts.
    s.density = (static_cast<double>(seeds) - 0.5) /
                std::max(1.0, member_capacity);
    scored.push_back(std::move(s));
  }

  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.density != b.density) return a.density > b.density;
    return a.base < b.base;
  });
  clusters_.reserve(scored.size());
  for (Scored& s : scored) clusters_.push_back(std::move(s.cluster));
}

std::vector<Ipv6Addr> SixGraph::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (clusters_.empty()) return out;

  std::size_t stall = 0;
  while (out.size() < n && stall < clusters_.size() * 2) {
    Cluster& cluster = clusters_[turn_ % clusters_.size()];
    ++turn_;
    std::uint64_t taken = 0;
    while (taken < cluster.chunk && out.size() < n) {
      auto addr = cluster.cursor.next();
      if (!addr) {
        if (cluster.extensions >= options_.max_extensions ||
            !cluster.cursor.widen()) {
          break;
        }
        ++cluster.extensions;
        break;  // widened space waits for the next scheduling round
      }
      if (emit(*addr, out)) ++taken;
    }
    stall = taken == 0 ? stall + 1 : 0;
  }
  return out;
}

}  // namespace v6::tga
