// 6Graph (Yang et al., Computer Networks 2022).
//
// Offline graph-theoretic pattern mining: seeds are partitioned with
// DET-style entropy splitting, then leaves whose patterns differ in at
// most one fixed nybble are connected and merged into pattern clusters
// (connected components). Each cluster becomes a wildcard pattern whose
// address space is enumerated densest-cluster first.
#pragma once

#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class SixGraph final : public TargetGeneratorBase {
 public:
  struct Options {
    std::uint32_t max_leaf_seeds = 16;
    int max_free = 6;
    /// Cap on free dimensions of a merged pattern cluster.
    int max_cluster_free = 7;
    std::uint64_t chunk_per_seed = 8;
    std::uint64_t min_chunk = 16;
    /// Times a drained cluster may widen (offline: no waste feedback).
    int max_extensions = 2;
  };

  SixGraph() = default;
  explicit SixGraph(const Options& options) : options_(options) {}

  std::string_view name() const override { return "6Graph"; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;

 protected:
  void reset_model() override;

 private:
  struct Cluster {
    RangeCursor cursor;
    std::uint64_t chunk = 0;
    int extensions = 0;
  };

  Options options_;
  std::vector<Cluster> clusters_;  // density order
  std::size_t turn_ = 0;
};

}  // namespace v6::tga
