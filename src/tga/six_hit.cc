#include "tga/six_hit.h"

#include <algorithm>

namespace v6::tga {

using v6::net::Ipv6Addr;

void SixHit::build_tree(const std::vector<Ipv6Addr>& from) {
  regions_.clear();
  SpaceTree tree(from, {.policy = SplitPolicy::kLeftmost,
                        .max_leaf_seeds = options_.max_leaf_seeds,
                        .max_free = options_.max_free});
  regions_.reserve(tree.regions().size());
  double max_density = 0.0;
  for (const TreeRegion& r : tree.regions()) {
    max_density = std::max(max_density, r.density);
  }
  for (const TreeRegion& r : tree.regions()) {
    Region region;
    region.cursor = RegionCursor(r.base, r.free);
    // Flat optimism plus a density prior: unexplored regions stay
    // attractive until feedback says otherwise.
    region.q =
        0.2 + (max_density > 0 ? 0.3 * r.density / max_density : 0.0);
    regions_.push_back(std::move(region));
  }
}

void SixHit::reset_model() {
  pending_.clear();
  discovered_.clear();
  hits_since_rebuild_ = 0;
  build_tree(seeds_);
}

bool SixHit::absorb_seeds(std::span<const Ipv6Addr> added) {
  if (register_seeds(added) == 0) return true;  // nothing new to learn
  // Same fold as the hit-threshold recreation in next_batch: rebuild
  // the partition from the merged seeds plus everything discovered so
  // far. emitted_ and the RNG stream are untouched, so the generator
  // neither re-emits old candidates nor replays old draws.
  std::vector<Ipv6Addr> combined = seeds_;
  combined.insert(combined.end(), discovered_.begin(), discovered_.end());
  pending_.clear();
  build_tree(combined);
  hits_since_rebuild_ = 0;
  return true;
}

std::vector<Ipv6Addr> SixHit::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (regions_.empty()) return out;

  // Periodic tree recreation with discovered actives folded in.
  if (hits_since_rebuild_ >= options_.rebuild_after_hits) {
    std::vector<Ipv6Addr> combined = seeds_;
    combined.insert(combined.end(), discovered_.begin(), discovered_.end());
    pending_.clear();
    build_tree(combined);
    hits_since_rebuild_ = 0;
  }

  std::size_t consecutive_failures = 0;
  while (out.size() < n && consecutive_failures < regions_.size() + 8) {
    std::size_t pick;
    if (v6::net::chance(rng_, options_.epsilon)) {
      pick = v6::net::uniform_int<std::size_t>(rng_, 0, regions_.size() - 1);
    } else {
      pick = 0;
      double best = -1.0;
      for (std::size_t i = 0; i < regions_.size(); ++i) {
        if (regions_[i].dead) continue;
        if (regions_[i].q > best) {
          best = regions_[i].q;
          pick = i;
        }
      }
    }
    Region& region = regions_[pick];
    if (region.dead) {
      ++consecutive_failures;
      continue;
    }
    std::uint64_t taken = 0;
    while (taken < options_.chunk && out.size() < n) {
      auto addr = region.cursor.next();
      if (!addr) {
        if (!region.cursor.extend()) {
          region.dead = true;
        } else {
          // The widened space is 16x more dilute; discount its value so
          // selection moves on unless feedback re-confirms it.
          region.q *= 0.5;
        }
        break;
      }
      if (emit(*addr, out)) {
        pending_.emplace(*addr, static_cast<std::uint32_t>(pick));
        ++taken;
      }
    }
    consecutive_failures = taken == 0 ? consecutive_failures + 1 : 0;
  }
  return out;
}

void SixHit::observe(const Ipv6Addr& addr, bool active) {
  const auto it = pending_.find(addr);
  if (it == pending_.end()) return;
  Region& region = regions_[it->second];
  const double reward = active ? 1.0 : 0.0;
  region.q += options_.learning_rate * (reward - region.q);
  if (active) {
    discovered_.push_back(addr);
    ++hits_since_rebuild_;
  }
  pending_.erase(it);
}

}  // namespace v6::tga
