// 6Hit (Hou et al., INFOCOM 2021).
//
// The first fully-online tree model: a Q-value per tree region updated
// from per-probe rewards, epsilon-greedy region selection, and periodic
// tree recreation folding discovered active addresses back into the
// space partition.
#pragma once

#include <unordered_map>
#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class SixHit final : public TargetGeneratorBase {
 public:
  struct Options {
    std::uint32_t max_leaf_seeds = 16;
    int max_free = 6;
    double epsilon = 0.30;        // exploration probability
    double learning_rate = 0.05;  // Q-value step size
    std::uint64_t chunk = 64;     // addresses per region selection
    /// Rebuild the tree after this many newly discovered actives.
    std::uint64_t rebuild_after_hits = 8000;
  };

  SixHit() = default;
  explicit SixHit(const Options& options) : options_(options) {}

  std::string_view name() const override { return "6Hit"; }
  bool is_online() const override { return true; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;
  void observe(const v6::net::Ipv6Addr& addr, bool active) override;
  /// 6Hit's periodic tree recreation already folds discovered actives
  /// into the partition, so a seed delta rides the same machinery: the
  /// tree is rebuilt from seeds + discoveries while the emitted set,
  /// discovery list, and RNG stream survive — unlike prepare(), which
  /// wipes all learned state.
  bool absorb_seeds(std::span<const v6::net::Ipv6Addr> added) override;

 protected:
  void reset_model() override;

 private:
  struct Region {
    RegionCursor cursor;
    double q = 0.0;
    bool dead = false;
  };

  void build_tree(const std::vector<v6::net::Ipv6Addr>& from);

  Options options_;
  std::vector<Region> regions_;
  std::unordered_map<v6::net::Ipv6Addr, std::uint32_t> pending_;
  std::vector<v6::net::Ipv6Addr> discovered_;
  std::uint64_t hits_since_rebuild_ = 0;
};

}  // namespace v6::tga
