#include "tga/six_scan.h"

#include <algorithm>
#include <numeric>

namespace v6::tga {

using v6::net::Ipv6Addr;

void SixScan::reset_model() {
  regions_.clear();
  pending_.clear();
  SpaceTree tree(seeds_, {.policy = SplitPolicy::kLeftmost,
                          .max_leaf_seeds = options_.max_leaf_seeds,
                          .max_free = options_.max_free});
  regions_.reserve(tree.regions().size());
  for (const TreeRegion& r : tree.regions()) {
    Region region;
    region.cursor = RegionCursor(r.base, r.free);
    region.seed_count = r.seed_count;
    regions_.push_back(std::move(region));
  }
}

std::uint64_t SixScan::drain(Region& region, std::uint32_t region_id,
                             std::uint64_t want,
                             std::vector<Ipv6Addr>& out) {
  std::uint64_t taken = 0;
  while (taken < want) {
    auto addr = region.cursor.next();
    if (!addr) {
      if (region.extensions >= options_.max_extensions ||
          !region.cursor.extend()) {
        region.dead = true;
      } else {
        ++region.extensions;
      }
      break;  // widened space waits for a later round's ranking
    }
    ++region.emitted;
    if (emit(*addr, out)) {
      pending_.emplace(*addr, region_id);
      ++taken;
    }
  }
  return taken;
}

std::vector<Ipv6Addr> SixScan::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (regions_.empty()) return out;

  // Rank regions by last round's hits, then by seed density (the initial
  // round has no feedback and degenerates to 6Tree's ordering).
  std::vector<std::uint32_t> order(regions_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const Region& ra = regions_[a];
                     const Region& rb = regions_[b];
                     if (ra.hits_last_round != rb.hits_last_round) {
                       return ra.hits_last_round > rb.hits_last_round;
                     }
                     return ra.seed_count > rb.seed_count;
                   });
  for (Region& r : regions_) r.hits_last_round = 0;

  const std::uint64_t explore_budget = static_cast<std::uint64_t>(
      static_cast<double>(n) * options_.explore_fraction);
  const std::uint64_t exploit_budget = n - explore_budget;

  // Exploit: spread over the top-ranked live regions.
  const std::size_t k =
      std::min(options_.regions_per_round, regions_.size());
  std::uint64_t remaining = exploit_budget;
  for (std::size_t i = 0; i < order.size() && remaining > 0; ++i) {
    Region& region = regions_[order[i]];
    if (region.dead) continue;
    const std::uint64_t share =
        std::max<std::uint64_t>(1, exploit_budget / (i < k ? k : order.size()));
    remaining -= drain(region, order[i], std::min(share, remaining), out);
  }

  // Explore: touch regions that have never been probed.
  std::uint64_t explore_remaining = explore_budget + remaining;
  for (std::size_t i = 0; i < order.size() && explore_remaining > 0; ++i) {
    Region& region = regions_[order[i]];
    if (region.dead || region.emitted > 0) continue;
    explore_remaining -=
        drain(region, order[i], std::min<std::uint64_t>(16, explore_remaining),
              out);
  }
  // Whatever is left goes to the best region.
  for (std::size_t i = 0; i < order.size() && out.size() < n; ++i) {
    Region& region = regions_[order[i]];
    if (region.dead) continue;
    drain(region, order[i], n - out.size(), out);
  }
  return out;
}

void SixScan::observe(const Ipv6Addr& addr, bool active) {
  const auto it = pending_.find(addr);
  if (it == pending_.end()) return;
  if (active) {
    Region& region = regions_[it->second];
    ++region.hits_total;
    ++region.hits_last_round;
  }
  pending_.erase(it);
}

}  // namespace v6::tga
