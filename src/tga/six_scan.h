// 6Scan (Hou et al., ToN 2023).
//
// Shares 6Tree's space-tree formulation but encodes region identity into
// each probe (here: an explicit address->region map) so that scan replies
// re-prioritize regions between rounds. Each next_batch() call is one
// round: budget is spread over regions ranked by the previous round's hit
// counts, with a slice reserved for not-yet-probed regions.
#pragma once

#include <unordered_map>
#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class SixScan final : public TargetGeneratorBase {
 public:
  struct Options {
    std::uint32_t max_leaf_seeds = 16;
    int max_free = 6;
    /// Fraction of each round reserved for unexplored regions.
    double explore_fraction = 0.2;
    /// Per-round cap on regions receiving budget.
    std::size_t regions_per_round = 8192;
    /// Times a drained region may widen before it is retired.
    int max_extensions = 2;
  };

  SixScan() = default;
  explicit SixScan(const Options& options) : options_(options) {}

  std::string_view name() const override { return "6Scan"; }
  bool is_online() const override { return true; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;
  void observe(const v6::net::Ipv6Addr& addr, bool active) override;

 protected:
  void reset_model() override;

 private:
  struct Region {
    RegionCursor cursor;
    std::uint32_t seed_count = 0;
    std::uint64_t hits_total = 0;
    std::uint64_t hits_last_round = 0;
    std::uint64_t emitted = 0;
    int extensions = 0;
    bool dead = false;
  };

  /// Emits up to `want` addresses from `region`; returns count emitted.
  std::uint64_t drain(Region& region, std::uint32_t region_id,
                      std::uint64_t want, std::vector<v6::net::Ipv6Addr>& out);

  Options options_;
  std::vector<Region> regions_;
  std::unordered_map<v6::net::Ipv6Addr, std::uint32_t> pending_;
};

}  // namespace v6::tga
