#include "tga/six_sense.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dealias/online_dealiaser.h"

namespace v6::tga {

using v6::net::Ipv6Addr;

void SixSense::attach_online_dealiaser(v6::dealias::OnlineDealiaser* dealiaser,
                                       v6::net::ProbeType type) {
  dealiaser_ = dealiaser;
  dealias_type_ = type;
}

void SixSense::reset_model() {
  sections_.clear();
  pending_.clear();
  total_emitted_ = 0;
  coverage_turn_ = 0;

  // Partition seeds into /32 network sections.
  std::unordered_map<std::uint64_t, std::vector<Ipv6Addr>> by_section;
  for (const Ipv6Addr& s : seeds_) {
    by_section[s.hi() & ~0xFFFFFFFFULL].push_back(s);
  }

  // Shared lower-64 model: the most common interface identifiers across
  // the whole seed set, transferred into every section (6Sense's
  // separately-learned lower-64 generation model).
  pattern_pool_.clear();
  {
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    for (const Ipv6Addr& s : seeds_) ++counts[s.lo()];
    std::vector<std::pair<std::uint64_t, std::uint32_t>> common;
    // `common` is re-sorted below by (count, value) — a total order.
    // v6lint: allow(unordered-iteration)
    for (const auto& [value, count] : counts) {
      if (count >= 2) common.emplace_back(value, count);
    }
    std::sort(common.begin(), common.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (common.size() > options_.pattern_pool) {
      common.resize(options_.pattern_pool);
    }
    pattern_pool_.reserve(common.size());
    for (const auto& [value, count] : common) {
      pattern_pool_.push_back(value);
    }
  }

  sections_.reserve(by_section.size());
  // sections_ is re-sorted by prefix_hi (unique per section) below.
  // v6lint: allow(unordered-iteration)
  for (auto& [hi, members] : by_section) {
    Section section;
    section.prefix_hi = hi;
    SpaceTree tree(members, {.policy = SplitPolicy::kLeftmost,
                             .max_leaf_seeds = options_.max_leaf_seeds,
                             .max_free = options_.max_free});
    section.regions.reserve(tree.regions().size());
    for (const TreeRegion& r : tree.regions()) {
      Region region;
      region.cursor = RegionCursor(r.base, r.free);
      region.seed_mass = static_cast<double>(r.seed_count);
      section.regions.push_back(std::move(region));
    }
    {
      std::unordered_map<std::uint64_t, bool> seen;
      for (const Ipv6Addr& s : members) {
        if (seen.emplace(s.hi(), true).second) {
          section.subnets.push_back(s.hi());
        }
      }
      std::sort(section.subnets.begin(), section.subnets.end());
      section.subnet_state.assign(section.subnets.size(), 0);
    }
    sections_.push_back(std::move(section));
  }
  // Deterministic section order regardless of hash-map iteration.
  std::sort(sections_.begin(), sections_.end(),
            [](const Section& a, const Section& b) {
              return a.prefix_hi < b.prefix_hi;
            });
}

double SixSense::section_score(const Section& s) const {
  if (s.exhausted) return -1.0;
  const double exploit = (static_cast<double>(s.hits) + 1.0) /
                         static_cast<double>(s.emitted + 32);
  const double explore =
      options_.exploration *
      std::sqrt(std::log(static_cast<double>(total_emitted_ + 2)) /
                static_cast<double>(s.emitted + 1));
  return exploit + explore;
}

std::uint64_t SixSense::draw_patterns(std::uint32_t section_id,
                                      std::uint64_t want,
                                      std::vector<Ipv6Addr>& out) {
  Section& section = sections_[section_id];
  if (section.subnets.empty() || pattern_pool_.empty()) return 0;
  const std::uint64_t space =
      static_cast<std::uint64_t>(section.subnets.size()) *
      pattern_pool_.size();
  std::uint64_t taken = 0;
  while (taken < want && section.pattern_pos < space) {
    // Pattern-major order: try the most common identifier across every
    // subnet before moving to the next identifier.
    const std::uint64_t pattern = pattern_pool_[static_cast<std::size_t>(
        section.pattern_pos / section.subnets.size())];
    const std::size_t subnet_idx = static_cast<std::size_t>(
        section.pattern_pos % section.subnets.size());
    const std::uint64_t subnet = section.subnets[subnet_idx];
    ++section.pattern_pos;
    // The pattern arm honors the integrated dealiaser too: each subnet is
    // verified once before identifiers are sprayed into it.
    if (dealiaser_ != nullptr && section.subnet_state[subnet_idx] == 0) {
      section.subnet_state[subnet_idx] =
          dealiaser_->is_aliased(Ipv6Addr(subnet, 0), dealias_type_) ? 2 : 1;
    }
    if (section.subnet_state[subnet_idx] == 2) continue;
    ++section.pattern_emitted;
    ++section.emitted;
    ++total_emitted_;
    const Ipv6Addr addr(subnet, pattern);
    if (emit(addr, out)) {
      pending_.emplace(addr, (static_cast<std::uint64_t>(section_id) << 16) |
                                 0xFFFF);
      ++taken;
    }
  }
  return taken;
}

std::uint64_t SixSense::draw_from_section(std::uint32_t section_id,
                                          std::uint64_t want,
                                          std::vector<Ipv6Addr>& out) {
  Section& section = sections_[section_id];
  std::uint64_t taken = 0;
  std::size_t guard = 0;
  while (taken < want && guard < section.regions.size() + 4) {
    ++guard;
    // Best live region: density-style score with online hit boost.
    Region* best = nullptr;
    double best_score = -1.0;
    std::uint32_t best_id = 0;
    for (std::uint32_t i = 0; i < section.regions.size(); ++i) {
      Region& r = section.regions[i];
      if (r.dead) continue;
      const double score =
          (r.seed_mass + 4.0 * static_cast<double>(r.hits)) /
          static_cast<double>(r.emitted + 16);
      if (score > best_score) {
        best_score = score;
        best = &r;
        best_id = i;
      }
    }

    // The shared-pattern arm competes with the tree regions: its score is
    // its measured hit-rate with an optimistic prior, so fresh sections
    // first sweep the globally-common identifiers across their subnets.
    const std::uint64_t pattern_space =
        static_cast<std::uint64_t>(section.subnets.size()) *
        pattern_pool_.size();
    if (section.pattern_pos < pattern_space) {
      const double pattern_score =
          (4.0 + 4.0 * static_cast<double>(section.pattern_hits)) /
          static_cast<double>(section.pattern_emitted + 8);
      if (pattern_score > best_score) {
        const std::uint64_t got =
            draw_patterns(section_id, want - taken, out);
        taken += got;
        if (got > 0) continue;
      }
    }

    if (best == nullptr) {
      section.exhausted = true;
      return taken;
    }

    while (taken < want) {
      // Integrated online dealiasing: test the region's /96 once a few
      // addresses have been spent on it (detection lags generation by a
      // small batch, as in the real system), then abandon aliased space.
      if (dealiaser_ != nullptr && !best->dealias_checked &&
          best->emitted >= 4) {
        best->dealias_checked = true;
        if (dealiaser_->is_aliased(best->cursor.base(), dealias_type_)) {
          best->dead = true;
          break;
        }
      }
      auto addr = best->cursor.next();
      if (!addr) {
        if (!best->cursor.extend()) {
          best->dead = true;
          break;
        }
        // The widened region may have drifted into a new /96; re-check.
        best->dealias_checked = false;
        break;
      }
      ++best->emitted;
      ++section.emitted;
      ++total_emitted_;
      if (emit(*addr, out)) {
        pending_.emplace(*addr,
                         (static_cast<std::uint64_t>(section_id) << 16) |
                             best_id);
        ++taken;
      }
    }
  }
  return taken;
}

std::vector<Ipv6Addr> SixSense::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (sections_.empty()) return out;

  // ---- Coverage slice: round-robin across every section ----------------
  const std::uint64_t coverage_budget = static_cast<std::uint64_t>(
      static_cast<double>(n) * options_.coverage_fraction);
  std::uint64_t covered = 0;
  std::size_t visited = 0;
  while (covered < coverage_budget && visited < sections_.size()) {
    const std::uint32_t id =
        static_cast<std::uint32_t>(coverage_turn_ % sections_.size());
    ++coverage_turn_;
    ++visited;
    if (sections_[id].exhausted) continue;
    covered += draw_from_section(
        id, std::min<std::uint64_t>(options_.coverage_chunk,
                                    coverage_budget - covered),
        out);
  }

  // ---- Exploit slice: UCB over sections --------------------------------
  std::size_t consecutive_failures = 0;
  while (out.size() < n && consecutive_failures < sections_.size() + 8) {
    std::uint32_t best = 0;
    double best_score = -2.0;
    for (std::uint32_t i = 0; i < sections_.size(); ++i) {
      const double s = section_score(sections_[i]);
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    if (best_score < 0) break;  // all sections exhausted
    const std::uint64_t got = draw_from_section(
        best, std::min<std::uint64_t>(options_.chunk, n - out.size()), out);
    consecutive_failures = got == 0 ? consecutive_failures + 1 : 0;
  }
  return out;
}

void SixSense::observe(const Ipv6Addr& addr, bool active) {
  const auto it = pending_.find(addr);
  if (it == pending_.end()) return;
  if (active) {
    const std::uint32_t section_id =
        static_cast<std::uint32_t>(it->second >> 16);
    const std::uint32_t region_id =
        static_cast<std::uint32_t>(it->second & 0xFFFF);
    Section& section = sections_[section_id];
    ++section.hits;
    if (region_id == 0xFFFF) {
      ++section.pattern_hits;
    } else if (region_id < section.regions.size()) {
      ++section.regions[region_id].hits;
    }
  }
  pending_.erase(it);
}

}  // namespace v6::tga
