// 6Sense (Williams et al., USENIX Security 2024).
//
// Online reinforcement-learning generator: the upper address space is
// partitioned into network sections (announced /32s, an AS proxy), each
// holding its own low-64 pattern model (a per-section space tree). A UCB
// policy allocates the exploit share of each batch to the best sections,
// while a dedicated coverage slice round-robins across *all* sections —
// the mechanism behind 6Sense's AS-diversity behaviour. 6Sense uniquely
// integrates online dealiasing into generation: regions whose /96 tests
// as aliased are abandoned before budget is spent on them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class SixSense final : public TargetGeneratorBase {
 public:
  struct Options {
    /// Fraction of every batch dedicated to section coverage.
    double coverage_fraction = 0.25;
    double exploration = 0.08;  // section UCB coefficient (the
    // coverage slice already guarantees breadth)
    std::uint64_t chunk = 96;  // exploit chunk per section pick
    std::uint64_t coverage_chunk = 8;
    std::uint32_t max_leaf_seeds = 16;
    int max_free = 6;
    /// Size of the shared lower-64 pattern pool (the analogue of
    /// 6Sense's lower-64 generation model, learned across all sections
    /// and transferred into each).
    std::size_t pattern_pool = 4096;
  };

  SixSense() = default;
  explicit SixSense(const Options& options) : options_(options) {}

  std::string_view name() const override { return "6Sense"; }
  bool is_online() const override { return true; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;
  void observe(const v6::net::Ipv6Addr& addr, bool active) override;
  void attach_online_dealiaser(v6::dealias::OnlineDealiaser* dealiaser,
                               v6::net::ProbeType type) override;

 protected:
  void reset_model() override;

 private:
  struct Region {
    RegionCursor cursor;
    double seed_mass = 0.0;
    std::uint64_t emitted = 0;
    std::uint64_t hits = 0;
    bool dealias_checked = false;
    bool dead = false;
  };

  struct Section {
    std::uint64_t prefix_hi = 0;  // /32 key (upper 32 bits significant)
    std::vector<Region> regions;
    /// Observed /64 subnets, for the shared pattern model.
    std::vector<std::uint64_t> subnets;
    /// Per-subnet dealias verdicts for the pattern arm
    /// (0 = unchecked, 1 = clean, 2 = aliased).
    std::vector<std::uint8_t> subnet_state;
    /// Cursor into subnets x pattern pool (subnet-major per pattern).
    std::uint64_t pattern_pos = 0;
    std::uint64_t pattern_emitted = 0;
    std::uint64_t pattern_hits = 0;
    std::uint64_t emitted = 0;
    std::uint64_t hits = 0;
    bool exhausted = false;
  };

  double section_score(const Section& s) const;
  /// Emits up to `want` addresses from the best region of `section`.
  std::uint64_t draw_from_section(std::uint32_t section_id,
                                  std::uint64_t want,
                                  std::vector<v6::net::Ipv6Addr>& out);

  /// Draws up to `want` addresses from the shared-pattern arm of a
  /// section. Returns the number emitted.
  std::uint64_t draw_patterns(std::uint32_t section_id, std::uint64_t want,
                              std::vector<v6::net::Ipv6Addr>& out);

  Options options_;
  /// Lower-64 values shared by >= 2 seeds, most common first.
  std::vector<std::uint64_t> pattern_pool_;
  std::vector<Section> sections_;
  /// addr -> (section << 16 | region) for feedback routing.
  std::unordered_map<v6::net::Ipv6Addr, std::uint64_t> pending_;
  std::uint64_t total_emitted_ = 0;
  std::size_t coverage_turn_ = 0;
  v6::dealias::OnlineDealiaser* dealiaser_ = nullptr;
  v6::net::ProbeType dealias_type_ = v6::net::ProbeType::kIcmp;
};

}  // namespace v6::tga
