#include "tga/six_tree.h"

#include <algorithm>
#include <cmath>

namespace v6::tga {

using v6::net::Ipv6Addr;

void SixTree::reset_model() {
  regions_.clear();
  turn_ = 0;
  SpaceTree tree(seeds_, {.policy = SplitPolicy::kLeftmost,
                          .max_leaf_seeds = options_.max_leaf_seeds,
                          .max_free = options_.max_free});
  regions_.reserve(tree.regions().size());
  for (const TreeRegion& r : tree.regions()) {
    Region region;
    region.cursor = RegionCursor(r.base, r.free);
    region.chunk = std::max<std::uint64_t>(
        options_.min_chunk, options_.chunk_per_seed * r.seed_count);
    regions_.push_back(std::move(region));
  }
}

std::vector<Ipv6Addr> SixTree::next_batch(std::size_t n) {
  std::vector<Ipv6Addr> out;
  out.reserve(n);
  if (regions_.empty()) return out;

  std::size_t stall = 0;  // consecutive turns yielding nothing
  while (out.size() < n && stall < regions_.size() * 2) {
    Region& region = regions_[turn_ % regions_.size()];
    ++turn_;
    std::uint64_t taken = 0;
    while (taken < region.chunk && out.size() < n) {
      auto addr = region.cursor.next();
      if (!addr) {
        // Region space exhausted: widen it (expand a parent dimension),
        // as 6Tree does when a leaf is fully enumerated — but only a
        // bounded number of times, since each widening multiplies the
        // space by 16 with no feedback to detect waste.
        if (region.extensions >= options_.max_extensions ||
            !region.cursor.extend()) {
          break;
        }
        ++region.extensions;
        // End the visit: the widened (16x larger) space only receives
        // budget on later scheduling rounds, after denser regions.
        break;
      }
      if (emit(*addr, out)) ++taken;
    }
    stall = taken == 0 ? stall + 1 : 0;
  }
  return out;
}

}  // namespace v6::tga
