// 6Tree (Liu et al., Computer Networks 2019).
//
// Divisive hierarchical clustering on address nybbles from the highest
// granularity down builds a space tree; generation expands the variable
// dimensions of leaf regions, densest regions first. This implementation
// is offline (per the paper's Table 1 classification): the traversal
// order is fixed by seed density at preparation time, with weighted
// round-robin expansion so deep regions do not starve broad ones.
#pragma once

#include <vector>

#include "tga/space_tree.h"
#include "tga/target_generator.h"

namespace v6::tga {

class SixTree final : public TargetGeneratorBase {
 public:
  struct Options {
    std::uint32_t max_leaf_seeds = 16;
    int max_free = 6;
    /// Addresses taken from a region per scheduling turn, scaled by the
    /// region's seed count.
    std::uint64_t chunk_per_seed = 8;
    std::uint64_t min_chunk = 16;
    /// Times a drained region may widen (each widening multiplies the
    /// region space by 16); offline models cannot detect waste, so keep
    /// this small.
    int max_extensions = 1;
  };

  SixTree() = default;
  explicit SixTree(const Options& options) : options_(options) {}

  std::string_view name() const override { return "6Tree"; }
  std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) override;

 protected:
  void reset_model() override;

 private:
  struct Region {
    RegionCursor cursor;
    std::uint64_t chunk = 0;
    int extensions = 0;
  };

  Options options_;
  std::vector<Region> regions_;  // density order
  std::size_t turn_ = 0;         // round-robin position
};

}  // namespace v6::tga
