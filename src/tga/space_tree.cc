#include "tga/space_tree.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "tga/nybble_stats.h"

namespace v6::tga {

using v6::net::Ipv6Addr;

// ---- RegionCursor ------------------------------------------------------

RegionCursor::RegionCursor(Ipv6Addr base, std::vector<int> free_nybbles)
    : base_(base), free_(std::move(free_nybbles)) {
  std::sort(free_.begin(), free_.end());
  // Zero the free positions of the base so enumeration starts at the
  // region origin.
  for (const int pos : free_) base_ = base_.with_nybble(pos, 0);
}

std::uint64_t RegionCursor::capacity() const {
  if (free_.size() >= 16) return ~0ULL;  // effectively unbounded
  return 1ULL << (4 * free_.size());
}

std::optional<Ipv6Addr> RegionCursor::next() {
  if (counter_ >= capacity()) return std::nullopt;
  Ipv6Addr addr = base_;
  std::uint64_t c = counter_;
  // Rightmost free position spins fastest.
  for (std::size_t j = 0; j < free_.size(); ++j) {
    const int pos = free_[free_.size() - 1 - j];
    addr = addr.with_nybble(pos, static_cast<std::uint8_t>(c & 0xF));
    c >>= 4;
  }
  ++counter_;
  return addr;
}

bool RegionCursor::extend() {
  // Free the rightmost currently-fixed nybble.
  std::array<bool, Ipv6Addr::kNybbles> is_free{};
  for (const int pos : free_) is_free[static_cast<std::size_t>(pos)] = true;
  for (int pos = Ipv6Addr::kNybbles - 1; pos >= 0; --pos) {
    if (!is_free[static_cast<std::size_t>(pos)]) {
      free_.push_back(pos);
      std::sort(free_.begin(), free_.end());
      base_ = base_.with_nybble(pos, 0);
      counter_ = 0;  // restart enumeration over the enlarged space
      return true;
    }
  }
  return false;
}

// ---- RangeCursor ---------------------------------------------------------

RangeCursor::RangeCursor(Ipv6Addr base, std::vector<int> positions,
                         std::vector<std::vector<std::uint8_t>> values)
    : base_(base), positions_(std::move(positions)), values_(std::move(values)) {}

std::uint64_t RangeCursor::capacity() const {
  std::uint64_t c = 1;
  for (const auto& v : values_) {
    c *= v.size();
    if (c > (1ULL << 62)) return 1ULL << 62;
  }
  return c;
}

std::optional<Ipv6Addr> RangeCursor::next() {
  if (counter_ >= capacity()) return std::nullopt;
  Ipv6Addr addr = base_;
  std::uint64_t c = counter_;
  for (std::size_t j = 0; j < positions_.size(); ++j) {
    const std::size_t i = positions_.size() - 1 - j;  // rightmost fastest
    const auto& vals = values_[i];
    addr = addr.with_nybble(positions_[i], vals[c % vals.size()]);
    c /= vals.size();
  }
  ++counter_;
  return addr;
}

bool RangeCursor::widen() {
  // Narrowest position (rightmost on ties) gains one adjacent value.
  int best = -1;
  for (int i = static_cast<int>(values_.size()) - 1; i >= 0; --i) {
    const auto& v = values_[static_cast<std::size_t>(i)];
    if (v.size() >= 16) continue;
    if (best < 0 ||
        v.size() < values_[static_cast<std::size_t>(best)].size()) {
      best = i;
    }
  }
  if (best < 0) return false;
  auto& vals = values_[static_cast<std::size_t>(best)];
  // Prefer max+1, fall back to min-1, else the first gap.
  if (vals.back() < 15) {
    vals.push_back(static_cast<std::uint8_t>(vals.back() + 1));
  } else if (vals.front() > 0) {
    vals.insert(vals.begin(), static_cast<std::uint8_t>(vals.front() - 1));
  } else {
    for (std::uint8_t v = 0; v < 16; ++v) {
      if (!std::binary_search(vals.begin(), vals.end(), v)) {
        vals.insert(std::lower_bound(vals.begin(), vals.end(), v), v);
        break;
      }
    }
  }
  counter_ = 0;
  return true;
}

// ---- SpaceTree -----------------------------------------------------------

SpaceTree::SpaceTree(std::span<const Ipv6Addr> seeds, Options options)
    : options_(options) {
  if (seeds.empty()) return;
  std::vector<std::uint32_t> all(seeds.size());
  for (std::uint32_t i = 0; i < seeds.size(); ++i) all[i] = i;
  build(seeds, std::move(all), 0);
  std::sort(regions_.begin(), regions_.end(),
            [](const TreeRegion& a, const TreeRegion& b) {
              if (a.density != b.density) return a.density > b.density;
              return a.base < b.base;
            });
}

void SpaceTree::build(std::span<const Ipv6Addr> seeds,
                      std::vector<std::uint32_t> indices, int depth) {
  ++node_count_;

  // Split decisions on large nodes are made from a stride sample; the
  // exact statistics are recomputed if the node turns out to be a leaf.
  constexpr std::size_t kSampleCap = 4096;
  const bool sampled = indices.size() > kSampleCap;
  NybbleStats stats;
  if (sampled) {
    const std::size_t stride = indices.size() / kSampleCap;
    for (std::size_t i = 0; i < indices.size(); i += stride) {
      stats.add(seeds[indices[i]]);
    }
  } else {
    for (const std::uint32_t i : indices) stats.add(seeds[i]);
  }

  const int split =
      options_.policy == SplitPolicy::kLeftmost
          ? stats.leftmost_varying_position()
          : stats.min_entropy_position();

  const bool make_leaf = split < 0 ||
                         indices.size() <= options_.max_leaf_seeds ||
                         depth >= Ipv6Addr::kNybbles;
  if (make_leaf) {
    if (sampled) {
      stats = NybbleStats();
      for (const std::uint32_t i : indices) stats.add(seeds[i]);
    }
    TreeRegion region;
    std::vector<int> varying = stats.varying_positions();
    // Keep at most max_free dimensions; prefer the rightmost (host-side)
    // ones, which vary most in structured allocations.
    if (static_cast<int>(varying.size()) > options_.max_free) {
      varying.erase(varying.begin(),
                    varying.end() - options_.max_free);
    }
    if (varying.empty()) {
      // Identical (or single) seeds: expand around the host nybble.
      varying.push_back(Ipv6Addr::kNybbles - 1);
    }
    region.base = seeds[indices.front()];
    for (const int pos : varying) region.base = region.base.with_nybble(pos, 0);
    region.free = std::move(varying);
    region.seed_count = static_cast<std::uint32_t>(indices.size());
    // (n - 0.5) rather than n: a singleton region's density estimate is
    // discounted so true multi-seed patterns outrank lone addresses.
    region.density = (static_cast<double>(indices.size()) - 0.5) /
                     std::pow(16.0, static_cast<double>(region.free.size()));
    regions_.push_back(std::move(region));
    return;
  }

  std::array<std::vector<std::uint32_t>, 16> buckets;
  for (const std::uint32_t i : indices) {
    buckets[seeds[i].nybble(split)].push_back(i);
  }
  indices.clear();
  indices.shrink_to_fit();
  for (auto& bucket : buckets) {
    if (!bucket.empty()) build(seeds, std::move(bucket), depth + 1);
  }
}

}  // namespace v6::tga
