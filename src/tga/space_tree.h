// Space tree: the hierarchical address-space partition substrate shared
// by the tree-family TGAs (6Tree, DET, 6Scan, 6Hit, 6Graph).
//
// Seeds are split recursively on one nybble position at a time — 6Tree
// splits on the leftmost varying nybble (high granularity first), DET and
// 6Graph on the minimum-entropy varying nybble. Leaves become generation
// regions: a base pattern plus the set of free (varying) nybble
// positions, enumerated odometer-style outward from the observed seeds.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv6.h"

namespace v6::tga {

enum class SplitPolicy : std::uint8_t {
  kLeftmost,    // 6Tree-style divisive hierarchical clustering
  kMinEntropy,  // DET/6Graph-style entropy splitting
};

/// Systematic enumerator of a region's address space. The free nybble
/// positions spin like an odometer (rightmost fastest), so enumeration
/// visits ::0, ::1, ::2, ... before moving to sibling subnets — matching
/// how the tree TGAs densify low-entropy dimensions first.
class RegionCursor {
 public:
  RegionCursor() = default;
  RegionCursor(v6::net::Ipv6Addr base, std::vector<int> free_nybbles);

  /// Next address, or nullopt when the region space is exhausted.
  std::optional<v6::net::Ipv6Addr> next();

  /// Grows the region by freeing one more (currently fixed) nybble
  /// position, rightmost first. Returns false if all 32 are already free.
  bool extend();

  /// Number of addresses in the current region space.
  std::uint64_t capacity() const;

  std::uint64_t emitted() const { return counter_; }
  bool exhausted() const { return counter_ >= capacity(); }
  const std::vector<int>& free_nybbles() const { return free_; }
  const v6::net::Ipv6Addr& base() const { return base_; }

 private:
  v6::net::Ipv6Addr base_;
  std::vector<int> free_;  // ascending nybble positions
  std::uint64_t counter_ = 0;
};

/// Odometer over explicit per-position candidate value sets (a "range" in
/// 6Gen's sense), with density-preserving widening.
class RangeCursor {
 public:
  RangeCursor() = default;
  /// `positions` ascending; `values[i]` are the candidate nybble values of
  /// positions[i] (sorted, unique, non-empty).
  RangeCursor(v6::net::Ipv6Addr base, std::vector<int> positions,
              std::vector<std::vector<std::uint8_t>> values);

  std::optional<v6::net::Ipv6Addr> next();

  /// Adds one adjacent value to the narrowest position (6Gen's growth
  /// step). Returns false if every position already covers all 16 values.
  bool widen();

  std::uint64_t capacity() const;
  bool exhausted() const { return counter_ >= capacity(); }

 private:
  v6::net::Ipv6Addr base_;
  std::vector<int> positions_;
  std::vector<std::vector<std::uint8_t>> values_;
  std::uint64_t counter_ = 0;
};

/// One leaf region of the space tree.
struct TreeRegion {
  v6::net::Ipv6Addr base;   // representative seed with free nybbles zeroed
  std::vector<int> free;    // varying nybble positions (ascending)
  std::uint32_t seed_count = 0;
  double density = 0.0;     // seed_count / |region space|
};

class SpaceTree {
 public:
  struct Options {
    SplitPolicy policy = SplitPolicy::kLeftmost;
    /// Stop splitting below this many seeds.
    std::uint32_t max_leaf_seeds = 16;
    /// Cap on free dimensions per region (16^max_free addresses).
    int max_free = 6;
  };

  SpaceTree(std::span<const v6::net::Ipv6Addr> seeds, Options options);

  /// Leaf regions, ordered by descending seed density.
  std::span<const TreeRegion> regions() const { return regions_; }

  /// Total number of tree nodes created during splitting.
  std::size_t node_count() const { return node_count_; }

 private:
  void build(std::span<const v6::net::Ipv6Addr> seeds,
             std::vector<std::uint32_t> indices, int depth);

  Options options_;
  std::vector<TreeRegion> regions_;
  std::size_t node_count_ = 0;
};

}  // namespace v6::tga
