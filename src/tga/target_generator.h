// Target Generation Algorithm (TGA) interface.
//
// A TGA ingests seed addresses and produces new candidate addresses to
// probe. Offline generators derive everything from the seeds; online
// generators additionally adapt to scan feedback delivered through
// observe() between batches (paper §2.1).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "net/ipv6.h"
#include "net/rng.h"
#include "net/service.h"

namespace v6::dealias {
class OnlineDealiaser;
}

namespace v6::tga {

class TargetGenerator {
 public:
  virtual ~TargetGenerator() = default;

  /// Stable generator name as used in the paper's tables.
  virtual std::string_view name() const = 0;

  /// True if the generator adapts to scan results (online model).
  virtual bool is_online() const { return false; }

  /// Resets the generator and absorbs `seeds`. `rng_seed` makes any
  /// internal randomness deterministic.
  virtual void prepare(std::span<const v6::net::Ipv6Addr> seeds,
                       std::uint64_t rng_seed) = 0;

  /// Produces up to `n` fresh candidate addresses (never a previously
  /// returned address, never a seed). May return fewer only if the
  /// generator's model is exhausted.
  virtual std::vector<v6::net::Ipv6Addr> next_batch(std::size_t n) = 0;

  /// Scan feedback for one generated address. No-op for offline models.
  virtual void observe(const v6::net::Ipv6Addr& addr, bool active) {
    (void)addr;
    (void)active;
  }

  /// Folds newly learned seeds into an already-prepared model without a
  /// full retrain, keeping accumulated state (emitted set, scan
  /// feedback) intact. Returns false when the model cannot ingest a
  /// delta — the default for generators whose structures are derived
  /// once from the complete seed set — in which case the caller must
  /// fall back to prepare() with the merged seed list.
  virtual bool absorb_seeds(std::span<const v6::net::Ipv6Addr> added) {
    (void)added;
    return false;
  }

  /// Generators with integrated online dealiasing (6Sense) borrow the
  /// pipeline's dealiaser to steer away from aliased regions while
  /// generating. Default: ignored.
  virtual void attach_online_dealiaser(v6::dealias::OnlineDealiaser* dealiaser,
                                       v6::net::ProbeType type) {
    (void)dealiaser;
    (void)type;
  }
};

/// Common bookkeeping shared by all concrete generators: the seed set,
/// the set of already-emitted addresses (a generator never repeats
/// itself), and a deterministic RNG.
class TargetGeneratorBase : public TargetGenerator {
 public:
  void prepare(std::span<const v6::net::Ipv6Addr> seeds,
               std::uint64_t rng_seed) final {
    seeds_.assign(seeds.begin(), seeds.end());
    seed_set_.clear();
    seed_set_.reserve(seeds.size() * 2);
    for (const v6::net::Ipv6Addr& s : seeds_) seed_set_.insert(s);
    emitted_.clear();
    rng_ = v6::net::make_rng(rng_seed, v6::net::splitmix64(name().size()));
    reset_model();
  }

 protected:
  /// Build the generator-specific model from seeds_ (already populated).
  virtual void reset_model() = 0;

  /// Merges `added` into seeds_/seed_set_, skipping duplicates. Returns
  /// how many were genuinely new. Building block for absorb_seeds
  /// overrides; never touches emitted_ or the RNG, so accumulated
  /// generator state survives the delta.
  std::size_t register_seeds(std::span<const v6::net::Ipv6Addr> added) {
    std::size_t fresh = 0;
    for (const v6::net::Ipv6Addr& addr : added) {
      if (seed_set_.insert(addr).second) {
        seeds_.push_back(addr);
        ++fresh;
      }
    }
    return fresh;
  }

  /// Appends `addr` to `out` if it is neither a seed nor already emitted.
  /// Returns true if appended.
  bool emit(const v6::net::Ipv6Addr& addr,
            std::vector<v6::net::Ipv6Addr>& out) {
    if (seed_set_.contains(addr)) return false;
    if (!emitted_.insert(addr).second) return false;
    out.push_back(addr);
    return true;
  }

  std::vector<v6::net::Ipv6Addr> seeds_;
  std::unordered_set<v6::net::Ipv6Addr> seed_set_;
  std::unordered_set<v6::net::Ipv6Addr> emitted_;
  v6::net::Rng rng_;
};

}  // namespace v6::tga
