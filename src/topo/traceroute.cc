#include "topo/traceroute.h"

#include <algorithm>

namespace v6::topo {

using v6::net::Ipv6Addr;
using v6::net::Rng;
using v6::simnet::HostKind;

const std::vector<std::uint32_t> TracerouteEngine::kEmpty;

namespace {

double addr_unit(const Ipv6Addr& addr) {
  const std::uint64_t h =
      v6::net::splitmix64(addr.hi() ^ v6::net::splitmix64(addr.lo()));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

TracerouteEngine::TracerouteEngine(const v6::simnet::Universe& universe,
                                   std::uint64_t seed)
    : universe_(&universe), seed_(seed) {
  // Index router interfaces per AS (streaming: same order and content
  // on materialized and procedural universes).
  universe.for_each_host([this](const v6::simnet::HostRecord& host) {
    if (host.kind == HostKind::kRouter && host.historic_services != 0) {
      routers_[host.asn].push_back(host.addr);
    }
  });
  // Transit pool: ASes with several routers act as providers.  Both
  // loops feed transit_pool_, which is sorted (ASNs are unique keys)
  // before anyone reads it, so hash order cannot escape.
  // v6lint: allow(unordered-iteration)
  for (const auto& [asn, addrs] : routers_) {
    if (addrs.size() >= 3) transit_pool_.push_back(asn);
  }
  std::sort(transit_pool_.begin(), transit_pool_.end());
  if (transit_pool_.empty()) {
    // v6lint: allow(unordered-iteration)
    for (const auto& [asn, addrs] : routers_) transit_pool_.push_back(asn);
    std::sort(transit_pool_.begin(), transit_pool_.end());
  }

  // Synthesize 1-3 upstream providers per AS, deterministically.
  for (const auto& info : universe.asdb().all()) {
    Rng rng = v6::net::make_rng(seed, 0x109 ^ info.asn);
    const int n = transit_pool_.empty()
                      ? 0
                      : v6::net::uniform_int(rng, 1, 3);
    std::vector<std::uint32_t> ups;
    for (int i = 0; i < n; ++i) {
      const std::uint32_t provider = transit_pool_[v6::net::uniform_int<
          std::size_t>(rng, 0, transit_pool_.size() - 1)];
      if (provider != info.asn &&
          std::find(ups.begin(), ups.end(), provider) == ups.end()) {
        ups.push_back(provider);
      }
    }
    upstreams_.emplace(info.asn, std::move(ups));
  }
}

const std::vector<std::uint32_t>& TracerouteEngine::upstreams(
    std::uint32_t asn) const {
  const auto it = upstreams_.find(asn);
  return it == upstreams_.end() ? kEmpty : it->second;
}

std::vector<Ipv6Addr> TracerouteEngine::visible_routers(
    std::uint32_t asn, const VantageProfile& vantage) const {
  std::vector<Ipv6Addr> out;
  const auto it = routers_.find(asn);
  if (it == routers_.end()) return out;
  for (const Ipv6Addr& addr : it->second) {
    const double u = addr_unit(addr);
    if (u >= vantage.band_lo && u < vantage.band_hi) out.push_back(addr);
  }
  return out;
}

std::vector<TraceHop> TracerouteEngine::trace(const Ipv6Addr& target,
                                              const VantageProfile& vantage) {
  std::vector<TraceHop> path;
  const auto dest_asn = universe_->asn_of(target);
  if (!dest_asn) return path;

  Rng rng = v6::net::make_rng(
      seed_, v6::net::splitmix64(target.hi() ^ target.lo()) ^ 0x7124CE);
  int ttl = 1;

  auto push_from_as = [&](std::uint32_t asn, int max_hops) {
    const auto visible = visible_routers(asn, vantage);
    if (visible.empty()) return;
    const int hops =
        std::min<int>(max_hops, v6::net::uniform_int(rng, 1, 2));
    for (int h = 0; h < hops; ++h) {
      ++probes_;
      TraceHop hop;
      hop.addr = visible[v6::net::uniform_int<std::size_t>(
          rng, 0, visible.size() - 1)];
      hop.asn = asn;
      hop.ttl = ttl++;
      hop.responded = v6::net::chance(rng, vantage.hop_response_prob);
      path.push_back(hop);
    }
  };

  // Provider chain: up to two levels of upstreams, then the destination.
  const auto& ups = upstreams(*dest_asn);
  if (!ups.empty()) {
    const std::uint32_t first =
        ups[v6::net::uniform_int<std::size_t>(rng, 0, ups.size() - 1)];
    const auto& grand = upstreams(first);
    if (!grand.empty()) {
      push_from_as(grand[v6::net::uniform_int<std::size_t>(
                       rng, 0, grand.size() - 1)],
                   2);
    }
    push_from_as(first, 2);
  }
  push_from_as(*dest_asn, 2);
  return path;
}

std::vector<Ipv6Addr> TracerouteEngine::campaign(std::size_t num_targets,
                                                 const VantageProfile& vantage,
                                                 std::uint64_t campaign_tag) {
  std::vector<Ipv6Addr> out;
  std::unordered_map<Ipv6Addr, bool, v6::net::Ipv6AddrHash> seen;
  Rng rng = v6::net::make_rng(seed_, 0xCA4 ^ campaign_tag);
  const auto& announcements = universe_->routes().announcements();
  if (announcements.empty()) return out;

  for (std::size_t i = 0; i < num_targets; ++i) {
    const auto& [prefix, asn] = announcements[v6::net::uniform_int<
        std::size_t>(rng, 0, announcements.size() - 1)];
    const Ipv6Addr target = v6::net::random_in_prefix(rng, prefix);
    for (const TraceHop& hop : trace(target, vantage)) {
      if (!hop.responded) continue;
      if (seen.emplace(hop.addr, true).second) {
        out.push_back(hop.addr);
      }
    }
  }
  return out;
}

}  // namespace v6::topo
