// Simulated traceroute: the topology-discovery substrate behind the
// Scamper (CAIDA Ark) and RIPE Atlas seed sources.
//
// The universe has no explicit link graph, so one is synthesized
// deterministically: every AS gets 1-3 upstream providers (hash-derived,
// biased toward large transit-ish ASes), and a trace toward a target
// walks transit routers down to the destination AS's infrastructure
// routers. Distinct vantage points expose different router interfaces —
// the reason Scamper and RIPE Atlas overlap so little in the paper's
// Figure 1 — modeled as a hash band over interface addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv6.h"
#include "net/rng.h"
#include "simnet/universe.h"

namespace v6::topo {

struct TraceHop {
  v6::net::Ipv6Addr addr;
  std::uint32_t asn = 0;
  int ttl = 0;
  /// False when the hop dropped the TTL-exceeded reply (anonymous hop).
  bool responded = true;
};

struct VantageProfile {
  /// Interface hash band visible from this vantage set.
  double band_lo = 0.0;
  double band_hi = 1.0;
  /// Probability an on-path router answers with TTL-exceeded.
  double hop_response_prob = 0.85;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const v6::simnet::Universe& universe, std::uint64_t seed);

  /// Traces toward `target`; hop interfaces are drawn from the synthetic
  /// provider chain plus the destination AS. Deterministic per
  /// (engine seed, target, vantage).
  std::vector<TraceHop> trace(const v6::net::Ipv6Addr& target,
                              const VantageProfile& vantage);

  /// Runs a campaign: traces toward `num_targets` addresses spread over
  /// announced space and returns the unique responding interfaces
  /// (historically active routers; includes since-churned ones, as a
  /// real archive would).
  std::vector<v6::net::Ipv6Addr> campaign(std::size_t num_targets,
                                          const VantageProfile& vantage,
                                          std::uint64_t campaign_tag);

  /// The synthesized upstream providers of `asn`.
  const std::vector<std::uint32_t>& upstreams(std::uint32_t asn) const;

  std::uint64_t probes_sent() const { return probes_; }

 private:
  /// Routers of one AS whose interface hash lies inside the vantage band.
  std::vector<v6::net::Ipv6Addr> visible_routers(std::uint32_t asn,
                                                 const VantageProfile& vantage)
      const;

  const v6::simnet::Universe* universe_;
  std::uint64_t seed_;
  std::uint64_t probes_ = 0;
  /// asn -> interface addresses of its (historically active) routers.
  /// Addresses, not indices: there is no materialized host table to
  /// index into on a procedural universe.
  std::unordered_map<std::uint32_t, std::vector<v6::net::Ipv6Addr>> routers_;
  /// asn -> upstream provider ASNs.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> upstreams_;
  /// Transit-capable ASNs (provider pool).
  std::vector<std::uint32_t> transit_pool_;
  static const std::vector<std::uint32_t> kEmpty;
};

}  // namespace v6::topo
