#include <gtest/gtest.h>

#include "asdb/as_database.h"
#include "asdb/routing_table.h"

namespace v6::asdb {
namespace {

TEST(AsDatabase, AddAndFind) {
  AsDatabase db;
  db.add({.asn = 100, .name = "net-a", .org_type = OrgType::kIsp,
          .region = Region::kEurope});
  db.add({.asn = 200, .name = "net-b", .org_type = OrgType::kCloud,
          .region = Region::kAsia});
  ASSERT_NE(db.find(100), nullptr);
  EXPECT_EQ(db.find(100)->name, "net-a");
  EXPECT_EQ(db.find(200)->org_type, OrgType::kCloud);
  EXPECT_EQ(db.find(300), nullptr);
  EXPECT_EQ(db.size(), 2u);
}

TEST(AsDatabase, AddOverwritesExisting) {
  AsDatabase db;
  db.add({.asn = 100, .name = "old"});
  db.add({.asn = 100, .name = "new"});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find(100)->name, "new");
}

TEST(AsDatabase, OrgTypeNames) {
  EXPECT_EQ(to_string(OrgType::kIsp), "ISP");
  EXPECT_EQ(to_string(OrgType::kCdn), "CDN");
  EXPECT_EQ(to_string(OrgType::kSatellite), "Satellite");
}

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable table;
  table.announce(v6::net::Prefix::must_parse("2001:db8::/32"), 100);
  table.announce(v6::net::Prefix::must_parse("2001:db8:1::/48"), 200);

  EXPECT_EQ(table.asn_of(v6::net::Ipv6Addr::must_parse("2001:db8::1")), 100u);
  EXPECT_EQ(table.asn_of(v6::net::Ipv6Addr::must_parse("2001:db8:1::1")),
            200u);
  EXPECT_FALSE(
      table.asn_of(v6::net::Ipv6Addr::must_parse("2a00::1")).has_value());
}

TEST(RoutingTable, AnnouncementsRecorded) {
  RoutingTable table;
  table.announce(v6::net::Prefix::must_parse("2001:db8::/32"), 100);
  table.announce(v6::net::Prefix::must_parse("2600::/12"), 300);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.announcements().size(), 2u);
  EXPECT_EQ(table.announcements()[1].second, 300u);
}

}  // namespace
}  // namespace v6::asdb
