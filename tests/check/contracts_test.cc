// Tests for the contracts layer (src/check/contracts.h). The suite is
// built in every preset: under the sanitizer presets V6_CONTRACTS is
// defined and the death tests check the abort path and diagnostic text;
// in the default build the macros must compile to nothing and must not
// evaluate their conditions.
#include "check/contracts.h"

#include <gtest/gtest.h>

#include "obs/obs_assert.h"

namespace {

TEST(Contracts, PassingChecksAreSilent) {
  V6_REQUIRE(1 + 1 == 2);
  V6_REQUIRE_MSG(true, "fine");
  V6_ENSURE(2 > 1);
  V6_ENSURE_MSG(true, "fine");
  V6_INVARIANT(true);
  V6_INVARIANT_MSG(true, "fine");
  V6_OBS_ASSERT(true, "fine");
  SUCCEED();
}

#if defined(V6_CONTRACTS)

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, RequireAbortsWithKindFileAndExpression) {
  EXPECT_DEATH(V6_REQUIRE(1 == 2),
               "precondition violated at .*contracts_test\\.cc.*1 == 2");
}

TEST(ContractsDeathTest, MessageFormsIncludeTheMessage) {
  EXPECT_DEATH(V6_REQUIRE_MSG(false, "needs p0 < p1"), "needs p0 < p1");
  EXPECT_DEATH(V6_ENSURE_MSG(false, "result out of range"),
               "postcondition.*result out of range");
  EXPECT_DEATH(V6_INVARIANT_MSG(false, "heap corrupt"),
               "invariant.*heap corrupt");
}

TEST(ContractsDeathTest, ObsAssertRoutesThroughContracts) {
  // With V6_CONTRACTS on, V6_OBS_ASSERT is an invariant check.
  EXPECT_DEATH(V6_OBS_ASSERT(false, "span stack underflow"),
               "invariant.*span stack underflow");
}

#else

TEST(Contracts, DisabledChecksDoNotEvaluateConditions) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return false;
  };
  V6_REQUIRE(touch());
  V6_REQUIRE_MSG(touch(), "ignored");
  V6_ENSURE(touch());
  V6_ENSURE_MSG(touch(), "ignored");
  V6_INVARIANT(touch());
  V6_INVARIANT_MSG(touch(), "ignored");
  (void)touch;
  EXPECT_EQ(evaluations, 0);
}

#endif

}  // namespace
