// Tests for the unified config validation layer (src/check/validate.h)
// and the validate() implementations it backs: PipelineConfig,
// SweepSpec / ScanSession, StreamScanOptions, and ServiceConfig all
// fail with the same ConfigError shape —
//
//   <ConfigName>.<field>: <constraint>
//
// — whichever entry point first sees the bad config. The throwing path
// is exercised in every build; the sanitizer presets (V6_CONTRACTS)
// additionally death-test validation reached from a noexcept frame,
// where the uniform message must survive into the terminate
// diagnostics.
#include "check/validate.h"

#include <gtest/gtest.h>

#include <string>

#include "experiment/pipeline.h"
#include "experiment/runner.h"
#include "experiment/session.h"
#include "probe/stream_scanner.h"
#include "service/hitlist_service.h"
#include "testutil/fixtures.h"

namespace {

using v6::check::ConfigError;

/// Runs `fn` and returns the ConfigError message it throws; fails the
/// test if it doesn't throw.
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const ConfigError& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected a ConfigError";
  return {};
}

TEST(Validator, MessageIsNameFieldConstraint) {
  const v6::check::Validator v("Demo");
  EXPECT_EQ(error_message([&] { v.require(false, "field", "must hold"); }),
            "Demo.field: must hold");
  EXPECT_EQ(error_message([&] { v.positive(0, "count"); }),
            "Demo.count: must be > 0");
  EXPECT_EQ(error_message([&] { v.non_negative(-1.0, "delay"); }),
            "Demo.delay: must be >= 0");
  EXPECT_EQ(error_message([&] { v.unit_interval(1.5, "prob"); }),
            "Demo.prob: must be in [0, 1]");
  const int* null = nullptr;
  EXPECT_EQ(error_message([&] { v.not_null(null, "ptr"); }),
            "Demo.ptr: is required (must not be null)");
  // Passing checks are silent.
  v.require(true, "field", "must hold");
  v.positive(1, "count");
}

TEST(Validator, ConfigErrorIsAnInvalidArgument) {
  // Pre-existing catch sites for std::invalid_argument keep working.
  EXPECT_THROW(v6::check::Validator("X").positive(0, "n"),
               std::invalid_argument);
}

TEST(ConfigValidation, PipelineConfigRejectsBadFields) {
  EXPECT_EQ(error_message([] {
              v6::experiment::PipelineConfig{}.with_budget(0).validate();
            }),
            "PipelineConfig.budget: must be > 0");
  EXPECT_EQ(error_message([] {
              auto config = v6::experiment::PipelineConfig{};
              config.retry_jitter = 2.0;
              config.validate();
            }),
            "PipelineConfig.retry_jitter: must be in [0, 1]");
  v6::experiment::PipelineConfig{}.validate();  // defaults are valid
}

TEST(ConfigValidation, SweepSpecRejectsNullWiring) {
  v6::experiment::SweepSpec spec;
  EXPECT_EQ(error_message([&] { spec.validate(); }),
            "SweepSpec.universe: is required (must not be null)");
}

TEST(ConfigValidation, ScanSessionSweepValidatesItsConfig) {
  const auto& universe = v6::testutil::small_universe();
  const v6::dealias::AliasList aliases;
  EXPECT_EQ(error_message([&] {
              v6::experiment::ScanSession(universe, aliases)
                  .with_config(v6::experiment::PipelineConfig{}.with_budget(0))
                  .sweep();
            }),
            "PipelineConfig.budget: must be > 0");
}

TEST(ConfigValidation, StreamScanOptionsRejectsBadFields) {
  EXPECT_EQ(error_message([] {
              v6::probe::StreamScanOptions{}.with_shards(0).validate();
            }),
            "StreamScanOptions.shards: must be > 0");
  EXPECT_EQ(error_message([] {
              auto options = v6::probe::StreamScanOptions{};
              options.scan.adaptive_prefix_len = 0;
              options.validate();
            }),
            "StreamScanOptions.scan.adaptive_prefix_len: must be in [1, 128]");
  v6::probe::StreamScanOptions{}.validate();
}

TEST(ConfigValidation, ServiceConfigRejectsBadFields) {
  EXPECT_EQ(error_message([] {
              v6::service::ServiceConfig{}.with_budget(0).validate();
            }),
            "ServiceConfig.budget_per_cycle: must be > 0");
  // 0.2 x 8 TGAs = 160% of the budget: floors alone overcommit.
  EXPECT_EQ(error_message([] {
              v6::service::ServiceConfig{}.with_explore_floor(0.2).validate();
            }),
            "ServiceConfig.explore_floor: must leave a non-negative shared "
            "remainder");
  v6::service::ServiceConfig{}.validate();
}

#if defined(V6_CONTRACTS)

using ValidateDeathTest = ::testing::Test;

// Validation reached from a noexcept frame cannot unwind; the process
// must terminate, and the uniform message must still be visible in the
// diagnostics so the failure is debuggable post-mortem.
TEST(ValidateDeathTest, NoexceptFrameTerminatesWithTheUniformMessage) {
  const auto doomed = []() noexcept {
    v6::experiment::PipelineConfig{}.with_budget(0).validate();
  };
  EXPECT_DEATH(doomed(), "PipelineConfig.budget: must be > 0");
}

#endif  // V6_CONTRACTS

}  // namespace
