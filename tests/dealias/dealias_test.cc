#include <gtest/gtest.h>

#include "dealias/alias_list.h"
#include "dealias/dealiaser.h"
#include "dealias/online_dealiaser.h"
#include "net/rng.h"
#include "probe/transport.h"
#include "testutil/fixtures.h"

namespace v6::dealias {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;
using v6::testutil::small_universe;

TEST(AliasList, LoadAndContains) {
  AliasList list;
  EXPECT_EQ(list.load("2001:db8::/64\n# comment\n2600:9000:2000::/48\n"),
            2u);
  EXPECT_TRUE(list.contains(Ipv6Addr::must_parse("2001:db8::dead")));
  EXPECT_TRUE(list.contains(Ipv6Addr::must_parse("2600:9000:2000:1::2")));
  EXPECT_FALSE(list.contains(Ipv6Addr::must_parse("2600:9000:3000::1")));
}

TEST(AliasList, PublishedFromUniverseCoversOnlyPublishedRegions) {
  const auto& universe = small_universe();
  const AliasList list = AliasList::published_from(universe);
  std::size_t published = 0;
  for (const auto& region : universe.alias_regions()) {
    if (region.published) {
      ++published;
      EXPECT_TRUE(list.contains(region.prefix.addr()));
    }
  }
  EXPECT_EQ(list.size(), published);
  EXPECT_GT(published, 0u);
}

class OnlineDealiaserTest : public ::testing::Test {
 protected:
  OnlineDealiaserTest()
      : transport_(small_universe(), 99), dealiaser_(transport_, 99) {}

  const v6::simnet::AliasRegion* find_region(bool rate_limited) {
    for (const auto& region : small_universe().alias_regions()) {
      if (region.rate_limited == rate_limited &&
          v6::net::has_service(region.services, ProbeType::kIcmp)) {
        return &region;
      }
    }
    return nullptr;
  }

  v6::probe::SimTransport transport_;
  OnlineDealiaser dealiaser_;
};

TEST_F(OnlineDealiaserTest, DetectsResponsiveAliasRegion) {
  const auto* region = find_region(/*rate_limited=*/false);
  ASSERT_NE(region, nullptr);
  v6::net::Rng rng(1);
  const Ipv6Addr addr = v6::net::random_in_prefix(rng, region->prefix);
  EXPECT_TRUE(dealiaser_.is_aliased(addr, ProbeType::kIcmp));
  EXPECT_EQ(dealiaser_.aliases_found(), 1u);
}

TEST_F(OnlineDealiaserTest, SparseSpaceIsNotAliased) {
  // A regular host's /96 contains (at most) a handful of hosts; three
  // random probes into 2^32 addresses will miss them.
  const auto hosts = small_universe().hosts();
  int tested = 0;
  for (const auto& host : hosts) {
    if (small_universe().is_aliased(host.addr)) continue;
    EXPECT_FALSE(dealiaser_.is_aliased(host.addr, ProbeType::kIcmp))
        << host.addr.to_string();
    if (++tested >= 50) break;
  }
  EXPECT_GT(tested, 0);
}

TEST_F(OnlineDealiaserTest, VerdictsAreCached) {
  const auto* region = find_region(/*rate_limited=*/false);
  ASSERT_NE(region, nullptr);
  v6::net::Rng rng(2);
  const Ipv6Addr a = v6::net::random_in_prefix(rng, region->prefix);
  // Two addresses in the same /96.
  const Ipv6Addr b(a.hi(), a.lo() ^ 1);
  ASSERT_EQ(a.masked(96), b.masked(96));

  EXPECT_TRUE(dealiaser_.is_aliased(a, ProbeType::kIcmp));
  const std::uint64_t probes_after_first = dealiaser_.probes_sent();
  EXPECT_TRUE(dealiaser_.is_aliased(b, ProbeType::kIcmp));
  EXPECT_EQ(dealiaser_.probes_sent(), probes_after_first);
  EXPECT_EQ(dealiaser_.prefixes_tested(), 1u);
  EXPECT_TRUE(dealiaser_.cached_verdict(a).has_value());
  EXPECT_TRUE(*dealiaser_.cached_verdict(a));
}

TEST_F(OnlineDealiaserTest, CachedVerdictAbsentBeforeProbing) {
  EXPECT_FALSE(dealiaser_
                   .cached_verdict(Ipv6Addr::must_parse("2001:db8::1"))
                   .has_value());
}

TEST_F(OnlineDealiaserTest, RateLimitedRegionsOftenEvade) {
  // The paper's key failure mode: rate-limited aliased regions drop most
  // dealiasing probes and frequently test as non-aliased.
  const auto& universe = small_universe();
  v6::net::Rng rng(3);
  int evaded = 0;
  int tested = 0;
  for (const auto& region : universe.alias_regions()) {
    if (!region.rate_limited ||
        !v6::net::has_service(region.services, ProbeType::kIcmp)) {
      continue;
    }
    // Each region: fresh dealiaser to avoid cache interference.
    v6::probe::SimTransport transport(universe, 1000 + tested);
    OnlineDealiaser dealiaser(transport, 1000 + tested);
    const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
    if (!dealiaser.is_aliased(addr, ProbeType::kIcmp)) ++evaded;
    ++tested;
  }
  ASSERT_GT(tested, 0);
  EXPECT_GT(evaded, 0) << "rate-limited aliases should sometimes evade "
                          "online dealiasing";
}

TEST(Dealiaser, ModeNoneNeverFlags) {
  Dealiaser dealiaser(DealiasMode::kNone, nullptr, nullptr);
  EXPECT_FALSE(dealiaser.is_aliased(Ipv6Addr::must_parse("2001:db8::1"),
                                    ProbeType::kIcmp));
}

TEST(Dealiaser, OfflineModeUsesListOnly) {
  AliasList list;
  list.load("2001:db8::/64\n");
  Dealiaser dealiaser(DealiasMode::kOffline, &list, nullptr);
  EXPECT_TRUE(dealiaser.is_aliased(Ipv6Addr::must_parse("2001:db8::1"),
                                   ProbeType::kIcmp));
  EXPECT_FALSE(dealiaser.is_aliased(Ipv6Addr::must_parse("2001:db9::1"),
                                    ProbeType::kIcmp));
}

TEST(Dealiaser, JointCatchesUnpublishedAliases) {
  const auto& universe = small_universe();
  const AliasList published = AliasList::published_from(universe);
  v6::probe::SimTransport transport(universe, 55);
  OnlineDealiaser online(transport, 55);
  Dealiaser joint(DealiasMode::kJoint, &published, &online);

  v6::net::Rng rng(4);
  int unpublished_caught = 0;
  int unpublished_total = 0;
  for (const auto& region : universe.alias_regions()) {
    if (region.published || region.rate_limited) continue;
    ++unpublished_total;
    const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
    if (joint.is_aliased(addr, ProbeType::kIcmp)) ++unpublished_caught;
  }
  ASSERT_GT(unpublished_total, 0);
  EXPECT_EQ(unpublished_caught, unpublished_total);
}

TEST(Dealiaser, OfflineCheckAvoidsProbes) {
  const auto& universe = small_universe();
  const AliasList published = AliasList::published_from(universe);
  v6::probe::SimTransport transport(universe, 56);
  OnlineDealiaser online(transport, 56);
  Dealiaser joint(DealiasMode::kJoint, &published, &online);

  // A published region must be flagged without a single packet.
  const v6::simnet::AliasRegion* published_region = nullptr;
  for (const auto& region : universe.alias_regions()) {
    if (region.published) {
      published_region = &region;
      break;
    }
  }
  ASSERT_NE(published_region, nullptr);
  EXPECT_TRUE(joint.is_aliased(published_region->prefix.addr(),
                               ProbeType::kIcmp));
  EXPECT_EQ(transport.packets_sent(), 0u);
}

TEST(Dealiaser, FilterRemovesAliasedAddresses) {
  AliasList list;
  list.load("2001:db8::/64\n");
  Dealiaser dealiaser(DealiasMode::kOffline, &list, nullptr);
  const std::vector<Ipv6Addr> addrs = {
      Ipv6Addr::must_parse("2001:db8::1"),
      Ipv6Addr::must_parse("2001:db9::1"),
      Ipv6Addr::must_parse("2001:db8::2"),
  };
  const auto kept = dealiaser.filter(addrs, ProbeType::kIcmp);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], Ipv6Addr::must_parse("2001:db9::1"));
}

TEST(DealiasMode, Names) {
  EXPECT_EQ(to_string(DealiasMode::kNone), "none");
  EXPECT_EQ(to_string(DealiasMode::kJoint), "joint");
}

}  // namespace
}  // namespace v6::dealias
