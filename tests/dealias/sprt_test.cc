#include "dealias/sprt_dealiaser.h"

#include <gtest/gtest.h>

#include "dealias/online_dealiaser.h"

#include "net/rng.h"
#include "probe/transport.h"
#include "testutil/fixtures.h"

namespace v6::dealias {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;
using v6::testutil::small_universe;

TEST(SprtDealiaser, DetectsPlainAliasRegions) {
  v6::probe::SimTransport transport(small_universe(), 11);
  SprtDealiaser dealiaser(transport, 11);
  v6::net::Rng rng(1);
  int tested = 0;
  for (const auto& region : small_universe().alias_regions()) {
    if (region.rate_limited ||
        !v6::net::has_service(region.services, ProbeType::kIcmp)) {
      continue;
    }
    const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
    EXPECT_TRUE(dealiaser.is_aliased(addr, ProbeType::kIcmp))
        << region.prefix.to_string();
    if (++tested >= 20) break;
  }
  EXPECT_GT(tested, 0);
}

TEST(SprtDealiaser, CleanSpaceNotFlagged) {
  v6::probe::SimTransport transport(small_universe(), 12);
  SprtDealiaser dealiaser(transport, 12);
  int tested = 0;
  for (const auto& host : small_universe().hosts()) {
    if (small_universe().is_aliased(host.addr)) continue;
    EXPECT_FALSE(dealiaser.is_aliased(host.addr, ProbeType::kIcmp))
        << host.addr.to_string();
    if (++tested >= 100) break;
  }
}

TEST(SprtDealiaser, AdaptiveCostCheapOnObviousAliases) {
  // An always-responsive region should be decided in only a couple of
  // probes; clean space takes more (the cost of the low-alpha target).
  v6::probe::SimTransport transport(small_universe(), 13);
  SprtDealiaser dealiaser(transport, 13);
  v6::net::Rng rng(2);
  const v6::simnet::AliasRegion* plain = nullptr;
  for (const auto& region : small_universe().alias_regions()) {
    if (!region.rate_limited &&
        v6::net::has_service(region.services, ProbeType::kIcmp)) {
      plain = &region;
      break;
    }
  }
  ASSERT_NE(plain, nullptr);
  dealiaser.is_aliased(v6::net::random_in_prefix(rng, plain->prefix),
                       ProbeType::kIcmp);
  EXPECT_LE(dealiaser.probes_sent(), 4u);
}

TEST(SprtDealiaser, VerdictsCachedPerPrefix) {
  v6::probe::SimTransport transport(small_universe(), 14);
  SprtDealiaser dealiaser(transport, 14);
  const Ipv6Addr a = small_universe().hosts()[0].addr;
  const Ipv6Addr b(a.hi(), a.lo() ^ 1);
  dealiaser.is_aliased(a, ProbeType::kIcmp);
  const std::uint64_t probes = dealiaser.probes_sent();
  dealiaser.is_aliased(b, ProbeType::kIcmp);
  EXPECT_EQ(dealiaser.probes_sent(), probes);
  EXPECT_EQ(dealiaser.prefixes_tested(), 1u);
}

TEST(SprtDealiaser, BeatsFixedDesignOnRateLimitedRegions) {
  // The design goal: higher detection of rate-limited aliases than the
  // fixed 3-probe/threshold-2 method, at no false positives.
  const auto& universe = small_universe();
  int sprt_detect = 0;
  int fixed_detect = 0;
  int total = 0;
  v6::net::Rng rng(3);
  for (const auto& region : universe.alias_regions()) {
    if (!region.rate_limited ||
        !v6::net::has_service(region.services, ProbeType::kIcmp)) {
      continue;
    }
    ++total;
    const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
    {
      v6::probe::SimTransport transport(universe, 100 + total);
      SprtDealiaser sprt(transport, 100 + total);
      sprt_detect += sprt.is_aliased(addr, ProbeType::kIcmp);
    }
    {
      v6::probe::SimTransport transport(universe, 100 + total);
      OnlineDealiaser fixed(transport, 100 + total);
      fixed_detect += fixed.is_aliased(addr, ProbeType::kIcmp);
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(sprt_detect, fixed_detect);
}

}  // namespace
}  // namespace v6::dealias
