#include <gtest/gtest.h>

#include <unordered_set>

#include "dns/domain_lists.h"
#include "dns/resolver.h"
#include "dns/zone_db.h"
#include "testutil/fixtures.h"

namespace v6::dns {
namespace {

using v6::net::Ipv6Addr;
using v6::testutil::small_universe;

const ZoneDb& test_zone() {
  static const ZoneDb zone = ZoneDb::build(small_universe(), {.seed = 42});
  return zone;
}

TEST(ZoneDb, BuildsRecordsForNamedHosts) {
  const ZoneDb& zone = test_zone();
  EXPECT_GT(zone.size(), 1000u);
  for (const DomainRecord& record : zone.records()) {
    EXPECT_FALSE(record.name.empty());
    EXPECT_FALSE(record.aaaa.empty()) << record.name;
  }
}

TEST(ZoneDb, Deterministic) {
  const ZoneDb a = ZoneDb::build(small_universe(), {.seed = 7});
  const ZoneDb b = ZoneDb::build(small_universe(), {.seed = 7});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].name, b.records()[i].name);
    EXPECT_EQ(a.records()[i].aaaa, b.records()[i].aaaa);
  }
}

TEST(ZoneDb, FindByName) {
  const ZoneDb& zone = test_zone();
  const DomainRecord& first = zone.records()[0];
  const DomainRecord* found = zone.find(first.name);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->aaaa, first.aaaa);
  EXPECT_EQ(zone.find("definitely-not-a-name.example"), nullptr);
}

TEST(ZoneDb, RanksAreUniqueAndContiguous) {
  const ZoneDb& zone = test_zone();
  std::unordered_set<std::uint32_t> ranks;
  for (const std::uint32_t id : zone.ranked()) {
    const std::uint32_t rank = zone.records()[id].rank;
    EXPECT_GT(rank, 0u);
    EXPECT_TRUE(ranks.insert(rank).second);
  }
  EXPECT_FALSE(zone.ranked().empty());
}

TEST(ZoneDb, MostRecordsPointAtRealHosts) {
  const ZoneDb& zone = test_zone();
  std::size_t resolved_to_host = 0;
  std::size_t total = 0;
  for (const DomainRecord& record : zone.records()) {
    for (const Ipv6Addr& a : record.aaaa) {
      ++total;
      if (small_universe().host(a) != nullptr ||
          small_universe().is_aliased(a)) {
        ++resolved_to_host;
      }
    }
  }
  EXPECT_GT(static_cast<double>(resolved_to_host) /
                static_cast<double>(total),
            0.85);
}

TEST(Resolver, ResolvesZoneNames) {
  Resolver resolver(test_zone(), {.seed = 1, .timeout_prob = 0.0,
                                  .servfail_prob = 0.0, .no_aaaa_prob = 0.0});
  const DomainRecord& record = test_zone().records()[0];
  const Resolution r = resolver.resolve(record.name);
  EXPECT_EQ(r.rcode, RCode::kNoError);
  EXPECT_EQ(r.aaaa, record.aaaa);
}

TEST(Resolver, NxDomainForUnknownNames) {
  Resolver resolver(test_zone(), {.seed = 1, .timeout_prob = 0.0,
                                  .servfail_prob = 0.0});
  EXPECT_EQ(resolver.resolve("nope.example").rcode, RCode::kNxDomain);
  EXPECT_TRUE(resolver.resolve("nope.example").aaaa.empty());
}

TEST(Resolver, CachesByName) {
  Resolver resolver(test_zone(), {.seed = 1, .timeout_prob = 0.0,
                                  .servfail_prob = 0.0, .no_aaaa_prob = 0.0});
  const DomainRecord& record = test_zone().records()[0];
  resolver.resolve(record.name);
  const std::uint64_t packets = resolver.stats().packets;
  resolver.resolve(record.name);
  EXPECT_EQ(resolver.stats().packets, packets);
  EXPECT_EQ(resolver.stats().cache_hits, 1u);
}

TEST(Resolver, TransientFailuresNotCached) {
  Resolver resolver(test_zone(),
                    {.seed = 1, .timeout_prob = 1.0, .retries = 1});
  const DomainRecord& record = test_zone().records()[0];
  EXPECT_EQ(resolver.resolve(record.name).rcode, RCode::kTimeout);
  EXPECT_EQ(resolver.stats().cache_hits, 0u);
  resolver.resolve(record.name);
  EXPECT_EQ(resolver.stats().cache_hits, 0u);  // retried, not served cached
}

TEST(Resolver, BatchResolveFlattens) {
  Resolver resolver(test_zone(), {.seed = 1, .timeout_prob = 0.0,
                                  .servfail_prob = 0.0, .no_aaaa_prob = 0.0});
  std::vector<std::string> names = {test_zone().records()[0].name,
                                    "missing.example",
                                    test_zone().records()[1].name};
  const auto addrs = resolver.resolve_all(names);
  EXPECT_GE(addrs.size(), 2u);
  EXPECT_EQ(resolver.stats().queries, 3u);
  EXPECT_EQ(resolver.stats().nxdomain, 1u);
}

class DomainListPerKind : public ::testing::TestWithParam<DomainListKind> {};

TEST_P(DomainListPerKind, ProducesDeterministicNonEmptyList) {
  const auto a =
      make_domain_list(test_zone(), small_universe(), GetParam(), 42);
  const auto b =
      make_domain_list(test_zone(), small_universe(), GetParam(), 42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DomainListPerKind,
    ::testing::Values(DomainListKind::kCensysCt, DomainListKind::kRapid7Fdns,
                      DomainListKind::kUmbrella, DomainListKind::kMajestic,
                      DomainListKind::kTranco, DomainListKind::kSecrank,
                      DomainListKind::kRadar, DomainListKind::kCaidaDns));

TEST(DomainList, ToplistRespectsTopN) {
  const auto list = make_domain_list(test_zone(), small_universe(),
                                     DomainListKind::kMajestic, 42);
  const auto profile = default_domain_profile(DomainListKind::kMajestic);
  // top_n plus the dead-name tail.
  EXPECT_LE(list.size(),
            static_cast<std::size_t>(
                static_cast<double>(profile.top_n) *
                (1.0 + profile.dead_name_fraction) + 2));
}

TEST(DomainList, BreadthFeedIsLargerThanToplists) {
  const auto censys = make_domain_list(test_zone(), small_universe(),
                                       DomainListKind::kCensysCt, 42);
  const auto majestic = make_domain_list(test_zone(), small_universe(),
                                         DomainListKind::kMajestic, 42);
  EXPECT_GT(censys.size(), majestic.size() * 3);
}

TEST(DomainList, DeadNamesResolveNxDomain) {
  const auto list = make_domain_list(test_zone(), small_universe(),
                                     DomainListKind::kRapid7Fdns, 42);
  Resolver resolver(test_zone(), {.seed = 2, .timeout_prob = 0.0,
                                  .servfail_prob = 0.0});
  resolver.resolve_all(list);
  EXPECT_GT(resolver.stats().nxdomain, list.size() / 10)
      << "the archival feed should contain many dead names";
}

}  // namespace
}  // namespace v6::dns
