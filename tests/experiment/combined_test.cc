// Tests for the combined multi-TGA scan (paper §4.2).
#include "experiment/combined.h"

#include <gtest/gtest.h>

#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "tga/registry.h"

namespace v6::experiment {
namespace {

using v6::net::Ipv6Addr;

Workbench& combined_bench() {
  static Workbench* bench = [] {
    WorkbenchConfig config;
    config.seed = 61;
    config.universe.seed = 61;
    config.universe.num_ases = 150;
    config.universe.host_scale = 0.1;
    config.universe.dense_region_prefix_len = 54;
    return new Workbench(config);
  }();
  return *bench;
}

CombinedResult run_three(std::uint64_t budget = 15'000) {
  auto a = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  auto b = v6::tga::make_generator(v6::tga::TgaKind::kDet);
  auto c = v6::tga::make_generator(v6::tga::TgaKind::kSixGen);
  std::vector<v6::tga::TargetGenerator*> generators = {a.get(), b.get(),
                                                       c.get()};
  CombinedConfig config;
  config.budget_per_generator = budget;
  config.batch_size = 5'000;
  return run_combined(combined_bench().universe(), generators,
                      combined_bench().all_active(),
                      combined_bench().alias_list(), config);
}

TEST(CombinedScan, EveryGeneratorConsumesItsBudget) {
  const auto result = run_three();
  ASSERT_EQ(result.per_generator.size(), 3u);
  for (const auto& outcome : result.per_generator) {
    EXPECT_EQ(outcome.generated, 15'000u);
  }
  EXPECT_EQ(result.proposals, 45'000u);
}

TEST(CombinedScan, UnionIsTheUnionOfAttributedHits) {
  const auto result = run_three();
  std::unordered_set<Ipv6Addr> expected;
  for (const auto& outcome : result.per_generator) {
    expected.insert(outcome.hit_set.begin(), outcome.hit_set.end());
  }
  EXPECT_EQ(result.union_hits, expected);
  EXPECT_FALSE(result.union_hits.empty());
}

TEST(CombinedScan, DedupSavesProbes) {
  const auto result = run_three();
  // Generators overlap, so the unique scan list is smaller than the sum
  // of proposals (the point of the paper's combined methodology).
  EXPECT_LT(result.unique_scanned, result.proposals);
  EXPECT_GT(result.unique_scanned, 0u);
}

TEST(CombinedScan, AttributedOutcomesAreConsistent) {
  const auto result = run_three();
  for (const auto& outcome : result.per_generator) {
    EXPECT_EQ(outcome.responsive,
              outcome.hits() + outcome.aliases + outcome.dense_filtered);
    EXPECT_LE(outcome.ases(), std::max<std::uint64_t>(outcome.hits(), 1));
  }
}

TEST(CombinedScan, Deterministic) {
  const auto a = run_three();
  const auto b = run_three();
  EXPECT_EQ(a.union_hits, b.union_hits);
  EXPECT_EQ(a.packets, b.packets);
  for (std::size_t i = 0; i < a.per_generator.size(); ++i) {
    EXPECT_EQ(a.per_generator[i].hits(), b.per_generator[i].hits());
  }
}

TEST(CombinedScan, CheaperThanSeparateScans) {
  const auto combined = run_three();
  // The same three generators run separately through the pipeline.
  std::uint64_t separate_packets = 0;
  for (const auto kind : {v6::tga::TgaKind::kSixTree, v6::tga::TgaKind::kDet,
                          v6::tga::TgaKind::kSixGen}) {
    auto generator = v6::tga::make_generator(kind);
    PipelineConfig config;
    config.budget = 15'000;
    config.batch_size = 5'000;
    const auto outcome = run_tga(combined_bench().universe(), *generator,
                                 combined_bench().all_active(),
                                 combined_bench().alias_list(), config);
    separate_packets += outcome.packets;
  }
  EXPECT_LT(combined.packets, separate_packets);
}

}  // namespace
}  // namespace v6::experiment
