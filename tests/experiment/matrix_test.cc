// Full-matrix integration sweep: every core TGA on every probe type
// through the complete pipeline, with invariants that must hold for any
// (generator, port) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "tga/registry.h"

namespace v6::experiment {
namespace {

using v6::net::ProbeType;

Workbench& matrix_bench() {
  static Workbench* bench = [] {
    WorkbenchConfig config;
    config.seed = 31;
    config.universe.seed = 31;
    config.universe.num_ases = 150;
    config.universe.host_scale = 0.1;
    config.universe.dense_region_prefix_len = 54;
    return new Workbench(config);
  }();
  return *bench;
}

class PipelineMatrix
    : public ::testing::TestWithParam<std::tuple<v6::tga::TgaKind, ProbeType>> {
};

TEST_P(PipelineMatrix, InvariantsHold) {
  const auto [kind, port] = GetParam();
  auto generator = v6::tga::make_generator(kind);
  PipelineConfig config;
  config.budget = 12'000;
  config.batch_size = 3'000;
  config.type = port;
  const auto outcome =
      run_tga(matrix_bench().universe(), *generator,
              matrix_bench().all_active(), matrix_bench().alias_list(),
              config);

  // Budget and uniqueness.
  EXPECT_LE(outcome.generated, config.budget);
  EXPECT_EQ(outcome.unique_generated, outcome.generated);
  // Accounting identity.
  EXPECT_EQ(outcome.responsive,
            outcome.hits() + outcome.aliases + outcome.dense_filtered);
  // The AS12322 filter only applies to ICMP.
  if (port != ProbeType::kIcmp) {
    EXPECT_EQ(outcome.dense_filtered, 0u);
  }
  // ASes can never exceed hits, and every hit resolves inside the
  // simulated address space (2000::/4).
  EXPECT_LE(outcome.ases(), std::max<std::uint64_t>(outcome.hits(), 1));
  for (const auto& hit : outcome.hit_set) {
    EXPECT_EQ(hit.nybble(0), 0x2u) << hit.to_string();
  }
  // Packets cover at least one probe per generated address.
  EXPECT_GE(outcome.packets, outcome.generated);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PipelineMatrix,
    ::testing::Combine(::testing::ValuesIn(v6::tga::kAllTgas.begin(),
                                           v6::tga::kAllTgas.end()),
                       ::testing::ValuesIn(v6::net::kAllProbeTypes.begin(),
                                           v6::net::kAllProbeTypes.end())),
    [](const auto& info) {
      std::string name{v6::tga::to_string(std::get<0>(info.param))};
      name += "_";
      name += v6::net::to_string(std::get<1>(info.param));
      std::erase_if(name, [](char c) { return !std::isalnum(c) && c != '_'; });
      return name;
    });

}  // namespace
}  // namespace v6::experiment
