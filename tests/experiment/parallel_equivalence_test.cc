// The acceptance bar for the parallel experiment runner: running the TGA
// sweep across a thread pool must produce ScanOutcomes field-identical
// to the sequential sweep. Each run owns its RNG (seeded from the
// config), transport, and scanner, so scheduling cannot leak in.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "experiment/runner.h"
#include "experiment/workbench.h"
#include "testutil/fixtures.h"

namespace v6::experiment {
namespace {

using v6::net::Ipv6Addr;

void expect_identical(const TgaRun& a, const TgaRun& b) {
  EXPECT_EQ(a.kind, b.kind);
  const auto& x = a.outcome;
  const auto& y = b.outcome;
  EXPECT_EQ(x.generated, y.generated);
  EXPECT_EQ(x.unique_generated, y.unique_generated);
  EXPECT_EQ(x.responsive, y.responsive);
  EXPECT_EQ(x.aliases, y.aliases);
  EXPECT_EQ(x.dense_filtered, y.dense_filtered);
  EXPECT_EQ(x.packets, y.packets);
  EXPECT_EQ(x.virtual_seconds, y.virtual_seconds);
  EXPECT_EQ(x.hit_set, y.hit_set);
  EXPECT_EQ(x.as_set, y.as_set);
}

TEST(ParallelEquivalence, RunAllTgasMatchesSequential) {
  const auto& universe = v6::testutil::small_universe();
  // A deterministic seed sample straight from the universe keeps this
  // test independent of the (slower) Workbench collection pipeline.
  std::vector<Ipv6Addr> seeds;
  const auto hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 7) {
    seeds.push_back(hosts[i].addr);
  }
  const auto alias_list = v6::dealias::AliasList::published_from(universe);

  PipelineConfig config;
  config.budget = 20'000;
  config.batch_size = 4'000;

  const auto sequential =
      run_all_tgas(universe, seeds, alias_list, config, /*jobs=*/1);
  const auto parallel =
      run_all_tgas(universe, seeds, alias_list, config, /*jobs=*/4);

  ASSERT_EQ(sequential.size(), parallel.size());
  ASSERT_EQ(sequential.size(), static_cast<std::size_t>(v6::tga::kNumTgas));
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(std::string("tga ") +
                 std::string(v6::tga::to_string(sequential[i].kind)));
    expect_identical(sequential[i], parallel[i]);
  }
}

TEST(ParallelEquivalence, RepeatedParallelRunsAreStable) {
  const auto& universe = v6::testutil::small_universe();
  std::vector<Ipv6Addr> seeds;
  const auto hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 11) {
    seeds.push_back(hosts[i].addr);
  }
  const auto alias_list = v6::dealias::AliasList::published_from(universe);

  PipelineConfig config;
  config.budget = 10'000;

  const std::array<v6::tga::TgaKind, 3> kinds = {
      v6::tga::TgaKind::kSixTree, v6::tga::TgaKind::kDet,
      v6::tga::TgaKind::kSixGen};
  const auto first = run_tgas(universe, kinds, seeds, alias_list, config, 3);
  const auto second = run_tgas(universe, kinds, seeds, alias_list, config, 3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(first[i], second[i]);
  }
}

TEST(ParallelEquivalence, WorkbenchPrecomputeMatchesLazyAccess) {
  WorkbenchConfig config;
  config.seed = 91;
  config.universe.seed = 91;
  config.universe.num_ases = 150;
  config.universe.host_scale = 0.12;

  Workbench eager(config);
  eager.precompute(/*jobs=*/4);
  Workbench lazy(config);

  for (const auto mode :
       {v6::dealias::DealiasMode::kOffline, v6::dealias::DealiasMode::kOnline,
        v6::dealias::DealiasMode::kJoint}) {
    EXPECT_EQ(eager.dealiased(mode), lazy.dealiased(mode));
  }
  EXPECT_EQ(eager.all_active(), lazy.all_active());
  for (const auto type : v6::net::kAllProbeTypes) {
    EXPECT_EQ(eager.port_specific(type), lazy.port_specific(type));
  }
  for (const auto source : v6::seeds::kAllSeedSources) {
    EXPECT_EQ(eager.source_active(source), lazy.source_active(source));
  }
}

}  // namespace
}  // namespace v6::experiment
