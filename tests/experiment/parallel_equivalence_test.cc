// The acceptance bar for the parallel experiment runner: running the TGA
// sweep across a thread pool must produce ScanOutcomes field-identical
// to the sequential sweep. Each run owns its RNG (seeded from the
// config), transport, and scanner, so scheduling cannot leak in.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <tuple>
#include <vector>

#include "experiment/session.h"
#include "experiment/workbench.h"
#include "obs/sinks.h"
#include "obs/telemetry.h"
#include "testutil/fixtures.h"

namespace v6::experiment {
namespace {

using v6::net::Ipv6Addr;

void expect_identical(const TgaRun& a, const TgaRun& b) {
  EXPECT_EQ(a.kind, b.kind);
  const auto& x = a.outcome;
  const auto& y = b.outcome;
  EXPECT_EQ(x.generated, y.generated);
  EXPECT_EQ(x.unique_generated, y.unique_generated);
  EXPECT_EQ(x.responsive, y.responsive);
  EXPECT_EQ(x.aliases, y.aliases);
  EXPECT_EQ(x.dense_filtered, y.dense_filtered);
  EXPECT_EQ(x.packets, y.packets);
  EXPECT_EQ(x.virtual_seconds, y.virtual_seconds);
  EXPECT_EQ(x.hit_set, y.hit_set);
  EXPECT_EQ(x.as_set, y.as_set);
}

TEST(ParallelEquivalence, RunAllTgasMatchesSequential) {
  const auto& universe = v6::testutil::small_universe();
  // A deterministic seed sample straight from the universe keeps this
  // test independent of the (slower) Workbench collection pipeline.
  std::vector<Ipv6Addr> seeds;
  const auto hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 7) {
    seeds.push_back(hosts[i].addr);
  }
  const auto alias_list = v6::dealias::AliasList::published_from(universe);

  PipelineConfig config;
  config.budget = 20'000;
  config.batch_size = 4'000;

  const ScanSession base = ScanSession(universe, alias_list)
                               .with_seeds(seeds)
                               .with_config(config);
  const auto sequential = ScanSession(base).with_jobs(1).sweep();
  const auto parallel = ScanSession(base).with_jobs(4).sweep();

  ASSERT_EQ(sequential.size(), parallel.size());
  ASSERT_EQ(sequential.size(), static_cast<std::size_t>(v6::tga::kNumTgas));
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(std::string("tga ") +
                 std::string(v6::tga::to_string(sequential[i].kind)));
    expect_identical(sequential[i], parallel[i]);
  }
}

// Instrumentation must not perturb outcomes: a sweep run with a
// telemetry context (counters + tracing sink attached) is
// field-identical to the bare sweep, for any jobs count.
TEST(ParallelEquivalence, TelemetryDoesNotPerturbOutcomes) {
  const auto& universe = v6::testutil::small_universe();
  std::vector<Ipv6Addr> seeds;
  const auto hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 9) {
    seeds.push_back(hosts[i].addr);
  }
  const auto alias_list = v6::dealias::AliasList::published_from(universe);

  PipelineConfig config;
  config.budget = 10'000;

  const ScanSession base = ScanSession(universe, alias_list)
                               .with_kind(v6::tga::TgaKind::kSixTree)
                               .with_seeds(seeds)
                               .with_config(config);

  const auto bare = ScanSession(base).with_jobs(1).sweep();

  v6::obs::Telemetry telemetry;
  v6::obs::MemorySink sink;
  telemetry.attach_sink(&sink);
  const auto traced =
      ScanSession(base)
          .with_config(PipelineConfig(config).with_trace_probes(true))
          .with_telemetry(&telemetry)
          .with_jobs(2)
          .sweep();

  ASSERT_EQ(bare.size(), traced.size());
  expect_identical(bare.front(), traced.front());
  EXPECT_GT(sink.size(), 0u);
}

// The merged telemetry of a sweep — counter values and the order of
// trace event paths — is identical for jobs=1 and jobs>1: per-run
// registries and event buffers are folded in slot order, so thread
// scheduling cannot leak into the merged view.
TEST(ParallelEquivalence, MergedTelemetryIsDeterministic) {
  const auto& universe = v6::testutil::small_universe();
  std::vector<Ipv6Addr> seeds;
  const auto hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 9) {
    seeds.push_back(hosts[i].addr);
  }
  const auto alias_list = v6::dealias::AliasList::published_from(universe);

  PipelineConfig config;
  config.budget = 8'000;
  config.batch_size = 2'000;

  const std::array<v6::tga::TgaKind, 3> kinds = {v6::tga::TgaKind::kSixTree,
                                                 v6::tga::TgaKind::kDet,
                                                 v6::tga::TgaKind::kSixGen};

  auto run = [&](unsigned jobs) {
    v6::obs::Telemetry telemetry;
    v6::obs::MemorySink sink;
    telemetry.attach_sink(&sink);
    const auto runs = ScanSession(universe, alias_list)
                          .with_kinds(kinds)
                          .with_seeds(seeds)
                          .with_config(config)
                          .with_telemetry(&telemetry)
                          .with_jobs(jobs)
                          .sweep();
    // Event paths in emission order; timestamps/durations are wall
    // clock and excluded on purpose — except sampler points, whose
    // `at` is virtual time and deterministic along with the value.
    std::vector<std::string> paths;
    std::vector<std::tuple<std::string, double, std::uint64_t>> samples;
    for (const auto& ev : sink.events()) {
      paths.push_back(ev.path);
      if (ev.kind == v6::obs::Event::Kind::kSample) {
        samples.emplace_back(ev.path, ev.at, ev.value);
      }
    }
    return std::tuple(telemetry.registry().snapshot(), std::move(paths),
                      std::move(samples), runs);
  };

  const auto [report_seq, paths_seq, samples_seq, runs_seq] = run(1);
  const auto [report_par, paths_par, samples_par, runs_par] = run(3);

  EXPECT_FALSE(samples_seq.empty());
  EXPECT_EQ(samples_seq, samples_par);

  // Counters and gauges are bit-identical across jobs counts, except
  // the `.wall` family: those measure host time / scheduling (queue
  // high watermarks, blocked time, wall durations) and are exempt from
  // the determinism contract (docs/OBSERVABILITY.md).
  const auto drop_wall = [](const auto& metrics) {
    auto out = metrics;
    for (auto it = out.begin(); it != out.end();) {
      const std::string& name = it->first;
      const bool wall =
          name.size() >= 5 && name.compare(name.size() - 5, 5, ".wall") == 0;
      it = wall ? out.erase(it) : std::next(it);
    }
    return out;
  };
  EXPECT_EQ(drop_wall(report_seq.counters), drop_wall(report_par.counters));
  EXPECT_EQ(drop_wall(report_seq.gauges), drop_wall(report_par.gauges));
  // Timer *counts* are deterministic; elapsed seconds are not — except
  // the virtual-clock wire timers, which must be bit-identical.
  ASSERT_EQ(report_seq.timers.size(), report_par.timers.size());
  for (const auto& [name, total] : report_seq.timers) {
    const auto it = report_par.timers.find(name);
    ASSERT_NE(it, report_par.timers.end()) << name;
    EXPECT_EQ(total.count, it->second.count) << name;
    if (name.find(".wire_seconds") != std::string::npos) {
      EXPECT_EQ(total.nanos, it->second.nanos) << name;
    }
  }
  // Histograms fed from the virtual clock (RTTs, batch stats) are
  // bit-identical across jobs counts; only the `.wall` family measures
  // host time and is exempt from the determinism contract.
  ASSERT_EQ(report_seq.histograms.size(), report_par.histograms.size());
  bool saw_virtual_histogram = false;
  for (const auto& [name, total] : report_seq.histograms) {
    const auto it = report_par.histograms.find(name);
    ASSERT_NE(it, report_par.histograms.end()) << name;
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".wall") == 0) {
      EXPECT_EQ(total.count, it->second.count) << name;
      continue;
    }
    saw_virtual_histogram = true;
    EXPECT_EQ(total, it->second) << name;
  }
  EXPECT_TRUE(saw_virtual_histogram);
  EXPECT_EQ(paths_seq, paths_par);

  // Per-run reports carry per-TGA attribution that survives the pool.
  ASSERT_EQ(runs_seq.size(), runs_par.size());
  for (std::size_t i = 0; i < runs_seq.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(runs_seq[i].report.counters, runs_par[i].report.counters);
  }
}

TEST(ParallelEquivalence, RepeatedParallelRunsAreStable) {
  const auto& universe = v6::testutil::small_universe();
  std::vector<Ipv6Addr> seeds;
  const auto hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 11) {
    seeds.push_back(hosts[i].addr);
  }
  const auto alias_list = v6::dealias::AliasList::published_from(universe);

  PipelineConfig config;
  config.budget = 10'000;

  const std::array<v6::tga::TgaKind, 3> kinds = {
      v6::tga::TgaKind::kSixTree, v6::tga::TgaKind::kDet,
      v6::tga::TgaKind::kSixGen};
  const ScanSession session = ScanSession(universe, alias_list)
                                  .with_kinds(kinds)
                                  .with_seeds(seeds)
                                  .with_config(config)
                                  .with_jobs(3);
  const auto first = session.sweep();
  const auto second = session.sweep();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(first[i], second[i]);
  }
}

TEST(ParallelEquivalence, WorkbenchPrecomputeMatchesLazyAccess) {
  WorkbenchConfig config;
  config.seed = 91;
  config.universe.seed = 91;
  config.universe.num_ases = 150;
  config.universe.host_scale = 0.12;

  Workbench eager(config);
  eager.precompute(/*jobs=*/4);
  Workbench lazy(config);

  for (const auto mode :
       {v6::dealias::DealiasMode::kOffline, v6::dealias::DealiasMode::kOnline,
        v6::dealias::DealiasMode::kJoint}) {
    EXPECT_EQ(eager.dealiased(mode), lazy.dealiased(mode));
  }
  EXPECT_EQ(eager.all_active(), lazy.all_active());
  for (const auto type : v6::net::kAllProbeTypes) {
    EXPECT_EQ(eager.port_specific(type), lazy.port_specific(type));
  }
  for (const auto source : v6::seeds::kAllSeedSources) {
    EXPECT_EQ(eager.source_active(source), lazy.source_active(source));
  }
}

}  // namespace
}  // namespace v6::experiment
