// End-to-end pipeline and workbench integration tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "tga/registry.h"
#include "testutil/fixtures.h"

namespace v6::experiment {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;

/// Small workbench shared by the tests in this file (built once).
Workbench& small_bench() {
  static Workbench* bench = [] {
    WorkbenchConfig config;
    config.seed = 77;
    config.universe.seed = 77;
    config.universe.num_ases = 200;
    config.universe.host_scale = 0.15;
    config.universe.dense_region_prefix_len = 52;
    return new Workbench(config);
  }();
  return *bench;
}

PipelineConfig small_config(ProbeType type = ProbeType::kIcmp) {
  PipelineConfig config;
  config.budget = 30'000;
  config.batch_size = 5'000;
  config.type = type;
  return config;
}

TEST(Pipeline, RespectsBudget) {
  auto generator = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  const auto outcome =
      run_tga(small_bench().universe(), *generator,
              small_bench().all_active(), small_bench().alias_list(),
              small_config());
  EXPECT_EQ(outcome.generated, 30'000u);
  EXPECT_EQ(outcome.unique_generated, outcome.generated);
}

TEST(Pipeline, AccountingIsConsistent) {
  auto generator = v6::tga::make_generator(v6::tga::TgaKind::kDet);
  const auto outcome =
      run_tga(small_bench().universe(), *generator,
              small_bench().all_active(), small_bench().alias_list(),
              small_config());
  // Every responsive address is exactly one of: hit, alias, dense-filtered.
  EXPECT_EQ(outcome.responsive,
            outcome.hits() + outcome.aliases + outcome.dense_filtered);
  EXPECT_GT(outcome.hits(), 0u);
  EXPECT_LE(outcome.ases(), outcome.hits());
  EXPECT_GE(outcome.packets, outcome.generated);
  EXPECT_GT(outcome.virtual_seconds, 0.0);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  auto run = [] {
    auto generator = v6::tga::make_generator(v6::tga::TgaKind::kSixScan);
    return run_tga(small_bench().universe(), *generator,
                   small_bench().all_active(), small_bench().alias_list(),
                   small_config());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.ases(), b.ases());
  EXPECT_EQ(a.aliases, b.aliases);
  EXPECT_EQ(a.hit_set, b.hit_set);
}

TEST(Pipeline, HitsAreGenuinelyActiveAndNotAliased) {
  auto generator = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  const auto outcome =
      run_tga(small_bench().universe(), *generator,
              small_bench().all_active(), small_bench().alias_list(),
              small_config());
  const auto& universe = small_bench().universe();
  for (const Ipv6Addr& hit : outcome.hit_set) {
    if (universe.is_aliased(hit)) {
      // Only rate-limited aliases can slip through the joint dealiasing
      // (the paper's EIP/Amazon anomaly).
      const auto* region = universe.alias_region_of(hit);
      ASSERT_NE(region, nullptr);
      EXPECT_TRUE(region->rate_limited) << hit.to_string();
    } else {
      EXPECT_TRUE(universe.host_active(hit, ProbeType::kIcmp))
          << hit.to_string();
    }
  }
}

TEST(Pipeline, DenseRegionFilteredOnIcmpOnly) {
  // Seeds drawn from the dense region force generation into it.
  const auto& universe = small_bench().universe();
  ASSERT_TRUE(universe.dense_region().has_value());
  std::vector<Ipv6Addr> seeds;
  v6::net::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    const Ipv6Addr r =
        v6::net::random_in_prefix(rng, universe.dense_region()->prefix);
    seeds.push_back(Ipv6Addr(r.hi(), 1));
  }
  auto generator = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  const auto outcome = run_tga(universe, *generator, seeds,
                               small_bench().alias_list(), small_config());
  EXPECT_GT(outcome.dense_filtered, 100u);
  for (const Ipv6Addr& hit : outcome.hit_set) {
    EXPECT_FALSE(universe.in_dense_region(hit));
  }
}

TEST(Pipeline, DenseFilterCanBeDisabled) {
  const auto& universe = small_bench().universe();
  std::vector<Ipv6Addr> seeds;
  v6::net::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    const Ipv6Addr r =
        v6::net::random_in_prefix(rng, universe.dense_region()->prefix);
    seeds.push_back(Ipv6Addr(r.hi(), 1));
  }
  auto generator = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  PipelineConfig config = small_config();
  config.filter_dense = false;
  const auto outcome = run_tga(universe, *generator, seeds,
                               small_bench().alias_list(), config);
  EXPECT_EQ(outcome.dense_filtered, 0u);
  EXPECT_GT(std::count_if(outcome.hit_set.begin(), outcome.hit_set.end(),
                          [&](const Ipv6Addr& a) {
                            return universe.in_dense_region(a);
                          }),
            0);
}

TEST(Pipeline, GeneratorExhaustionEndsRunEarly) {
  // A single-seed EIP model cannot fill a large budget; the pipeline
  // must stop rather than loop forever.
  auto generator = v6::tga::make_generator(v6::tga::TgaKind::kEntropyIp);
  const std::vector<Ipv6Addr> one = {Ipv6Addr::must_parse("2001:db8::1")};
  PipelineConfig config = small_config();
  config.budget = 1'000'000;
  const auto outcome = run_tga(small_bench().universe(), *generator, one,
                               small_bench().alias_list(), config);
  EXPECT_LT(outcome.generated, config.budget);
}

TEST(Workbench, DatasetInclusionChain) {
  Workbench& bench = small_bench();
  const auto& full = bench.full();
  const auto& joint = bench.dealiased(v6::dealias::DealiasMode::kJoint);
  const auto& active = bench.all_active();

  EXPECT_LT(joint.size(), full.size());
  EXPECT_LT(active.size(), joint.size());
  EXPECT_GT(active.size(), 0u);

  const std::unordered_set<Ipv6Addr> full_set(full.begin(), full.end());
  const std::unordered_set<Ipv6Addr> joint_set(joint.begin(), joint.end());
  for (const Ipv6Addr& a : joint) ASSERT_TRUE(full_set.contains(a));
  for (const Ipv6Addr& a : active) ASSERT_TRUE(joint_set.contains(a));
}

TEST(Workbench, PortSpecificSubsetsOfAllActive) {
  Workbench& bench = small_bench();
  const std::unordered_set<Ipv6Addr> active(bench.all_active().begin(),
                                            bench.all_active().end());
  for (const ProbeType t : v6::net::kAllProbeTypes) {
    const auto& port = bench.port_specific(t);
    EXPECT_LT(port.size(), active.size()) << v6::net::to_string(t);
    for (const Ipv6Addr& a : port) {
      ASSERT_TRUE(active.contains(a));
      ASSERT_TRUE(bench.activity().active_on(a, t));
    }
  }
}

TEST(Workbench, IcmpIsTheLargestPortDataset) {
  Workbench& bench = small_bench();
  const auto icmp = bench.port_specific(ProbeType::kIcmp).size();
  EXPECT_GT(icmp, bench.port_specific(ProbeType::kTcp80).size());
  EXPECT_GT(icmp, bench.port_specific(ProbeType::kUdp53).size());
}

TEST(Workbench, SourceActiveSubsets) {
  Workbench& bench = small_bench();
  const std::unordered_set<Ipv6Addr> active(bench.all_active().begin(),
                                            bench.all_active().end());
  std::size_t union_size = 0;
  for (const v6::seeds::SeedSource source : v6::seeds::kAllSeedSources) {
    const auto& subset = bench.source_active(source);
    union_size += subset.size();
    for (const Ipv6Addr& a : subset) {
      ASSERT_TRUE(active.contains(a));
    }
  }
  // Sources overlap, so the sum exceeds the union.
  EXPECT_GT(union_size, active.size());
}

TEST(Workbench, DealiasedModesOrdering) {
  Workbench& bench = small_bench();
  // Joint removes at least as much as each individual method.
  const auto full = bench.full().size();
  const auto offline = bench.dealiased(v6::dealias::DealiasMode::kOffline).size();
  const auto online = bench.dealiased(v6::dealias::DealiasMode::kOnline).size();
  const auto joint = bench.dealiased(v6::dealias::DealiasMode::kJoint).size();
  EXPECT_LE(offline, full);
  EXPECT_LE(online, full);
  EXPECT_LE(joint, offline);
}

}  // namespace
}  // namespace v6::experiment
