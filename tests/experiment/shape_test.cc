// Shape tests: the paper's headline qualitative findings must emerge
// from the simulation by mechanism. These are integration tests over the
// whole stack (universe -> seeds -> TGA -> scan -> dealias -> metrics).
#include <gtest/gtest.h>

#include "experiment/pipeline.h"
#include "experiment/workbench.h"
#include "probe/blocklist.h"
#include "tga/registry.h"

namespace v6::experiment {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;

Workbench& shape_bench() {
  static Workbench* bench = [] {
    WorkbenchConfig config;
    config.seed = 99;
    config.universe.seed = 99;
    config.universe.num_ases = 400;
    config.universe.host_scale = 0.12;
    config.universe.dense_region_prefix_len = 52;
    return new Workbench(config);
  }();
  return *bench;
}

PipelineConfig shape_config(ProbeType type = ProbeType::kIcmp) {
  PipelineConfig config;
  config.budget = 60'000;
  config.type = type;
  return config;
}

/// RQ1.a: dealiased seeds must produce drastically fewer aliases and at
/// least comparable hits for an online tree model.
TEST(Shape, DealiasingSeedsCutsAliases) {
  auto det = v6::tga::make_generator(v6::tga::TgaKind::kDet);
  const auto on_full =
      run_tga(shape_bench().universe(), *det, shape_bench().full(),
              shape_bench().alias_list(), shape_config());
  const auto on_dealiased = run_tga(
      shape_bench().universe(), *det,
      shape_bench().dealiased(v6::dealias::DealiasMode::kJoint),
      shape_bench().alias_list(), shape_config());
  EXPECT_LT(on_dealiased.aliases * 5, on_full.aliases + 1);
  EXPECT_GE(on_dealiased.hits() * 2, on_full.hits());
}

/// RQ1.a: offline-only dealiasing misses unpublished aliases that the
/// joint approach removes (Table 4's left-to-right decrease).
TEST(Shape, JointSeedDealiasingBeatsOfflineOnly) {
  auto tree = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  const auto offline = run_tga(
      shape_bench().universe(), *tree,
      shape_bench().dealiased(v6::dealias::DealiasMode::kOffline),
      shape_bench().alias_list(), shape_config());
  const auto joint = run_tga(
      shape_bench().universe(), *tree,
      shape_bench().dealiased(v6::dealias::DealiasMode::kJoint),
      shape_bench().alias_list(), shape_config());
  EXPECT_LT(joint.aliases, offline.aliases);
}

/// RQ2: port-specific seeds raise application-layer hits for an online
/// model (the paper's strongest case is DET on TCP).
TEST(Shape, PortSpecificSeedsRaiseTcpHitsForOnlineModels) {
  auto det = v6::tga::make_generator(v6::tga::TgaKind::kDet);
  const auto base = run_tga(shape_bench().universe(), *det,
                            shape_bench().all_active(),
                            shape_bench().alias_list(),
                            shape_config(ProbeType::kTcp443));
  const auto tailored = run_tga(
      shape_bench().universe(), *det,
      shape_bench().port_specific(ProbeType::kTcp443),
      shape_bench().alias_list(), shape_config(ProbeType::kTcp443));
  EXPECT_GT(tailored.hits(), base.hits());
}

/// RQ4: combining generators covers more than any single one.
TEST(Shape, CombiningGeneratorsExtendsCoverage) {
  const auto& seeds = shape_bench().all_active();
  std::unordered_set<Ipv6Addr> combined;
  std::size_t best_single = 0;
  for (const v6::tga::TgaKind kind :
       {v6::tga::TgaKind::kSixSense, v6::tga::TgaKind::kSixTree,
        v6::tga::TgaKind::kDet}) {
    auto generator = v6::tga::make_generator(kind);
    const auto outcome =
        run_tga(shape_bench().universe(), *generator, seeds,
                shape_bench().alias_list(), shape_config());
    best_single = std::max<std::size_t>(best_single, outcome.hits());
    combined.insert(outcome.hit_set.begin(), outcome.hit_set.end());
  }
  EXPECT_GT(combined.size(), best_single * 11 / 10)
      << "union should exceed the best single generator by >10%";
}

/// EIP is orders of magnitude weaker than the tree models (paper §2.1).
TEST(Shape, EntropyIpIsFarWeakerThanTreeModels) {
  auto eip = v6::tga::make_generator(v6::tga::TgaKind::kEntropyIp);
  auto tree = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  const auto& seeds = shape_bench().all_active();
  const auto eip_out = run_tga(shape_bench().universe(), *eip, seeds,
                               shape_bench().alias_list(), shape_config());
  const auto tree_out = run_tga(shape_bench().universe(), *tree, seeds,
                                shape_bench().alias_list(), shape_config());
  EXPECT_LT(eip_out.hits() * 10, tree_out.hits());
}

/// The scanner's blocklist is honored end-to-end: nothing inside a
/// blocked prefix is ever counted, and no packets reach it.
TEST(Shape, BlocklistExcludesPrefixesEndToEnd) {
  const auto& universe = shape_bench().universe();
  // Block the prefix of the densest AS observed in a dry run.
  auto tree = v6::tga::make_generator(v6::tga::TgaKind::kSixTree);
  const auto dry = run_tga(universe, *tree, shape_bench().all_active(),
                           shape_bench().alias_list(), shape_config());
  ASSERT_FALSE(dry.hit_set.empty());
  const Ipv6Addr sample = *dry.hit_set.begin();
  const v6::net::Prefix blocked_prefix(sample, 32);

  v6::probe::Blocklist blocklist;
  blocklist.add(blocked_prefix);
  PipelineConfig config = shape_config();
  config.blocklist = &blocklist;
  const auto guarded = run_tga(universe, *tree, shape_bench().all_active(),
                               shape_bench().alias_list(), config);
  for (const Ipv6Addr& hit : guarded.hit_set) {
    EXPECT_FALSE(blocked_prefix.contains(hit)) << hit.to_string();
  }
}

/// Determinism across the whole workbench: the same master seed yields
/// the same datasets.
TEST(Shape, WorkbenchDeterministic) {
  WorkbenchConfig config;
  config.seed = 5;
  config.universe.seed = 5;
  config.universe.num_ases = 100;
  config.universe.host_scale = 0.08;
  Workbench a(config);
  Workbench b(config);
  EXPECT_EQ(a.full(), b.full());
  EXPECT_EQ(a.all_active(), b.all_active());
}

}  // namespace
}  // namespace v6::experiment
