// The fault-matrix suite: every fault kind x retry policy, asserting
// (a) same seed + same jobs => bit-identical ScanOutcomes,
// (b) retries monotonically recover hits as loss drops,
// (c) a disabled FaultPlan{} is byte-identical to a no-decorator run,
// plus jobs-invariance under faults and fault telemetry counters.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "experiment/pipeline.h"
#include "experiment/session.h"
#include "experiment/workbench.h"
#include "fault/fault_plan.h"
#include "metrics/scan_outcome.h"
#include "net/prefix.h"
#include "obs/telemetry.h"
#include "tga/registry.h"

namespace v6::experiment {
namespace {

using v6::fault::FaultPlan;
using v6::metrics::ScanOutcome;
using v6::net::Prefix;

/// Small workbench shared by this file (built once).
Workbench& small_bench() {
  static Workbench* bench = [] {
    WorkbenchConfig config;
    config.seed = 91;
    config.universe.seed = 91;
    config.universe.num_ases = 200;
    config.universe.host_scale = 0.15;
    config.universe.dense_region_prefix_len = 52;
    return new Workbench(config);
  }();
  return *bench;
}

PipelineConfig small_config() {
  return PipelineConfig{}.with_budget(10'000).with_batch_size(5'000);
}

std::vector<TgaRun> sweep(const PipelineConfig& config, unsigned jobs,
                          v6::obs::Telemetry* telemetry = nullptr) {
  return ScanSession(small_bench().universe(), small_bench().alias_list())
      .with_kinds(std::vector<v6::tga::TgaKind>{v6::tga::TgaKind::kDet,
                                                v6::tga::TgaKind::kSixTree})
      .with_seeds(small_bench().all_active())
      .with_config(config)
      .with_jobs(jobs)
      .with_telemetry(telemetry)
      .sweep();
}

/// Field-by-field ScanOutcome equality, hit/AS sets included — the
/// "bit-identical" assertion the acceptance criteria call for.
void expect_outcomes_identical(const std::vector<TgaRun>& a,
                               const std::vector<TgaRun>& b,
                               const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ScanOutcome& x = a[i].outcome;
    const ScanOutcome& y = b[i].outcome;
    EXPECT_EQ(a[i].kind, b[i].kind) << context;
    EXPECT_EQ(x.generated, y.generated) << context;
    EXPECT_EQ(x.unique_generated, y.unique_generated) << context;
    EXPECT_EQ(x.responsive, y.responsive) << context;
    EXPECT_EQ(x.aliases, y.aliases) << context;
    EXPECT_EQ(x.dense_filtered, y.dense_filtered) << context;
    EXPECT_EQ(x.packets, y.packets) << context;
    EXPECT_EQ(x.virtual_seconds, y.virtual_seconds) << context;
    EXPECT_EQ(x.hit_set, y.hit_set) << context;
    EXPECT_EQ(x.as_set, y.as_set) << context;
  }
}

/// One representative plan per fault kind, plus their combination.
std::vector<std::pair<std::string, FaultPlan>> fault_kinds() {
  const Prefix any;
  return {
      {"loss", FaultPlan{}.with_base_loss(0.3)},
      {"rlimit", FaultPlan{}.with_rate_limit(any, /*rate=*/20.0,
                                             /*burst=*/10.0,
                                             /*bucket_prefix_len=*/32)},
      {"outage", FaultPlan{}.with_outage(any, /*start_s=*/0.2,
                                         /*duration_s=*/0.1,
                                         /*period_s=*/1.0)},
      {"error", FaultPlan{}.with_error(any, 0.1)},
      {"combined", FaultPlan{}
                       .with_base_loss(0.15)
                       .with_rate_limit(any, 20.0, 10.0, 32)
                       .with_outage(any, 0.2, 0.1, 1.0)
                       .with_error(any, 0.05)},
  };
}

/// The two retry policies of the matrix: a retry-free scan and the
/// robust path (retries + timeout charging + backoff + adaptive).
std::vector<std::pair<std::string, PipelineConfig>> retry_policies() {
  return {
      {"retry-free", small_config().with_scan_retries(0)},
      {"robust", small_config()
                     .with_scan_retries(3)
                     .with_probe_timeout(0.01)
                     .with_retry_backoff(0.02, /*jitter=*/0.25)
                     .with_adaptive_backoff(/*threshold=*/8, /*wait_s=*/0.5)},
  };
}

TEST(FaultMatrix, SameSeedSameJobsIsBitIdentical) {
  for (const auto& [kind, plan] : fault_kinds()) {
    for (const auto& [policy, base_config] : retry_policies()) {
      PipelineConfig config = base_config;
      config.faults = &plan;
      const auto first = sweep(config, /*jobs=*/1);
      const auto second = sweep(config, /*jobs=*/1);
      expect_outcomes_identical(first, second, kind + "/" + policy);
    }
  }
}

TEST(FaultMatrix, OutcomesAreJobsInvariantUnderFaults) {
  for (const auto& [kind, plan] : fault_kinds()) {
    PipelineConfig config = retry_policies()[1].second;  // robust path
    config.faults = &plan;
    const auto sequential = sweep(config, /*jobs=*/1);
    const auto parallel = sweep(config, /*jobs=*/2);
    expect_outcomes_identical(sequential, parallel, kind + "/jobs");
  }
}

TEST(FaultMatrix, DisabledPlanMatchesNoDecoratorRun) {
  // Satellite (c) at the pipeline level: faults = &FaultPlan{} keeps the
  // FaultyTransport in the chain but must reproduce faults = nullptr
  // byte-for-byte.
  const FaultPlan disabled;
  ASSERT_FALSE(disabled.enabled());
  for (const auto& [policy, base_config] : retry_policies()) {
    PipelineConfig with_decorator = base_config;
    with_decorator.faults = &disabled;
    PipelineConfig without = base_config;
    without.faults = nullptr;
    expect_outcomes_identical(sweep(with_decorator, 1), sweep(without, 1),
                              policy + "/disabled-plan");
  }
}

TEST(FaultMatrix, RetriesMonotonicallyRecoverHitsAsLossDrops) {
  // Satellite (b) at the sweep level, for each retry policy: total hits
  // must not decrease as loss drops, and the robust policy dominates the
  // retry-free one at every nonzero loss point.
  const std::vector<double> losses = {0.5, 0.25, 0.0};
  std::uint64_t prev_free = 0, prev_robust = 0;
  for (auto it = losses.begin(); it != losses.end(); ++it) {
    FaultPlan plan;
    if (*it > 0.0) plan.with_base_loss(*it);
    std::uint64_t total_free = 0, total_robust = 0;
    {
      PipelineConfig config = retry_policies()[0].second;
      config.faults = &plan;
      for (const TgaRun& run : sweep(config, 1)) {
        total_free += run.outcome.hits();
      }
    }
    {
      PipelineConfig config = retry_policies()[1].second;
      config.faults = &plan;
      for (const TgaRun& run : sweep(config, 1)) {
        total_robust += run.outcome.hits();
      }
    }
    EXPECT_GE(total_free, prev_free) << "loss=" << *it;
    EXPECT_GE(total_robust, prev_robust) << "loss=" << *it;
    if (*it > 0.0) {
      EXPECT_GT(total_robust, total_free) << "loss=" << *it;
    }
    prev_free = total_free;
    prev_robust = total_robust;
  }
}

TEST(FaultMatrix, FaultCountersSurfaceInTelemetry) {
  v6::obs::Telemetry telemetry;
  FaultPlan plan = FaultPlan{}.with_base_loss(0.3);
  PipelineConfig config = small_config();
  config.faults = &plan;
  sweep(config, /*jobs=*/1, &telemetry);
  const v6::obs::Report report = telemetry.registry().snapshot();
  std::uint64_t loss_drops = 0;
  bool saw_loss_counter = false;
  for (const auto& [name, value] : report.counters) {
    if (name == "fault.drop.loss") {
      saw_loss_counter = true;
      loss_drops = value;
    }
  }
  EXPECT_TRUE(saw_loss_counter);
  EXPECT_GT(loss_drops, 0u);
}

TEST(FaultMatrix, FaultFreeRunsKeepTheirCounterSet) {
  v6::obs::Telemetry telemetry;
  sweep(small_config(), /*jobs=*/1, &telemetry);
  const v6::obs::Report report = telemetry.registry().snapshot();
  for (const auto& [name, value] : report.counters) {
    EXPECT_EQ(name.rfind("fault.", 0), std::string::npos)
        << "unexpected fault counter in fault-free run: " << name;
  }
}

}  // namespace
}  // namespace v6::experiment
