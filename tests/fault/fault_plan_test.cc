// FaultPlan spec parsing, validation, and canonical round-trips.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "net/prefix.h"
#include "net/rng.h"
#include "testutil/generators.h"

namespace v6::fault {
namespace {

using v6::net::Prefix;

TEST(FaultPlan, DefaultIsDisabledAndValid) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.valid());
  EXPECT_EQ(plan.to_string(), "");
}

TEST(FaultPlan, EmptySpecParsesToDisabledPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->enabled());
  EXPECT_EQ(*plan, FaultPlan{});
}

TEST(FaultPlan, ParsesBaseLoss) {
  const auto plan = FaultPlan::parse("loss=0.25");
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->base_loss, 0.25);
  EXPECT_TRUE(plan->enabled());
  EXPECT_TRUE(plan->loss_rules.empty());
}

TEST(FaultPlan, ParsesScopedLoss) {
  const auto plan = FaultPlan::parse("loss=2001:db8::/32:0.5");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->loss_rules.size(), 1u);
  EXPECT_EQ(plan->loss_rules[0].scope, Prefix::must_parse("2001:db8::/32"));
  EXPECT_DOUBLE_EQ(plan->loss_rules[0].drop_prob, 0.5);
  EXPECT_DOUBLE_EQ(plan->base_loss, 0.0);
}

TEST(FaultPlan, AnyScopeIsTheZeroPrefix) {
  const auto plan = FaultPlan::parse("error=any:0.1");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->errors.size(), 1u);
  EXPECT_EQ(plan->errors[0].scope, Prefix{});
  EXPECT_DOUBLE_EQ(plan->errors[0].error_prob, 0.1);
}

TEST(FaultPlan, ParsesRateLimitWithDefaults) {
  const auto plan = FaultPlan::parse("rlimit=2001:db8::/32:10");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->rate_limits.size(), 1u);
  const RateLimitRule& rule = plan->rate_limits[0];
  EXPECT_DOUBLE_EQ(rule.replies_per_second, 10.0);
  EXPECT_DOUBLE_EQ(rule.burst, 1.0);
  EXPECT_EQ(rule.bucket_prefix_len, -1);
}

TEST(FaultPlan, ParsesRateLimitFullForm) {
  const auto plan = FaultPlan::parse("rlimit=any:5:50:32");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->rate_limits.size(), 1u);
  const RateLimitRule& rule = plan->rate_limits[0];
  EXPECT_DOUBLE_EQ(rule.replies_per_second, 5.0);
  EXPECT_DOUBLE_EQ(rule.burst, 50.0);
  EXPECT_EQ(rule.bucket_prefix_len, 32);
}

TEST(FaultPlan, ParsesOutageAndPeriod) {
  const auto plan =
      FaultPlan::parse("outage=2001:db8::/48:2:0.5,outage=any:0:1:10");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->outages.size(), 2u);
  EXPECT_DOUBLE_EQ(plan->outages[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(plan->outages[0].duration_s, 0.5);
  EXPECT_DOUBLE_EQ(plan->outages[0].period_s, 0.0);
  EXPECT_DOUBLE_EQ(plan->outages[1].period_s, 10.0);
}

TEST(FaultPlan, ParsesCombinedSpec) {
  const auto plan = FaultPlan::parse(
      "loss=0.1,loss=2001:db8::/32:0.3,rlimit=any:5:10:32,"
      "outage=2001:db8:1::/48:1:2:8,error=any:0.05,pps=5000");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->enabled());
  EXPECT_EQ(plan->loss_rules.size(), 1u);
  EXPECT_EQ(plan->rate_limits.size(), 1u);
  EXPECT_EQ(plan->outages.size(), 1u);
  EXPECT_EQ(plan->errors.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->wire_pps, 5000.0);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::parse("bogus=1").has_value());
  EXPECT_FALSE(FaultPlan::parse("loss").has_value());
  EXPECT_FALSE(FaultPlan::parse("loss=notanumber").has_value());
  EXPECT_FALSE(FaultPlan::parse("loss=1.5").has_value());       // prob > 1
  EXPECT_FALSE(FaultPlan::parse("loss=-0.1").has_value());      // prob < 0
  EXPECT_FALSE(FaultPlan::parse("rlimit=any:0").has_value());   // rate 0
  EXPECT_FALSE(FaultPlan::parse("rlimit=any:5:0.5").has_value());  // burst < 1
  EXPECT_FALSE(FaultPlan::parse("rlimit=any:5:10:200").has_value());
  EXPECT_FALSE(FaultPlan::parse("outage=any:1").has_value());   // missing dur
  EXPECT_FALSE(FaultPlan::parse("outage=any:-1:2").has_value());
  EXPECT_FALSE(FaultPlan::parse("error=0.1").has_value());      // no scope
  EXPECT_FALSE(FaultPlan::parse("pps=0").has_value());
  EXPECT_FALSE(FaultPlan::parse("loss=nosuchprefix/99:0.1").has_value());
}

TEST(FaultPlan, ValidRejectsOutOfRangeFields) {
  FaultPlan plan;
  plan.base_loss = 1.1;
  EXPECT_FALSE(plan.valid());
  plan = FaultPlan{}.with_rate_limit(Prefix{}, -5.0, 10.0);
  EXPECT_FALSE(plan.valid());
  plan = FaultPlan{}.with_outage(Prefix{}, 0.0, -1.0);
  EXPECT_FALSE(plan.valid());
  plan = FaultPlan{}.with_wire_pps(0.0);
  EXPECT_FALSE(plan.valid());
}

TEST(FaultPlan, CanonicalRoundTrip) {
  const auto plan = FaultPlan::parse(
      "loss=0.1,loss=2001:db8::/32:0.3,rlimit=any:5:10:32,"
      "outage=2001:db8:1::/48:1:2:8,error=any:0.05,pps=5000");
  ASSERT_TRUE(plan.has_value());
  const auto reparsed = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *plan);
  // And the textual form is a fixpoint.
  EXPECT_EQ(reparsed->to_string(), plan->to_string());
}

TEST(FaultPlan, GeneratedPlansRoundTripExactly) {
  // Seeded property test over the testutil generator: every
  // random-but-valid plan must survive to_string -> parse unchanged.
  v6::net::Rng rng = v6::net::make_rng(20240807, /*tag=*/0xFA);
  for (int i = 0; i < 200; ++i) {
    const FaultPlan plan = v6::testutil::random_fault_plan(rng);
    ASSERT_TRUE(plan.valid());
    const auto reparsed = FaultPlan::parse(plan.to_string());
    ASSERT_TRUE(reparsed.has_value()) << "spec: " << plan.to_string();
    EXPECT_EQ(*reparsed, plan) << "spec: " << plan.to_string();
  }
}

TEST(FaultPlan, GeneratedPrefixesAreNormalized) {
  v6::net::Rng rng = v6::net::make_rng(7, /*tag=*/0xF0F1);
  for (int i = 0; i < 100; ++i) {
    const Prefix p = v6::testutil::random_prefix(rng);
    EXPECT_EQ(p.addr().masked(p.length()), p.addr());
    EXPECT_GE(p.length(), 16);
    EXPECT_LE(p.length(), 64);
  }
}

}  // namespace
}  // namespace v6::fault
