// FaultyTransport fault semantics and the robust-scanner path: timeout
// charging, exponential backoff + jitter, adaptive per-prefix backoff,
// and monotonic hit recovery as loss drops.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_plan.h"
#include "fault/faulty_transport.h"
#include "net/prefix.h"
#include "net/rng.h"
#include "net/service.h"
#include "probe/scanner.h"
#include "probe/transport.h"
#include "testutil/fixtures.h"

namespace v6::fault {
namespace {

using v6::net::Ipv6Addr;
using v6::net::Prefix;
using v6::net::ProbeReply;
using v6::net::ProbeType;
using v6::probe::ScanOptions;
using v6::probe::Scanner;
using v6::probe::ScanStats;

/// A wire where every host answers: isolates the fault plane's behavior
/// from universe reply logic.
class AlwaysUpTransport final : public v6::probe::ProbeTransport {
 public:
  ProbeReply send(const Ipv6Addr&, ProbeType type) override {
    ++packets_;
    return v6::net::positive_reply(type);
  }
  std::uint64_t packets_sent() const override { return packets_; }

 private:
  std::uint64_t packets_ = 0;
};

/// A wire where nothing ever answers.
class AlwaysDownTransport final : public v6::probe::ProbeTransport {
 public:
  ProbeReply send(const Ipv6Addr&, ProbeType) override {
    ++packets_;
    return ProbeReply::kTimeout;
  }
  std::uint64_t packets_sent() const override { return packets_; }

 private:
  std::uint64_t packets_ = 0;
};

Ipv6Addr addr_n(std::uint64_t n) {
  return Ipv6Addr(0x20010db800000000ULL, n);
}

std::vector<Ipv6Addr> targets_n(std::uint64_t count) {
  std::vector<Ipv6Addr> targets;
  for (std::uint64_t i = 0; i < count; ++i) targets.push_back(addr_n(i + 1));
  return targets;
}

// ---------------------------------------------------------------------
// FaultyTransport unit semantics
// ---------------------------------------------------------------------

TEST(FaultyTransport, OutageWindowDropsThenHeals) {
  AlwaysUpTransport inner;
  // wire_pps=1: each packet advances the fault clock a full second.
  const FaultPlan plan =
      FaultPlan{}.with_outage(Prefix{}, 0.0, 2.5).with_wire_pps(1.0);
  FaultyTransport transport(inner, plan, /*seed=*/1);
  // Sends land at t=1, 2, 3: the first two fall inside [0, 2.5).
  EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp), ProbeReply::kTimeout);
  EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp), ProbeReply::kTimeout);
  EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp),
            ProbeReply::kEchoReply);
  EXPECT_EQ(transport.dropped_outage(), 2u);
  EXPECT_EQ(transport.packets_sent(), 3u);
  EXPECT_EQ(inner.packets_sent(), 1u);  // dropped probes never hit the wire
}

TEST(FaultyTransport, PeriodicOutageFlaps) {
  AlwaysUpTransport inner;
  const FaultPlan plan =
      FaultPlan{}.with_outage(Prefix{}, 0.0, 2.0, /*period_s=*/5.0)
          .with_wire_pps(1.0);
  FaultyTransport transport(inner, plan, /*seed=*/1);
  // t=1..10; outage when (t mod 5) < 2: t=1, 5, 6, 10 drop.
  int drops = 0;
  for (int t = 1; t <= 10; ++t) {
    if (transport.send(addr_n(1), ProbeType::kIcmp) == ProbeReply::kTimeout) {
      ++drops;
    }
  }
  EXPECT_EQ(drops, 4);
  EXPECT_EQ(transport.dropped_outage(), 4u);
}

TEST(FaultyTransport, OutageOnlyAffectsItsScope) {
  AlwaysUpTransport inner;
  const FaultPlan plan =
      FaultPlan{}
          .with_outage(Prefix::must_parse("2001:db8::/32"), 0.0, 1000.0)
          .with_wire_pps(1.0);
  FaultyTransport transport(inner, plan, /*seed=*/1);
  EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp), ProbeReply::kTimeout);
  const Ipv6Addr outside(0x2002000000000000ULL, 1);
  EXPECT_EQ(transport.send(outside, ProbeType::kIcmp),
            ProbeReply::kEchoReply);
}

TEST(FaultyTransport, TokenBucketBurstsThenStarves) {
  AlwaysUpTransport inner;
  // Practically frozen clock (1e9 pps): only burst tokens are available.
  const FaultPlan plan =
      FaultPlan{}.with_rate_limit(Prefix{}, /*rate=*/1.0, /*burst=*/3.0)
          .with_wire_pps(1e9);
  FaultyTransport transport(inner, plan, /*seed=*/1);
  int replies = 0;
  for (int i = 0; i < 5; ++i) {
    if (transport.send(addr_n(1), ProbeType::kIcmp) != ProbeReply::kTimeout) {
      ++replies;
    }
  }
  EXPECT_EQ(replies, 3);
  EXPECT_EQ(transport.dropped_rate_limit(), 2u);

  // Waiting refills the bucket (this is what scanner backoff leans on).
  transport.advance(2.0);
  EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp),
            ProbeReply::kEchoReply);
  EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp),
            ProbeReply::kEchoReply);
  EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp), ProbeReply::kTimeout);
}

TEST(FaultyTransport, BucketsAreIndependentPerSubPrefix) {
  AlwaysUpTransport inner;
  const FaultPlan plan =
      FaultPlan{}
          .with_rate_limit(Prefix{}, /*rate=*/1.0, /*burst=*/2.0,
                           /*bucket_prefix_len=*/64)
          .with_wire_pps(1e9);
  FaultyTransport transport(inner, plan, /*seed=*/1);
  const Ipv6Addr a(0x20010db800000000ULL, 1);
  const Ipv6Addr b(0x20010db800000001ULL, 1);  // different /64
  // Each /64 gets its own 2-token burst.
  EXPECT_NE(transport.send(a, ProbeType::kIcmp), ProbeReply::kTimeout);
  EXPECT_NE(transport.send(a, ProbeType::kIcmp), ProbeReply::kTimeout);
  EXPECT_EQ(transport.send(a, ProbeType::kIcmp), ProbeReply::kTimeout);
  EXPECT_NE(transport.send(b, ProbeType::kIcmp), ProbeReply::kTimeout);
  EXPECT_NE(transport.send(b, ProbeType::kIcmp), ProbeReply::kTimeout);
  EXPECT_EQ(transport.send(b, ProbeType::kIcmp), ProbeReply::kTimeout);
}

TEST(FaultyTransport, InjectsIcmpErrors) {
  AlwaysUpTransport inner;
  const FaultPlan plan = FaultPlan{}.with_error(Prefix{}, 1.0);
  FaultyTransport transport(inner, plan, /*seed=*/1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(transport.send(addr_n(1), ProbeType::kIcmp),
              ProbeReply::kDestUnreachable);
  }
  EXPECT_EQ(transport.injected_errors(), 10u);
  EXPECT_EQ(inner.packets_sent(), 0u);
}

TEST(FaultyTransport, LossRulesComposeAndRespectScope) {
  AlwaysUpTransport inner;
  const FaultPlan all_loss = FaultPlan{}.with_base_loss(1.0);
  FaultyTransport lossy(inner, all_loss, /*seed=*/1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lossy.send(addr_n(1), ProbeType::kIcmp), ProbeReply::kTimeout);
  }
  EXPECT_EQ(lossy.dropped_loss(), 5u);

  const FaultPlan scoped =
      FaultPlan{}.with_loss(Prefix::must_parse("2001:db8::/32"), 1.0);
  FaultyTransport scoped_lossy(inner, scoped, /*seed=*/1);
  EXPECT_EQ(scoped_lossy.send(addr_n(1), ProbeType::kIcmp),
            ProbeReply::kTimeout);
  const Ipv6Addr outside(0x2002000000000000ULL, 1);
  EXPECT_EQ(scoped_lossy.send(outside, ProbeType::kIcmp),
            ProbeReply::kEchoReply);
}

TEST(FaultyTransport, DisabledPlanIsBytePerfectPassThrough) {
  // Satellite (c) at the transport level: a FaultPlan{} decorator must
  // reproduce the bare SimTransport's reply stream exactly — same RNG
  // consumption, same replies, same packet count.
  const auto& universe = v6::testutil::small_universe();
  std::vector<Ipv6Addr> probes;
  for (const auto& host : universe.hosts()) {
    probes.push_back(host.addr);
    if (probes.size() == 500) break;
  }
  const FaultPlan disabled;
  ASSERT_FALSE(disabled.enabled());

  v6::probe::SimTransport bare(universe, /*seed=*/9);
  v6::probe::SimTransport inner(universe, /*seed=*/9);
  FaultyTransport decorated(inner, disabled, /*seed=*/9);
  for (const Ipv6Addr& addr : probes) {
    EXPECT_EQ(bare.send(addr, ProbeType::kIcmp),
              decorated.send(addr, ProbeType::kIcmp));
  }
  EXPECT_EQ(bare.packets_sent(), decorated.packets_sent());
}

// ---------------------------------------------------------------------
// Robust scanner path
// ---------------------------------------------------------------------

TEST(RobustScanner, ProbeTimeoutChargesVirtualTime) {
  AlwaysDownTransport transport;
  Scanner scanner(transport, nullptr,
                  ScanOptions{}
                      .with_retries(0)
                      .with_max_pps(1000.0)
                      .with_probe_timeout(0.5));
  const auto targets = targets_n(4);
  const ScanStats stats = scanner.scan(targets, ProbeType::kIcmp, nullptr);
  EXPECT_EQ(stats.timeouts, 4u);
  // Each probe waits 0.5 s for the reply that never comes; the pacing
  // gap (1/1000 s) is absorbed by the wait, which also credits the rate
  // limiter.
  EXPECT_GE(stats.virtual_seconds, 4 * 0.5);
  EXPECT_NEAR(stats.virtual_seconds, 4 * 0.5, 0.01);
}

TEST(RobustScanner, ExponentialBackoffAccounting) {
  AlwaysDownTransport transport;
  Scanner scanner(transport, nullptr,
                  ScanOptions{}.with_retries(3).with_retry_backoff(1.0));
  const auto targets = targets_n(2);
  const ScanStats stats = scanner.scan(targets, ProbeType::kIcmp, nullptr);
  // Per target: waits of 1, 2, 4 seconds before retries 1..3.
  EXPECT_EQ(stats.retransmissions, 6u);
  EXPECT_EQ(stats.backoffs, 6u);
  EXPECT_NEAR(stats.backoff_seconds, 2 * (1.0 + 2.0 + 4.0), 1e-9);
  EXPECT_EQ(transport.packets_sent(), 8u);  // 2 targets x 4 attempts
}

TEST(RobustScanner, JitterIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    AlwaysDownTransport transport;
    Scanner scanner(transport, nullptr,
                    ScanOptions{}
                        .with_seed(seed)
                        .with_retries(2)
                        .with_retry_backoff(1.0, /*jitter=*/0.5));
    const auto targets = targets_n(8);
    return scanner.scan(targets, ProbeType::kIcmp, nullptr).backoff_seconds;
  };
  EXPECT_DOUBLE_EQ(run(9), run(9));  // same seed: bit-identical waits
  EXPECT_NE(run(9), run(10));        // jitter actually draws per seed
  // Jittered waits stay within [1-j, 1+j] of the nominal schedule.
  const double nominal = 8 * (1.0 + 2.0);
  EXPECT_GE(run(9), nominal * 0.5);
  EXPECT_LE(run(9), nominal * 1.5);
}

TEST(RobustScanner, AdaptiveBackoffRecoversRateLimitedPrefix) {
  const FaultPlan plan =
      FaultPlan{}.with_rate_limit(Prefix{}, /*rate=*/50.0, /*burst=*/5.0)
          .with_wire_pps(10'000.0);
  const auto run = [&](const ScanOptions& options) {
    AlwaysUpTransport inner;
    FaultyTransport transport(inner, plan, /*seed=*/3);
    Scanner scanner(transport, nullptr, options);
    const auto targets = targets_n(100);
    return scanner.scan(targets, ProbeType::kIcmp, nullptr).hits;
  };
  const std::uint64_t naive = run(ScanOptions{}.with_retries(0));
  const std::uint64_t adaptive = run(ScanOptions{}
                                         .with_retries(0)
                                         .with_adaptive_backoff(
                                             /*threshold=*/3, /*wait_s=*/1.0));
  // Without cool-downs only the 5-token burst answers (plus a trickle);
  // adaptive waits refill the bucket and recover most of the prefix.
  EXPECT_LE(naive, 10u);
  EXPECT_GE(adaptive, 3 * naive);
}

TEST(RobustScanner, RetriesMonotonicallyRecoverHitsAsLossDrops) {
  // Satellite (b) at the scanner level: sweep the loss grid under both
  // retry policies; hits must not decrease as loss drops, and the
  // retrying scanner must dominate at every nonzero loss point.
  const auto run = [](double loss, int retries) {
    AlwaysUpTransport inner;
    const FaultPlan plan = FaultPlan{}.with_base_loss(loss);
    FaultyTransport transport(inner, plan, /*seed=*/5);
    Scanner scanner(transport, nullptr,
                    ScanOptions{}.with_seed(5).with_retries(retries));
    const auto targets = targets_n(2000);
    return scanner.scan(targets, ProbeType::kIcmp, nullptr).hits;
  };
  const std::vector<double> losses = {0.6, 0.3, 0.1, 0.0};
  std::uint64_t prev_naive = 0, prev_robust = 0;
  for (const double loss : losses) {
    const std::uint64_t naive = run(loss, 0);
    const std::uint64_t robust = run(loss, 3);
    EXPECT_GE(naive, prev_naive) << "loss=" << loss;
    EXPECT_GE(robust, prev_robust) << "loss=" << loss;
    if (loss > 0.0) {
      EXPECT_GT(robust, naive) << "loss=" << loss;
    } else {
      EXPECT_EQ(naive, 2000u);
      EXPECT_EQ(robust, 2000u);
    }
    prev_naive = naive;
    prev_robust = robust;
  }
}

TEST(RobustScanner, DefaultOptionsDrawNoExtraRandomness) {
  // Two scanners over the same universe seed, one constructed with the
  // robust knobs all explicitly zero, must replay identically — the
  // robust path may not perturb the legacy RNG streams when disabled.
  const auto& universe = v6::testutil::small_universe();
  std::vector<Ipv6Addr> probes;
  for (const auto& host : universe.hosts()) {
    probes.push_back(host.addr);
    if (probes.size() == 400) break;
  }
  const auto run = [&](const ScanOptions& options) {
    v6::probe::SimTransport transport(universe, /*seed=*/11);
    Scanner scanner(transport, nullptr, options);
    return scanner.scan_hits(probes, ProbeType::kIcmp).hits;
  };
  const auto legacy = run(ScanOptions{}.with_seed(11));
  const auto robust_zeroed = run(ScanOptions{}
                                     .with_seed(11)
                                     .with_probe_timeout(0.0)
                                     .with_retry_backoff(0.0, 0.0)
                                     .with_adaptive_backoff(0, 0.0));
  EXPECT_EQ(legacy, robust_zeroed);
}

}  // namespace
}  // namespace v6::fault
