// Fuzz harness for the address-list and seed-dataset file parsers
// (src/io/address_file.cc) — the interchange formats a real deployment
// would read from disk.
//
// Invariants checked on arbitrary input text:
//   - every non-comment line is counted exactly once
//     (lines == parsed + malformed)
//   - the parsed address count matches the report
//   - write_address_list() output reparses losslessly with 0 malformed
//   - parse_seed_dataset() never yields more unique addresses than
//     parsed lines, and write/parse round-trips addresses + source masks
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string_view>
#include <vector>

#include "fuzz_check.h"
#include "io/address_file.h"
#include "net/ipv6.h"
#include "seeds/seed_dataset.h"

using v6::net::Ipv6Addr;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  std::vector<Ipv6Addr> addrs;
  const auto report = v6::io::parse_address_list(text, addrs);
  FUZZ_CHECK(report.lines == report.parsed + report.malformed,
             "every non-comment line must be counted exactly once");
  FUZZ_CHECK(addrs.size() == report.parsed,
             "appended address count must match the report");

  std::ostringstream os;
  v6::io::write_address_list(os, addrs);
  std::vector<Ipv6Addr> again;
  const auto report2 = v6::io::parse_address_list(os.str(), again);
  FUZZ_CHECK(report2.malformed == 0,
             "written address lists must reparse cleanly");
  FUZZ_CHECK(again == addrs, "address list write/parse must round-trip");

  v6::io::ParseReport seed_report;
  const auto dataset = v6::io::parse_seed_dataset(text, &seed_report);
  FUZZ_CHECK(seed_report.lines == seed_report.parsed + seed_report.malformed,
             "every non-comment line must be counted exactly once");
  FUZZ_CHECK(dataset.size() <= seed_report.parsed,
             "unique addresses cannot exceed parsed lines");

  std::ostringstream ds;
  v6::io::write_seed_dataset(ds, dataset);
  v6::io::ParseReport seed_report2;
  const auto dataset2 = v6::io::parse_seed_dataset(ds.str(), &seed_report2);
  FUZZ_CHECK(seed_report2.malformed == 0,
             "written seed datasets must reparse cleanly");
  FUZZ_CHECK(dataset2.size() == dataset.size(),
             "seed dataset write/parse must preserve the address count");
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    FUZZ_CHECK(dataset2.addrs()[i] == dataset.addrs()[i],
               "seed dataset write/parse must preserve address order");
    FUZZ_CHECK(dataset2.sources_of(i) == dataset.sources_of(i),
               "seed dataset write/parse must preserve source masks");
  }

  return 0;
}
