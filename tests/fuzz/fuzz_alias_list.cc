// Fuzz harness for AliasList::load() (src/dealias/alias_list.cc) — the
// parser for published alias-prefix lists, the one input format pulled
// straight off the public internet in a real deployment.
//
// Invariants checked on arbitrary input text:
//   - load() reports exactly the number of prefixes added
//   - every loaded prefix is normalized and covers its own base address
//   - write_alias_list() output reloads to the identical prefix sequence
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string_view>

#include "dealias/alias_list.h"
#include "fuzz_check.h"
#include "io/address_file.h"
#include "net/prefix.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  v6::dealias::AliasList list;
  const std::size_t added = list.load(text);
  FUZZ_CHECK(added == list.size(),
             "load() must report the number of prefixes added");

  for (const v6::net::Prefix& prefix : list.prefixes()) {
    FUZZ_CHECK(prefix.addr().masked(prefix.length()) == prefix.addr(),
               "loaded prefixes must be stored normalized");
    FUZZ_CHECK(list.contains(prefix.addr()),
               "every loaded prefix must cover its own base address");
  }

  std::ostringstream os;
  v6::io::write_alias_list(os, list);
  v6::dealias::AliasList again;
  const std::size_t reloaded = again.load(os.str());
  FUZZ_CHECK(reloaded == added,
             "written alias lists must reload the same prefix count");
  for (std::size_t i = 0; i < added; ++i) {
    FUZZ_CHECK(again.prefixes()[i] == list.prefixes()[i],
               "alias list write/load must round-trip prefixes in order");
  }

  return 0;
}
