// Shared failure macro for the fuzz harnesses. Aborts so both the
// standalone driver and libFuzzer treat a violated invariant as a crash
// and report the offending input.
#pragma once

#include <cstdio>
#include <cstdlib>

#define FUZZ_CHECK(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "FUZZ_CHECK failed at %s:%d: %s\n  %s\n", \
                   __FILE__, __LINE__, #cond, msg);                  \
      std::abort();                                                  \
    }                                                                \
  } while (false)
