// Fuzz harness for the CSV writer's RFC 4180 quoting
// (src/io/csv.cc). There is no CSV reader in the tree — results flow
// out to external tools — so the harness carries a minimal strict
// RFC 4180 reader and checks that whatever write_csv_row() emits parses
// back to the exact original cells, for cells containing arbitrary
// bytes (commas, quotes, CR/LF, NULs).
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_check.h"
#include "io/csv.h"

namespace {

// Strict RFC 4180 reader for exactly one '\n'-terminated row. Returns
// false on any framing violation (which would mean the writer emitted
// output an external tool could mis-split).
bool read_one_row(const std::string& text, std::vector<std::string>& out) {
  out.clear();
  std::string cell;
  std::size_t i = 0;
  while (true) {
    cell.clear();
    if (i < text.size() && text[i] == '"') {  // quoted cell
      ++i;
      while (true) {
        if (i >= text.size()) return false;  // unterminated quote
        if (text[i] == '"') {
          if (i + 1 < text.size() && text[i + 1] == '"') {
            cell.push_back('"');
            i += 2;
          } else {
            ++i;  // closing quote
            break;
          }
        } else {
          cell.push_back(text[i++]);
        }
      }
      if (i >= text.size()) return false;
      if (text[i] != ',' && text[i] != '\n') return false;
    } else {  // bare cell: runs to ',' or '\n', must not contain CR or '"'
      while (i < text.size() && text[i] != ',' && text[i] != '\n') {
        if (text[i] == '"' || text[i] == '\r') return false;
        cell.push_back(text[i++]);
      }
      if (i >= text.size()) return false;  // missing terminator
    }
    out.push_back(cell);
    if (text[i] == '\n') return i + 1 == text.size();  // exactly one row
    ++i;  // skip ','
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Derive a row shape from the input: first byte picks 1..6 columns,
  // the rest is split evenly into cells of arbitrary bytes.
  const std::size_t columns = size == 0 ? 1 : 1 + data[0] % 6;
  const std::uint8_t* body = size == 0 ? data : data + 1;
  const std::size_t body_size = size == 0 ? 0 : size - 1;

  std::vector<std::string> cells(columns);
  const std::size_t chunk = body_size / columns;
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = (c + 1 == columns) ? body_size : begin + chunk;
    cells[c].assign(reinterpret_cast<const char*>(body + begin), end - begin);
  }

  std::ostringstream os;
  v6::io::write_csv_row(os, cells);
  const std::string line = os.str();
  FUZZ_CHECK(!line.empty() && line.back() == '\n',
             "a written row must be newline-terminated");

  std::vector<std::string> parsed;
  FUZZ_CHECK(read_one_row(line, parsed),
             "written row violates RFC 4180 framing");
  FUZZ_CHECK(parsed == cells, "CSV quoting must round-trip arbitrary bytes");

  // The streaming writer must reject width mismatches and count rows.
  std::ostringstream ws;
  v6::io::CsvWriter writer(ws, std::vector<std::string>(columns, "h"));
  writer.row(cells);
  FUZZ_CHECK(writer.rows_written() == 1, "row count must track writes");
  bool threw = false;
  try {
    writer.row(std::vector<std::string>(columns + 1, "x"));
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  FUZZ_CHECK(threw, "width mismatch must be rejected");

  return 0;
}
