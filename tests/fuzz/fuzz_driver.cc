// Standalone deterministic driver for the fuzz harnesses.
//
// The project's default toolchain (gcc) ships no libFuzzer runtime, so
// by default each harness links this driver instead: it replays every
// corpus file verbatim, then runs a fixed number of mutated inputs
// derived from a SplitMix64 stream. Same binary + same corpus + same
// --iters produces the same byte sequences, which makes the smoke-run
// ctests reproducible.
//
// Configuring with -DV6_LIBFUZZER=ON (clang only) links the harnesses
// against -fsanitize=fuzzer and this file is not compiled at all.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// Local PRNG rather than src/net/rng.h: the driver must stay
// dependency-free so a broken library still leaves the fuzzers buildable.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  // Unbiased enough for mutation scheduling.
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

constexpr std::size_t kMaxInput = 4096;

// One in-place mutation step. Mirrors the classic byte-level mutators:
// flip, overwrite, insert, erase, truncate, and cross-corpus splice.
void mutate(std::vector<std::uint8_t>& buf,
            const std::vector<std::vector<std::uint8_t>>& corpus,
            SplitMix64& rng) {
  switch (rng.below(6)) {
    case 0:  // flip one bit
      if (!buf.empty()) buf[rng.below(buf.size())] ^= 1u << rng.below(8);
      break;
    case 1:  // overwrite one byte with an arbitrary value
      if (!buf.empty()) {
        buf[rng.below(buf.size())] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 2:  // insert a byte
      if (buf.size() < kMaxInput) {
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(buf.size() + 1)),
                   static_cast<std::uint8_t>(rng.next()));
      }
      break;
    case 3:  // erase a byte
      if (!buf.empty()) {
        buf.erase(buf.begin() +
                  static_cast<std::ptrdiff_t>(rng.below(buf.size())));
      }
      break;
    case 4:  // truncate
      if (!buf.empty()) buf.resize(rng.below(buf.size()));
      break;
    case 5:  // splice a slice of another corpus entry onto the tail
      if (!corpus.empty()) {
        const auto& other = corpus[rng.below(corpus.size())];
        if (!other.empty()) {
          const std::size_t start = rng.below(other.size());
          const std::size_t take =
              std::min({rng.below(other.size() - start) + 1,
                        other.size() - start, kMaxInput - buf.size()});
          buf.insert(buf.end(), other.begin() + static_cast<std::ptrdiff_t>(start),
                     other.begin() + static_cast<std::ptrdiff_t>(start + take));
        }
      }
      break;
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--iters N] <corpus-dir-or-file>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 2000;
  std::vector<std::filesystem::path> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      iters = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  // Directory iteration order is unspecified; sort so the mutation
  // schedule is identical across filesystems.
  std::vector<std::filesystem::path> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "fuzz: no such corpus input: %s\n",
                   root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(files.size());
  for (const auto& path : files) corpus.push_back(read_file(path));

  // Phase 1: replay the corpus verbatim.
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  // Phase 2: deterministic mutations seeded from a fixed constant.
  SplitMix64 rng{0x5eed0f5ca44e5ULL};
  std::vector<std::uint8_t> buf;
  for (std::size_t i = 0; i < iters; ++i) {
    if (corpus.empty()) {
      buf.clear();
    } else {
      buf = corpus[rng.below(corpus.size())];
    }
    const std::size_t steps = 1 + rng.below(4);
    for (std::size_t s = 0; s < steps; ++s) mutate(buf, corpus, rng);
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }

  std::printf("fuzz: %zu corpus inputs replayed, %zu mutated iterations, ok\n",
              corpus.size(), iters);
  return 0;
}
