// Fuzz harness for the fault-spec parser (`sos --faults <spec>`), the
// untrusted-input surface of the fault-injection layer.
//
// Invariants checked on every input that parses:
//   - the parsed plan passes valid() (parse() must never hand back a
//     plan the pipeline would reject)
//   - to_string() re-parses to an equal plan (round-trip)
//   - to_string() is a fixpoint: serializing the re-parsed plan yields
//     the same canonical text
//   - enabled() agrees with the plan having any effect configured
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fault/fault_plan.h"
#include "fuzz_check.h"

using v6::fault::FaultPlan;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  const auto plan = FaultPlan::parse(text);
  if (!plan.has_value()) return 0;

  FUZZ_CHECK(plan->valid(), "parse() must only return valid plans");

  const std::string canonical = plan->to_string();
  const auto again = FaultPlan::parse(canonical);
  FUZZ_CHECK(again.has_value(), "canonical form must re-parse");
  FUZZ_CHECK(*again == *plan, "canonical round-trip changed the plan");
  FUZZ_CHECK(again->to_string() == canonical,
             "to_string() must be a fixpoint on its own output");

  const bool has_effect = plan->base_loss > 0.0 || !plan->loss_rules.empty() ||
                          !plan->rate_limits.empty() ||
                          !plan->outages.empty() || !plan->errors.empty();
  FUZZ_CHECK(plan->enabled() == has_effect,
             "enabled() must reflect configured fault rules");

  return 0;
}
