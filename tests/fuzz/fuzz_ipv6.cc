// Fuzz harness for the IPv6 address and prefix text parsers — the
// lowest-level untrusted-input surface (every seed file, hitlist, and
// alias list funnels through these).
//
// Invariants checked on every input that parses:
//   - to_string() (RFC 5952 compressed) round-trips to the same address
//   - to_full_string() is exactly 39 chars and round-trips
//   - nybble get/set is an identity
//   - masked() is idempotent and only ever clears bits
//   - a parsed Prefix is normalized and contains its own base address
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_check.h"
#include "net/ipv6.h"
#include "net/prefix.h"

using v6::net::Ipv6Addr;
using v6::net::Prefix;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  if (const auto addr = Ipv6Addr::parse(text)) {
    const std::string compressed = addr->to_string();
    const auto again = Ipv6Addr::parse(compressed);
    FUZZ_CHECK(again && *again == *addr,
               "RFC 5952 round-trip changed the address");

    const std::string full = addr->to_full_string();
    FUZZ_CHECK(full.size() == 39, "full form must be 8 groups of 4 digits");
    const auto full_again = Ipv6Addr::parse(full);
    FUZZ_CHECK(full_again && *full_again == *addr,
               "full-form round-trip changed the address");

    for (int i = 0; i < Ipv6Addr::kNybbles; ++i) {
      FUZZ_CHECK(addr->with_nybble(i, addr->nybble(i)) == *addr,
                 "nybble get/set must be an identity");
    }

    for (int len = 0; len <= Ipv6Addr::kBits; ++len) {
      const Ipv6Addr m = addr->masked(len);
      FUZZ_CHECK(m.masked(len) == m, "masked() must be idempotent");
      for (int b = 0; b < len; ++b) {
        if (m.bit(b) != addr->bit(b)) {
          FUZZ_CHECK(false, "masked() changed a bit inside the prefix");
        }
      }
    }
  }

  if (const auto prefix = Prefix::parse(text)) {
    const auto again = Prefix::parse(prefix->to_string());
    FUZZ_CHECK(again && *again == *prefix,
               "prefix CIDR round-trip changed the prefix");
    FUZZ_CHECK(prefix->length() >= 0 && prefix->length() <= 128,
               "prefix length out of range");
    FUZZ_CHECK(prefix->addr().masked(prefix->length()) == prefix->addr(),
               "stored prefix address must have host bits cleared");
    FUZZ_CHECK(prefix->contains(prefix->addr()),
               "a prefix must contain its own base address");
    FUZZ_CHECK(prefix->contains(*prefix),
               "a prefix must contain itself");
  }

  return 0;
}
