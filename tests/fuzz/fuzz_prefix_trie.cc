// Fuzz harness for net::PrefixTrie, differential against a brute-force
// linear oracle. The trie carries the routing table, the alias regions,
// and (procedural universes) the per-/32 plan index — one longest-match
// walk per simulated packet — so a structural bug would silently
// corrupt scan ground truth.
//
// Input is a little program of fixed 18-byte records:
//   byte 0        opcode (even = insert, odd = query)
//   bytes 1..16   an IPv6 address, big-endian
//   byte 17       prefix length (mod 129; query records ignore it)
// Insert adds (Prefix(addr, len), value) to both structures; query
// checks longest_match agreement (presence, value, matched length) on
// the raw address. A final pass checks size and re-queries every
// inserted base address.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "fuzz_check.h"
#include "net/ipv6.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

using v6::net::Ipv6Addr;
using v6::net::Prefix;
using v6::net::PrefixTrie;

namespace {

constexpr std::size_t kRecord = 18;
constexpr std::size_t kMaxInserts = 512;  // bound oracle quadratic cost

Ipv6Addr read_addr(const std::uint8_t* p) {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | p[i];
  for (int i = 8; i < 16; ++i) lo = (lo << 8) | p[i];
  return Ipv6Addr(hi, lo);
}

std::optional<std::pair<int, int>> oracle_match(
    const std::vector<std::pair<Prefix, int>>& entries,
    const Ipv6Addr& addr) {
  std::optional<std::pair<int, int>> best;  // (value, length)
  for (const auto& [p, v] : entries) {
    if (p.contains(addr) && (!best || p.length() > best->second)) {
      best = {v, p.length()};
    }
  }
  return best;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  PrefixTrie<int> trie;
  std::vector<std::pair<Prefix, int>> oracle;
  int next_value = 0;

  for (std::size_t off = 0; off + kRecord <= size; off += kRecord) {
    const std::uint8_t op = data[off];
    const Ipv6Addr addr = read_addr(data + off + 1);
    if (op % 2 == 0 && oracle.size() < kMaxInserts) {
      const int len = data[off + 17] % 129;
      const Prefix prefix(addr, len);  // constructor masks host bits
      const int value = next_value++;
      trie.insert(prefix, value);
      bool replaced = false;
      for (auto& [p, v] : oracle) {
        if (p == prefix) {
          v = value;
          replaced = true;
          break;
        }
      }
      if (!replaced) oracle.emplace_back(prefix, value);
    } else {
      int trie_len = -1;
      const int* got = trie.longest_match(addr, trie_len);
      const auto want = oracle_match(oracle, addr);
      FUZZ_CHECK((got != nullptr) == want.has_value(),
                 "trie and oracle disagree on coverage");
      if (got != nullptr) {
        FUZZ_CHECK(*got == want->first,
                   "trie returned a non-most-specific value");
        FUZZ_CHECK(trie_len == want->second,
                   "trie reported the wrong matched length");
      }
      FUZZ_CHECK(trie.covers(addr) == want.has_value(),
                 "covers() disagrees with longest_match()");
    }
  }

  FUZZ_CHECK(trie.size() == oracle.size(),
             "size() must count distinct prefixes");
  for (const auto& [p, v] : oracle) {
    const int* found = trie.find(p);
    FUZZ_CHECK(found != nullptr && *found == v,
               "exact find() lost an inserted prefix");
    const auto want = oracle_match(oracle, p.addr());
    int trie_len = -1;
    const int* got = trie.longest_match(p.addr(), trie_len);
    FUZZ_CHECK(got != nullptr && *got == want->first &&
                   trie_len == want->second,
               "base-address longest_match diverged from oracle");
  }
  return 0;
}
