// Fuzz harness for the trace-event surface: the strict JSON parser
// (obs/trace_reader.h), the JSON-lines event codec, and the histogram
// detail encoding. These parse `sos report` input — a file the user
// hands us, i.e. untrusted.
//
// Invariants checked:
//   - json_parse never crashes and never half-fills the output value
//   - a line that decodes to an Event re-serializes (to_json) and
//     re-parses to the identical event (codec round-trip / fixpoint)
//   - a parseable hist detail re-encodes bit-identically
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_check.h"
#include "obs/histogram.h"
#include "obs/sinks.h"
#include "obs/trace_reader.h"

namespace obs = v6::obs;

namespace {

bool events_equal(const obs::Event& a, const obs::Event& b) {
  return a.kind == b.kind && a.path == b.path && a.detail == b.detail &&
         a.at == b.at && a.seconds == b.seconds && a.value == b.value;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  // The general parser must be total: accept or reject, never crash.
  obs::JsonValue value;
  (void)obs::json_parse(text, &value);

  const auto event = obs::parse_trace_line(text);
  if (event.has_value()) {
    const std::string canonical = obs::JsonLinesSink::to_json(*event);
    const auto again = obs::parse_trace_line(canonical);
    FUZZ_CHECK(again.has_value(), "canonical event line must re-parse");
    FUZZ_CHECK(events_equal(*event, *again),
               "event codec round-trip changed the event");
    FUZZ_CHECK(obs::JsonLinesSink::to_json(*again) == canonical,
               "to_json must be a fixpoint on its own output");

    if (event->kind == obs::Event::Kind::kHist) {
      obs::HistogramTotal total;
      if (obs::parse_histogram(event->detail, &total)) {
        obs::HistogramTotal reparsed;
        FUZZ_CHECK(
            obs::parse_histogram(obs::encode_histogram(total), &reparsed),
            "canonical hist detail must re-parse");
        FUZZ_CHECK(reparsed == total,
                   "hist detail round-trip changed the totals");
      }
    }
  }

  // The histogram detail parser is also reachable with raw input.
  obs::HistogramTotal total;
  (void)obs::parse_histogram(text, &total);

  return 0;
}
