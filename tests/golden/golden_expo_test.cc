// Golden regression for the Prometheus text exposition
// (src/obs/expo.h): pins the exact bytes render_exposition produces for
// a fixed synthetic Report. The introspection plane's contract is that
// equal Reports render to equal bytes — scrape diffs and dashboards
// depend on stable family ordering, name sanitization, and number
// formatting, none of which the metric-value tests see.
//
// Update procedure (only when an intentional format change lands):
//
//   V6_UPDATE_GOLDEN=1 ./build/tests/golden_expo_test
//
// rewrites tests/golden/golden_expo.txt in the source tree; review the
// diff and say WHY the format moved in the commit message.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/expo.h"
#include "obs/registry.h"

#ifndef V6_GOLDEN_DIR
#error "V6_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace v6::obs {
namespace {

constexpr const char* kGoldenPath = V6_GOLDEN_DIR "/golden_expo.txt";

/// A fixed synthetic registry covering every metric kind and the
/// sanitization edge cases: dotted names, the `.wall` family, a
/// negative gauge, a sub-second timer, and a histogram spanning three
/// octaves. Everything is pinned — no scan, no clock.
Report reference_report() {
  Registry registry;
  registry.counter("scanner.packets").add(33'924);
  registry.counter("scanner.hits").add(10'790);
  registry.counter("watchdog.trips.wall").add(1);
  registry.gauge("service.epoch_version").set(7);
  registry.gauge("service.depth.delta").set(-3);
  registry.gauge("stream.queue.reply.hwm.wall").set(64);
  registry.timer("pipeline.scan").add_raw(/*count=*/12,
                                          /*nanos=*/2'500'000'000ULL);
  registry.timer("transport.ICMP.wire_seconds")
      .add_raw(/*count=*/3, /*nanos=*/123'456'789ULL);
  Histogram& rtt = registry.histogram("transport.rtt_seconds");
  rtt.record(0.001);
  rtt.record(0.002);
  rtt.record(0.004);
  rtt.record(0.004);
  rtt.record(0.032);
  return registry.snapshot();
}

TEST(GoldenExpo, ExpositionMatchesCheckedInGolden) {
  const std::string actual = render_exposition(reference_report());

  if (std::getenv("V6_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden updated: " << kGoldenPath
                 << " — review and commit the diff";
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << "; run with V6_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();

  if (actual == expected.str()) return;
  std::istringstream actual_lines(actual), expected_lines(expected.str());
  std::string a, e;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool more_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool more_e = static_cast<bool>(std::getline(expected_lines, e));
    if (!more_a && !more_e) break;
    ASSERT_EQ(more_a, more_e)
        << "golden and actual diverge in length at line " << line;
    ASSERT_EQ(a, e) << "first golden mismatch at line " << line
                    << " (update procedure: see test header)";
  }
  FAIL() << "golden mismatch";  // unreachable: the loop pinpoints it
}

// The byte-stability claim itself: rendering the same Report twice (and
// a re-built equal Report) yields identical bytes, and the document
// round-trips through the independent parser.
TEST(GoldenExpo, RenderingIsByteStableAndParses) {
  const std::string first = render_exposition(reference_report());
  const std::string second = render_exposition(reference_report());
  EXPECT_EQ(first, second);

  ExpoDoc doc;
  std::string error;
  ASSERT_TRUE(parse_exposition(first, &doc, &error)) << error;
  EXPECT_FALSE(doc.families.empty());
  EXPECT_FALSE(doc.samples.empty());
}

}  // namespace
}  // namespace v6::obs
