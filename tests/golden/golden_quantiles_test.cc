// Golden regression test for the deterministic metrics layer: pins the
// virtual-clock histogram totals (bucket-exact) and wire timers of a
// small reference run to a checked-in text file. Catches silent shifts
// in the RTT model, the wire-charging rules, and the histogram bucket
// math — none of which the outcome golden (golden_sweep_test.cc) sees.
//
// Update procedure (only when an intentional behavior change lands):
//
//   V6_UPDATE_GOLDEN=1 ./build/tests/golden_quantiles_test
//
// rewrites tests/golden/golden_quantiles.txt in the source tree; review
// the diff and say WHY the distributions moved in the commit message.
// Totals are serialized as integer fixed-point units and quantiles as
// %.17g doubles, so the comparison is bit-exact.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/session.h"
#include "experiment/workbench.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "tga/registry.h"

#ifndef V6_GOLDEN_DIR
#error "V6_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace v6::experiment {
namespace {

constexpr const char* kGoldenPath = V6_GOLDEN_DIR "/golden_quantiles.txt";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool is_wall(const std::string& name) {
  return name.size() >= 5 && name.compare(name.size() - 5, 5, ".wall") == 0;
}

/// The reference run: two TGAs, fault-free, jobs=1, over the same small
/// dedicated workbench the outcome golden uses. Every knob is pinned.
std::string serialize_reference_quantiles() {
  WorkbenchConfig wb;
  wb.seed = 404;
  wb.universe.seed = 404;
  wb.universe.num_ases = 150;
  wb.universe.host_scale = 0.12;
  wb.universe.dense_region_prefix_len = 52;
  v6::obs::Telemetry telemetry;
  Workbench bench(wb);

  ScanSession(bench.universe(), bench.alias_list())
      .with_kinds(std::vector<v6::tga::TgaKind>{v6::tga::TgaKind::kDet,
                                                v6::tga::TgaKind::kSixTree})
      .with_seeds(bench.all_active())
      .with_config(PipelineConfig{}.with_budget(15'000).with_batch_size(5'000))
      .with_telemetry(&telemetry)
      .with_jobs(1)
      .sweep();

  const v6::obs::Report report = telemetry.registry().snapshot();
  std::ostringstream out;
  out << "# golden quantiles v1 (see test header for the update "
         "procedure)\n";
  for (const auto& [name, t] : report.histograms) {
    if (is_wall(name)) continue;  // host time: not deterministic
    out << "histogram: " << name << "\n";
    out << "count: " << t.count << "\n";
    out << "zeros: " << t.zeros << "\n";
    out << "sum_units: " << t.sum_units << "\n";
    out << "min_units: " << t.min_units << "\n";
    out << "max_units: " << t.max_units << "\n";
    out << "buckets:";
    for (const auto& [index, n] : t.buckets) out << " " << index << ":" << n;
    out << "\n";
    out << "p50: " << fmt_double(t.quantile(0.50)) << "\n";
    out << "p90: " << fmt_double(t.quantile(0.90)) << "\n";
    out << "p99: " << fmt_double(t.quantile(0.99)) << "\n";
  }
  for (const auto& [name, t] : report.timers) {
    if (name.find(".wire_seconds") == std::string::npos) continue;
    out << "timer: " << name << "\n";
    out << "count: " << t.count << "\n";
    out << "nanos: " << t.nanos << "\n";
  }
  return out.str();
}

TEST(GoldenQuantiles, DistributionsMatchCheckedInGolden) {
  const std::string actual = serialize_reference_quantiles();

  if (std::getenv("V6_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden updated: " << kGoldenPath
                 << " — review and commit the diff";
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << "; run with V6_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();

  if (actual == expected.str()) return;
  std::istringstream actual_lines(actual), expected_lines(expected.str());
  std::string a, e;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool more_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool more_e = static_cast<bool>(std::getline(expected_lines, e));
    if (!more_a && !more_e) break;
    ASSERT_EQ(more_a, more_e) << "golden and actual diverge in length at line "
                              << line;
    ASSERT_EQ(a, e) << "first golden mismatch at line " << line
                    << " (update procedure: see test header)";
  }
  FAIL() << "golden mismatch";  // unreachable: the loop pinpoints it
}

}  // namespace
}  // namespace v6::experiment
