// Golden regression test: pins the full ScanOutcomes of a small
// fault-free reference sweep to a checked-in text file, so transport or
// pipeline refactors cannot silently shift results.
//
// Update procedure (only when an intentional behavior change lands):
//
//   V6_UPDATE_GOLDEN=1 ./build/tests/golden_sweep_test
//
// rewrites tests/golden/golden_sweep.txt in the source tree; review the
// diff like any other code change and say WHY the outcomes moved in the
// commit message. The serialization is deliberately plain line-oriented
// text (sorted hit/AS sets, %.17g doubles) so the diff itself shows
// which addresses appeared or vanished.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/session.h"
#include "experiment/workbench.h"
#include "metrics/scan_outcome.h"
#include "net/ipv6.h"
#include "tga/registry.h"

#ifndef V6_GOLDEN_DIR
#error "V6_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace v6::experiment {
namespace {

constexpr const char* kGoldenPath = V6_GOLDEN_DIR "/golden_sweep.txt";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The reference sweep: three cheap TGAs, fault-free, jobs=1, over a
/// small dedicated workbench. Every knob is pinned here — changing any
/// of them is a golden update by definition.
std::string serialize_reference_sweep() {
  WorkbenchConfig wb;
  wb.seed = 404;
  wb.universe.seed = 404;
  wb.universe.num_ases = 150;
  wb.universe.host_scale = 0.12;
  wb.universe.dense_region_prefix_len = 52;
  Workbench bench(wb);

  const auto runs =
      ScanSession(bench.universe(), bench.alias_list())
          .with_kinds(std::vector<v6::tga::TgaKind>{
              v6::tga::TgaKind::kDet, v6::tga::TgaKind::kSixTree,
              v6::tga::TgaKind::kSixScan})
          .with_seeds(bench.all_active())
          .with_config(PipelineConfig{}.with_budget(15'000).with_batch_size(
              5'000))
          .with_jobs(1)
          .sweep();

  std::ostringstream out;
  out << "# golden reference sweep v1 (see test header for the update "
         "procedure)\n";
  for (const TgaRun& run : runs) {
    const v6::metrics::ScanOutcome& o = run.outcome;
    out << "tga: " << v6::tga::to_string(run.kind) << "\n";
    out << "generated: " << o.generated << "\n";
    out << "unique_generated: " << o.unique_generated << "\n";
    out << "responsive: " << o.responsive << "\n";
    out << "aliases: " << o.aliases << "\n";
    out << "dense_filtered: " << o.dense_filtered << "\n";
    out << "packets: " << o.packets << "\n";
    out << "virtual_seconds: " << fmt_double(o.virtual_seconds) << "\n";
    out << "hits: " << o.hits() << "\n";
    out << "ases: " << o.ases() << "\n";

    std::vector<v6::net::Ipv6Addr> hits(o.hit_set.begin(), o.hit_set.end());
    std::sort(hits.begin(), hits.end());
    for (const v6::net::Ipv6Addr& addr : hits) {
      out << "hit: " << addr.to_string() << "\n";
    }
    std::vector<std::uint32_t> ases(o.as_set.begin(), o.as_set.end());
    std::sort(ases.begin(), ases.end());
    out << "as_set:";
    for (const std::uint32_t asn : ases) out << " " << asn;
    out << "\n";
  }
  return out.str();
}

TEST(GoldenSweep, OutcomesMatchCheckedInGolden) {
  const std::string actual = serialize_reference_sweep();

  if (std::getenv("V6_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden updated: " << kGoldenPath
                 << " — review and commit the diff";
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << "; run with V6_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();

  // One big comparison would drown the log; compare line by line and
  // report the first divergence with context.
  if (actual == expected.str()) return;
  std::istringstream actual_lines(actual), expected_lines(expected.str());
  std::string a, e;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool more_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool more_e = static_cast<bool>(std::getline(expected_lines, e));
    if (!more_a && !more_e) break;
    ASSERT_EQ(more_a, more_e) << "golden and actual diverge in length at line "
                              << line;
    ASSERT_EQ(a, e) << "first golden mismatch at line " << line
                    << " (update procedure: see test header)";
  }
  FAIL() << "golden mismatch";  // unreachable: the loop pinpoints it
}

}  // namespace
}  // namespace v6::experiment
