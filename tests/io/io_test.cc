#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "io/address_file.h"
#include "io/csv.h"

namespace v6::io {
namespace {

using v6::net::Ipv6Addr;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("v6io_test_") + name))
      .string();
}

TEST(AddressList, ParseSkipsCommentsAndMalformed) {
  std::vector<Ipv6Addr> out;
  const ParseReport report = parse_address_list(
      "# seeds\n"
      "2001:db8::1\n"
      "\n"
      "  2001:db8::2  # inline comment\n"
      "not-an-address\n"
      "2001:db8::3",
      out);
  EXPECT_EQ(report.lines, 4u);
  EXPECT_EQ(report.parsed, 3u);
  EXPECT_EQ(report.malformed, 1u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], Ipv6Addr::must_parse("2001:db8::2"));
}

TEST(AddressList, WriteReadRoundTrip) {
  const std::vector<Ipv6Addr> addrs = {
      Ipv6Addr::must_parse("2001:db8::1"),
      Ipv6Addr::must_parse("fe80::dead:beef"),
      Ipv6Addr::must_parse("::"),
  };
  const std::string path = temp_path("roundtrip.txt");
  write_address_file(path, addrs);
  ParseReport report;
  const auto back = read_address_file(path, &report);
  EXPECT_EQ(back, addrs);
  EXPECT_EQ(report.malformed, 0u);
  std::remove(path.c_str());
}

TEST(AddressList, ReadMissingFileThrows) {
  EXPECT_THROW(read_address_file("/nonexistent/path/seeds.txt"),
               std::runtime_error);
}

TEST(SeedDatasetIo, RoundTripPreservesProvenance) {
  v6::seeds::SeedDataset dataset;
  const Ipv6Addr a = Ipv6Addr::must_parse("2001:db8::1");
  const Ipv6Addr b = Ipv6Addr::must_parse("2001:db8::2");
  dataset.add(a, v6::seeds::SeedSource::kCensys);
  dataset.add(a, v6::seeds::SeedSource::kScamper);
  dataset.add(b, v6::seeds::SeedSource::kHitlist);

  std::ostringstream os;
  write_seed_dataset(os, dataset);
  ParseReport report;
  const auto back = parse_seed_dataset(os.str(), &report);
  EXPECT_EQ(report.parsed, 2u);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.sources_of(a), dataset.sources_of(a));
  EXPECT_EQ(back.sources_of(b), dataset.sources_of(b));
}

TEST(SeedDatasetIo, UnknownSourceLabelsTolerated) {
  const auto dataset =
      parse_seed_dataset("2001:db8::1\tCensys,FutureFeed\n");
  EXPECT_EQ(dataset.size(), 1u);
  EXPECT_EQ(dataset.sources_of(Ipv6Addr::must_parse("2001:db8::1")),
            v6::seeds::source_bit(v6::seeds::SeedSource::kCensys));
}

TEST(AliasListIo, RoundTrip) {
  v6::dealias::AliasList list;
  list.load("2001:db8::/64\n2600:9000:2000::/48\n");
  const std::string path = temp_path("aliases.txt");
  write_alias_list_file(path, list);
  const auto back = read_alias_list_file(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_TRUE(back.contains(Ipv6Addr::must_parse("2001:db8::42")));
  std::remove(path.c_str());
}

TEST(Csv, RowQuoting) {
  std::ostringstream os;
  write_csv_row(os, std::vector<std::string>{"plain", "with,comma",
                                             "with\"quote", "multi\nline"});
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(Csv, WriterEnforcesWidth) {
  std::ostringstream os;
  CsvWriter writer(os, {"a", "b"});
  writer.row({"1", "2"});
  EXPECT_THROW(writer.row({"only-one"}), std::invalid_argument);
  EXPECT_EQ(writer.rows_written(), 1u);
}

TEST(Csv, OutcomesExport) {
  v6::metrics::ScanOutcome outcome;
  outcome.generated = 100;
  outcome.responsive = 10;
  outcome.hit_set.insert(Ipv6Addr::must_parse("2001:db8::1"));
  outcome.as_set.insert(64500);
  outcome.aliases = 2;
  outcome.packets = 150;

  std::ostringstream os;
  const std::vector<std::string> labels = {"tga", "port"};
  const std::vector<OutcomeRow> rows = {{{"6Tree", "ICMP"}, &outcome}};
  write_outcomes_csv(os, labels, rows);
  const std::string text = os.str();
  EXPECT_NE(text.find("tga,port,generated"), std::string::npos);
  EXPECT_NE(text.find("6Tree,ICMP,100,10,1,1,2,0,150"), std::string::npos);
}

}  // namespace
}  // namespace v6::io
