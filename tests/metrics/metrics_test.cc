#include <gtest/gtest.h>

#include <sstream>

#include "metrics/as_top.h"
#include "metrics/coverage.h"
#include "metrics/reporter.h"
#include "metrics/scan_outcome.h"

namespace v6::metrics {
namespace {

using v6::net::Ipv6Addr;

Ipv6Addr addr_n(std::uint64_t n) {
  return Ipv6Addr(0x20010db800000000ULL, n);
}

TEST(PerformanceRatio, MatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(performance_ratio(100, 100), 0.0);   // unchanged
  EXPECT_DOUBLE_EQ(performance_ratio(200, 100), 1.0);   // doubled
  EXPECT_DOUBLE_EQ(performance_ratio(50, 100), -0.5);   // halved
  EXPECT_DOUBLE_EQ(performance_ratio(0, 100), -1.0);    // vanished
  EXPECT_DOUBLE_EQ(performance_ratio(10, 0), 0.0);      // degenerate
}

TEST(ScanOutcome, CountsFollowSets) {
  ScanOutcome outcome;
  outcome.hit_set.insert(addr_n(1));
  outcome.hit_set.insert(addr_n(2));
  outcome.as_set.insert(100);
  EXPECT_EQ(outcome.hits(), 2u);
  EXPECT_EQ(outcome.ases(), 1u);
}

TEST(Coverage, GreedyOrderingPicksLargestFirst) {
  const std::unordered_set<Ipv6Addr> a = {addr_n(1), addr_n(2), addr_n(3)};
  const std::unordered_set<Ipv6Addr> b = {addr_n(3), addr_n(4)};
  const std::unordered_set<Ipv6Addr> c = {addr_n(1)};
  const auto steps = cumulative_contribution(
      {{"A", &a}, {"B", &b}, {"C", &c}});
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].name, "A");
  EXPECT_EQ(steps[0].marginal, 3u);
  EXPECT_EQ(steps[1].name, "B");
  EXPECT_EQ(steps[1].marginal, 1u);  // only addr 4 is new
  EXPECT_EQ(steps[2].name, "C");
  EXPECT_EQ(steps[2].marginal, 0u);
  EXPECT_EQ(steps[2].cumulative, 4u);
  EXPECT_DOUBLE_EQ(steps[2].cumulative_fraction, 1.0);
}

TEST(Coverage, AsVariantWorks) {
  const std::unordered_set<std::uint32_t> a = {1, 2};
  const std::unordered_set<std::uint32_t> b = {2, 3, 4};
  const auto steps = cumulative_as_contribution({{"A", &a}, {"B", &b}});
  EXPECT_EQ(steps[0].name, "B");
  EXPECT_EQ(steps[1].marginal, 1u);
}

TEST(Coverage, EmptySetsHandled) {
  const std::unordered_set<Ipv6Addr> empty;
  const auto steps = cumulative_contribution({{"A", &empty}});
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].cumulative, 0u);
  EXPECT_DOUBLE_EQ(steps[0].cumulative_fraction, 0.0);
}

TEST(AsTop, CharacterizesShares) {
  v6::asdb::AsDatabase asdb;
  asdb.add({.asn = 100, .name = "big-cloud",
            .org_type = v6::asdb::OrgType::kCloud});
  asdb.add({.asn = 200, .name = "small-isp",
            .org_type = v6::asdb::OrgType::kIsp});

  std::unordered_set<Ipv6Addr> hits;
  for (std::uint64_t i = 0; i < 8; ++i) hits.insert(addr_n(i));
  hits.insert(Ipv6Addr(0x2002ULL << 48, 1));
  hits.insert(Ipv6Addr(0x2002ULL << 48, 2));

  const auto asn_of = [](const Ipv6Addr& a) -> std::optional<std::uint32_t> {
    return a.hi() >> 48 == 0x2002 ? 200u : 100u;
  };
  const auto result = characterize(hits, asn_of, asdb, 3);
  EXPECT_EQ(result.total_hits, 10u);
  EXPECT_EQ(result.total_ases, 2u);
  ASSERT_EQ(result.top.size(), 2u);
  EXPECT_EQ(result.top[0].asn, 100u);
  EXPECT_EQ(result.top[0].name, "big-cloud");
  EXPECT_EQ(result.top[0].org_type, "Cloud");
  EXPECT_DOUBLE_EQ(result.top[0].share, 0.8);
}

TEST(AsTop, UnroutedAddressesIgnored) {
  v6::asdb::AsDatabase asdb;
  std::unordered_set<Ipv6Addr> hits = {addr_n(1)};
  const auto asn_of = [](const Ipv6Addr&) -> std::optional<std::uint32_t> {
    return std::nullopt;
  };
  const auto result = characterize(hits, asn_of, asdb);
  EXPECT_EQ(result.total_hits, 0u);
  EXPECT_TRUE(result.top.empty());
}

TEST(Reporter, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(1000000000ULL), "1,000,000,000");
}

TEST(Reporter, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.425), "42.5%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Reporter, FmtRatio) {
  EXPECT_EQ(fmt_ratio(0.53), "+0.53");
  EXPECT_EQ(fmt_ratio(-0.21), "-0.21");
  EXPECT_EQ(fmt_ratio(0.0), "+0.00");
}

TEST(Reporter, TextTableRendersAlignedColumns) {
  TextTable table({"Name", "Hits"});
  table.add_row({"6Tree", "1,234"});
  table.add_rule();
  table.add_row({"EIP", "5"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("6Tree"), std::string::npos);
  EXPECT_NE(out.find("1,234"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Numeric cells are right-aligned: "    5" ends its line.
  EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(Reporter, TextTablePadsShortRows) {
  TextTable table({"A", "B", "C"});
  table.add_row({"x"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

}  // namespace
}  // namespace v6::metrics
