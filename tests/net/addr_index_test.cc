// Unit tests for AddrIndexMap, the open-addressing map behind
// Universe::probe.
#include "net/addr_index.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "net/ipv6.h"
#include "net/rng.h"

namespace v6::net {
namespace {

Ipv6Addr addr_of(std::uint64_t hi, std::uint64_t lo) {
  return Ipv6Addr(hi, lo);
}

TEST(AddrIndexMap, StartsEmpty) {
  AddrIndexMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(addr_of(1, 2)), nullptr);
  EXPECT_FALSE(map.contains(addr_of(1, 2)));
}

TEST(AddrIndexMap, InsertThenFind) {
  AddrIndexMap map;
  EXPECT_TRUE(map.insert(addr_of(0x2001, 0x1), 7));
  EXPECT_TRUE(map.insert(addr_of(0x2001, 0x2), 8));
  ASSERT_NE(map.find(addr_of(0x2001, 0x1)), nullptr);
  EXPECT_EQ(*map.find(addr_of(0x2001, 0x1)), 7u);
  ASSERT_NE(map.find(addr_of(0x2001, 0x2)), nullptr);
  EXPECT_EQ(*map.find(addr_of(0x2001, 0x2)), 8u);
  EXPECT_EQ(map.find(addr_of(0x2001, 0x3)), nullptr);
  EXPECT_EQ(map.size(), 2u);
}

TEST(AddrIndexMap, DuplicateInsertKeepsFirstValue) {
  AddrIndexMap map;
  EXPECT_TRUE(map.insert(addr_of(5, 5), 1));
  EXPECT_FALSE(map.insert(addr_of(5, 5), 2));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(addr_of(5, 5)), 1u);
}

TEST(AddrIndexMap, GrowsPastInitialCapacity) {
  AddrIndexMap map;
  constexpr std::uint32_t kN = 10'000;
  Rng rng(42);
  std::vector<Ipv6Addr> keys;
  keys.reserve(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    keys.push_back(addr_of(rng(), rng()));
    map.insert(keys.back(), i);
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_NE(map.find(keys[i]), nullptr) << "key " << i;
    EXPECT_EQ(*map.find(keys[i]), i);
  }
}

TEST(AddrIndexMap, ReservePreservesContents) {
  AddrIndexMap map;
  for (std::uint32_t i = 0; i < 50; ++i) {
    map.insert(addr_of(i, ~static_cast<std::uint64_t>(i)), i);
  }
  map.reserve(100'000);
  EXPECT_EQ(map.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    ASSERT_NE(map.find(addr_of(i, ~static_cast<std::uint64_t>(i))), nullptr);
    EXPECT_EQ(*map.find(addr_of(i, ~static_cast<std::uint64_t>(i))), i);
  }
}

TEST(AddrIndexMap, MatchesUnorderedMapOnRandomWorkload) {
  AddrIndexMap map;
  std::unordered_map<Ipv6Addr, std::uint32_t, Ipv6AddrHash> reference;
  Rng rng(7);
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    // Small keyspace forces duplicate inserts and near-miss lookups.
    const Ipv6Addr key = addr_of(rng() % 64, rng() % 64);
    EXPECT_EQ(map.insert(key, i), reference.emplace(key, i).second);
    const Ipv6Addr probe = addr_of(rng() % 64, rng() % 64);
    const auto it = reference.find(probe);
    const std::uint32_t* found = map.find(probe);
    if (it == reference.end()) {
      EXPECT_EQ(found, nullptr);
    } else {
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, it->second);
    }
  }
  EXPECT_EQ(map.size(), reference.size());
}

}  // namespace
}  // namespace v6::net
