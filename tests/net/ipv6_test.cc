#include "net/ipv6.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "net/rng.h"

namespace v6::net {
namespace {

TEST(Ipv6Addr, DefaultIsUnspecified) {
  const Ipv6Addr a;
  EXPECT_EQ(a.hi(), 0u);
  EXPECT_EQ(a.lo(), 0u);
  EXPECT_EQ(a.to_string(), "::");
}

TEST(Ipv6Addr, ParseFullForm) {
  const auto a = Ipv6Addr::parse("2001:0db8:85a3:0000:0000:8a2e:0370:7334");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi(), 0x20010db885a30000ULL);
  EXPECT_EQ(a->lo(), 0x00008a2e03707334ULL);
}

TEST(Ipv6Addr, ParseCompressedMiddle) {
  const auto a = Ipv6Addr::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo(), 1u);
}

TEST(Ipv6Addr, ParseCompressedFront) {
  const auto a = Ipv6Addr::parse("::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi(), 0u);
  EXPECT_EQ(a->lo(), 1u);
}

TEST(Ipv6Addr, ParseCompressedBack) {
  const auto a = Ipv6Addr::parse("fe80::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hi(), 0xfe80000000000000ULL);
  EXPECT_EQ(a->lo(), 0u);
}

TEST(Ipv6Addr, ParseAllZero) {
  const auto a = Ipv6Addr::parse("::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv6Addr());
}

TEST(Ipv6Addr, ParseUpperCase) {
  const auto a = Ipv6Addr::parse("2001:DB8::ABCD");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->lo(), 0xABCDu);
}

TEST(Ipv6Addr, ParseStripsZoneSuffix) {
  const auto a = Ipv6Addr::parse("fe80::1%eth0");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->lo(), 1u);
}

struct BadInput {
  const char* text;
};

class Ipv6ParseRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(Ipv6ParseRejects, Rejects) {
  EXPECT_FALSE(Ipv6Addr::parse(GetParam().text).has_value())
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, Ipv6ParseRejects,
    ::testing::Values(BadInput{""}, BadInput{":"}, BadInput{":::"},
                      BadInput{"1:2:3:4:5:6:7"},          // too few groups
                      BadInput{"1:2:3:4:5:6:7:8:9"},      // too many groups
                      BadInput{"1::2::3"},                // two gaps
                      BadInput{"12345::"},                // >4 digits
                      BadInput{"g::1"},                   // bad hex
                      BadInput{"1:2:3:4:5:6:7:"},         // trailing colon
                      BadInput{"2001:db8"},               // incomplete
                      BadInput{"1:2:3:4:5:6:7:8:"},       // trailing colon
                      BadInput{"hello"}));

TEST(Ipv6Addr, MustParseThrowsOnBadInput) {
  EXPECT_THROW(Ipv6Addr::must_parse("nope"), std::invalid_argument);
  EXPECT_NO_THROW(Ipv6Addr::must_parse("::1"));
}

TEST(Ipv6Addr, ToStringCompressesLongestRun) {
  EXPECT_EQ(Ipv6Addr::must_parse("2001:0:0:1:0:0:0:1").to_string(),
            "2001:0:0:1::1");
  EXPECT_EQ(Ipv6Addr::must_parse("2001:db8:0:0:1:0:0:1").to_string(),
            "2001:db8::1:0:0:1");
}

TEST(Ipv6Addr, ToStringNoCompressionOfSingleZero) {
  EXPECT_EQ(Ipv6Addr::must_parse("2001:0:1:1:1:1:1:1").to_string(),
            "2001:0:1:1:1:1:1:1");
}

TEST(Ipv6Addr, ToFullString) {
  EXPECT_EQ(Ipv6Addr::must_parse("2001:db8::1").to_full_string(),
            "2001:0db8:0000:0000:0000:0000:0000:0001");
}

TEST(Ipv6Addr, RoundTripRandomAddresses) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    const Ipv6Addr a(rng(), rng());
    const auto parsed = Ipv6Addr::parse(a.to_string());
    ASSERT_TRUE(parsed.has_value()) << a.to_string();
    EXPECT_EQ(*parsed, a) << a.to_string();
    const auto parsed_full = Ipv6Addr::parse(a.to_full_string());
    ASSERT_TRUE(parsed_full.has_value());
    EXPECT_EQ(*parsed_full, a);
  }
}

TEST(Ipv6Addr, NybbleIndexing) {
  const Ipv6Addr a = Ipv6Addr::must_parse("0123:4567:89ab:cdef:0123:4567:89ab:cdef");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.nybble(i), i) << i;
    EXPECT_EQ(a.nybble(16 + i), i) << i;
  }
}

TEST(Ipv6Addr, WithNybbleRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Ipv6Addr a(rng(), rng());
    const int pos = static_cast<int>(rng() % 32);
    const std::uint8_t v = static_cast<std::uint8_t>(rng() & 0xF);
    const Ipv6Addr b = a.with_nybble(pos, v);
    EXPECT_EQ(b.nybble(pos), v);
    for (int other = 0; other < 32; ++other) {
      if (other != pos) EXPECT_EQ(b.nybble(other), a.nybble(other));
    }
  }
}

TEST(Ipv6Addr, BitIndexing) {
  const Ipv6Addr a(0x8000000000000000ULL, 1);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(127));
  EXPECT_FALSE(a.bit(126));
}

TEST(Ipv6Addr, MaskedClearsHostBits) {
  const Ipv6Addr a = Ipv6Addr::must_parse("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff");
  EXPECT_EQ(a.masked(32), Ipv6Addr::must_parse("2001:db8::"));
  EXPECT_EQ(a.masked(64), Ipv6Addr::must_parse("2001:db8:ffff:ffff::"));
  EXPECT_EQ(a.masked(96),
            Ipv6Addr::must_parse("2001:db8:ffff:ffff:ffff:ffff::"));
  EXPECT_EQ(a.masked(128), a);
  EXPECT_EQ(a.masked(0), Ipv6Addr());
}

TEST(Ipv6Addr, MaskedIsIdempotent) {
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    const Ipv6Addr a(rng(), rng());
    const int len = static_cast<int>(rng() % 129);
    EXPECT_EQ(a.masked(len).masked(len), a.masked(len));
  }
}

TEST(Ipv6Addr, OrderingIsLexicographicOnBytes) {
  EXPECT_LT(Ipv6Addr::must_parse("2001::"), Ipv6Addr::must_parse("2002::"));
  EXPECT_LT(Ipv6Addr::must_parse("2001::1"), Ipv6Addr::must_parse("2001::2"));
  EXPECT_LT(Ipv6Addr::must_parse("::ffff"), Ipv6Addr::must_parse("1::"));
}

TEST(Ipv6Addr, HashSpreadsOverBuckets) {
  // Sequential addresses (the common counter pattern) must not collide.
  std::unordered_set<std::size_t> hashes;
  const Ipv6Addr base = Ipv6Addr::must_parse("2001:db8::");
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    hashes.insert(Ipv6AddrHash{}(Ipv6Addr(base.hi(), i)));
  }
  EXPECT_GT(hashes.size(), 9'990u);
}

}  // namespace
}  // namespace v6::net
