#include "net/prefix.h"

#include <gtest/gtest.h>

#include "net/rng.h"

namespace v6::net {
namespace {

TEST(Prefix, ParseBasic) {
  const auto p = Prefix::parse("2001:db8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->addr(), Ipv6Addr::must_parse("2001:db8::"));
}

TEST(Prefix, ParseNormalizesHostBits) {
  const auto p = Prefix::parse("2001:db8::dead:beef/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->addr(), Ipv6Addr::must_parse("2001:db8::"));
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("2001:db8::").has_value());     // no length
  EXPECT_FALSE(Prefix::parse("2001:db8::/").has_value());    // empty length
  EXPECT_FALSE(Prefix::parse("2001:db8::/129").has_value()); // too long
  EXPECT_FALSE(Prefix::parse("2001:db8::/-1").has_value());
  EXPECT_FALSE(Prefix::parse("2001:db8::/3x").has_value());
  EXPECT_FALSE(Prefix::parse("zz::/32").has_value());
}

TEST(Prefix, MustParseThrows) {
  EXPECT_THROW(Prefix::must_parse("bad"), std::invalid_argument);
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::must_parse("2001:db8::/32");
  EXPECT_TRUE(p.contains(Ipv6Addr::must_parse("2001:db8::1")));
  EXPECT_TRUE(p.contains(Ipv6Addr::must_parse("2001:db8:ffff::")));
  EXPECT_FALSE(p.contains(Ipv6Addr::must_parse("2001:db9::")));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix outer = Prefix::must_parse("2001:db8::/32");
  EXPECT_TRUE(outer.contains(Prefix::must_parse("2001:db8:1::/48")));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Prefix::must_parse("2001::/16")));
  EXPECT_FALSE(outer.contains(Prefix::must_parse("2001:db9::/48")));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all = Prefix::must_parse("::/0");
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(all.contains(Ipv6Addr(rng(), rng())));
  }
}

TEST(Prefix, FullLengthContainsOnlyItself) {
  const Prefix host = Prefix::must_parse("2001:db8::1/128");
  EXPECT_TRUE(host.contains(Ipv6Addr::must_parse("2001:db8::1")));
  EXPECT_FALSE(host.contains(Ipv6Addr::must_parse("2001:db8::2")));
}

TEST(Prefix, ToStringRoundTrip) {
  for (const char* text : {"2001:db8::/32", "::/0", "fe80::/10",
                           "2001:db8::1/128", "2600:9000:2000::/48"}) {
    const Prefix p = Prefix::must_parse(text);
    EXPECT_EQ(Prefix::must_parse(p.to_string()), p) << text;
  }
}

TEST(Prefix, RandomInPrefixStaysInside) {
  Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    const Ipv6Addr base(rng(), rng());
    const int len = static_cast<int>(rng() % 129);
    const Prefix p(base, len);
    const Ipv6Addr sample = random_in_prefix(rng, p);
    EXPECT_TRUE(p.contains(sample))
        << p.to_string() << " vs " << sample.to_string();
  }
}

TEST(Prefix, HostBits) {
  EXPECT_EQ(Prefix::must_parse("::/0").host_bits(), 128);
  EXPECT_EQ(Prefix::must_parse("2001:db8::/64").host_bits(), 64);
  EXPECT_EQ(Prefix::must_parse("2001:db8::1/128").host_bits(), 0);
}

}  // namespace
}  // namespace v6::net
