// Property battery for net::PrefixTrie against a brute-force linear
// oracle: for random (and adversarially structured) prefix sets, the
// trie's longest_match / find / covers must agree with a direct scan of
// every inserted prefix. The trie is now on the probe hot path of the
// procedural universe (one walk per packet) and carries the alias and
// routing tables, so a silent mismatch would corrupt scan ground truth
// rather than crash.
#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "net/rng.h"

namespace v6::net {
namespace {

/// Brute-force reference: linear scan, most-specific containing prefix
/// wins; a re-inserted prefix overwrites its value (trie semantics).
class LinearOracle {
 public:
  void insert(const Prefix& prefix, int value) {
    for (auto& [p, v] : entries_) {
      if (p == prefix) {
        v = value;
        return;
      }
    }
    entries_.emplace_back(prefix, value);
  }

  std::optional<int> longest_match(const Ipv6Addr& addr,
                                   int* matched_len = nullptr) const {
    std::optional<int> best;
    int best_len = -1;
    for (const auto& [p, v] : entries_) {
      if (p.contains(addr) && p.length() > best_len) {
        best = v;
        best_len = p.length();
      }
    }
    if (best && matched_len != nullptr) *matched_len = best_len;
    return best;
  }

  std::optional<int> find(const Prefix& prefix) const {
    for (const auto& [p, v] : entries_) {
      if (p == prefix) return v;
    }
    return std::nullopt;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<Prefix, int>> entries_;
};

void expect_agree(const PrefixTrie<int>& trie, const LinearOracle& oracle,
                  const Ipv6Addr& addr) {
  int trie_len = -1;
  int oracle_len = -1;
  const int* got = trie.longest_match(addr, trie_len);
  const std::optional<int> want = oracle.longest_match(addr, &oracle_len);
  ASSERT_EQ(got != nullptr, want.has_value()) << "coverage divergence";
  if (got != nullptr) {
    EXPECT_EQ(*got, *want);
    EXPECT_EQ(trie_len, oracle_len);
  }
  EXPECT_EQ(trie.covers(addr), want.has_value());
}

/// Addresses that stress the boundaries of `prefix`: first and last
/// address inside, and the first address just outside either edge.
std::vector<Ipv6Addr> boundary_addrs(const Prefix& prefix) {
  std::vector<Ipv6Addr> out;
  const Ipv6Addr base = prefix.addr();
  out.push_back(base);
  const int len = prefix.length();
  if (len == 0) return out;
  // Last address inside: set all host bits (len is 1..128 here).
  std::uint64_t hi = base.hi();
  std::uint64_t lo = base.lo();
  if (len < 64) {
    hi |= ~0ULL >> len;
    lo = ~0ULL;
  } else if (len == 64) {
    lo = ~0ULL;
  } else if (len < 128) {
    lo |= ~0ULL >> (len - 64);
  }
  out.push_back(Ipv6Addr(hi, lo));
  // Flip the last prefix bit: the adjacent sibling block.
  if (len <= 64) {
    out.push_back(Ipv6Addr(base.hi() ^ (1ULL << (64 - len)), base.lo()));
  } else {
    out.push_back(Ipv6Addr(base.hi(), base.lo() ^ (1ULL << (128 - len))));
  }
  return out;
}

TEST(PrefixTriePropertyTest, RandomSetsAgreeWithOracle) {
  Rng rng = make_rng(0xBEEF, /*tag=*/1);
  for (int round = 0; round < 30; ++round) {
    PrefixTrie<int> trie;
    LinearOracle oracle;
    std::vector<Prefix> inserted;

    const int n = uniform_int(rng, 1, 60);
    for (int i = 0; i < n; ++i) {
      // Clustered bases force nesting and adjacency: a few shared /24
      // roots, random length (full 0..128 span), value = i.
      const std::uint64_t root =
          static_cast<std::uint64_t>(uniform_int(rng, 0, 3)) << 40;
      const Ipv6Addr base(0x2000'0000'0000'0000ULL | root | rng(),
                          rng());
      const int len = uniform_int(rng, 0, 128);
      const Prefix p(base, len);  // constructor masks host bits
      trie.insert(p, i);
      oracle.insert(p, i);
      inserted.push_back(p);
    }
    ASSERT_EQ(trie.size(), oracle.size());

    for (const Prefix& p : inserted) {
      const std::optional<int> want = oracle.find(p);
      const int* got = trie.find(p);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, *want);
      for (const Ipv6Addr& addr : boundary_addrs(p)) {
        expect_agree(trie, oracle, addr);
      }
    }
    for (int i = 0; i < 200; ++i) {
      expect_agree(trie, oracle, Ipv6Addr(rng(), rng()));
    }
  }
}

TEST(PrefixTriePropertyTest, NestedChainResolvesMostSpecific) {
  PrefixTrie<int> trie;
  LinearOracle oracle;
  // A full nesting chain /0, /8, /16, ..., /128 over one address.
  const Ipv6Addr target = Ipv6Addr::must_parse("2001:db8:cafe:1::42");
  for (int len = 0; len <= 128; len += 8) {
    const Prefix p(target, len);
    trie.insert(p, len);
    oracle.insert(p, len);
  }
  int matched = -1;
  ASSERT_NE(trie.longest_match(target, matched), nullptr);
  EXPECT_EQ(matched, 128);
  EXPECT_EQ(*trie.longest_match(target), 128);
  // Off-chain addresses fall back to the deepest still-containing level.
  for (int len = 8; len <= 128; len += 8) {
    for (const Ipv6Addr& addr : boundary_addrs(Prefix(target, len))) {
      expect_agree(trie, oracle, addr);
    }
  }
}

TEST(PrefixTriePropertyTest, AdjacentSiblingsDoNotBleed) {
  PrefixTrie<int> trie;
  LinearOracle oracle;
  // 2001:db8::/33 and 2001:db8:8000::/33 tile 2001:db8::/32 exactly.
  const Prefix left = Prefix::must_parse("2001:db8::/33");
  const Prefix right = Prefix::must_parse("2001:db8:8000::/33");
  trie.insert(left, 1);
  oracle.insert(left, 1);
  trie.insert(right, 2);
  oracle.insert(right, 2);

  EXPECT_EQ(*trie.longest_match(Ipv6Addr::must_parse("2001:db8::1")), 1);
  EXPECT_EQ(*trie.longest_match(Ipv6Addr::must_parse("2001:db8:8000::1")), 2);
  EXPECT_EQ(trie.longest_match(Ipv6Addr::must_parse("2001:db9::1")), nullptr);
  Rng rng = make_rng(0xBEEF, /*tag=*/2);
  for (int i = 0; i < 500; ++i) {
    const Ipv6Addr addr(0x2001'0db8'0000'0000ULL | (rng() >> 32), rng());
    expect_agree(trie, oracle, addr);
  }
}

TEST(PrefixTriePropertyTest, DefaultRouteAndHostRouteExtremes) {
  PrefixTrie<int> trie;
  LinearOracle oracle;
  const Prefix all = Prefix::must_parse("::/0");
  const Ipv6Addr host = Ipv6Addr::must_parse("2001:db8::7");
  const Prefix host_route(host, 128);
  trie.insert(all, 1);
  oracle.insert(all, 1);
  trie.insert(host_route, 2);
  oracle.insert(host_route, 2);

  EXPECT_EQ(*trie.longest_match(host), 2);
  EXPECT_EQ(*trie.longest_match(Ipv6Addr::must_parse("2001:db8::8")), 1);
  EXPECT_EQ(*trie.longest_match(Ipv6Addr()), 1);
  Rng rng = make_rng(0xBEEF, /*tag=*/3);
  for (int i = 0; i < 300; ++i) {
    expect_agree(trie, oracle, Ipv6Addr(rng(), rng()));
  }
}

TEST(PrefixTriePropertyTest, OverwriteSemanticsMatchOracle) {
  PrefixTrie<int> trie;
  LinearOracle oracle;
  Rng rng = make_rng(0xBEEF, /*tag=*/4);
  // Insert from a tiny prefix pool so duplicates are frequent.
  std::vector<Prefix> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(Prefix(Ipv6Addr(0x2000ULL << 48 | rng(), 0),
                          uniform_int(rng, 16, 64)));
  }
  for (int i = 0; i < 200; ++i) {
    const Prefix& p = pool[uniform_int<std::size_t>(rng, 0, pool.size() - 1)];
    trie.insert(p, i);
    oracle.insert(p, i);
  }
  ASSERT_EQ(trie.size(), oracle.size());
  for (const Prefix& p : pool) {
    const int* got = trie.find(p);
    const std::optional<int> want = oracle.find(p);
    ASSERT_EQ(got != nullptr, want.has_value());
    if (got != nullptr) {
      EXPECT_EQ(*got, *want);
    }
    for (const Ipv6Addr& addr : boundary_addrs(p)) {
      expect_agree(trie, oracle, addr);
    }
  }
}

}  // namespace
}  // namespace v6::net
